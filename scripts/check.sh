#!/usr/bin/env bash
# Offline-friendly pre-merge gate: formatting, lints, and the tier-1 tests.
# All dependencies are vendored under vendor/, so no network is needed.
#
# Usage: scripts/check.sh [--no-clippy] [--no-fmt] [--no-analyze] [--analyze-only]
#
# --analyze-only runs just the static-analysis gate (plus its incremental
# latency check) and skips formatting, clippy, tests, and the perf gates —
# the edit-loop fast path.

set -euo pipefail
cd "$(dirname "$0")/.."

run_fmt=1
run_clippy=1
run_analyze=1
analyze_only=0
for arg in "$@"; do
    case "$arg" in
        --no-fmt) run_fmt=0 ;;
        --no-clippy) run_clippy=0 ;;
        --no-analyze) run_analyze=0 ;;
        --analyze-only) analyze_only=1 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

analyze_gate() {
    echo "== analyze: constant-flow + crash-consistency + zero-alloc + invariant lints"
    mkdir -p target
    cargo run -q -p analyze -- --json target/analyze-report.json \
        --sarif target/analyze-report.sarif
    echo "   report: target/analyze-report.json (SARIF: target/analyze-report.sarif)"

    # The warm rerun above populated target/analyze-cache; a fully cached
    # rerun must stay interactive (<= 2s) or the incremental path has
    # regressed into a full re-analysis.
    local t0 t1 elapsed_ms
    t0=$(date +%s%N)
    cargo run -q -p analyze > /dev/null
    t1=$(date +%s%N)
    elapsed_ms=$(( (t1 - t0) / 1000000 ))
    echo "   incremental rerun: ${elapsed_ms}ms"
    if [ "$elapsed_ms" -gt 2000 ]; then
        echo "analyze: incremental rerun took ${elapsed_ms}ms (> 2000ms budget)" >&2
        exit 1
    fi
}

if [ "$analyze_only" = 1 ]; then
    analyze_gate
    echo "OK (analyze only)"
    exit 0
fi

if [ "$run_fmt" = 1 ]; then
    echo "== cargo fmt --check"
    cargo fmt --all --check
fi

if [ "$run_clippy" = 1 ]; then
    echo "== cargo clippy --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

if [ "$run_analyze" = 1 ]; then
    analyze_gate
fi

echo "== fault-injection smoke: resumable scan under a seeded fault plan"
cargo run --release -q -p bulkgcd-bench --bin scan_bench -- --inject-faults --resume

echo "== shard smoke: 4-way sharded scan under seeded worker deaths / torn journals /"
echo "==              duplicate completions must merge bitwise-equal to the unsharded run"
cargo run --release -q -p bulkgcd-bench --bin scan_bench -- --shards 4 --inject-faults --resume

echo "== shard gate: per-shard serial efficiency >= 0.80x at 4 shards"
cargo run --release -q -p bulkgcd-bench --bin scan_bench -- --gate-shards

echo "== perf gates: lockstep >= 0.95x scalar arena scan, builder pipeline >= 0.98x direct call,"
echo "==             compaction occupancy >= 1.15x plain at 128-bit + wall-clock floors, auto >= 0.90x best fixed,"
echo "==             streaming ingest >= 1M keys/s at m=64k with a bounded peak-RSS delta"
cargo run --release -q -p bulkgcd-bench --bin scan_bench -- \
    --gate-lockstep --gate-pipeline --gate-compaction --gate-ingest \
    --sizes 32,64 --bits 128,1024 --reps 3 \
    --out /tmp/bulkgcd_gate_scan.json \
    > /dev/null

echo "== bigint ladder gate: dispatched mul/div/gcd >= 1.5x legacy at the widest rows,"
echo "==                     <= 1.05x floor at 32/64 limbs, product-tree batch >= 1.05x"
echo "==                     with findings bitwise-identical to the scalar scan"
cargo run --release -q -p bulkgcd-bench --bin bigint_bench -- \
    --gate-subquadratic --reps 3 \
    --mul-limbs 32,64,8192 --div-limbs 32,64,4096 --gcd-limbs 48,1536 \
    --out /tmp/bulkgcd_gate_bigint.json \
    > /dev/null

echo "OK"
