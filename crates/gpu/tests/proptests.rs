//! Property tests for the SIMT warp executor and the SM scheduler.

use bulkgcd_core::StepKind;
use bulkgcd_gpu::{execute_warp, schedule, CostModel, DeviceConfig, WarpWork};
use bulkgcd_umm::gcd_trace::IterDesc;
use proptest::collection::vec;
use proptest::prelude::*;

fn kind() -> impl Strategy<Value = StepKind> {
    prop_oneof![
        Just(StepKind::BinaryXEven),
        Just(StepKind::BinaryYEven),
        Just(StepKind::BinaryBothOdd),
        Just(StepKind::FastBinarySub),
        Just(StepKind::ApproxBetaZero),
        Just(StepKind::ApproxBetaPositive),
        Just(StepKind::LehmerBatch),
    ]
}

fn lane(max_iters: usize) -> impl Strategy<Value = Vec<IterDesc>> {
    vec(
        (kind(), 1usize..=64, any::<bool>()).prop_map(|(kind, lx, x_in_a)| IterDesc {
            kind,
            lx,
            ly: lx,
            x_in_a,
        }),
        0..=max_iters,
    )
}

proptest! {
    #[test]
    fn warp_invariants(lanes in vec(lane(12), 0..=8)) {
        let cost = CostModel::default();
        let w = execute_warp(&lanes, &cost, 32);
        let max_len = lanes.iter().map(|l| l.len()).max().unwrap_or(0) as u64;
        let total: u64 = lanes.iter().map(|l| l.len() as u64).sum();
        prop_assert_eq!(w.iterations, max_len);
        prop_assert_eq!(w.lane_iterations, total);
        prop_assert!(w.divergent_iterations <= w.iterations);
        prop_assert!((0.0..=1.0).contains(&w.divergence_fraction()));
        if !lanes.is_empty() {
            prop_assert!(w.simt_efficiency(lanes.len()) <= 1.0 + 1e-9);
        }
        // Issued warp instructions dominate the single most expensive lane.
        let best_lane: f64 = lanes
            .iter()
            .map(|l| l.iter().map(|d| cost.lane_instructions(d)).sum::<f64>())
            .fold(0.0, f64::max);
        prop_assert!(w.warp_instructions + 1e-6 >= best_lane);
    }

    #[test]
    fn adding_a_lane_never_reduces_warp_cost(
        lanes in vec(lane(8), 1..=6), extra in lane(8)
    ) {
        let cost = CostModel::default();
        let base = execute_warp(&lanes, &cost, 32);
        let mut bigger = lanes.clone();
        bigger.push(extra);
        let grown = execute_warp(&bigger, &cost, 32);
        prop_assert!(grown.warp_instructions + 1e-9 >= base.warp_instructions);
        prop_assert!(grown.mem_transactions >= base.mem_transactions);
        prop_assert!(grown.iterations >= base.iterations);
    }

    #[test]
    fn uniform_lanes_never_diverge(descs in lane(10), copies in 1usize..=8) {
        let cost = CostModel::default();
        let lanes: Vec<_> = (0..copies).map(|_| descs.clone()).collect();
        let w = execute_warp(&lanes, &cost, 32);
        prop_assert_eq!(w.divergent_iterations, 0);
    }

    #[test]
    fn schedule_invariants(works in vec(
        (0.0f64..1e6, 0u64..100_000).prop_map(|(insts, tx)| WarpWork {
            warp_instructions: insts,
            mem_words: tx * 32,
            mem_transactions: tx,
            iterations: 10,
            divergent_iterations: 3,
            lane_iterations: 200,
        }),
        0..=40,
    )) {
        let device = DeviceConfig::gtx_780_ti();
        let r = schedule(&device, &works);
        // Latency tail is always charged.
        prop_assert!(r.cycles >= device.mem_latency_cycles as f64);
        // Totals add up.
        let insts: f64 = works.iter().map(|w| w.warp_instructions).sum();
        let tx: u64 = works.iter().map(|w| w.mem_transactions).sum();
        prop_assert!((r.total_warp_instructions - insts).abs() < 1e-6);
        prop_assert_eq!(r.total_transactions, tx);
        prop_assert_eq!(r.total_bytes, tx * device.transaction_bytes);
        // The makespan is at least the average per-SM load.
        let per_sm_insts = insts / device.sm_count as f64 / device.warp_throughput_per_sm();
        prop_assert!(r.cycles + 1e-6 >= per_sm_insts);
        prop_assert!((r.seconds * device.clock_ghz * 1e9 - r.cycles).abs() < 1.0);
    }

    #[test]
    fn more_identical_warps_never_faster(
        insts in 1.0f64..1e5, tx in 1u64..10_000, n in 1usize..=30
    ) {
        let device = DeviceConfig::gtx_780_ti();
        let w = WarpWork {
            warp_instructions: insts,
            mem_words: tx * 32,
            mem_transactions: tx,
            iterations: 1,
            divergent_iterations: 0,
            lane_iterations: 32,
        };
        let small = schedule(&device, &vec![w.clone(); n]);
        let large = schedule(&device, &vec![w; n * 2]);
        prop_assert!(large.cycles + 1e-9 >= small.cycles);
    }
}
