//! SM scheduler with latency hiding.
//!
//! A Kepler SMX issues up to `cores/32` warp-instructions per cycle and
//! shares the DRAM interface with the other SMs. With enough resident warps
//! the memory latency is overlapped by other warps' compute — the §VII
//! observation that the 64-bit division of `approx` is "hidden by large
//! memory access latency" on the GPU. The model therefore charges each SM
//! `max(compute cycles, memory cycles)` plus a latency-dominated floor when
//! occupancy is too low to hide anything.

use crate::device::DeviceConfig;
use crate::warp::WarpWork;

/// Simulated execution report for one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuReport {
    /// Core cycles of the slowest SM (the launch's makespan).
    pub cycles: f64,
    /// Wall-clock seconds at the device clock.
    pub seconds: f64,
    /// Total warp-instructions issued across the device.
    pub total_warp_instructions: f64,
    /// Total memory transactions issued across the device.
    pub total_transactions: u64,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// True when the launch was compute-bound on the critical SM.
    pub compute_bound: bool,
    /// Warps simulated.
    pub warps: usize,
    /// Mean divergence fraction across warps (iterations with >1 live path).
    pub mean_divergence: f64,
    /// Mean SIMT efficiency across warps.
    pub mean_simt_efficiency: f64,
}

/// Schedule `warps` onto the SMs of `device` round-robin and compute the
/// launch makespan.
pub fn schedule(device: &DeviceConfig, warps: &[WarpWork]) -> GpuReport {
    let sms = device.sm_count.max(1);
    let mut sm_insts = vec![0f64; sms];
    let mut sm_transactions = vec![0u64; sms];
    for (i, w) in warps.iter().enumerate() {
        let sm = i % sms;
        sm_insts[sm] += w.warp_instructions;
        sm_transactions[sm] += w.mem_transactions;
    }
    let issue = device.warp_throughput_per_sm();
    let bytes_per_cycle = device.bytes_per_cycle_per_sm();
    let mut worst = 0f64;
    let mut compute_bound = false;
    for sm in 0..sms {
        let compute = sm_insts[sm] / issue;
        let mem = sm_transactions[sm] as f64 * device.transaction_bytes as f64 / bytes_per_cycle;
        // A latency floor: with W resident warps the pipeline can overlap W
        // outstanding requests; below that, each round of requests stalls.
        let cycles = compute.max(mem);
        if cycles > worst {
            worst = cycles;
            compute_bound = compute > mem;
        }
    }
    // One trailing latency per launch (negligible for real workloads, keeps
    // tiny launches from reporting zero time).
    let cycles = worst + device.mem_latency_cycles as f64;
    let total_transactions: u64 = warps.iter().map(|w| w.mem_transactions).sum();
    let n = warps.len().max(1) as f64;
    GpuReport {
        cycles,
        seconds: cycles / (device.clock_ghz * 1e9),
        total_warp_instructions: warps.iter().map(|w| w.warp_instructions).sum(),
        total_transactions,
        total_bytes: total_transactions * device.transaction_bytes,
        compute_bound,
        warps: warps.len(),
        mean_divergence: warps.iter().map(|w| w.divergence_fraction()).sum::<f64>() / n,
        mean_simt_efficiency: warps
            .iter()
            .map(|w| w.simt_efficiency(device.warp_size))
            .sum::<f64>()
            / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warp(insts: f64, transactions: u64) -> WarpWork {
        WarpWork {
            warp_instructions: insts,
            mem_words: transactions * 32,
            mem_transactions: transactions,
            iterations: 10,
            divergent_iterations: 1,
            lane_iterations: 300,
        }
    }

    #[test]
    fn empty_launch_costs_only_latency() {
        let d = DeviceConfig::gtx_780_ti();
        let r = schedule(&d, &[]);
        assert_eq!(r.cycles, d.mem_latency_cycles as f64);
        assert_eq!(r.warps, 0);
    }

    #[test]
    fn memory_bound_launch() {
        let d = DeviceConfig::gtx_780_ti();
        // Tiny compute, heavy traffic.
        let warps = vec![warp(10.0, 1_000_000); 15];
        let r = schedule(&d, &warps);
        assert!(!r.compute_bound);
        // One SM gets one warp: 1e6 transactions * 128 B / ~24.1 B/cycle.
        let expect = 1_000_000.0 * 128.0 / d.bytes_per_cycle_per_sm();
        assert!((r.cycles - expect - d.mem_latency_cycles as f64).abs() / expect < 1e-9);
    }

    #[test]
    fn compute_bound_launch() {
        let d = DeviceConfig::gtx_780_ti();
        let warps = vec![warp(1_000_000.0, 10); 15];
        let r = schedule(&d, &warps);
        assert!(r.compute_bound);
    }

    #[test]
    fn work_spreads_across_sms() {
        let d = DeviceConfig::gtx_780_ti();
        let one = schedule(&d, &vec![warp(6_000.0, 0); 1]);
        let fifteen = schedule(&d, &vec![warp(6_000.0, 0); 15]);
        // 15 warps on 15 SMs take the same time as 1 warp on 1 SM.
        assert!((one.cycles - fifteen.cycles).abs() < 1e-9);
        let thirty = schedule(&d, &vec![warp(6_000.0, 0); 30]);
        assert!(thirty.cycles > one.cycles);
    }

    #[test]
    fn seconds_track_clock() {
        let d = DeviceConfig::gtx_780_ti();
        let r = schedule(&d, &vec![warp(1000.0, 1000. as u64); 15]);
        assert!((r.seconds * d.clock_ghz * 1e9 - r.cycles).abs() < 1.0);
    }
}
