//! SIMT warp execution: lockstep iterations, branch-divergence
//! serialisation, and coalescing-aware memory traffic.
//!
//! All threads of a warp execute the same instruction each cycle (§VII:
//! "CUDA architecture is based on SIMT"). When lanes take different
//! branches of an `if-else`, the warp executes each taken path in turn with
//! the other lanes masked — the reason Binary Euclid's three-way branch
//! degrades on the GPU while Approximate Euclid's β>0 branch almost never
//! executes.

use crate::cost::CostModel;
use bulkgcd_core::StepKind;
use bulkgcd_umm::gcd_trace::IterDesc;

/// Aggregate work of one warp over a bulk-GCD kernel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarpWork {
    /// Warp-instructions issued, including divergence serialisation.
    pub warp_instructions: f64,
    /// Global-memory words moved (sum over lanes).
    pub mem_words: u64,
    /// Coalesced memory transactions issued.
    pub mem_transactions: u64,
    /// Lockstep iterations executed (max over lanes).
    pub iterations: u64,
    /// Iterations in which more than one branch path was live.
    pub divergent_iterations: u64,
    /// GCD lane-iterations in total (sum over lanes; the work a perfect
    /// MIMD machine would do).
    pub lane_iterations: u64,
}

impl WarpWork {
    /// Fraction of lockstep iterations that diverged.
    pub fn divergence_fraction(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.divergent_iterations as f64 / self.iterations as f64
        }
    }

    /// SIMT efficiency: lane-iterations / (iterations × warp size) — how
    /// much of the lockstep machine was doing useful work.
    pub fn simt_efficiency(&self, warp_size: usize) -> f64 {
        if self.iterations == 0 {
            1.0
        } else {
            self.lane_iterations as f64 / (self.iterations as f64 * warp_size as f64)
        }
    }
}

/// Incremental [`WarpWork`] builder fed one lockstep iteration at a time.
///
/// Two producers drive it: [`execute_warp`] replaying recorded
/// [`IterDesc`] traces (the *model*), and the live lockstep engine in
/// `bulkgcd-bulk` feeding the descriptors of each iteration it actually
/// executes (the *measurement*). Because both run the identical
/// accumulation code — same floating-point operation order included — the
/// modeled and measured costs of the same pair corpus agree bitwise, which
/// the validation suite asserts.
#[derive(Debug, Clone)]
pub struct WarpWorkAccumulator {
    work: WarpWork,
    words_per_transaction: u64,
    /// Scratch: the distinct paths live this iteration.
    paths: Vec<StepKind>,
}

impl WarpWorkAccumulator {
    /// New accumulator; `words_per_transaction` is how many 32-bit words one
    /// coalesced transaction carries (transaction bytes / 4).
    pub fn new(words_per_transaction: u64) -> Self {
        WarpWorkAccumulator {
            work: WarpWork::default(),
            words_per_transaction,
            paths: Vec::with_capacity(4),
        }
    }

    /// Reset to a fresh warp without dropping scratch capacity, so a
    /// long-lived engine accumulates warp after warp allocation-free.
    pub fn reset(&mut self, words_per_transaction: u64) {
        self.work = WarpWork::default();
        self.words_per_transaction = words_per_transaction;
        self.paths.clear();
    }

    /// Record one lockstep iteration. `live` holds the descriptor of every
    /// lane still active this iteration (terminated lanes are masked off
    /// and simply absent). An iteration with no live lanes still advances
    /// the lockstep counter — the warp issues the loop bookkeeping even
    /// when all its lanes idle behind a longer sibling warp.
    pub fn record_iteration(&mut self, cost: &CostModel, live: &[IterDesc]) {
        let work = &mut self.work;
        work.iterations += 1;
        if live.is_empty() {
            return;
        }
        self.paths.clear();
        for d in live {
            if !self.paths.contains(&d.kind) {
                self.paths.push(d.kind);
            }
        }
        work.lane_iterations += live.len() as u64;
        if self.paths.len() > 1 {
            work.divergent_iterations += 1;
        }
        // Compute: each taken path executes serially; its duration is the
        // slowest lane on that path (trip counts differ by lX).
        for &path in &self.paths {
            let mut path_insts = 0f64;
            let mut max_lx = 0usize;
            let mut parity_a = false;
            let mut parity_b = false;
            let mut path_words = 0u64;
            for d in live {
                if d.kind == path {
                    path_insts = path_insts.max(cost.lane_instructions(d));
                    max_lx = max_lx.max(d.lx);
                    path_words += cost.lane_mem_words(d);
                    if d.x_in_a {
                        parity_a = true;
                    } else {
                        parity_b = true;
                    }
                }
            }
            work.warp_instructions += path_insts;
            work.mem_words += path_words;
            // Coalescing: the column-wise scan issues, per word-step and
            // per live buffer parity (a warp mixing swapped and unswapped
            // lanes touches two arrays), as many transactions as it takes
            // to cover a full warp's words — 1 for 128-byte lines, 2 for
            // the 64-byte transactions of older devices.
            let parities = u64::from(parity_a) + u64::from(parity_b);
            let scans: u64 = match path {
                StepKind::BinaryXEven | StepKind::BinaryYEven => 2,
                StepKind::ApproxBetaPositive | StepKind::LehmerBatch => 4,
                _ => 3,
            };
            let per_step = (32u64).div_ceil(self.words_per_transaction.max(1));
            // Head/tail O(1) accesses scatter across lanes: up to one
            // transaction each for approx's 4 reads and the compare's 2.
            work.mem_transactions += parities * scans * max_lx as u64 * per_step + 6;
        }
    }

    /// Finish the warp, returning its aggregate work and leaving the
    /// accumulator empty (scratch retained).
    pub fn take(&mut self) -> WarpWork {
        std::mem::take(&mut self.work)
    }
}

/// Execute one warp of lanes in lockstep. Each lane is the per-iteration
/// descriptor sequence of one GCD (from [`bulkgcd_umm::gcd_trace::IterProbe`]).
///
/// `words_per_transaction` is how many 32-bit words one coalesced
/// transaction carries (transaction bytes / 4).
pub fn execute_warp(
    lanes: &[Vec<IterDesc>],
    cost: &CostModel,
    words_per_transaction: u64,
) -> WarpWork {
    let mut acc = WarpWorkAccumulator::new(words_per_transaction);
    let max_iters = lanes.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut live: Vec<IterDesc> = Vec::with_capacity(lanes.len());
    for i in 0..max_iters {
        live.clear();
        live.extend(lanes.iter().filter_map(|l| l.get(i).copied()));
        acc.record_iteration(cost, &live);
    }
    acc.take()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(kinds: &[(StepKind, usize)]) -> Vec<IterDesc> {
        kinds
            .iter()
            .map(|&(kind, lx)| IterDesc {
                kind,
                lx,
                ly: lx,
                x_in_a: true,
            })
            .collect()
    }

    #[test]
    fn uniform_warp_pays_one_path() {
        let cost = CostModel::default();
        let l = lane(&[(StepKind::ApproxBetaZero, 32); 4]);
        let lanes = vec![l.clone(), l.clone(), l];
        let w = execute_warp(&lanes, &cost, 32);
        assert_eq!(w.iterations, 4);
        assert_eq!(w.divergent_iterations, 0);
        let single = cost.lane_instructions(&lanes[0][0]);
        assert!((w.warp_instructions - 4.0 * single).abs() < 1e-9);
    }

    #[test]
    fn divergent_warp_pays_both_paths() {
        let cost = CostModel::default();
        let a = lane(&[(StepKind::BinaryXEven, 32)]);
        let b = lane(&[(StepKind::BinaryBothOdd, 32)]);
        let w = execute_warp(&[a.clone(), b.clone()], &cost, 32);
        assert_eq!(w.divergent_iterations, 1);
        let expect = cost.lane_instructions(&a[0]) + cost.lane_instructions(&b[0]);
        assert!((w.warp_instructions - expect).abs() < 1e-9);
    }

    #[test]
    fn ragged_lanes_mask_off() {
        let cost = CostModel::default();
        let long = lane(&[(StepKind::FastBinarySub, 16); 5]);
        let short = lane(&[(StepKind::FastBinarySub, 16); 2]);
        let w = execute_warp(&[long, short], &cost, 32);
        assert_eq!(w.iterations, 5);
        assert_eq!(w.lane_iterations, 7);
        assert!(w.simt_efficiency(2) < 1.0);
    }

    #[test]
    fn mixed_parity_doubles_scan_transactions() {
        let cost = CostModel::default();
        let mut a = lane(&[(StepKind::ApproxBetaZero, 32)]);
        let mut b = lane(&[(StepKind::ApproxBetaZero, 32)]);
        a[0].x_in_a = true;
        b[0].x_in_a = false;
        let same = execute_warp(&[a.clone(), a.clone()], &cost, 32);
        let mixed = execute_warp(&[a, b], &cost, 32);
        assert_eq!(same.mem_transactions, 3 * 32 + 6);
        assert_eq!(mixed.mem_transactions, 2 * 3 * 32 + 6);
    }

    #[test]
    fn empty_warp() {
        let w = execute_warp(&[], &CostModel::default(), 32);
        assert_eq!(w, WarpWork::default());
    }
}
