//! GPU device descriptions.
//!
//! The paper evaluates on a GeForce GTX 780 Ti (Kepler GK110B). We do not
//! have that hardware, so the experiments run on a calibrated architectural
//! simulator; this module carries the published specifications the cost
//! model is calibrated against.

/// Architectural parameters of a simulated CUDA device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, for report headers.
    pub name: String,
    /// Number of streaming multiprocessors (SMX units on Kepler).
    pub sm_count: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Threads per warp (32 on every CUDA device to date).
    pub warp_size: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Aggregate DRAM bandwidth in bytes per second.
    pub mem_bandwidth_bytes_per_s: f64,
    /// Global-memory access latency in cycles ("several hundred", §I).
    pub mem_latency_cycles: u64,
    /// Maximum resident warps per SM (occupancy ceiling).
    pub max_resident_warps_per_sm: usize,
    /// Size in bytes of one coalesced memory transaction (cache line).
    pub transaction_bytes: u64,
    /// Host-to-device transfer bandwidth (PCIe), bytes per second — used
    /// for the §VII footnote that input transfer time is negligible.
    pub pcie_bandwidth_bytes_per_s: f64,
}

impl DeviceConfig {
    /// The paper's GPU: GeForce GTX 780 Ti (Kepler GK110B, 15 SMX × 192
    /// cores, 928 MHz boost, 336 GB/s GDDR5, PCIe 3.0 x16).
    pub fn gtx_780_ti() -> Self {
        DeviceConfig {
            name: "GeForce GTX 780 Ti (simulated)".to_string(),
            sm_count: 15,
            cores_per_sm: 192,
            warp_size: 32,
            clock_ghz: 0.928,
            mem_bandwidth_bytes_per_s: 336.0e9,
            mem_latency_cycles: 400,
            max_resident_warps_per_sm: 64,
            transaction_bytes: 128,
            pcie_bandwidth_bytes_per_s: 12.0e9,
        }
    }

    /// The GPU of Fujimoto's prior work \[19\]: GeForce GTX 285 (Tesla
    /// generation, 30 SMs × 8 cores, 1.476 GHz shader clock, 159 GB/s).
    pub fn gtx_285() -> Self {
        DeviceConfig {
            name: "GeForce GTX 285 (simulated)".to_string(),
            sm_count: 30,
            cores_per_sm: 8,
            warp_size: 32,
            clock_ghz: 1.476,
            mem_bandwidth_bytes_per_s: 159.0e9,
            mem_latency_cycles: 500,
            max_resident_warps_per_sm: 32,
            transaction_bytes: 64,
            pcie_bandwidth_bytes_per_s: 6.0e9,
        }
    }

    /// The GPU of Scharfglass et al. \[20\]: GeForce GTX 480 (Fermi GF100,
    /// 15 SMs × 32 cores, 1.401 GHz shader clock, 177 GB/s).
    pub fn gtx_480() -> Self {
        DeviceConfig {
            name: "GeForce GTX 480 (simulated)".to_string(),
            sm_count: 15,
            cores_per_sm: 32,
            warp_size: 32,
            clock_ghz: 1.401,
            mem_bandwidth_bytes_per_s: 177.4e9,
            mem_latency_cycles: 450,
            max_resident_warps_per_sm: 48,
            transaction_bytes: 128,
            pcie_bandwidth_bytes_per_s: 8.0e9,
        }
    }

    /// The GPU of White \[21\]: Tesla K20Xm (Kepler GK110, 14 SMX × 192
    /// cores, 732 MHz, 250 GB/s ECC GDDR5).
    pub fn tesla_k20xm() -> Self {
        DeviceConfig {
            name: "Tesla K20Xm (simulated)".to_string(),
            sm_count: 14,
            cores_per_sm: 192,
            warp_size: 32,
            clock_ghz: 0.732,
            mem_bandwidth_bytes_per_s: 250.0e9,
            mem_latency_cycles: 400,
            max_resident_warps_per_sm: 64,
            transaction_bytes: 128,
            pcie_bandwidth_bytes_per_s: 10.0e9,
        }
    }

    /// Warps a thread block of `block_size` threads occupies.
    pub fn warps_per_block(&self, block_size: usize) -> usize {
        block_size.div_ceil(self.warp_size)
    }

    /// Lanes of compute throughput per cycle, expressed in warps
    /// (e.g. 192 cores / 32 = 6 warp-instructions per cycle per SMX).
    pub fn warp_throughput_per_sm(&self) -> f64 {
        self.cores_per_sm as f64 / self.warp_size as f64
    }

    /// DRAM bytes one SM can move per core cycle, assuming fair sharing.
    pub fn bytes_per_cycle_per_sm(&self) -> f64 {
        self.mem_bandwidth_bytes_per_s / (self.clock_ghz * 1e9) / self.sm_count as f64
    }

    /// Seconds to copy `bytes` over PCIe (the §VII transfer footnote).
    pub fn host_transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.pcie_bandwidth_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx_780_ti_shape() {
        let d = DeviceConfig::gtx_780_ti();
        assert_eq!(d.sm_count * d.cores_per_sm, 2880); // the card's 2880 cores
        assert_eq!(d.warp_throughput_per_sm(), 6.0);
        // ~24 bytes per cycle per SMX at 928 MHz / 336 GB/s.
        let b = d.bytes_per_cycle_per_sm();
        assert!((24.0..25.0).contains(&b), "{b}");
    }

    #[test]
    fn warps_per_block_rounds_up() {
        let d = DeviceConfig::gtx_780_ti();
        assert_eq!(d.warps_per_block(64), 2);
        assert_eq!(d.warps_per_block(65), 3);
        assert_eq!(d.warps_per_block(1), 1);
    }

    #[test]
    fn transfer_time_is_small() {
        // §VII: 16K 4096-bit moduli transfer "in 0.002 seconds".
        let d = DeviceConfig::gtx_780_ti();
        let bytes = 16_384u64 * (4096 / 8);
        let t = d.host_transfer_seconds(bytes);
        assert!(t < 0.01, "transfer {t} s");
    }
}
