//! Launch failure model: injected faults, retry policy, and launch errors.
//!
//! A real multi-hour bulk-GCD sweep sees kernel launches fail — ECC
//! retirements, driver resets, watchdog timeouts. Some failures are
//! *transient* (the same launch succeeds when resubmitted), some are
//! *persistent* (the launch will never succeed on the device and must be
//! degraded to the host path). The simulator cannot crash for real, so the
//! failure surface is modelled explicitly: a [`FaultInjector`] decides, per
//! `(launch, attempt)`, whether that attempt fails, and
//! [`simulate_bulk_gcd_retry`](crate::launch::simulate_bulk_gcd_retry)
//! drives the retry-with-exponential-backoff loop against it.
//!
//! Injection is **deterministic and pure**: an injector answers from
//! `(launch, attempt)` alone, so concurrent launches need no shared mutable
//! state and a replayed run sees exactly the same faults.

use std::fmt;
use std::time::Duration;

/// The class of an injected launch failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaunchFault {
    /// The attempt failed but a resubmission may succeed (driver hiccup,
    /// recoverable ECC event). Retried under the [`RetryPolicy`].
    Transient,
    /// The launch can never succeed on the device (lane data tickles a
    /// device bug, persistent page retirement). Not retried; the caller
    /// must degrade — the scan driver falls back to the CPU path.
    Persistent,
}

impl fmt::Display for LaunchFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchFault::Transient => write!(f, "transient"),
            LaunchFault::Persistent => write!(f, "persistent"),
        }
    }
}

/// A launch that did not complete: either a persistent fault, or transient
/// faults that exhausted the retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchError {
    /// The launch index (the scan driver's launch counter).
    pub launch: u64,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The fault class of the final failed attempt.
    pub fault: LaunchFault,
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "launch {} failed after {} attempt(s): {} fault",
            self.launch, self.attempts, self.fault
        )
    }
}

impl std::error::Error for LaunchError {}

/// Decides whether an attempt of a launch fails.
///
/// Implementations must be pure functions of `(launch, attempt)`: the retry
/// loop and the parallel scan driver may query any `(launch, attempt)` in
/// any order, possibly more than once.
pub trait FaultInjector: Sync {
    /// Fault injected into attempt `attempt` (0-based) of launch `launch`,
    /// or `None` when the attempt succeeds.
    fn fault(&self, launch: u64, attempt: u32) -> Option<LaunchFault>;
}

/// The production injector: no faults, ever.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn fault(&self, _launch: u64, _attempt: u32) -> Option<LaunchFault> {
        None
    }
}

/// Retry-with-exponential-backoff policy for transient launch faults.
///
/// The backoff durations are **accounted, not slept**: the simulator has no
/// real device to give breathing room to, so the retry loop sums what a
/// production driver would have waited and reports it (the scan surfaces it
/// as `FaultStats::backoff`). A driver wrapping a real GPU would sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per launch (at least 1; the first attempt counts).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff interval.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    pub const fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Backoff to apply after failed attempt `attempt` (0-based):
    /// `base · 2^attempt`, capped at [`max_backoff`](Self::max_backoff).
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let doubled = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        doubled.min(self.max_backoff)
    }
}

/// Bookkeeping from one launch's retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryOutcome {
    /// Attempts made (1 for a first-try success).
    pub attempts: u32,
    /// Total backoff a production driver would have slept.
    pub backoff: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(65),
        };
        assert_eq!(p.backoff_for(0), Duration::from_millis(10));
        assert_eq!(p.backoff_for(1), Duration::from_millis(20));
        assert_eq!(p.backoff_for(2), Duration::from_millis(40));
        // 80ms capped to 65ms, and far shifts saturate instead of wrapping.
        assert_eq!(p.backoff_for(3), Duration::from_millis(65));
        assert_eq!(p.backoff_for(63), Duration::from_millis(65));
    }

    #[test]
    fn no_retries_policy() {
        let p = RetryPolicy::no_retries();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff_for(0), Duration::ZERO);
    }

    #[test]
    fn no_faults_injector_never_fires() {
        for launch in 0..10 {
            for attempt in 0..4 {
                assert_eq!(NoFaults.fault(launch, attempt), None);
            }
        }
    }

    #[test]
    fn launch_error_displays() {
        let e = LaunchError {
            launch: 7,
            attempts: 4,
            fault: LaunchFault::Transient,
        };
        let s = e.to_string();
        assert!(s.contains("launch 7") && s.contains("transient"), "{s}");
    }
}
