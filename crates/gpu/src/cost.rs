//! Per-iteration instruction cost model.
//!
//! Each do-while iteration of a Euclidean variant maps to a compute cost in
//! warp-instructions (one warp-instruction = one instruction issued for a
//! full warp) and a global-memory traffic volume in words. The constants
//! are per-word instruction counts read off the §IV update loops — a
//! multiply-subtract-shift pipeline step is a handful of machine
//! instructions — plus fixed per-iteration overheads for `approx`, the
//! comparison and loop control. The absolute values matter less than the
//! *ratios*; the reproduction reports simulated time as such.

use bulkgcd_core::StepKind;
use bulkgcd_umm::gcd_trace::IterDesc;

/// Instruction/traffic cost model, tunable for ablations.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Instructions per scanned word of the fused read-X/read-Y/write-X
    /// multiply-subtract-shift pipeline (§IV): two 32-bit multiplies, an
    /// add/sub chain, shifts and bookkeeping.
    pub insts_per_scan_word: f64,
    /// Instructions per scanned word of a plain halve/subtract pass
    /// (Binary Euclid paths — no multiply).
    pub insts_per_simple_word: f64,
    /// Instructions for the 64-bit division inside `approx` (emulated in
    /// software on CUDA devices; tens of instructions).
    pub insts_div64: f64,
    /// Fixed per-iteration overhead: loop control, length bookkeeping,
    /// comparison, branching.
    pub insts_iteration_overhead: f64,
    /// Extra instructions when an iteration ends in `swap(X, Y)` (pointer
    /// and register exchanges).
    pub insts_swap: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            insts_per_scan_word: 8.0,
            insts_per_simple_word: 5.0,
            insts_div64: 48.0,
            insts_iteration_overhead: 12.0,
            insts_swap: 4.0,
        }
    }
}

impl CostModel {
    /// Compute instructions one lane spends on iteration `it` (trip count
    /// taken from the lane's own `lX`; the warp executor handles masking).
    pub fn lane_instructions(&self, it: &IterDesc) -> f64 {
        let words = it.lx.max(1) as f64;
        let body = match it.kind {
            StepKind::BinaryXEven | StepKind::BinaryYEven => words * self.insts_per_simple_word,
            StepKind::BinaryBothOdd | StepKind::FastBinarySub => {
                words * self.insts_per_simple_word + words * 1.0 // extra borrow chain
            }
            StepKind::ApproxBetaZero => words * self.insts_per_scan_word + self.insts_div64,
            StepKind::ApproxBetaPositive => {
                // 4-pass variant plus the division.
                words * self.insts_per_scan_word * 4.0 / 3.0 + self.insts_div64
            }
            StepKind::LehmerBatch => {
                // Two single-limb linear combinations plus the divergent
                // 64-bit cosequence loop (~30 division steps).
                words * self.insts_per_scan_word * 2.0 + 30.0 * self.insts_div64
            }
            StepKind::OriginalMod | StepKind::FastQuotient => {
                // Full multiword division: ~ one schoolbook pass per quotient
                // word; dominated by words^2 for same-size operands is too
                // pessimistic mid-run, so charge a multiword-div factor.
                words * self.insts_per_scan_word * 6.0
            }
        };
        body + self.insts_iteration_overhead + self.insts_swap
    }

    /// Global-memory words one lane moves in iteration `it` (§IV
    /// accounting: 3 scans of `lX` words, 4 for the β>0 path, 2 for the
    /// halve-only Binary paths, plus O(1) head/tail words).
    pub fn lane_mem_words(&self, it: &IterDesc) -> u64 {
        let words = it.lx.max(1) as u64;
        let scans = match it.kind {
            StepKind::BinaryXEven | StepKind::BinaryYEven => 2,
            StepKind::ApproxBetaPositive | StepKind::LehmerBatch => 4,
            _ => 3,
        };
        scans * words + 6 // head (approx) + tail (compare) words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_core::StepKind;

    fn it(kind: StepKind, lx: usize) -> IterDesc {
        IterDesc {
            kind,
            lx,
            ly: lx,
            x_in_a: true,
        }
    }

    #[test]
    fn approximate_cheaper_than_exact_division_per_iteration() {
        let m = CostModel::default();
        let approx = m.lane_instructions(&it(StepKind::ApproxBetaZero, 32));
        let exact = m.lane_instructions(&it(StepKind::FastQuotient, 32));
        assert!(approx < exact);
    }

    #[test]
    fn binary_iteration_cheapest_but_smallest_progress() {
        let m = CostModel::default();
        let bin = m.lane_instructions(&it(StepKind::BinaryBothOdd, 32));
        let approx = m.lane_instructions(&it(StepKind::ApproxBetaZero, 32));
        assert!(bin < approx);
    }

    #[test]
    fn mem_words_match_section_iv() {
        let m = CostModel::default();
        assert_eq!(
            m.lane_mem_words(&it(StepKind::ApproxBetaZero, 32)),
            3 * 32 + 6
        );
        assert_eq!(
            m.lane_mem_words(&it(StepKind::ApproxBetaPositive, 32)),
            4 * 32 + 6
        );
        assert_eq!(m.lane_mem_words(&it(StepKind::BinaryXEven, 32)), 2 * 32 + 6);
        assert_eq!(
            m.lane_mem_words(&it(StepKind::FastBinarySub, 32)),
            3 * 32 + 6
        );
    }

    #[test]
    fn costs_scale_with_operand_width() {
        let m = CostModel::default();
        let narrow = m.lane_instructions(&it(StepKind::ApproxBetaZero, 16));
        let wide = m.lane_instructions(&it(StepKind::ApproxBetaZero, 128));
        assert!(wide > narrow * 4.0);
    }
}
