//! End-to-end simulated bulk-GCD kernel launches.
//!
//! Runs the real algorithm on every input pair (so the *results* are
//! exact), harvests per-iteration descriptors, packs lanes into warps and
//! prices the launch on the device model. The paper's kernel shape (§VII)
//! is blocks of 64 threads, each thread computing the GCDs of 64 pairs in
//! sequence; because the per-thread sequence is just more lockstep
//! iterations, simulating `pairs` lanes directly is equivalent.

use crate::cost::CostModel;
use crate::device::DeviceConfig;
use crate::fault::{FaultInjector, LaunchError, LaunchFault, RetryOutcome, RetryPolicy};
use crate::sched::{schedule, GpuReport};
use crate::warp::{execute_warp, WarpWork};
use bulkgcd_bigint::{Limb, Nat};
use bulkgcd_core::{run, Algorithm, GcdOutcome, GcdPair, Termination};
use bulkgcd_umm::gcd_trace::IterProbe;

/// Result of a simulated bulk GCD launch.
#[derive(Debug, Clone)]
pub struct BulkGcdLaunch {
    /// Per-pair outcomes (exact, computed by the real algorithm).
    pub outcomes: Vec<GcdOutcome>,
    /// The device-level simulation report.
    pub report: GpuReport,
    /// Simulated seconds per GCD (launch makespan / pairs).
    pub per_gcd_seconds: f64,
    /// Total lane iterations (algorithmic work).
    pub total_iterations: u64,
}

/// Simulate running `algo` over all `inputs` pairs on `device`.
///
/// Operands are borrowed little-endian limb slices — the host-side arena
/// hands these out without cloning (high zero padding is fine; the load
/// normalizes). Lanes are packed into warps in input order, `warp_size`
/// lanes each.
pub fn simulate_bulk_gcd(
    device: &DeviceConfig,
    cost: &CostModel,
    algo: Algorithm,
    inputs: &[(&[Limb], &[Limb])],
    term: Termination,
) -> BulkGcdLaunch {
    let mut outcomes = Vec::with_capacity(inputs.len());
    let mut lanes: Vec<Vec<bulkgcd_umm::gcd_trace::IterDesc>> = Vec::with_capacity(inputs.len());
    let mut total_iterations = 0u64;
    let mut pair = GcdPair::with_capacity(1);
    for &(a, b) in inputs {
        pair.load_from_limbs(a, b);
        let mut probe = IterProbe::default();
        outcomes.push(run(algo, &mut pair, term, &mut probe));
        total_iterations += probe.iters.len() as u64;
        lanes.push(probe.iters);
    }
    let words_per_transaction = device.transaction_bytes / 4;
    let warps: Vec<WarpWork> = lanes
        .chunks(device.warp_size)
        .map(|chunk| execute_warp(chunk, cost, words_per_transaction))
        .collect();
    let report = schedule(device, &warps);
    let per_gcd_seconds = if inputs.is_empty() {
        0.0
    } else {
        report.seconds / inputs.len() as f64
    };
    BulkGcdLaunch {
        outcomes,
        report,
        per_gcd_seconds,
        total_iterations,
    }
}

/// One attempt of a simulated launch under fault injection: asks
/// `injector` whether attempt `attempt` of launch `launch` fails, and only
/// simulates when it does not. A faulted attempt costs no simulation work —
/// the failure happens at submission, before any lane executes.
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_bulk_gcd(
    device: &DeviceConfig,
    cost: &CostModel,
    algo: Algorithm,
    inputs: &[(&[Limb], &[Limb])],
    term: Termination,
    launch: u64,
    attempt: u32,
    injector: &dyn FaultInjector,
) -> Result<BulkGcdLaunch, LaunchFault> {
    match injector.fault(launch, attempt) {
        Some(fault) => Err(fault),
        None => Ok(simulate_bulk_gcd(device, cost, algo, inputs, term)),
    }
}

/// Run any launch attempt closure under the retry-with-exponential-backoff
/// discipline of `policy`.
///
/// Asks `injector` whether each attempt of `launch` fails *before* invoking
/// `attempt_fn` — a faulted attempt dies at submission and costs no work.
/// Transient faults are retried up to `policy.max_attempts` total attempts,
/// accumulating the backoff a production driver would sleep; a persistent
/// fault aborts immediately. The returned [`RetryOutcome`] reports attempts
/// and backoff regardless of success.
///
/// This is the execution-agnostic core of [`simulate_bulk_gcd_retry`]; the
/// lockstep scan driver wraps its live engine launches in it so faulted and
/// fault-free runs share one retry state machine.
// analyze: zero-alloc
pub fn retry_launch<T>(
    launch: u64,
    injector: &dyn FaultInjector,
    policy: &RetryPolicy,
    mut attempt_fn: impl FnMut() -> T,
) -> (Result<T, LaunchError>, RetryOutcome) {
    let mut outcome = RetryOutcome::default();
    let max_attempts = policy.max_attempts.max(1);
    for attempt in 0..max_attempts {
        outcome.attempts = attempt + 1;
        match injector.fault(launch, attempt) {
            None => return (Ok(attempt_fn()), outcome),
            Some(LaunchFault::Persistent) => {
                return (
                    Err(LaunchError {
                        launch,
                        attempts: outcome.attempts,
                        fault: LaunchFault::Persistent,
                    }),
                    outcome,
                )
            }
            Some(LaunchFault::Transient) => {
                // Only back off when another attempt remains.
                if attempt + 1 < max_attempts {
                    outcome.backoff += policy.backoff_for(attempt);
                }
            }
        }
    }
    (
        Err(LaunchError {
            launch,
            attempts: outcome.attempts,
            fault: LaunchFault::Transient,
        }),
        outcome,
    )
}

/// Simulate a launch with retry-with-exponential-backoff under `policy`.
///
/// Transient faults are retried up to `policy.max_attempts` total attempts,
/// accumulating the backoff a production driver would sleep; a persistent
/// fault aborts immediately. The returned [`RetryOutcome`] reports the
/// attempts and backoff regardless of success, so the caller can account
/// retries even on the happy path.
#[allow(clippy::too_many_arguments)]
pub fn simulate_bulk_gcd_retry(
    device: &DeviceConfig,
    cost: &CostModel,
    algo: Algorithm,
    inputs: &[(&[Limb], &[Limb])],
    term: Termination,
    launch: u64,
    injector: &dyn FaultInjector,
    policy: &RetryPolicy,
) -> (Result<BulkGcdLaunch, LaunchError>, RetryOutcome) {
    retry_launch(launch, injector, policy, || {
        simulate_bulk_gcd(device, cost, algo, inputs, term)
    })
}

/// Convenience wrapper over [`simulate_bulk_gcd`] for owned [`Nat`] pairs
/// (benches, examples, tests). Borrows each pair's limbs; nothing is cloned.
pub fn simulate_bulk_gcd_pairs(
    device: &DeviceConfig,
    cost: &CostModel,
    algo: Algorithm,
    inputs: &[(Nat, Nat)],
    term: Termination,
) -> BulkGcdLaunch {
    let slices: Vec<(&[Limb], &[Limb])> = inputs
        .iter()
        .map(|(a, b)| (a.as_limbs(), b.as_limbs()))
        .collect();
    simulate_bulk_gcd(device, cost, algo, &slices, term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::prime::random_prime;
    use bulkgcd_bigint::random::random_odd_bits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_inputs(p: usize, bits: u64, seed: u64) -> Vec<(Nat, Nat)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p)
            .map(|_| {
                (
                    random_odd_bits(&mut rng, bits),
                    random_odd_bits(&mut rng, bits),
                )
            })
            .collect()
    }

    #[test]
    fn outcomes_are_exact() {
        let d = DeviceConfig::gtx_780_ti();
        let inputs = random_inputs(70, 128, 1);
        let launch = simulate_bulk_gcd_pairs(
            &d,
            &CostModel::default(),
            Algorithm::Approximate,
            &inputs,
            Termination::Full,
        );
        assert_eq!(launch.outcomes.len(), 70);
        for ((a, b), out) in inputs.iter().zip(&launch.outcomes) {
            match out {
                GcdOutcome::Gcd(g) => assert_eq!(g, &a.gcd_reference(b)),
                GcdOutcome::Coprime => panic!("Full termination cannot report Coprime"),
            }
        }
    }

    #[test]
    fn shared_factor_found_on_gpu() {
        let d = DeviceConfig::gtx_780_ti();
        let mut rng = StdRng::seed_from_u64(2);
        let p = random_prime(&mut rng, 64);
        let n1 = p.mul(&random_prime(&mut rng, 64));
        let n2 = p.mul(&random_prime(&mut rng, 64));
        let launch = simulate_bulk_gcd_pairs(
            &d,
            &CostModel::default(),
            Algorithm::Approximate,
            &[(n1, n2)],
            Termination::Early { threshold_bits: 64 },
        );
        assert_eq!(launch.outcomes[0], GcdOutcome::Gcd(p));
    }

    #[test]
    fn approximate_beats_binary_on_gpu_time() {
        let d = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let inputs = random_inputs(64, 512, 3);
        let e = simulate_bulk_gcd_pairs(
            &d,
            &cost,
            Algorithm::Approximate,
            &inputs,
            Termination::Full,
        );
        let c = simulate_bulk_gcd_pairs(&d, &cost, Algorithm::Binary, &inputs, Termination::Full);
        let dd =
            simulate_bulk_gcd_pairs(&d, &cost, Algorithm::FastBinary, &inputs, Termination::Full);
        assert!(
            e.report.seconds < dd.report.seconds && dd.report.seconds < c.report.seconds,
            "E={} D={} C={}",
            e.report.seconds,
            dd.report.seconds,
            c.report.seconds
        );
    }

    #[test]
    fn binary_diverges_more_than_approximate() {
        let d = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let inputs = random_inputs(32, 256, 4);
        let e = simulate_bulk_gcd_pairs(
            &d,
            &cost,
            Algorithm::Approximate,
            &inputs,
            Termination::Full,
        );
        let c = simulate_bulk_gcd_pairs(&d, &cost, Algorithm::Binary, &inputs, Termination::Full);
        assert!(
            c.report.mean_divergence > e.report.mean_divergence,
            "C divergence {} vs E {}",
            c.report.mean_divergence,
            e.report.mean_divergence
        );
    }

    #[test]
    fn early_termination_reduces_simulated_time() {
        let d = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let inputs = random_inputs(32, 256, 5);
        let full = simulate_bulk_gcd_pairs(
            &d,
            &cost,
            Algorithm::Approximate,
            &inputs,
            Termination::Full,
        );
        let early = simulate_bulk_gcd_pairs(
            &d,
            &cost,
            Algorithm::Approximate,
            &inputs,
            Termination::Early {
                threshold_bits: 128,
            },
        );
        assert!(early.report.seconds < full.report.seconds);
        assert!(early.total_iterations < full.total_iterations);
    }

    #[test]
    fn per_gcd_time_in_plausible_range_for_1024_bits() {
        // Sanity band, not a calibration target: the paper reports
        // 0.346 us per 1024-bit GCD (early-terminate) on this device; the
        // simulator should land within an order of magnitude.
        let d = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let inputs = random_inputs(256, 1024, 6);
        let launch = simulate_bulk_gcd_pairs(
            &d,
            &cost,
            Algorithm::Approximate,
            &inputs,
            Termination::Early {
                threshold_bits: 512,
            },
        );
        let us = launch.per_gcd_seconds * 1e6;
        assert!(
            (0.03..3.0).contains(&us),
            "per-GCD simulated time {us} us out of range"
        );
    }

    /// Test injector: launch 3 fails its first two attempts (transient),
    /// launch 5 always fails (persistent).
    struct ScriptedFaults;
    impl crate::fault::FaultInjector for ScriptedFaults {
        fn fault(&self, launch: u64, attempt: u32) -> Option<crate::fault::LaunchFault> {
            match launch {
                3 if attempt < 2 => Some(crate::fault::LaunchFault::Transient),
                5 => Some(crate::fault::LaunchFault::Persistent),
                _ => None,
            }
        }
    }

    #[test]
    fn retry_loop_recovers_from_transient_faults() {
        let d = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let inputs = random_inputs(4, 96, 7);
        let slices: Vec<(&[bulkgcd_bigint::Limb], &[bulkgcd_bigint::Limb])> = inputs
            .iter()
            .map(|(a, b)| (a.as_limbs(), b.as_limbs()))
            .collect();
        let policy = crate::fault::RetryPolicy::default();

        // Launch 3: two transient failures, success on the third attempt.
        let (res, outcome) = simulate_bulk_gcd_retry(
            &d,
            &cost,
            Algorithm::Approximate,
            &slices,
            Termination::Full,
            3,
            &ScriptedFaults,
            &policy,
        );
        let launch = res.expect("third attempt succeeds");
        assert_eq!(launch.outcomes.len(), 4);
        assert_eq!(outcome.attempts, 3);
        assert_eq!(
            outcome.backoff,
            policy.backoff_for(0) + policy.backoff_for(1)
        );
        // Recovered launch matches a fault-free one exactly.
        let clean = simulate_bulk_gcd(
            &d,
            &cost,
            Algorithm::Approximate,
            &slices,
            Termination::Full,
        );
        assert_eq!(launch.outcomes, clean.outcomes);
        assert_eq!(launch.report, clean.report);

        // Launch 5: persistent, no retries wasted.
        let (res, outcome) = simulate_bulk_gcd_retry(
            &d,
            &cost,
            Algorithm::Approximate,
            &slices,
            Termination::Full,
            5,
            &ScriptedFaults,
            &policy,
        );
        let err = res.expect_err("persistent fault must not succeed");
        assert_eq!(err.fault, crate::fault::LaunchFault::Persistent);
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.backoff, std::time::Duration::ZERO);

        // Launch 0: clean first try.
        let (res, outcome) = simulate_bulk_gcd_retry(
            &d,
            &cost,
            Algorithm::Approximate,
            &slices,
            Termination::Full,
            0,
            &ScriptedFaults,
            &policy,
        );
        assert!(res.is_ok());
        assert_eq!(outcome.attempts, 1);
    }

    #[test]
    fn exhausted_transient_retries_report_error() {
        struct AlwaysTransient;
        impl crate::fault::FaultInjector for AlwaysTransient {
            fn fault(&self, _: u64, _: u32) -> Option<crate::fault::LaunchFault> {
                Some(crate::fault::LaunchFault::Transient)
            }
        }
        let d = DeviceConfig::gtx_780_ti();
        let policy = crate::fault::RetryPolicy::default();
        let (res, outcome) = simulate_bulk_gcd_retry(
            &d,
            &CostModel::default(),
            Algorithm::Approximate,
            &[],
            Termination::Full,
            9,
            &AlwaysTransient,
            &policy,
        );
        let err = res.expect_err("budget exhausted");
        assert_eq!(err.attempts, policy.max_attempts);
        assert_eq!(err.fault, crate::fault::LaunchFault::Transient);
        // Backoff accrues after every attempt except the last.
        let expect: std::time::Duration = (0..policy.max_attempts - 1)
            .map(|a| policy.backoff_for(a))
            .sum();
        assert_eq!(outcome.backoff, expect);
    }

    #[test]
    fn empty_launch() {
        let d = DeviceConfig::gtx_780_ti();
        let launch = simulate_bulk_gcd_pairs(
            &d,
            &CostModel::default(),
            Algorithm::Approximate,
            &[],
            Termination::Full,
        );
        assert!(launch.outcomes.is_empty());
        assert_eq!(launch.per_gcd_seconds, 0.0);
    }
}
