//! # bulkgcd-gpu
//!
//! A SIMT GPU simulator substituting for the paper's GeForce GTX 780 Ti.
//!
//! The paper's performance argument is architectural — iteration counts,
//! branch divergence and memory coalescing decide GPU time — so the
//! simulator models exactly those mechanisms and nothing more:
//!
//! * [`device`] — published specifications of the GTX 780 Ti (and the GTX
//!   285 of the prior work), the calibration anchors;
//! * [`cost`] — per-iteration instruction and traffic costs read off the
//!   paper's §IV update loops;
//! * [`warp`] — lockstep execution with divergence serialisation and
//!   coalescing-aware transaction counting (including the buffer-parity
//!   split caused by pointer swaps);
//! * [`sched`] — SM scheduling with latency hiding
//!   (`max(compute, memory)` per SM);
//! * [`launch`] — end-to-end simulated bulk-GCD launches that also return
//!   the exact per-pair outcomes (the algorithms really run — only the
//!   *clock* is simulated);
//! * [`fault`] — the launch failure model: deterministic fault injection
//!   ([`FaultInjector`]), transient/persistent [`LaunchFault`]s, and the
//!   retry-with-exponential-backoff [`RetryPolicy`] that
//!   [`simulate_bulk_gcd_retry`] drives, so multi-hour scans can be made
//!   crash-tolerant and *tested* for it without a real device failing.
//!
//! Reported times are **simulated**; the reproduction treats their shape
//! (algorithm ordering, divergence effects, size scaling) as the result,
//! not the absolute microseconds.

#![warn(missing_docs)]

pub mod cost;
pub mod device;
pub mod fault;
pub mod launch;
pub mod sched;
pub mod warp;

pub use cost::CostModel;
pub use device::DeviceConfig;
pub use fault::{FaultInjector, LaunchError, LaunchFault, NoFaults, RetryOutcome, RetryPolicy};
pub use launch::{
    retry_launch, simulate_bulk_gcd, simulate_bulk_gcd_pairs, simulate_bulk_gcd_retry,
    try_simulate_bulk_gcd, BulkGcdLaunch,
};
pub use sched::{schedule, GpuReport};
pub use warp::{execute_warp, WarpWork, WarpWorkAccumulator};
