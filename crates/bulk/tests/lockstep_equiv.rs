//! Lockstep-engine equivalence suite.
//!
//! Two families of guarantees, both against independent references:
//!
//! * **Values** — every lane of a [`LockstepEngine`] warp terminates with
//!   exactly the status and GCD of the scalar Approximate-Euclid loop
//!   (`run_in_place`) on the same operands, and for full termination with
//!   the schoolbook `gcd_reference`. Exercised over ragged warps, lanes
//!   terminating at different iterations, and operand shapes that force
//!   the rare β>0 divergent path.
//!
//! * **Costs** — the [`WarpWork`] the engine *measures* while executing a
//!   warp is bitwise identical to the [`WarpWork`] the trace-replay model
//!   (`execute_warp` over `IterProbe` recordings) computes for the same
//!   pairs in the same lane order — the modeled and measured clocks agree
//!   down to the f64 bits, `divergent_iterations` included.

use bulkgcd_bigint::{Limb, Nat};
use bulkgcd_bulk::{
    Backend, CompactionConfig, LockstepBackend, LockstepEngine, ModuliArena, ScanPipeline,
};
use bulkgcd_core::{run_in_place, Algorithm, GcdPair, GcdStatus, NoProbe, StepKind, Termination};
use bulkgcd_gpu::{execute_warp, CostModel, DeviceConfig, WarpWork};
use bulkgcd_rsa::build_corpus;
use bulkgcd_umm::gcd_trace::{IterDesc, IterProbe};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scalar reference for one pair: terminal status and (for Done) the GCD.
fn scalar_reference(a: &[Limb], b: &[Limb], term: Termination) -> (GcdStatus, Option<Nat>) {
    let mut pair = GcdPair::with_capacity(a.len().max(b.len()).max(1));
    pair.load_from_limbs(a, b);
    let status = run_in_place(Algorithm::Approximate, &mut pair, term, &mut NoProbe);
    let gcd = (status == GcdStatus::Done).then(|| pair.x_nat());
    (status, gcd)
}

/// Run `pairs` through a lockstep engine of width `w` (ragged final warp
/// included) and check every lane against the scalar loop, and — under
/// full termination — against the schoolbook GCD.
fn check_warps(pairs: &[(Vec<Limb>, Vec<Limb>)], w: usize, term: Termination) {
    let mut engine = LockstepEngine::new(w);
    for warp in pairs.chunks(w) {
        let inputs: Vec<(&[Limb], &[Limb])> = warp
            .iter()
            .map(|(a, b)| (a.as_slice(), b.as_slice()))
            .collect();
        engine.run_warp(&inputs, term, None);
        for (t, (a, b)) in warp.iter().enumerate() {
            let (status, gcd) = scalar_reference(a, b, term);
            assert_eq!(engine.lane_status(t), status, "lane {t} status");
            if let Some(g) = gcd {
                assert_eq!(engine.lane_gcd_is_one(t), g.is_one(), "lane {t} is_one");
                assert_eq!(engine.lane_gcd_nat(t), g, "lane {t} gcd");
                if term == Termination::Full {
                    let na = Nat::from_limb_slice(a);
                    let nb = Nat::from_limb_slice(b);
                    assert_eq!(g, na.gcd_reference(&nb), "lane {t} vs schoolbook");
                }
            }
        }
    }
}

/// Run `pairs` through one compacting/refilling queue of width `w` and
/// check every queue entry against the scalar loop under the same
/// (launch-level) termination — compaction and refill must be invisible
/// in statuses and factors.
fn check_queue(
    pairs: &[(Vec<Limb>, Vec<Limb>)],
    w: usize,
    term: Termination,
    cfg: CompactionConfig,
) {
    let inputs: Vec<(&[Limb], &[Limb])> = pairs
        .iter()
        .map(|(a, b)| (a.as_slice(), b.as_slice()))
        .collect();
    let mut engine = LockstepEngine::new(w);
    engine.run_queue(&inputs, term, cfg);
    assert_eq!(engine.queue_len(), pairs.len());
    for (q, (a, b)) in pairs.iter().enumerate() {
        let (status, gcd) = scalar_reference(a, b, term);
        assert_eq!(engine.queue_status(q), status, "entry {q} status");
        match gcd {
            Some(g) => {
                assert_eq!(engine.queue_gcd_is_one(q), g.is_one(), "entry {q} is_one");
                match engine.queue_factor(q) {
                    Some(f) => assert_eq!(*f, g, "entry {q} factor"),
                    None => assert!(g.is_one(), "entry {q} lost its factor"),
                }
            }
            None => assert!(
                engine.queue_factor(q).is_none(),
                "interrupted entry {q} must carry no factor"
            ),
        }
    }
}

/// Compaction tunings spanning never-compact, always-compact, and
/// fractional thresholds, with and without refill.
fn compaction_cfg() -> impl Strategy<Value = CompactionConfig> {
    (0.0f64..=1.0, any::<bool>()).prop_map(|(min_active_fraction, refill)| CompactionConfig {
        min_active_fraction,
        refill,
        ..CompactionConfig::default()
    })
}

/// An **odd** operand of 1..=`max_limbs` limbs (top limb forced nonzero).
/// Odd like every RSA modulus: Approximate Euclid strips factors of two
/// from differences, so its fixed point equals the true GCD only on the
/// odd inputs the paper scans.
fn operand(max_limbs: usize) -> impl Strategy<Value = Vec<Limb>> {
    (vec(any::<Limb>(), 1..=max_limbs), 1..=Limb::MAX).prop_map(|(mut v, top)| {
        let last = v.len() - 1;
        v[last] = top;
        v[0] |= 1;
        v
    })
}

proptest! {
    /// Ragged warps of arbitrary fill over mixed-width operands: every
    /// lane matches the scalar loop and the schoolbook GCD.
    #[test]
    fn lockstep_matches_scalar_on_ragged_warps(
        pairs in vec((operand(8), operand(8)), 1..20),
        w in prop_oneof![Just(1usize), Just(3), Just(8), Just(16)],
    ) {
        check_warps(&pairs, w, Termination::Full);
    }

    /// Early termination: lanes cross (or never cross) the threshold at
    /// different iterations, so the active mask shrinks unevenly; statuses
    /// and GCDs still match the scalar loop lane for lane.
    #[test]
    fn lockstep_matches_scalar_under_early_termination(
        pairs in vec((operand(8), operand(8)), 1..16),
        threshold_bits in 1u64..200,
        w in prop_oneof![Just(1usize), Just(4), Just(8)],
    ) {
        check_warps(&pairs, w, Termination::Early { threshold_bits });
    }

    /// Wildly unbalanced operands (wide X against near-single-limb Y) are
    /// what drives approx into the β>0 case; the divergent scalar-fixup
    /// path must still match the scalar loop exactly.
    #[test]
    fn lockstep_matches_scalar_on_beta_positive_shapes(
        pairs in vec((operand(12), operand(2)), 1..12),
        w in prop_oneof![Just(2usize), Just(8)],
    ) {
        check_warps(&pairs, w, Termination::Full);
    }

    /// Queue mode over ragged queues (entries ≫ columns, arbitrary
    /// compaction tuning): every entry matches the scalar loop exactly —
    /// repacking survivors and refilling dead columns changes nothing.
    #[test]
    fn queue_matches_scalar_on_ragged_queues(
        pairs in vec((operand(8), operand(8)), 1..24),
        w in prop_oneof![Just(1usize), Just(3), Just(8), Just(16)],
        cfg in compaction_cfg(),
    ) {
        check_queue(&pairs, w, Termination::Full, cfg);
    }

    /// Queue mode under early termination: lanes die at different
    /// iterations (the divergence compaction exists to exploit), and the
    /// harvested statuses still match the scalar loop entry for entry.
    #[test]
    fn queue_matches_scalar_under_early_termination(
        pairs in vec((operand(8), operand(8)), 1..16),
        threshold_bits in 1u64..200,
        w in prop_oneof![Just(1usize), Just(4), Just(8)],
        cfg in compaction_cfg(),
    ) {
        check_queue(&pairs, w, Termination::Early { threshold_bits }, cfg);
    }

    /// Queue mode on β>0-forcing shapes: the serialized divergent fixups
    /// interleave with compaction boundaries and still match the scalar
    /// loop.
    #[test]
    fn queue_matches_scalar_on_beta_positive_shapes(
        pairs in vec((operand(12), operand(2)), 1..12),
        w in prop_oneof![Just(2usize), Just(8)],
        cfg in compaction_cfg(),
    ) {
        check_queue(&pairs, w, Termination::Full, cfg);
    }
}

/// Pipeline-level finding equivalence: plain lockstep, compacted lockstep,
/// and the auto selector all land on the scalar pipeline's findings, byte
/// for byte, on corpora with planted shared primes.
#[test]
fn compacted_and_auto_backends_match_scalar_findings() {
    for bits in [128u64, 512] {
        let mut rng = StdRng::seed_from_u64(0xc0ffee ^ bits);
        let moduli = build_corpus(&mut rng, 24, bits, 2).moduli();
        let arena = ModuliArena::try_from_moduli(&moduli).expect("non-degenerate corpus");
        let reference = ScanPipeline::new(&arena)
            .run()
            .expect("scalar scan")
            .scan
            .findings;
        assert!(!reference.is_empty(), "corpus plants shared primes");
        for backend in [Backend::Lockstep, Backend::LockstepCompact, Backend::Auto] {
            let got = ScanPipeline::new(&arena)
                .backend(backend)
                .launch_pairs(32)
                .run()
                .expect("backend scan")
                .scan
                .findings;
            assert_eq!(
                got, reference,
                "{backend:?} findings diverge at {bits} bits"
            );
        }
    }
}

/// The metrics layer surfaces queue-mode occupancy and compaction/refill
/// events; plain fixed warps report occupancy but no events.
#[test]
fn compaction_metrics_surface_occupancy_and_events() {
    let mut rng = StdRng::seed_from_u64(0x0cc);
    let moduli = build_corpus(&mut rng, 32, 128, 2).moduli();
    let arena = ModuliArena::try_from_moduli(&moduli).expect("non-degenerate corpus");
    let run_with = |backend: LockstepBackend| {
        ScanPipeline::new(&arena)
            .backend(backend)
            .launch_pairs(64)
            .metrics()
            .run()
            .expect("lockstep scan")
            .metrics
            .expect("metrics layer collects")
    };
    let compacted = run_with(LockstepBackend::new(8).with_compaction(CompactionConfig::default()));
    let occ = compacted
        .mean_occupancy()
        .expect("lockstep scans report occupancy");
    assert!(occ > 0.0 && occ <= 1.0, "occupancy {occ} out of range");
    assert!(
        compacted.total_refills() > 0,
        "64-pair launches through an 8-wide queue must refill"
    );
    let plain = run_with(LockstepBackend::new(8));
    assert!(plain.mean_occupancy().is_some());
    assert_eq!(plain.total_compactions(), 0, "plain warps never compact");
    assert_eq!(plain.total_refills(), 0, "plain warps never refill");
}

/// β>0 really occurs on the unbalanced corpus — the proptest above is
/// exercising the divergent path, not vacuously passing.
#[test]
fn unbalanced_corpus_does_hit_beta_positive() {
    let a: Vec<Limb> = (0..12)
        .map(|i| 0x9e37_79b9u32.wrapping_mul(i + 1) | 1)
        .collect();
    let b: Vec<Limb> = vec![0xdead_beef, 0x3];
    let mut pair = GcdPair::with_capacity(12);
    pair.load_from_limbs(&a, &b);
    let mut probe = IterProbe::default();
    run_in_place(
        Algorithm::Approximate,
        &mut pair,
        Termination::Full,
        &mut probe,
    );
    assert!(
        probe
            .iters
            .iter()
            .any(|d| d.kind == StepKind::ApproxBetaPositive),
        "corpus shape must trigger at least one β>0 iteration"
    );
}

/// Trace-replay model of one warp: run each pair through the scalar loop
/// with an [`IterProbe`], then price the recorded lanes with
/// [`execute_warp`] — the path `simulate_bulk_gcd` takes.
fn modeled_warp(
    warp: &[(Vec<Limb>, Vec<Limb>)],
    term: Termination,
    cost: &CostModel,
    words_per_transaction: u64,
) -> WarpWork {
    let mut lanes: Vec<Vec<IterDesc>> = Vec::with_capacity(warp.len());
    let mut pair = GcdPair::with_capacity(1);
    for (a, b) in warp {
        pair.load_from_limbs(a, b);
        let mut probe = IterProbe::default();
        run_in_place(Algorithm::Approximate, &mut pair, term, &mut probe);
        lanes.push(probe.iters);
    }
    execute_warp(&lanes, cost, words_per_transaction)
}

/// Modeled vs measured: the engine's live-execution [`WarpWork`] equals
/// the trace-replay model's bitwise, warp for warp, on a seeded corpus
/// that mixes uniform RSA moduli with unbalanced β>0-triggering pairs.
#[test]
fn measured_warp_work_matches_trace_model_bitwise() {
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();
    let words_per_transaction = device.transaction_bytes / 4;

    let mut rng = StdRng::seed_from_u64(0xb01d_face);
    let corpus = build_corpus(&mut rng, 12, 256, 2);
    let moduli = corpus.moduli();
    let mut pairs: Vec<(Vec<Limb>, Vec<Limb>)> = Vec::new();
    for i in 0..moduli.len() {
        for j in (i + 1)..moduli.len() {
            pairs.push((moduli[i].as_limbs().to_vec(), moduli[j].as_limbs().to_vec()));
        }
    }
    // Unbalanced pairs salted in so some warps mix β=0 and β>0 kinds in
    // the same iteration — the divergence the model must price.
    for k in 0..8u32 {
        let wide: Vec<Limb> = (0..10)
            .map(|i| (0x85eb_ca6bu32).wrapping_mul(i + k + 1) | 1)
            .collect();
        pairs.push((wide, vec![0x1234_5601u32.wrapping_add(k << 3), k + 1]));
    }

    for term in [
        Termination::Full,
        Termination::Early {
            threshold_bits: 128,
        },
    ] {
        let mut engine = LockstepEngine::new(device.warp_size);
        let mut divergent_seen = 0u64;
        for (wi, warp) in pairs.chunks(device.warp_size).enumerate() {
            let inputs: Vec<(&[Limb], &[Limb])> = warp
                .iter()
                .map(|(a, b)| (a.as_slice(), b.as_slice()))
                .collect();
            let measured = engine
                .run_warp(&inputs, term, Some((&cost, words_per_transaction)))
                .expect("measurement requested");
            let modeled = modeled_warp(warp, term, &cost, words_per_transaction);
            assert_eq!(
                measured.divergent_iterations, modeled.divergent_iterations,
                "warp {wi}: divergent iterations"
            );
            assert_eq!(measured, modeled, "warp {wi}: full WarpWork");
            assert_eq!(
                measured.warp_instructions.to_bits(),
                modeled.warp_instructions.to_bits(),
                "warp {wi}: instruction f64 must be bitwise identical"
            );
            divergent_seen += measured.divergent_iterations;
        }
        // Early termination retires the unbalanced lanes before their β>0
        // iterations, so only the full run is required to diverge.
        if term == Termination::Full {
            assert!(
                divergent_seen > 0,
                "corpus must produce at least one divergent iteration"
            );
        }
    }
}
