//! Golden-value pins for the legacy `scan_*` shims.
//!
//! Every legacy entry point is now a thin deprecated shim over
//! [`ScanPipeline`]. These tests pin each shim's `ScanReport` — findings
//! (indices, kinds, factors), pair counts, and the *bit pattern* of the
//! simulated-seconds sum — to golden values captured from the pre-refactor
//! implementations on a fixed seeded corpus. A pipeline change that
//! perturbs launch batching, warp alignment, merge order, or the
//! measured-WarpWork pricing path shows up here as a flipped f64 bit.
// analyze: allow-file(deprecated-shim, reason = "this suite exists to pin the deprecated shims' golden values until their removal")
#![allow(deprecated)]

use bulkgcd_bigint::Nat;
use bulkgcd_bulk::{
    scan_cpu, scan_cpu_arena, scan_gpu_sim, scan_gpu_sim_arena, scan_gpu_sim_resumable,
    scan_gpu_sim_serial, scan_lockstep, scan_lockstep_arena, FaultPlan, FindingKind, GpuSimBackend,
    ModuliArena, ScanJournal, ScanPipeline, ScanReport,
};
use bulkgcd_core::Algorithm;
use bulkgcd_gpu::{CostModel, DeviceConfig, RetryPolicy};
use bulkgcd_rsa::build_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pinned corpus: 12 moduli of 128 bits with 3 planted shared-prime
/// pairs (seed 0xfeed), plus a planted duplicate of modulus 4 — 13 moduli,
/// 78 unordered pairs.
fn pinned_moduli() -> Vec<Nat> {
    let mut rng = StdRng::seed_from_u64(0xfeed);
    let corpus = build_corpus(&mut rng, 12, 128, 3);
    let mut moduli = corpus.moduli();
    let dup = moduli[4].clone();
    moduli.push(dup);
    moduli
}

/// Golden findings captured from the pre-refactor scan functions:
/// `(i, j, kind, factor-hex)` in (i, j) order.
const GOLDEN_FINDINGS: &[(usize, usize, FindingKind, &str)] = &[
    (0, 2, FindingKind::SharedPrime, "ddd59759e3e4a305"),
    (
        4,
        12,
        FindingKind::DuplicateModulus,
        "ab706e625f7666cd9cc59861f34d1def",
    ),
    (5, 8, FindingKind::SharedPrime, "fae3bc404a832b41"),
    (6, 7, FindingKind::SharedPrime, "f513b2f5303a970f"),
];

const GOLDEN_PAIRS: u64 = 78;
const GOLDEN_DUPLICATES: u64 = 1;

/// Bit pattern of the simulated-seconds sum for every GPU-sim path at
/// `launch_pairs = 7` on the pinned corpus.
const GOLDEN_GPU_SIM_BITS: u64 = 0x3f033455fba865da;

/// Bit pattern of the simulated-seconds sum for the faulted resumable run
/// (`with_transient(1, 2).with_persistent(3)`): launch 3 falls back to the
/// CPU and contributes no device seconds.
const GOLDEN_FAULTED_BITS: u64 = 0x3f01af2848558114;

fn assert_pinned(rep: &ScanReport, simulated_bits: Option<u64>, label: &str) {
    assert_eq!(rep.pairs_scanned, GOLDEN_PAIRS, "{label}: pairs_scanned");
    assert_eq!(
        rep.duplicate_pairs, GOLDEN_DUPLICATES,
        "{label}: duplicate_pairs"
    );
    assert_eq!(
        rep.findings.len(),
        GOLDEN_FINDINGS.len(),
        "{label}: finding count"
    );
    for (f, &(i, j, kind, hex)) in rep.findings.iter().zip(GOLDEN_FINDINGS) {
        assert_eq!((f.i, f.j), (i, j), "{label}: finding indices");
        assert_eq!(f.kind, kind, "{label}: finding kind for ({i},{j})");
        assert_eq!(f.factor.to_hex(), hex, "{label}: factor for ({i},{j})");
    }
    assert_eq!(
        rep.simulated_seconds.map(f64::to_bits),
        simulated_bits,
        "{label}: simulated_seconds bit pattern"
    );
}

#[test]
fn scan_cpu_pins() {
    let moduli = pinned_moduli();
    let rep = scan_cpu(&moduli, Algorithm::Approximate, true).unwrap();
    assert_pinned(&rep, None, "scan_cpu");
    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
    let rep = scan_cpu_arena(&arena, Algorithm::Approximate, true);
    assert_pinned(&rep, None, "scan_cpu_arena");
}

#[test]
fn scan_lockstep_pins() {
    let moduli = pinned_moduli();
    let rep = scan_lockstep(&moduli, true, 8).unwrap();
    assert_pinned(&rep, None, "scan_lockstep");
    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
    let rep = scan_lockstep_arena(&arena, true, 8);
    assert_pinned(&rep, None, "scan_lockstep_arena");
}

#[test]
fn scan_gpu_sim_pins() {
    let moduli = pinned_moduli();
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();
    let rep = scan_gpu_sim(&moduli, Algorithm::Approximate, true, &device, &cost, 7).unwrap();
    assert_pinned(&rep, Some(GOLDEN_GPU_SIM_BITS), "scan_gpu_sim");
    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
    let rep = scan_gpu_sim_arena(&arena, Algorithm::Approximate, true, &device, &cost, 7);
    assert_pinned(&rep, Some(GOLDEN_GPU_SIM_BITS), "scan_gpu_sim_arena");
    let rep =
        scan_gpu_sim_serial(&moduli, Algorithm::Approximate, true, &device, &cost, 7).unwrap();
    assert_pinned(&rep, Some(GOLDEN_GPU_SIM_BITS), "scan_gpu_sim_serial");
}

#[test]
fn scan_gpu_sim_resumable_pins() {
    let moduli = pinned_moduli();
    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();

    // Fault-free: identical to the plain GPU scan, 12 launches, no retries.
    let mut journal = ScanJournal::in_memory();
    let rep = scan_gpu_sim_resumable(
        &arena,
        Algorithm::Approximate,
        true,
        &device,
        &cost,
        7,
        &mut journal,
        &FaultPlan::none(),
        &RetryPolicy::default(),
    )
    .unwrap();
    assert_pinned(
        &rep.scan,
        Some(GOLDEN_GPU_SIM_BITS),
        "scan_gpu_sim_resumable",
    );
    assert_eq!(rep.stats.total_launches, 12);
    assert_eq!(rep.stats.resumed_launches, 0);
    assert_eq!(rep.stats.executed_launches, 12);
    assert_eq!(rep.stats.retried_attempts, 0);
    assert_eq!(rep.stats.cpu_fallback_launches, 0);

    // Faulted: transient retries change nothing, the persistent launch
    // falls back to the CPU and drops its device seconds from the sum.
    let plan = FaultPlan::none().with_transient(1, 2).with_persistent(3);
    let mut journal = ScanJournal::in_memory();
    let rep = scan_gpu_sim_resumable(
        &arena,
        Algorithm::Approximate,
        true,
        &device,
        &cost,
        7,
        &mut journal,
        &plan,
        &RetryPolicy::default(),
    )
    .unwrap();
    assert_pinned(
        &rep.scan,
        Some(GOLDEN_FAULTED_BITS),
        "scan_gpu_sim_resumable (faulted)",
    );
    assert_eq!(rep.stats.retried_attempts, 2);
    assert_eq!(rep.stats.cpu_fallback_launches, 1);
}

/// The builder path and the shim path execute the same launches: the
/// per-launch WarpWork the metrics layer measures must sum to the same
/// simulated clock, bit for bit.
#[test]
fn builder_metrics_agree_with_shim_clock() {
    let moduli = pinned_moduli();
    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
    let rep = ScanPipeline::new(&arena)
        .backend(GpuSimBackend {
            device: DeviceConfig::gtx_780_ti(),
            cost: CostModel::default(),
        })
        .launch_pairs(7)
        .metrics()
        .run()
        .unwrap();
    assert_pinned(&rep.scan, Some(GOLDEN_GPU_SIM_BITS), "builder gpu-sim");
    let metrics = rep.metrics.unwrap();
    assert_eq!(metrics.total_launches, 12);
    assert_eq!(
        metrics.total_simulated_seconds().map(f64::to_bits),
        Some(GOLDEN_GPU_SIM_BITS),
        "per-launch metrics must sum to the pinned clock"
    );
    assert!(metrics.total_warps() > 0);
    assert!(metrics.total_warp_instructions() > 0.0);
    assert!(metrics.total_mem_transactions() > 0);
}
