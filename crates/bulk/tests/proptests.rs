//! Property tests for the orchestration layer: exact pair coverage for
//! arbitrary grid shapes, batch-GCD vs a pairwise oracle on arbitrary
//! composite sets, and incremental-index consistency.

use bulkgcd_bigint::Nat;
use bulkgcd_bulk::{
    batch_gcd, CorpusIndex, FaultPlan, GpuSimBackend, GroupedPairs, ModuliArena, ScanError,
    ScanJournal, ScanPipeline,
};
use bulkgcd_core::Algorithm;
use bulkgcd_gpu::{CostModel, DeviceConfig, RetryPolicy};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashSet;

/// Small odd primes for building composite moduli cheaply.
const SMALL_PRIMES: &[u32] = &[
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179,
];

fn composite() -> impl Strategy<Value = Nat> {
    (0..SMALL_PRIMES.len(), 0..SMALL_PRIMES.len())
        .prop_map(|(i, j)| Nat::from(SMALL_PRIMES[i]).mul(&Nat::from(SMALL_PRIMES[j])))
}

proptest! {
    #[test]
    fn grid_covers_every_pair_exactly_once(groups in 1usize..=8, r in 1usize..=8) {
        let m = groups * r;
        let grid = GroupedPairs::new(m, r);
        let mut seen = HashSet::new();
        for (a, b) in grid.all_pairs() {
            prop_assert!(a < b && b < m);
            prop_assert!(seen.insert((a, b)), "duplicate ({a},{b})");
        }
        prop_assert_eq!(seen.len() as u64, grid.total_pairs());
    }

    #[test]
    fn thread_workloads_match_kernel_spec(groups in 1usize..=6, r in 1usize..=6) {
        let grid = GroupedPairs::new(groups * r, r);
        for b in grid.blocks() {
            for k in 0..r {
                let pairs = grid.thread_pairs(b, k);
                if b.i < b.j {
                    prop_assert_eq!(pairs.len(), r);
                } else {
                    prop_assert_eq!(pairs.len(), r - 1 - k);
                }
            }
        }
    }

    #[test]
    fn batch_gcd_matches_pairwise_oracle(moduli in vec(composite(), 2..12)) {
        let batch = batch_gcd(&moduli);
        for (i, ni) in moduli.iter().enumerate() {
            // Oracle: gcd of n_i with the product of all the others equals
            // gcd(n_i, prod mod n_i). Build it straightforwardly.
            let mut prod_others = Nat::one();
            for (j, nj) in moduli.iter().enumerate() {
                if i != j {
                    prod_others = prod_others.mul(nj);
                }
            }
            let expect = ni.gcd_reference(&prod_others.rem(ni));
            // batch_gcd defines the duplicate case as gcd(n, 0) = n.
            let expect = if prod_others.rem(ni).is_zero() { ni.clone() } else { expect };
            prop_assert_eq!(&batch[i], &expect, "modulus {}", i);
        }
    }

    #[test]
    fn incremental_index_agrees_with_direct_product(
        corpus in vec(composite(), 1..10), candidate in composite()
    ) {
        let idx = CorpusIndex::from_moduli(&corpus).unwrap();
        let got = idx.shared_factor(&candidate).unwrap();
        let mut prod = Nat::one();
        for n in &corpus {
            prod = prod.mul(n);
        }
        let r = prod.rem(&candidate);
        let expect = if r.is_zero() {
            candidate.clone()
        } else {
            r.gcd_reference(&candidate)
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn check_and_insert_is_order_consistent(moduli in vec(composite(), 2..8)) {
        // Streaming the corpus yields, at each step, the shared factor
        // against the prefix — which must agree with a fresh index over
        // that prefix.
        let mut idx = CorpusIndex::new();
        for (i, n) in moduli.iter().enumerate() {
            let fresh = CorpusIndex::from_moduli(&moduli[..i]).unwrap();
            prop_assert_eq!(
                idx.check_and_insert(n).unwrap(),
                fresh.shared_factor(n).unwrap(),
                "step {}",
                i
            );
        }
    }

    #[test]
    fn resume_after_any_prefix_matches_uninterrupted_run(
        moduli in vec(composite(), 2..10),
        launch_pairs in 1usize..8,
        kill_pick in 0u64..1000,
    ) {
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let policy = RetryPolicy::no_retries();
        let algo = Algorithm::Approximate;
        let scan = |journal: &mut ScanJournal, plan: &FaultPlan| {
            ScanPipeline::new(&arena)
                .algorithm(algo)
                .backend(GpuSimBackend {
                    device: device.clone(),
                    cost: cost.clone(),
                })
                .launch_pairs(launch_pairs)
                .journal(journal)
                .faults(plan)
                .retry(policy)
                .run()
        };

        // Uninterrupted baseline.
        let mut clean_journal = ScanJournal::in_memory();
        let base = scan(&mut clean_journal, &FaultPlan::none()).unwrap();

        // Kill the scan at an arbitrary launch boundary (any prefix of the
        // launch sequence may have committed), then resume.
        let total = (moduli.len() * (moduli.len() - 1) / 2) as u64;
        let launches = total.div_ceil(launch_pairs as u64);
        let kill = kill_pick % launches;
        let mut journal = ScanJournal::in_memory();
        match scan(&mut journal, &FaultPlan::none().with_kill(kill)) {
            Err(ScanError::Interrupted { launch }) => prop_assert_eq!(launch, kill),
            other => prop_assert!(false, "expected an interrupted scan, got {:?}", other.is_ok()),
        }
        prop_assert!(!journal.is_done());
        let resumed = scan(&mut journal, &FaultPlan::none()).unwrap();
        prop_assert!(journal.is_done());

        // Byte-identical findings and simulated cost, and the resumed run
        // really did restore the committed prefix instead of redoing it.
        prop_assert_eq!(&resumed.scan.findings, &base.scan.findings);
        prop_assert_eq!(resumed.scan.pairs_scanned, base.scan.pairs_scanned);
        prop_assert_eq!(resumed.scan.duplicate_pairs, base.scan.duplicate_pairs);
        prop_assert_eq!(
            resumed.scan.simulated_seconds.map(f64::to_bits),
            base.scan.simulated_seconds.map(f64::to_bits)
        );
        prop_assert_eq!(resumed.stats.resumed_launches, kill);
        prop_assert_eq!(
            resumed.stats.resumed_launches + resumed.stats.executed_launches,
            launches
        );
    }
}
