//! Property and scenario tests for the `shard` subsystem: sharded scans —
//! including ones whose workers die, tear their journals, lose leases, or
//! report twice — must merge bitwise identical to the uninterrupted
//! unsharded run.

use bulkgcd_bigint::Nat;
use bulkgcd_bulk::shard::{run_sharded, ShardConfig, TilePlan};
use bulkgcd_bulk::{
    FindingKind, GpuSimBackend, ModuliArena, ScanPipeline, ScanReport, ShardFaultPlan,
};
use bulkgcd_core::Algorithm;
use bulkgcd_gpu::{CostModel, DeviceConfig};
use proptest::collection::vec;
use proptest::prelude::*;

/// Small odd primes for building composite moduli cheaply.
const SMALL_PRIMES: &[u32] = &[
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179,
];

fn composite() -> impl Strategy<Value = Nat> {
    (0..SMALL_PRIMES.len(), 0..SMALL_PRIMES.len())
        .prop_map(|(i, j)| Nat::from(SMALL_PRIMES[i]).mul(&Nat::from(SMALL_PRIMES[j])))
}

fn backend() -> GpuSimBackend {
    GpuSimBackend {
        device: DeviceConfig::gtx_780_ti(),
        cost: CostModel::default(),
    }
}

/// The unsharded reference: the plain pipeline over the same corpus with
/// the same launch width.
fn unsharded(arena: &ModuliArena, launch_pairs: usize) -> ScanReport {
    ScanPipeline::new(arena)
        .algorithm(Algorithm::Approximate)
        .backend(backend())
        .launch_pairs(launch_pairs)
        .run()
        .expect("unsharded reference scan")
        .scan
}

#[track_caller]
fn assert_bitwise_equal(got: &ScanReport, want: &ScanReport) {
    assert_eq!(got.findings, want.findings);
    assert_eq!(got.pairs_scanned, want.pairs_scanned);
    assert_eq!(got.duplicate_pairs, want.duplicate_pairs);
    assert_eq!(
        got.simulated_seconds.map(f64::to_bits),
        want.simulated_seconds.map(f64::to_bits),
        "simulated-seconds f64 sum must match bit for bit"
    );
}

proptest! {
    /// The acceptance property: random corpus, random shard count, random
    /// seeded shard-fault schedule (worker deaths at random launch
    /// offsets, torn journals, lease losses, duplicate completions) —
    /// the killed-and-resumed sharded scan merges bitwise equal to the
    /// uninterrupted unsharded run.
    #[test]
    fn faulty_sharded_scan_merges_bitwise_equal_to_unsharded(
        moduli in vec(composite(), 2..10),
        launch_pairs in 1usize..8,
        shards in 1usize..6,
        fault_seed in any::<u64>(),
    ) {
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        let base = unsharded(&arena, launch_pairs);

        let plan = TilePlan::new(moduli.len(), launch_pairs, shards);
        let faults = ShardFaultPlan::seeded(fault_seed, plan.len() as u64);
        let config = ShardConfig {
            serial: true,
            ..ShardConfig::new(shards, launch_pairs)
        };
        let sharded = run_sharded(&arena, &config, &faults, backend).unwrap();

        assert_bitwise_equal(&sharded.scan, &base);
        // Every launch was either executed by some incarnation or restored
        // from a predecessor's journal; deaths forced extra attempts.
        prop_assert!(sharded.stats.executed_launches >= plan.launches());
        prop_assert!(
            sharded.stats.worker_attempts as usize >= plan.len(),
            "each tile takes at least one attempt"
        );
        prop_assert_eq!(
            sharded.coordinator.reclaimed_leases,
            sharded.stats.worker_deaths + sharded.stats.lease_losses,
            "every death and lease loss is recovered by exactly one reclaim"
        );
    }

    /// Fault-free sharding also preserves the per-launch work metrics:
    /// warps, warp instructions, memory transactions, and lane iterations
    /// are identical row by row to the unsharded serial pipeline.
    #[test]
    fn fault_free_sharded_metrics_match_unsharded(
        moduli in vec(composite(), 2..8),
        launch_pairs in 1usize..6,
        shards in 1usize..5,
    ) {
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        let base = ScanPipeline::new(&arena)
            .algorithm(Algorithm::Approximate)
            .backend(backend())
            .launch_pairs(launch_pairs)
            .serial(true)
            .metrics()
            .run()
            .unwrap();

        let config = ShardConfig {
            serial: true,
            collect_metrics: true,
            ..ShardConfig::new(shards, launch_pairs)
        };
        let sharded =
            run_sharded(&arena, &config, &ShardFaultPlan::none(), backend).unwrap();

        assert_bitwise_equal(&sharded.scan, &base.scan);
        let base_rows = &base.metrics.as_ref().unwrap().launches;
        let shard_rows = &sharded.metrics.as_ref().unwrap().launches;
        prop_assert_eq!(base_rows.len(), shard_rows.len());
        for (b, s) in base_rows.iter().zip(shard_rows) {
            prop_assert_eq!(b.launch, s.launch);
            prop_assert_eq!(b.lanes, s.lanes);
            prop_assert_eq!(b.warps, s.warps);
            prop_assert_eq!(b.warp_instructions.to_bits(), s.warp_instructions.to_bits());
            prop_assert_eq!(b.mem_transactions, s.mem_transactions);
            prop_assert_eq!(b.lane_iterations, s.lane_iterations);
            prop_assert_eq!(
                b.simulated_seconds.map(f64::to_bits),
                s.simulated_seconds.map(f64::to_bits)
            );
        }
    }
}

/// Cross-shard duplicate handling: a duplicated modulus whose pairs land
/// in different tiles yields exactly one `DuplicateModulus` finding per
/// duplicated pair in the merged report — and a tile completed twice
/// (duplicate completion) must not double-count anything.
#[test]
fn duplicate_modulus_across_tiles_appears_once_in_merged_report() {
    // 8 moduli, two of them byte-identical and far apart in index order so
    // the duplicate pair's launch sits away from tile 0.
    let dup = Nat::from(101u32).mul(&Nat::from(103u32));
    let mut moduli: Vec<Nat> = (0..6)
        .map(|k| Nat::from(SMALL_PRIMES[k]).mul(&Nat::from(SMALL_PRIMES[k + 6])))
        .collect();
    moduli.insert(0, dup.clone());
    moduli.push(dup);
    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();

    // launch_pairs=1 so each pair is its own launch and tiles cut between
    // pairs; 4 shards puts the (0, 7) duplicate pair in a late tile.
    let launch_pairs = 1;
    let base = unsharded(&arena, launch_pairs);
    assert_eq!(base.duplicate_pairs, 1, "the planted duplicate");

    let plan = TilePlan::new(moduli.len(), launch_pairs, 4);
    assert!(plan.len() >= 2, "test needs a real multi-tile plan");
    // Complete every tile twice over: each tile's first completion is
    // accepted, the re-submission is fingerprint-matched and discarded.
    let mut faults = ShardFaultPlan::none();
    for tile in 0..plan.len() as u64 {
        faults = faults.with_duplicate_completion(tile);
    }
    let config = ShardConfig {
        serial: true,
        ..ShardConfig::new(4, launch_pairs)
    };
    let sharded = run_sharded(&arena, &config, &faults, backend).unwrap();

    assert_bitwise_equal(&sharded.scan, &base);
    assert_eq!(sharded.scan.duplicate_pairs, 1);
    assert_eq!(
        sharded
            .scan
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::DuplicateModulus)
            .count(),
        1,
        "duplicate completions must not duplicate findings"
    );
    assert_eq!(sharded.stats.duplicate_completions, plan.len() as u64);
    assert_eq!(sharded.coordinator.duplicate_completions, plan.len() as u64);
}

/// Host-crash recovery: a directory-backed sharded run whose workers died
/// mid-tile leaves a ledger and per-shard journals on disk; re-running
/// over the same directory replays them, finds every tile complete, and
/// reproduces the report without executing a single launch.
#[test]
fn directory_backed_run_resumes_from_ledger_without_rework() {
    let moduli: Vec<Nat> = (0..7)
        .map(|k| Nat::from(SMALL_PRIMES[k]).mul(&Nat::from(SMALL_PRIMES[k + 7])))
        .collect();
    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
    let launch_pairs = 2;
    let base = unsharded(&arena, launch_pairs);

    let dir = std::env::temp_dir().join(format!("bulkgcd-shard-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ShardConfig {
        serial: true,
        dir: Some(dir.clone()),
        ..ShardConfig::new(3, launch_pairs)
    };
    // Every tile's first worker dies mid-tile; tile 1 additionally tears
    // its journal's final line.
    let faults = ShardFaultPlan::none()
        .with_worker_death(0, 1)
        .with_torn_journal(1, 0)
        .with_worker_death(2, 0);
    let first = run_sharded(&arena, &config, &faults, backend).unwrap();
    assert_bitwise_equal(&first.scan, &base);
    assert_eq!(first.stats.worker_deaths, 3);
    assert_eq!(first.stats.torn_journals, 1);
    assert!(first.stats.resumed_launches > 0, "resumes restored work");

    // Second invocation over the same directory: the "restarted host".
    let second = run_sharded(&arena, &config, &ShardFaultPlan::none(), backend).unwrap();
    assert_bitwise_equal(&second.scan, &base);
    assert_eq!(second.stats.worker_attempts, 0, "nothing left to do");
    assert_eq!(second.stats.executed_launches, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A degenerate corpus (fewer than two moduli) shards to an empty plan
/// and an empty — but well-formed — report.
#[test]
fn degenerate_corpus_yields_empty_sharded_report() {
    let moduli = [Nat::from(101u32).mul(&Nat::from(103u32))];
    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
    let config = ShardConfig {
        serial: true,
        ..ShardConfig::new(4, 8)
    };
    let report = run_sharded(&arena, &config, &ShardFaultPlan::none(), backend).unwrap();
    assert!(report.scan.findings.is_empty());
    assert_eq!(report.scan.pairs_scanned, 0);
    assert_eq!(report.stats.tiles, 0);
    assert_eq!(
        report.scan.simulated_seconds.map(f64::to_bits),
        Some(0f64.to_bits())
    );
}
