//! The paper's all-pairs decomposition (§VI).
//!
//! `m` moduli are split into `m/r` groups of `r`; CUDA block `(i, j)` with
//! `r` threads covers the cross product of group `i` and group `j`. Blocks
//! with `i > j` terminate immediately; diagonal blocks `(i, i)` cover the
//! strict upper triangle within the group. Together the `(m/r)²` blocks
//! cover all `m(m−1)/2` unordered pairs exactly once.

/// Pick the group size `r` for an `m`-modulus corpus: the largest power of
/// two ≤ 64 (the paper's `r = 64` threads per block) that divides `m`,
/// falling back to 1 for indivisible (e.g. prime) corpus sizes.
///
/// `m = 0` returns 1 — every `r` divides 0, but a degenerate corpus gets
/// the degenerate decomposition, not 64 empty groups.
pub fn group_size_for(m: usize) -> usize {
    if m == 0 {
        return 1;
    }
    (0..=6)
        .rev()
        .map(|k| 1usize << k)
        .find(|r| m.is_multiple_of(*r))
        .unwrap_or(1)
}

/// The group/block decomposition for `m` moduli in groups of `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupedPairs {
    /// Number of moduli.
    pub m: usize,
    /// Group size `r` (threads per block).
    pub r: usize,
}

/// A block of the §VI grid, identified by its group coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId {
    /// Row group index.
    pub i: usize,
    /// Column group index.
    pub j: usize,
}

impl GroupedPairs {
    /// Create a decomposition. `r` must divide `m` (pad the modulus list to
    /// a multiple of `r` if necessary, as a real launch would).
    pub fn new(m: usize, r: usize) -> Self {
        assert!(r >= 1, "group size must be positive");
        assert!(
            m.is_multiple_of(r),
            "paper's decomposition needs r | m (pad the corpus)"
        );
        GroupedPairs { m, r }
    }

    /// Number of groups `m/r`.
    pub fn groups(&self) -> usize {
        self.m / self.r
    }

    /// All non-trivial blocks (`i <= j`; blocks with `i > j` exit at once
    /// and are not enumerated).
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        let g = self.groups();
        (0..g).flat_map(move |i| (i..g).map(move |j| BlockId { i, j }))
    }

    /// Total number of unordered pairs `m(m−1)/2`.
    pub fn total_pairs(&self) -> u64 {
        let m = self.m as u64;
        m * (m - 1) / 2
    }

    /// The (global-index) pairs covered by thread `k` of block `b`, in the
    /// order the paper's kernel visits them — as a non-allocating iterator
    /// (the scan hot loops enumerate pairs through this).
    pub fn thread_pair_iter(&self, b: BlockId, k: usize) -> impl Iterator<Item = (usize, usize)> {
        assert!(k < self.r);
        let ik = b.i * self.r + k;
        let (base, range) = if b.i < b.j {
            (b.j * self.r, 0..self.r)
        } else if b.i == b.j {
            (b.i * self.r, k + 1..self.r)
        } else {
            (0, 0..0) // blocks below the diagonal exit at once
        };
        range.map(move |u| (ik, base + u))
    }

    /// The pairs of thread `k` of block `b`, collected (allocating
    /// convenience over [`thread_pair_iter`](Self::thread_pair_iter)).
    pub fn thread_pairs(&self, b: BlockId, k: usize) -> Vec<(usize, usize)> {
        self.thread_pair_iter(b, k).collect()
    }

    /// All pairs covered by block `b` (all `r` threads), as a
    /// non-allocating iterator.
    pub fn block_pair_iter(&self, b: BlockId) -> impl Iterator<Item = (usize, usize)> {
        let grid = *self;
        (0..self.r).flat_map(move |k| grid.thread_pair_iter(b, k))
    }

    /// All pairs covered by block `b`, collected (allocating convenience
    /// over [`block_pair_iter`](Self::block_pair_iter)).
    pub fn block_pairs(&self, b: BlockId) -> Vec<(usize, usize)> {
        self.block_pair_iter(b).collect()
    }

    /// Every unordered pair, enumerated block by block (the §VI schedule).
    pub fn all_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let grid = *self;
        self.blocks().flat_map(move |b| grid.block_pair_iter(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn covers_all_pairs_exactly_once() {
        for (m, r) in [(8, 2), (12, 3), (16, 4), (6, 6), (10, 1)] {
            let g = GroupedPairs::new(m, r);
            let mut seen = HashSet::new();
            for (a, b) in g.all_pairs() {
                assert!(a < b, "pairs are ordered (a < b): ({a},{b})");
                assert!(b < m);
                assert!(seen.insert((a, b)), "duplicate pair ({a},{b}) m={m} r={r}");
            }
            assert_eq!(seen.len() as u64, g.total_pairs(), "m={m} r={r}");
        }
    }

    #[test]
    fn off_diagonal_block_is_full_cross_product() {
        let g = GroupedPairs::new(8, 2);
        let pairs = g.block_pairs(BlockId { i: 0, j: 2 });
        assert_eq!(pairs.len(), 4);
        assert!(pairs.contains(&(0, 4)));
        assert!(pairs.contains(&(1, 5)));
    }

    #[test]
    fn diagonal_block_is_strict_upper_triangle() {
        let g = GroupedPairs::new(8, 4);
        let pairs = g.block_pairs(BlockId { i: 1, j: 1 });
        assert_eq!(pairs.len(), 4 * 3 / 2);
        for (a, b) in pairs {
            assert!((4..8).contains(&a) && (4..8).contains(&b) && a < b);
        }
    }

    #[test]
    fn thread_pair_counts_match_paper_kernel() {
        let g = GroupedPairs::new(16, 4);
        // Off-diagonal: every thread computes r GCDs.
        for k in 0..4 {
            assert_eq!(g.thread_pairs(BlockId { i: 0, j: 1 }, k).len(), 4);
        }
        // Diagonal: thread k computes r-1-k GCDs.
        for k in 0..4 {
            assert_eq!(g.thread_pairs(BlockId { i: 2, j: 2 }, k).len(), 3 - k);
        }
    }

    #[test]
    fn block_count_is_upper_triangle_of_groups() {
        let g = GroupedPairs::new(12, 3);
        assert_eq!(g.groups(), 4);
        assert_eq!(g.blocks().count(), 4 * 5 / 2);
    }

    #[test]
    #[should_panic(expected = "r | m")]
    fn indivisible_m_rejected() {
        let _ = GroupedPairs::new(10, 3);
    }

    #[test]
    fn group_size_degenerate_corpora() {
        assert_eq!(group_size_for(0), 1);
        assert_eq!(group_size_for(1), 1);
    }

    #[test]
    fn group_size_prime_m_falls_back_to_one_or_two() {
        // Odd primes share no factor with any power of two.
        for m in [3usize, 7, 13, 97, 1009] {
            assert_eq!(group_size_for(m), 1, "m={m}");
        }
        // 2 is prime but itself a power of two.
        assert_eq!(group_size_for(2), 2);
    }

    #[test]
    fn group_size_multiples_of_64_use_paper_r() {
        for m in [64usize, 128, 192, 4096, 64 * 1000] {
            assert_eq!(group_size_for(m), 64, "m={m}");
        }
    }

    #[test]
    fn group_size_is_largest_dividing_power_of_two() {
        assert_eq!(group_size_for(96), 32); // 96 = 2^5 · 3
        assert_eq!(group_size_for(12), 4);
        assert_eq!(group_size_for(10), 2);
        assert_eq!(group_size_for(6), 2);
        for m in 1..200usize {
            let r = group_size_for(m);
            assert!(
                r.is_power_of_two() && r <= 64 && m.is_multiple_of(r),
                "m={m} r={r}"
            );
            // maximality among powers of two ≤ 64
            for k in 0..=6 {
                let cand = 1usize << k;
                if cand > r {
                    assert!(!m.is_multiple_of(cand), "m={m}: {cand} also divides");
                }
            }
        }
    }

    mod coverage_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// §VI correctness, for arbitrary grid shapes: `all_pairs` and
            /// the union of `block_pair_iter` over every block are the same
            /// multiset, and that multiset is each unordered pair `(a, b)`,
            /// `a < b < m`, exactly once.
            #[test]
            fn all_pairs_and_block_union_cover_exactly_once(
                groups in 1usize..=10,
                r in 1usize..=10,
            ) {
                let m = groups * r;
                let grid = GroupedPairs::new(m, r);

                let mut from_all = HashSet::new();
                for (a, b) in grid.all_pairs() {
                    prop_assert!(a < b && b < m, "out-of-range pair ({a},{b})");
                    prop_assert!(from_all.insert((a, b)), "all_pairs duplicate ({a},{b})");
                }

                let mut from_blocks = HashSet::new();
                for blk in grid.blocks() {
                    for (a, b) in grid.block_pair_iter(blk) {
                        prop_assert!(
                            from_blocks.insert((a, b)),
                            "block union duplicate ({a},{b}) in {blk:?}"
                        );
                    }
                }

                prop_assert_eq!(&from_all, &from_blocks);
                prop_assert_eq!(from_all.len() as u64, grid.total_pairs());
                // Nothing missing: count equality plus no-duplicates over the
                // right range pins the set to the full upper triangle.
                for a in 0..m {
                    for b in (a + 1)..m {
                        prop_assert!(from_all.contains(&(a, b)), "missing ({a},{b})");
                    }
                }
            }
        }
    }

    #[test]
    fn pair_iterators_match_collected_forms() {
        let g = GroupedPairs::new(12, 4);
        for b in g.blocks() {
            assert_eq!(g.block_pair_iter(b).collect::<Vec<_>>(), g.block_pairs(b));
            for k in 0..g.r {
                assert_eq!(
                    g.thread_pair_iter(b, k).collect::<Vec<_>>(),
                    g.thread_pairs(b, k)
                );
            }
        }
        // Below-diagonal blocks cover nothing.
        assert_eq!(g.block_pair_iter(BlockId { i: 2, j: 0 }).count(), 0);
    }
}
