//! The paper's all-pairs decomposition (§VI).
//!
//! `m` moduli are split into `m/r` groups of `r`; CUDA block `(i, j)` with
//! `r` threads covers the cross product of group `i` and group `j`. Blocks
//! with `i > j` terminate immediately; diagonal blocks `(i, i)` cover the
//! strict upper triangle within the group. Together the `(m/r)²` blocks
//! cover all `m(m−1)/2` unordered pairs exactly once.

/// The group/block decomposition for `m` moduli in groups of `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupedPairs {
    /// Number of moduli.
    pub m: usize,
    /// Group size `r` (threads per block).
    pub r: usize,
}

/// A block of the §VI grid, identified by its group coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId {
    /// Row group index.
    pub i: usize,
    /// Column group index.
    pub j: usize,
}

impl GroupedPairs {
    /// Create a decomposition. `r` must divide `m` (pad the modulus list to
    /// a multiple of `r` if necessary, as a real launch would).
    pub fn new(m: usize, r: usize) -> Self {
        assert!(r >= 1, "group size must be positive");
        assert!(m.is_multiple_of(r), "paper's decomposition needs r | m (pad the corpus)");
        GroupedPairs { m, r }
    }

    /// Number of groups `m/r`.
    pub fn groups(&self) -> usize {
        self.m / self.r
    }

    /// All non-trivial blocks (`i <= j`; blocks with `i > j` exit at once
    /// and are not enumerated).
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        let g = self.groups();
        (0..g).flat_map(move |i| (i..g).map(move |j| BlockId { i, j }))
    }

    /// Total number of unordered pairs `m(m−1)/2`.
    pub fn total_pairs(&self) -> u64 {
        let m = self.m as u64;
        m * (m - 1) / 2
    }

    /// The (global-index) pairs covered by thread `k` of block `b`, in the
    /// order the paper's kernel visits them.
    pub fn thread_pairs(&self, b: BlockId, k: usize) -> Vec<(usize, usize)> {
        assert!(k < self.r);
        let ik = b.i * self.r + k;
        let mut out = Vec::new();
        if b.i < b.j {
            for u in 0..self.r {
                out.push((ik, b.j * self.r + u));
            }
        } else if b.i == b.j {
            for u in k + 1..self.r {
                out.push((ik, b.i * self.r + u));
            }
        }
        out
    }

    /// All pairs covered by block `b` (all `r` threads).
    pub fn block_pairs(&self, b: BlockId) -> Vec<(usize, usize)> {
        (0..self.r)
            .flat_map(|k| self.thread_pairs(b, k))
            .collect()
    }

    /// Every unordered pair, enumerated block by block (the §VI schedule).
    pub fn all_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.blocks().flat_map(move |b| self.block_pairs(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn covers_all_pairs_exactly_once() {
        for (m, r) in [(8, 2), (12, 3), (16, 4), (6, 6), (10, 1)] {
            let g = GroupedPairs::new(m, r);
            let mut seen = HashSet::new();
            for (a, b) in g.all_pairs() {
                assert!(a < b, "pairs are ordered (a < b): ({a},{b})");
                assert!(b < m);
                assert!(seen.insert((a, b)), "duplicate pair ({a},{b}) m={m} r={r}");
            }
            assert_eq!(seen.len() as u64, g.total_pairs(), "m={m} r={r}");
        }
    }

    #[test]
    fn off_diagonal_block_is_full_cross_product() {
        let g = GroupedPairs::new(8, 2);
        let pairs = g.block_pairs(BlockId { i: 0, j: 2 });
        assert_eq!(pairs.len(), 4);
        assert!(pairs.contains(&(0, 4)));
        assert!(pairs.contains(&(1, 5)));
    }

    #[test]
    fn diagonal_block_is_strict_upper_triangle() {
        let g = GroupedPairs::new(8, 4);
        let pairs = g.block_pairs(BlockId { i: 1, j: 1 });
        assert_eq!(pairs.len(), 4 * 3 / 2);
        for (a, b) in pairs {
            assert!((4..8).contains(&a) && (4..8).contains(&b) && a < b);
        }
    }

    #[test]
    fn thread_pair_counts_match_paper_kernel() {
        let g = GroupedPairs::new(16, 4);
        // Off-diagonal: every thread computes r GCDs.
        for k in 0..4 {
            assert_eq!(g.thread_pairs(BlockId { i: 0, j: 1 }, k).len(), 4);
        }
        // Diagonal: thread k computes r-1-k GCDs.
        for k in 0..4 {
            assert_eq!(g.thread_pairs(BlockId { i: 2, j: 2 }, k).len(), 3 - k);
        }
    }

    #[test]
    fn block_count_is_upper_triangle_of_groups() {
        let g = GroupedPairs::new(12, 3);
        assert_eq!(g.groups(), 4);
        assert_eq!(g.blocks().count(), 4 * 5 / 2);
    }

    #[test]
    #[should_panic(expected = "r | m")]
    fn indivisible_m_rejected() {
        let _ = GroupedPairs::new(10, 3);
    }
}
