//! [`ModuliArena`]: the whole corpus in one contiguous limb buffer.
//!
//! An all-pairs scan reads every modulus `m − 1` times; materialising each
//! read as an owned [`Nat`] clone (the previous design) put a heap
//! allocation on the hot path per pair. The arena instead stores all `m`
//! moduli in a single `Vec<u32>` at a fixed stride (the widest modulus,
//! high-zero padded) and hands out borrowed limb slices, so loading a pair
//! into a [`GcdPair`](bulkgcd_core::GcdPair) workspace copies limbs but
//! never allocates.
//!
//! The backing buffer is **row-wise** in the sense of paper Fig. 3
//! ([`Layout::RowWise`]): modulus `j`'s limb `i` lives at `j · stride + i`,
//! the natural host layout for handing out per-modulus slices. For a
//! device-style upload the arena can also emit the paper's **column-wise**
//! arrangement (`i · m + j`, [`Layout::ColumnWise`]), the coalescing-friendly
//! ordering of `bulkgcd_umm`.

use bulkgcd_bigint::{Limb, Nat};
use bulkgcd_umm::Layout;

/// A corpus of moduli packed into one fixed-stride limb buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuliArena {
    /// Row-wise backing store: modulus `j` at `j * stride .. (j + 1) * stride`.
    limbs: Vec<Limb>,
    /// Limbs per modulus (width of the widest modulus, at least 1).
    stride: usize,
    /// Number of moduli.
    m: usize,
    /// Cached significant-bit counts, one per modulus (drives the §V
    /// early-termination threshold without touching the limb data).
    bit_lens: Vec<u64>,
}

impl ModuliArena {
    /// Pack `moduli` into a fresh arena. The stride is the limb count of
    /// the widest modulus (minimum 1); narrower moduli are high-zero padded.
    pub fn from_moduli(moduli: &[Nat]) -> Self {
        let stride = moduli.iter().map(Nat::len).max().unwrap_or(0).max(1);
        let mut limbs = vec![0 as Limb; moduli.len() * stride];
        for (row, n) in limbs.chunks_exact_mut(stride).zip(moduli) {
            row[..n.len()].copy_from_slice(n.as_limbs());
        }
        ModuliArena {
            limbs,
            stride,
            m: moduli.len(),
            bit_lens: moduli.iter().map(Nat::bit_len).collect(),
        }
    }

    /// Number of moduli.
    #[inline]
    pub fn len(&self) -> usize {
        self.m
    }

    /// True when the arena holds no moduli.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Limbs per modulus row (fixed for the whole corpus).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Modulus `i` as a borrowed little-endian limb slice of exactly
    /// [`stride`](Self::stride) limbs (high-zero padded).
    #[inline]
    pub fn limbs(&self, i: usize) -> &[Limb] {
        &self.limbs[i * self.stride..(i + 1) * self.stride]
    }

    /// Significant bits of modulus `i` (cached at construction).
    #[inline]
    pub fn bit_len(&self, i: usize) -> u64 {
        self.bit_lens[i]
    }

    /// Rebuild modulus `i` as an owned [`Nat`] (allocates; for findings and
    /// interop, not for the scan hot loop).
    pub fn nat(&self, i: usize) -> Nat {
        Nat::from_limb_slice(self.limbs(i))
    }

    /// The whole row-wise backing buffer (`m · stride` limbs).
    #[inline]
    pub fn as_limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// The corpus re-arranged column-wise (paper Fig. 3): limb `i` of
    /// modulus `j` at address `i · m + j`, the coalescing-friendly ordering
    /// a real device upload would use. Allocates a fresh buffer.
    pub fn column_wise(&self) -> Vec<Limb> {
        let mut out = vec![0 as Limb; self.limbs.len()];
        for j in 0..self.m {
            let row = self.limbs(j);
            for (i, &w) in row.iter().enumerate() {
                out[Layout::ColumnWise.address(j, i, self.m, self.stride)] = w;
            }
        }
        out
    }

    /// Limb `offset` of modulus `thread` under `layout`, addressed exactly
    /// as [`Layout::address`] with `p = m`, `n_words = stride`. Row-wise
    /// reads hit the backing buffer directly; column-wise answers what the
    /// transposed upload of [`column_wise`](Self::column_wise) would hold
    /// at that address's logical coordinates.
    #[inline]
    pub fn limb_at(&self, layout: Layout, thread: usize, offset: usize) -> Limb {
        match layout {
            Layout::RowWise => {
                self.limbs[Layout::RowWise.address(thread, offset, self.m, self.stride)]
            }
            // Same value, different physical address: the arena stores
            // row-wise, so resolve the logical coordinates directly.
            Layout::ColumnWise => self.limbs(thread)[offset],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::ops;

    fn nat(v: u128) -> Nat {
        Nat::from_u128(v)
    }

    #[test]
    fn roundtrips_moduli_of_mixed_widths() {
        let moduli = vec![
            nat(0xffff_ffff_ffff_ffff_ffff_ffff), // 3 limbs
            nat(5),                               // 1 limb
            Nat::zero(),                          // 0 limbs
            nat(1u128 << 100),                    // 4 limbs
        ];
        let arena = ModuliArena::from_moduli(&moduli);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.stride(), 4);
        for (i, n) in moduli.iter().enumerate() {
            assert_eq!(&arena.nat(i), n, "modulus {i}");
            assert_eq!(arena.bit_len(i), n.bit_len(), "modulus {i}");
            assert_eq!(arena.limbs(i).len(), 4);
            assert_eq!(ops::normalized_len(arena.limbs(i)), n.len());
        }
    }

    #[test]
    fn empty_arena() {
        let arena = ModuliArena::from_moduli(&[]);
        assert!(arena.is_empty());
        assert_eq!(arena.stride(), 1);
        assert!(arena.as_limbs().is_empty());
        assert!(arena.column_wise().is_empty());
    }

    #[test]
    fn row_wise_backing_matches_layout_addressing() {
        let moduli = vec![nat(0x1_0000_0002), nat(3), nat(0xdead_beef_cafe)];
        let arena = ModuliArena::from_moduli(&moduli);
        for j in 0..arena.len() {
            for i in 0..arena.stride() {
                let addr = Layout::RowWise.address(j, i, arena.len(), arena.stride());
                assert_eq!(arena.as_limbs()[addr], arena.limbs(j)[i]);
                assert_eq!(arena.limb_at(Layout::RowWise, j, i), arena.limbs(j)[i]);
            }
        }
    }

    #[test]
    fn column_wise_is_fig3_transpose() {
        let moduli = vec![nat(0x1111_2222_3333), nat(0x4444_5555_6666), nat(7)];
        let arena = ModuliArena::from_moduli(&moduli);
        let col = arena.column_wise();
        assert_eq!(col.len(), arena.as_limbs().len());
        for j in 0..arena.len() {
            for i in 0..arena.stride() {
                assert_eq!(
                    col[Layout::ColumnWise.address(j, i, arena.len(), arena.stride())],
                    arena.limbs(j)[i],
                    "modulus {j} limb {i}"
                );
                assert_eq!(arena.limb_at(Layout::ColumnWise, j, i), arena.limbs(j)[i]);
            }
        }
    }

    #[test]
    fn borrowed_slices_load_into_gcd_pair() {
        use bulkgcd_core::{run_in_place, Algorithm, GcdPair, GcdStatus, NoProbe, Termination};
        let p = 0xffff_fffbu128;
        let moduli = vec![nat(p * 4_294_967_311), nat(p * 4_294_967_357)];
        let arena = ModuliArena::from_moduli(&moduli);
        let mut pair = GcdPair::with_capacity(arena.stride());
        pair.load_from_limbs(arena.limbs(0), arena.limbs(1));
        let status = run_in_place(
            Algorithm::Approximate,
            &mut pair,
            Termination::Full,
            &mut NoProbe,
        );
        assert_eq!(status, GcdStatus::Done);
        assert_eq!(pair.x_nat(), nat(p));
    }
}
