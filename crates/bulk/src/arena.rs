//! [`ModuliArena`]: the whole corpus in one contiguous limb buffer.
//!
//! An all-pairs scan reads every modulus `m − 1` times; materialising each
//! read as an owned [`Nat`] clone (the previous design) put a heap
//! allocation on the hot path per pair. The arena instead stores all `m`
//! moduli in a single `Vec<u32>` at a fixed stride (the widest modulus,
//! high-zero padded) and hands out borrowed limb slices, so loading a pair
//! into a [`GcdPair`](bulkgcd_core::GcdPair) workspace copies limbs but
//! never allocates.
//!
//! The backing buffer is **row-wise** in the sense of paper Fig. 3
//! ([`Layout::RowWise`]): modulus `j`'s limb `i` lives at `j · stride + i`,
//! the natural host layout for handing out per-modulus slices. For a
//! device-style upload the arena can also emit the paper's **column-wise**
//! arrangement (`i · m + j`, [`Layout::ColumnWise`]), the coalescing-friendly
//! ordering of `bulkgcd_umm`.

use bulkgcd_bigint::{ops, Limb, Nat};
use bulkgcd_umm::Layout;
use std::fmt;
use std::sync::OnceLock;

/// Why a [`ModuliArena`] could not be built from a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaError {
    /// The corpus holds no moduli at all — there is nothing to scan, and a
    /// degenerate arena would only defer the surprise to the scan layer.
    EmptyCorpus,
    /// `moduli × stride` limbs exceed what one contiguous buffer may hold.
    WidthOverflow {
        /// Number of moduli in the corpus.
        moduli: usize,
        /// Limbs per modulus (width of the widest modulus).
        stride: usize,
        /// The limit that was exceeded.
        max_limbs: usize,
    },
}

impl fmt::Display for ArenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaError::EmptyCorpus => write!(f, "corpus holds no moduli"),
            ArenaError::WidthOverflow {
                moduli,
                stride,
                max_limbs,
            } => write!(
                f,
                "corpus does not fit one arena: {moduli} moduli x {stride} limbs \
                 exceeds {max_limbs} limbs"
            ),
        }
    }
}

impl std::error::Error for ArenaError {}

/// A corpus of moduli packed into one fixed-stride limb buffer.
#[derive(Debug)]
pub struct ModuliArena {
    /// Row-wise backing store: modulus `j` at `j * stride .. (j + 1) * stride`.
    limbs: Vec<Limb>,
    /// Limbs per modulus (width of the widest modulus, at least 1).
    stride: usize,
    /// Number of moduli.
    m: usize,
    /// Cached significant-bit counts, one per modulus (drives the §V
    /// early-termination threshold without touching the limb data).
    bit_lens: Vec<u64>,
    /// Lazily built column-wise transpose of the backing store, shared by
    /// every [`column_wise`](Self::column_wise) caller. Invalidated (taken)
    /// by [`set_modulus`](Self::set_modulus).
    columns: OnceLock<Vec<Limb>>,
}

// The column cache is a derived view: two arenas holding the same corpus
// are equal whether or not either has materialised it, and a clone starts
// with a cold cache instead of duplicating the transpose.
impl Clone for ModuliArena {
    fn clone(&self) -> Self {
        ModuliArena {
            limbs: self.limbs.clone(),
            stride: self.stride,
            m: self.m,
            bit_lens: self.bit_lens.clone(),
            columns: OnceLock::new(),
        }
    }
}

impl PartialEq for ModuliArena {
    fn eq(&self, other: &Self) -> bool {
        self.limbs == other.limbs
            && self.stride == other.stride
            && self.m == other.m
            && self.bit_lens == other.bit_lens
    }
}

impl Eq for ModuliArena {}

impl ModuliArena {
    /// The most limbs one arena buffer may hold (the allocator's hard
    /// ceiling for a single contiguous allocation).
    pub const MAX_TOTAL_LIMBS: usize = isize::MAX as usize / std::mem::size_of::<Limb>();

    /// Pack `moduli` into a fresh arena. The stride is the limb count of
    /// the widest modulus (minimum 1); narrower moduli are high-zero padded.
    ///
    /// Fails with [`ArenaError::EmptyCorpus`] for an empty slice and
    /// [`ArenaError::WidthOverflow`] when `moduli.len() × stride` would
    /// exceed a single allocation ([`Self::MAX_TOTAL_LIMBS`]).
    pub fn try_from_moduli(moduli: &[Nat]) -> Result<Self, ArenaError> {
        Self::try_from_moduli_capped(moduli, Self::MAX_TOTAL_LIMBS)
    }

    /// [`try_from_moduli`](Self::try_from_moduli) with an explicit limb
    /// budget — the overflow guard made testable (and a hook for callers
    /// that want to bound scan memory below the allocator's ceiling).
    pub fn try_from_moduli_capped(
        moduli: &[Nat],
        max_total_limbs: usize,
    ) -> Result<Self, ArenaError> {
        if moduli.is_empty() {
            return Err(ArenaError::EmptyCorpus);
        }
        let stride = moduli.iter().map(Nat::len).max().unwrap_or(0).max(1);
        let total = moduli
            .len()
            .checked_mul(stride)
            .filter(|&t| t <= max_total_limbs)
            .ok_or(ArenaError::WidthOverflow {
                moduli: moduli.len(),
                stride,
                max_limbs: max_total_limbs,
            })?;
        let mut limbs = vec![0 as Limb; total];
        for (row, n) in limbs.chunks_exact_mut(stride).zip(moduli) {
            row[..n.len()].copy_from_slice(n.as_limbs());
        }
        Ok(ModuliArena {
            limbs,
            stride,
            m: moduli.len(),
            bit_lens: moduli.iter().map(Nat::bit_len).collect(),
            columns: OnceLock::new(),
        })
    }

    /// Number of moduli.
    #[inline]
    pub fn len(&self) -> usize {
        self.m
    }

    /// True when the arena holds no moduli.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Limbs per modulus row (fixed for the whole corpus).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Modulus `i` as a borrowed little-endian limb slice of exactly
    /// [`stride`](Self::stride) limbs (high-zero padded).
    #[inline]
    pub fn limbs(&self, i: usize) -> &[Limb] {
        &self.limbs[i * self.stride..(i + 1) * self.stride]
    }

    /// Modulus `i` with high-zero padding trimmed: the slice a canonical
    /// [`Nat`] of the same value would hold. Lets the scan compare a GCD
    /// against a modulus (the duplicate-modulus check) without allocating.
    #[inline]
    pub fn limbs_trimmed(&self, i: usize) -> &[Limb] {
        let row = self.limbs(i);
        &row[..ops::normalized_len(row)]
    }

    /// Significant bits of modulus `i` (cached at construction).
    #[inline]
    pub fn bit_len(&self, i: usize) -> u64 {
        self.bit_lens[i]
    }

    /// Rebuild modulus `i` as an owned [`Nat`] (allocates; for findings and
    /// interop, not for the scan hot loop).
    pub fn nat(&self, i: usize) -> Nat {
        Nat::from_limb_slice(self.limbs(i))
    }

    /// The whole row-wise backing buffer (`m · stride` limbs).
    #[inline]
    pub fn as_limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// The corpus re-arranged column-wise (paper Fig. 3): limb `i` of
    /// modulus `j` at address `i · m + j`, the coalescing-friendly ordering
    /// a real device upload would use.
    ///
    /// The transpose is built **once** on first call and cached; later
    /// calls borrow the same buffer (no per-call allocation — the simulated
    /// upload path may ask for it per launch). Mutating the arena through
    /// [`set_modulus`](Self::set_modulus) invalidates the cache.
    pub fn column_wise(&self) -> &[Limb] {
        self.columns.get_or_init(|| {
            let mut out = vec![0 as Limb; self.limbs.len()];
            for j in 0..self.m {
                let row = self.limbs(j);
                for (i, &w) in row.iter().enumerate() {
                    out[Layout::ColumnWise.address(j, i, self.m, self.stride)] = w;
                }
            }
            out
        })
    }

    /// Replace modulus `i` with `n` in place (high-zero padding the row),
    /// invalidating the cached column-wise transpose so the next
    /// [`column_wise`](Self::column_wise) call rebuilds it from the new
    /// contents.
    ///
    /// # Panics
    ///
    /// If `i` is out of range or `n` is wider than the arena's
    /// [`stride`](Self::stride) (the stride is fixed at construction).
    pub fn set_modulus(&mut self, i: usize, n: &Nat) {
        assert!(
            n.len() <= self.stride,
            "modulus of {} limbs does not fit stride {}",
            n.len(),
            self.stride
        );
        let row = &mut self.limbs[i * self.stride..(i + 1) * self.stride];
        row[..n.len()].copy_from_slice(n.as_limbs());
        row[n.len()..].fill(0);
        self.bit_lens[i] = n.bit_len();
        self.columns.take();
    }

    /// Limb `offset` of modulus `thread` under `layout`, addressed exactly
    /// as [`Layout::address`] with `p = m`, `n_words = stride`. Row-wise
    /// reads hit the backing buffer directly; column-wise answers what the
    /// transposed upload of [`column_wise`](Self::column_wise) would hold
    /// at that address's logical coordinates.
    #[inline]
    pub fn limb_at(&self, layout: Layout, thread: usize, offset: usize) -> Limb {
        match layout {
            Layout::RowWise => {
                self.limbs[Layout::RowWise.address(thread, offset, self.m, self.stride)]
            }
            // Same value, different physical address: the arena stores
            // row-wise, so resolve the logical coordinates directly.
            Layout::ColumnWise => self.limbs(thread)[offset],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::ops;

    fn nat(v: u128) -> Nat {
        Nat::from_u128(v)
    }

    #[test]
    fn roundtrips_moduli_of_mixed_widths() {
        let moduli = vec![
            nat(0xffff_ffff_ffff_ffff_ffff_ffff), // 3 limbs
            nat(5),                               // 1 limb
            Nat::zero(),                          // 0 limbs
            nat(1u128 << 100),                    // 4 limbs
        ];
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.stride(), 4);
        for (i, n) in moduli.iter().enumerate() {
            assert_eq!(&arena.nat(i), n, "modulus {i}");
            assert_eq!(arena.bit_len(i), n.bit_len(), "modulus {i}");
            assert_eq!(arena.limbs(i).len(), 4);
            assert_eq!(ops::normalized_len(arena.limbs(i)), n.len());
        }
    }

    #[test]
    fn empty_corpus_is_rejected() {
        assert_eq!(
            ModuliArena::try_from_moduli(&[]).unwrap_err(),
            ArenaError::EmptyCorpus
        );
    }

    #[test]
    fn oversized_corpus_is_rejected() {
        // Two 3-limb moduli need 6 limbs; a 5-limb budget must refuse
        // rather than assert or abort on allocation.
        let moduli = vec![nat(1u128 << 80), nat(3)];
        let err = ModuliArena::try_from_moduli_capped(&moduli, 5).unwrap_err();
        assert_eq!(
            err,
            ArenaError::WidthOverflow {
                moduli: 2,
                stride: 3,
                max_limbs: 5
            }
        );
        assert!(err.to_string().contains("does not fit"));
        // The same corpus fits the real ceiling.
        assert!(ModuliArena::try_from_moduli(&moduli).is_ok());
    }

    #[test]
    fn trimmed_limbs_drop_padding_only() {
        let moduli = vec![nat(1u128 << 80), nat(3), Nat::zero()];
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        for (i, n) in moduli.iter().enumerate() {
            assert_eq!(arena.limbs_trimmed(i), n.as_limbs(), "modulus {i}");
        }
    }

    #[test]
    fn row_wise_backing_matches_layout_addressing() {
        let moduli = vec![nat(0x1_0000_0002), nat(3), nat(0xdead_beef_cafe)];
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        for j in 0..arena.len() {
            for i in 0..arena.stride() {
                let addr = Layout::RowWise.address(j, i, arena.len(), arena.stride());
                assert_eq!(arena.as_limbs()[addr], arena.limbs(j)[i]);
                assert_eq!(arena.limb_at(Layout::RowWise, j, i), arena.limbs(j)[i]);
            }
        }
    }

    #[test]
    fn column_wise_is_fig3_transpose() {
        let moduli = vec![nat(0x1111_2222_3333), nat(0x4444_5555_6666), nat(7)];
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        let col = arena.column_wise();
        assert_eq!(col.len(), arena.as_limbs().len());
        for j in 0..arena.len() {
            for i in 0..arena.stride() {
                assert_eq!(
                    col[Layout::ColumnWise.address(j, i, arena.len(), arena.stride())],
                    arena.limbs(j)[i],
                    "modulus {j} limb {i}"
                );
                assert_eq!(arena.limb_at(Layout::ColumnWise, j, i), arena.limbs(j)[i]);
            }
        }
    }

    #[test]
    fn column_wise_cache_is_stable_and_invalidated_on_mutation() {
        let moduli = vec![nat(0x1111_2222_3333), nat(0x4444_5555_6666), nat(7)];
        let mut arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        // Two calls borrow the same cached buffer.
        let first = arena.column_wise().as_ptr();
        let second = arena.column_wise().as_ptr();
        assert_eq!(first, second, "second call must reuse the cached buffer");

        // Mutation invalidates: the rebuilt transpose reflects the new row.
        let replacement = nat(0x9999_8888_7777);
        arena.set_modulus(1, &replacement);
        assert_eq!(arena.nat(1), replacement);
        assert_eq!(arena.bit_len(1), replacement.bit_len());
        let col = arena.column_wise();
        for i in 0..arena.stride() {
            assert_eq!(
                col[Layout::ColumnWise.address(1, i, arena.len(), arena.stride())],
                arena.limbs(1)[i],
                "limb {i} after set_modulus"
            );
        }

        // Shrinking a row re-pads the high limbs with zeros.
        arena.set_modulus(1, &nat(5));
        assert_eq!(arena.nat(1), nat(5));
        assert_eq!(ops::normalized_len(arena.limbs(1)), 1);
    }

    #[test]
    fn clone_and_eq_ignore_the_column_cache() {
        let moduli = vec![nat(0xabcd_ef01), nat(0x1234)];
        let a = ModuliArena::try_from_moduli(&moduli).unwrap();
        let _ = a.column_wise(); // warm a's cache
        let b = a.clone();
        assert_eq!(a, b, "cache state must not affect equality");
        assert_eq!(a.column_wise(), b.column_wise());
    }

    #[test]
    #[should_panic(expected = "does not fit stride")]
    fn set_modulus_refuses_wider_than_stride() {
        let mut arena = ModuliArena::try_from_moduli(&[nat(5), nat(7)]).unwrap();
        arena.set_modulus(0, &nat(1u128 << 100));
    }

    #[test]
    fn borrowed_slices_load_into_gcd_pair() {
        use bulkgcd_core::{run_in_place, Algorithm, GcdPair, GcdStatus, NoProbe, Termination};
        let p = 0xffff_fffbu128;
        let moduli = vec![nat(p * 4_294_967_311), nat(p * 4_294_967_357)];
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        let mut pair = GcdPair::with_capacity(arena.stride());
        pair.load_from_limbs(arena.limbs(0), arena.limbs(1));
        let status = run_in_place(
            Algorithm::Approximate,
            &mut pair,
            Termination::Full,
            &mut NoProbe,
        );
        assert_eq!(status, GcdStatus::Done);
        assert_eq!(pair.x_nat(), nat(p));
    }
}
