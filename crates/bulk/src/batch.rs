//! The batch-GCD baseline (product tree + remainder tree).
//!
//! This is the attack the literature already had when the paper was written
//! (Heninger et al. / Lenstra et al., implemented by tools like `fastgcd`):
//! instead of `m(m−1)/2` pairwise GCDs it computes, for every modulus,
//! `gcd(n_i, (P mod n_i²)/n_i)` with `P = Π n_j` — quasi-linear in `m` at
//! the price of multi-million-bit multiplications. Implemented here as the
//! comparison baseline the repository's benchmarks pit the paper's
//! pairwise GPU approach against.

use bulkgcd_bigint::Nat;
use rayon::prelude::*;

/// A bottom-up product tree: `levels[0]` are the inputs, each higher level
/// holds pairwise products, `levels.last()` is `[Π inputs]`.
#[derive(Debug, Clone)]
pub struct ProductTree {
    /// Tree levels, leaves first.
    pub levels: Vec<Vec<Nat>>,
}

impl ProductTree {
    /// Build the tree. Empty input yields a single level `[1]`... no:
    /// empty input is rejected (no meaningful product).
    pub fn build(moduli: &[Nat]) -> ProductTree {
        assert!(!moduli.is_empty(), "product tree of nothing");
        let mut prev = moduli.to_vec();
        let mut levels = Vec::new();
        while prev.len() > 1 {
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for chunk in prev.chunks(2) {
                match chunk {
                    [a, b] => next.push(a.mul(b)),
                    [a] => next.push(a.clone()),
                    _ => unreachable!(),
                }
            }
            levels.push(prev);
            prev = next;
        }
        levels.push(prev);
        ProductTree { levels }
    }

    /// The root product `Π n_i`.
    pub fn root(&self) -> &Nat {
        // build() always ends with a single-entry root level.
        &self.levels[self.levels.len() - 1][0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True when the tree has no leaves (never: build rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.levels[0].is_empty()
    }
}

/// For every modulus, compute `gcd(n_i, (P mod n_i²) / n_i)` by descending
/// a remainder tree. The result is > 1 exactly for moduli sharing a prime
/// with some other modulus (or appearing twice).
///
/// ```
/// use bulkgcd_bigint::Nat;
/// use bulkgcd_bulk::batch_gcd;
///
/// let moduli = vec![
///     Nat::from_u64(101 * 211),
///     Nat::from_u64(101 * 223), // shares 101 with the first
///     Nat::from_u64(103 * 227), // clean
/// ];
/// let g = batch_gcd(&moduli);
/// assert_eq!(g[0], Nat::from_u64(101));
/// assert_eq!(g[1], Nat::from_u64(101));
/// assert!(g[2].is_one());
/// ```
pub fn batch_gcd(moduli: &[Nat]) -> Vec<Nat> {
    if moduli.len() < 2 {
        return moduli.iter().map(|_| Nat::one()).collect();
    }
    let tree = ProductTree::build(moduli);
    // Remainder tree, top down: rem[v] = root mod node[v]^2.
    let mut rems: Vec<Nat> = vec![tree.root().clone()];
    for level in (0..tree.levels.len() - 1).rev() {
        let nodes = &tree.levels[level];
        let mut next = Vec::with_capacity(nodes.len());
        for (idx, node) in nodes.iter().enumerate() {
            let parent = &rems[idx / 2];
            next.push(parent.rem(&node.square()));
        }
        rems = next;
    }
    moduli
        .iter()
        .zip(&rems)
        .map(|(n, z)| {
            let (q, r) = z.div_rem(n);
            debug_assert!(r.is_zero(), "P mod n^2 is a multiple of n");
            q.gcd_reference(n)
        })
        .collect()
}

/// Parallel [`batch_gcd`]: same computation with every tree level mapped
/// across the rayon pool. The level-by-level data dependence is inherent
/// (each remainder needs its parent), but levels are wide near the leaves
/// — exactly where the squarings are numerous.
pub fn batch_gcd_parallel(moduli: &[Nat]) -> Vec<Nat> {
    if moduli.len() < 2 {
        return moduli.iter().map(|_| Nat::one()).collect();
    }
    // Product tree, parallel within each level.
    let mut prev = moduli.to_vec();
    let mut levels = Vec::new();
    while prev.len() > 1 {
        let next: Vec<Nat> = prev
            .par_chunks(2)
            .map(|chunk| match chunk {
                [a, b] => a.mul(b),
                [a] => a.clone(),
                _ => unreachable!(),
            })
            .collect();
        levels.push(prev);
        prev = next;
    }
    // prev is now the single-entry root level.
    let mut rems: Vec<Nat> = prev.clone();
    levels.push(prev);
    for level in (0..levels.len() - 1).rev() {
        let nodes = &levels[level];
        rems = nodes
            .par_iter()
            .enumerate()
            .map(|(idx, node)| rems[idx / 2].rem(&node.square()))
            .collect();
    }
    moduli
        .par_iter()
        .zip(&rems)
        .map(|(n, z)| {
            let (q, r) = z.div_rem(n);
            debug_assert!(r.is_zero());
            q.gcd_reference(n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::prime::random_rsa_prime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nat(v: u128) -> Nat {
        Nat::from_u128(v)
    }

    #[test]
    fn product_tree_root_is_product() {
        let xs = [3u128, 5, 7, 11, 13];
        let t = ProductTree::build(&xs.map(nat));
        assert_eq!(t.root(), &nat(3 * 5 * 7 * 11 * 13));
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn product_tree_single_leaf() {
        let t = ProductTree::build(&[nat(42)]);
        assert_eq!(t.root(), &nat(42));
        assert_eq!(t.levels.len(), 1);
    }

    #[test]
    fn batch_gcd_finds_shared_primes() {
        // n0 and n2 share 101; n1 and n3 share 103; n4 is clean.
        let moduli = [
            nat(101 * 211),
            nat(103 * 223),
            nat(101 * 227),
            nat(103 * 229),
            nat(233 * 239),
        ];
        let g = batch_gcd(&moduli);
        assert_eq!(g[0], nat(101));
        assert_eq!(g[1], nat(103));
        assert_eq!(g[2], nat(101));
        assert_eq!(g[3], nat(103));
        assert_eq!(g[4], Nat::one());
    }

    #[test]
    fn batch_gcd_clean_corpus_all_ones() {
        let moduli = [nat(101 * 211), nat(103 * 223), nat(107 * 227)];
        assert!(batch_gcd(&moduli).iter().all(|g| g.is_one()));
    }

    #[test]
    fn batch_gcd_duplicate_modulus_reports_modulus() {
        let n = nat(101 * 211);
        let g = batch_gcd(&[n.clone(), n.clone(), nat(103 * 223)]);
        assert_eq!(g[0], n);
        assert_eq!(g[1], n);
        assert!(g[2].is_one());
    }

    #[test]
    fn batch_gcd_degenerate_sizes() {
        assert!(batch_gcd(&[]).is_empty());
        assert_eq!(batch_gcd(&[nat(15)]), vec![Nat::one()]);
    }

    #[test]
    fn batch_gcd_matches_pairwise_on_rsa_corpus() {
        let mut rng = StdRng::seed_from_u64(1);
        let p_shared = random_rsa_prime(&mut rng, 64);
        let mut moduli: Vec<Nat> = (0..6)
            .map(|_| random_rsa_prime(&mut rng, 64).mul(&random_rsa_prime(&mut rng, 64)))
            .collect();
        moduli.push(p_shared.mul(&random_rsa_prime(&mut rng, 64)));
        moduli.push(p_shared.mul(&random_rsa_prime(&mut rng, 64)));
        let batch = batch_gcd(&moduli);
        // Pairwise oracle.
        for (i, ni) in moduli.iter().enumerate() {
            let mut expect = Nat::one();
            for (j, nj) in moduli.iter().enumerate() {
                if i != j {
                    let g = ni.gcd_reference(nj);
                    if !g.is_one() {
                        expect = g;
                    }
                }
            }
            assert_eq!(batch[i], expect, "modulus {i}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(5);
        let shared = random_rsa_prime(&mut rng, 48);
        let mut moduli: Vec<Nat> = (0..9)
            .map(|_| random_rsa_prime(&mut rng, 48).mul(&random_rsa_prime(&mut rng, 48)))
            .collect();
        moduli.push(shared.mul(&random_rsa_prime(&mut rng, 48)));
        moduli.push(shared.mul(&random_rsa_prime(&mut rng, 48)));
        assert_eq!(batch_gcd_parallel(&moduli), batch_gcd(&moduli));
        assert_eq!(batch_gcd_parallel(&[]), batch_gcd(&[]));
        assert_eq!(batch_gcd_parallel(&[nat(15)]), batch_gcd(&[nat(15)]));
    }

    #[test]
    fn odd_level_sizes_handled() {
        // 7 leaves exercises the unpaired-node carry at two levels.
        let moduli: Vec<Nat> = [3u128, 5, 7, 11, 13, 17, 19].map(nat).to_vec();
        let t = ProductTree::build(&moduli);
        assert_eq!(t.root(), &nat(3 * 5 * 7 * 11 * 13 * 17 * 19));
        let g = batch_gcd(&moduli);
        assert!(g.iter().all(|x| x.is_one()));
    }
}
