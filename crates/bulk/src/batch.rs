//! The batch-GCD baseline (product tree + remainder tree).
//!
//! This is the attack the literature already had when the paper was written
//! (Heninger et al. / Lenstra et al., implemented by tools like `fastgcd`):
//! instead of `m(m−1)/2` pairwise GCDs it computes, for every modulus,
//! `gcd(n_i, (P mod n_i²)/n_i)` with `P = Π n_j` — quasi-linear in `m` at
//! the price of multi-million-bit multiplications. Implemented here as the
//! comparison baseline the repository's benchmarks pit the paper's
//! pairwise GPU approach against.
//!
//! The tree arithmetic rides the `bulkgcd-bigint` dispatch ladder
//! (Toom-3/NTT multiply, Newton division, half-GCD), and the hot descent
//! is scratch-reusing: [`batch_gcd_into`] threads a [`BatchScratch`]
//! through every node so the steady state performs no allocations below
//! the subquadratic cutoffs (pinned by `tests/alloc_steady_state.rs`).

use bulkgcd_bigint::div::DivScratch;
use bulkgcd_bigint::hgcd::gcd_into;
use bulkgcd_bigint::{Limb, Nat};
use core::mem;
use rayon::prelude::*;

/// A bottom-up product tree: `levels[0]` are the inputs, each higher level
/// holds pairwise products, `levels.last()` is `[Π inputs]`.
#[derive(Debug, Clone)]
pub struct ProductTree {
    /// Tree levels, leaves first.
    pub levels: Vec<Vec<Nat>>,
}

impl ProductTree {
    /// Build the tree. Empty input yields a single level `[1]`... no:
    /// empty input is rejected (no meaningful product).
    pub fn build(moduli: &[Nat]) -> ProductTree {
        assert!(!moduli.is_empty(), "product tree of nothing");
        let mut prev = moduli.to_vec();
        let mut levels = Vec::new();
        while prev.len() > 1 {
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for chunk in prev.chunks(2) {
                match chunk {
                    [a, b] => {
                        let mut p = Nat::default();
                        a.mul_into(b, &mut p);
                        next.push(p);
                    }
                    [a] => next.push(a.clone()),
                    _ => unreachable!(),
                }
            }
            levels.push(prev);
            prev = next;
        }
        levels.push(prev);
        ProductTree { levels }
    }

    /// The root product `Π n_i`.
    pub fn root(&self) -> &Nat {
        // build() always ends with a single-entry root level.
        &self.levels[self.levels.len() - 1][0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True when the tree has no leaves (never: build rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.levels[0].is_empty()
    }
}

/// Working memory for [`batch_gcd_into`]: the product-tree levels, the two
/// remainder-level ping-pong buffers, and all per-node temporaries. A warm
/// scratch makes repeated batches over same-shaped corpora allocation-free
/// in the steady state (below the subquadratic cutoffs, whose algorithms
/// allocate internally by design).
#[derive(Default)]
pub struct BatchScratch {
    /// Computed product-tree levels, pairwise-up from the moduli
    /// (`levels[0]` pairs the inputs; the last built level is the root).
    levels: Vec<Vec<Nat>>,
    /// Current remainder level of the descent.
    rems: Vec<Nat>,
    /// Next remainder level (ping-pong partner of `rems`).
    next: Vec<Nat>,
    /// Squared node `n²` of the current descent step.
    sq: Nat,
    /// Quotient sink for divisions whose quotient is needed (final step)
    /// or discarded (descent).
    q: Nat,
    /// Remainder sink for the final exact division.
    r: Nat,
    /// Knuth division working memory.
    div: DivScratch,
    /// Binary-GCD scratch for the final per-modulus step.
    gx: Vec<Limb>,
    /// Second binary-GCD scratch buffer.
    gy: Vec<Limb>,
}

impl BatchScratch {
    /// Empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        BatchScratch::default()
    }
}

/// Grow a scratch level to at least `n` slots. Never shrinks: slots left
/// over from a larger batch keep their buffers for reuse.
fn grow_to(v: &mut Vec<Nat>, n: usize) {
    if v.len() < n {
        v.resize_with(n, Nat::default);
    }
}

/// Number of product-tree nodes at `levels[ci]` for an `m`-modulus batch:
/// `ceil(m / 2^(ci+1))`, computed by repeated halving to match the build.
fn level_width(m: usize, ci: usize) -> usize {
    let mut w = m;
    for _ in 0..=ci {
        w = w.div_ceil(2);
    }
    w
}

/// For every modulus, compute `gcd(n_i, (P mod n_i²) / n_i)` by descending
/// a remainder tree. The result is > 1 exactly for moduli sharing a prime
/// with some other modulus (or appearing twice).
///
/// ```
/// use bulkgcd_bigint::Nat;
/// use bulkgcd_bulk::batch_gcd;
///
/// let moduli = vec![
///     Nat::from_u64(101 * 211),
///     Nat::from_u64(101 * 223), // shares 101 with the first
///     Nat::from_u64(103 * 227), // clean
/// ];
/// let g = batch_gcd(&moduli);
/// assert_eq!(g[0], Nat::from_u64(101));
/// assert_eq!(g[1], Nat::from_u64(101));
/// assert!(g[2].is_one());
/// ```
pub fn batch_gcd(moduli: &[Nat]) -> Vec<Nat> {
    let mut scratch = BatchScratch::new();
    let mut out = Vec::new();
    batch_gcd_into(moduli, &mut scratch, &mut out);
    out
}

/// [`batch_gcd`] with caller-owned scratch and output: repeated calls over
/// same-shaped corpora reuse every buffer — tree levels, remainder
/// ping-pong, division scratch, GCD scratch and the result `Nat`s.
pub fn batch_gcd_into(moduli: &[Nat], scratch: &mut BatchScratch, out: &mut Vec<Nat>) {
    out.resize_with(moduli.len(), Nat::default);
    if moduli.len() < 2 {
        for o in out.iter_mut() {
            o.assign_limbs(&[1]);
        }
        return;
    }
    let BatchScratch {
        levels,
        rems,
        next,
        sq,
        q,
        r,
        div,
        gx,
        gy,
    } = scratch;

    // Product tree, bottom-up. `levels[0]` pairs the moduli themselves, so
    // the inputs are never copied; `nl` counts the levels in use this call.
    // Scratch vectors only ever grow: a smaller batch after a larger one
    // leaves the extra slots (and their buffers) in place instead of
    // dropping them, so same-shaped repeat calls stay allocation-free and
    // shape changes re-pay only the delta. Live widths are tracked via
    // `level_width`, never via `Vec::len`.
    let m = moduli.len();
    let mut nl = 0usize;
    let mut width = m;
    while width > 1 {
        let next_w = width.div_ceil(2);
        if levels.len() <= nl {
            levels.push(Vec::new());
        }
        let (below, above) = levels.split_at_mut(nl);
        let cur = &mut above[0];
        grow_to(cur, next_w);
        for (i, slot) in cur.iter_mut().take(next_w).enumerate() {
            let pair = |k: usize| -> &Nat {
                if nl == 0 {
                    &moduli[k]
                } else {
                    &below[nl - 1][k]
                }
            };
            if 2 * i + 1 < width {
                pair(2 * i).mul_into(pair(2 * i + 1), slot);
            } else {
                slot.assign_limbs(pair(2 * i).limbs());
            }
        }
        nl += 1;
        width = next_w;
    }

    // Remainder tree, top down: rem[v] = parent_rem mod node[v]².
    grow_to(rems, 1);
    rems[0].assign_limbs(levels[nl - 1][0].limbs());
    for ci in (0..nl - 1).rev() {
        let nodes = &levels[ci][..level_width(m, ci)];
        grow_to(next, nodes.len());
        for (idx, node) in nodes.iter().enumerate() {
            node.square_into(sq);
            rems[idx / 2].div_rem_into(&*sq, q, &mut next[idx], div);
        }
        mem::swap(rems, next);
    }
    // The leaf level: the moduli themselves.
    grow_to(next, m);
    for (idx, node) in moduli.iter().enumerate() {
        node.square_into(sq);
        rems[idx / 2].div_rem_into(&*sq, q, &mut next[idx], div);
    }
    mem::swap(rems, next);

    // Final per-modulus step: z = P mod n², gcd(n, z/n).
    for (i, n) in moduli.iter().enumerate() {
        rems[i].div_rem_into(n, q, r, div);
        debug_assert!(r.is_zero(), "P mod n^2 is a multiple of n");
        gcd_into(q, n, gx, gy, &mut out[i]);
    }
}

/// Parallel [`batch_gcd`]: same computation with every tree level mapped
/// across the rayon pool. The level-by-level data dependence is inherent
/// (each remainder needs its parent), but levels are wide near the leaves
/// — exactly where the squarings are numerous. Per-worker scratch
/// (`map_init`) keeps the per-node temporaries off the allocator.
pub fn batch_gcd_parallel(moduli: &[Nat]) -> Vec<Nat> {
    if moduli.len() < 2 {
        return moduli.iter().map(|_| Nat::one()).collect();
    }
    // Product tree, parallel within each level.
    let mut prev = moduli.to_vec();
    let mut levels = Vec::new();
    while prev.len() > 1 {
        let next: Vec<Nat> = prev
            .par_chunks(2)
            .map(|chunk| match chunk {
                [a, b] => a.mul(b),
                [a] => a.clone(),
                _ => unreachable!(),
            })
            .collect();
        levels.push(prev);
        prev = next;
    }
    // prev is now the single-entry root level.
    let mut rems: Vec<Nat> = prev.clone();
    levels.push(prev);
    for level in (0..levels.len() - 1).rev() {
        let nodes = &levels[level];
        rems = nodes
            .par_iter()
            .enumerate()
            .map_init(
                || (Nat::default(), Nat::default(), DivScratch::new()),
                |(sq, q, div), (idx, node)| {
                    node.square_into(sq);
                    let mut rem = Nat::default();
                    rems[idx / 2].div_rem_into(&*sq, q, &mut rem, div);
                    rem
                },
            )
            .collect();
    }
    moduli
        .par_iter()
        .zip(&rems)
        .map_init(
            || {
                (
                    Nat::default(),
                    Nat::default(),
                    DivScratch::new(),
                    Vec::new(),
                    Vec::new(),
                )
            },
            |(q, r, div, gx, gy), (n, z)| {
                z.div_rem_into(n, q, r, div);
                debug_assert!(r.is_zero());
                let mut g = Nat::default();
                gcd_into(q, n, gx, gy, &mut g);
                g
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::prime::random_rsa_prime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nat(v: u128) -> Nat {
        Nat::from_u128(v)
    }

    #[test]
    fn product_tree_root_is_product() {
        let xs = [3u128, 5, 7, 11, 13];
        let t = ProductTree::build(&xs.map(nat));
        assert_eq!(t.root(), &nat(3 * 5 * 7 * 11 * 13));
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn product_tree_single_leaf() {
        let t = ProductTree::build(&[nat(42)]);
        assert_eq!(t.root(), &nat(42));
        assert_eq!(t.levels.len(), 1);
    }

    #[test]
    fn batch_gcd_finds_shared_primes() {
        // n0 and n2 share 101; n1 and n3 share 103; n4 is clean.
        let moduli = [
            nat(101 * 211),
            nat(103 * 223),
            nat(101 * 227),
            nat(103 * 229),
            nat(233 * 239),
        ];
        let g = batch_gcd(&moduli);
        assert_eq!(g[0], nat(101));
        assert_eq!(g[1], nat(103));
        assert_eq!(g[2], nat(101));
        assert_eq!(g[3], nat(103));
        assert_eq!(g[4], Nat::one());
    }

    #[test]
    fn batch_gcd_clean_corpus_all_ones() {
        let moduli = [nat(101 * 211), nat(103 * 223), nat(107 * 227)];
        assert!(batch_gcd(&moduli).iter().all(|g| g.is_one()));
    }

    #[test]
    fn batch_gcd_duplicate_modulus_reports_modulus() {
        let n = nat(101 * 211);
        let g = batch_gcd(&[n.clone(), n.clone(), nat(103 * 223)]);
        assert_eq!(g[0], n);
        assert_eq!(g[1], n);
        assert!(g[2].is_one());
    }

    #[test]
    fn batch_gcd_degenerate_sizes() {
        assert!(batch_gcd(&[]).is_empty());
        assert_eq!(batch_gcd(&[nat(15)]), vec![Nat::one()]);
    }

    #[test]
    fn batch_gcd_matches_pairwise_on_rsa_corpus() {
        let mut rng = StdRng::seed_from_u64(1);
        let p_shared = random_rsa_prime(&mut rng, 64);
        let mut moduli: Vec<Nat> = (0..6)
            .map(|_| random_rsa_prime(&mut rng, 64).mul(&random_rsa_prime(&mut rng, 64)))
            .collect();
        moduli.push(p_shared.mul(&random_rsa_prime(&mut rng, 64)));
        moduli.push(p_shared.mul(&random_rsa_prime(&mut rng, 64)));
        let batch = batch_gcd(&moduli);
        // Pairwise oracle.
        for (i, ni) in moduli.iter().enumerate() {
            let mut expect = Nat::one();
            for (j, nj) in moduli.iter().enumerate() {
                if i != j {
                    let g = ni.gcd_reference(nj);
                    if !g.is_one() {
                        expect = g;
                    }
                }
            }
            assert_eq!(batch[i], expect, "modulus {i}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(5);
        let shared = random_rsa_prime(&mut rng, 48);
        let mut moduli: Vec<Nat> = (0..9)
            .map(|_| random_rsa_prime(&mut rng, 48).mul(&random_rsa_prime(&mut rng, 48)))
            .collect();
        moduli.push(shared.mul(&random_rsa_prime(&mut rng, 48)));
        moduli.push(shared.mul(&random_rsa_prime(&mut rng, 48)));
        assert_eq!(batch_gcd_parallel(&moduli), batch_gcd(&moduli));
        assert_eq!(batch_gcd_parallel(&[]), batch_gcd(&[]));
        assert_eq!(batch_gcd_parallel(&[nat(15)]), batch_gcd(&[nat(15)]));
    }

    #[test]
    fn odd_level_sizes_handled() {
        // 7 leaves exercises the unpaired-node carry at two levels.
        let moduli: Vec<Nat> = [3u128, 5, 7, 11, 13, 17, 19].map(nat).to_vec();
        let t = ProductTree::build(&moduli);
        assert_eq!(t.root(), &nat(3 * 5 * 7 * 11 * 13 * 17 * 19));
        let g = batch_gcd(&moduli);
        assert!(g.iter().all(|x| x.is_one()));
    }

    #[test]
    fn scratch_reuse_across_batches_matches_fresh() {
        // Same scratch across different corpora (including a larger one
        // after a smaller one) must not leak state between runs.
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        let small = [nat(101 * 211), nat(101 * 223), nat(103 * 227)];
        let large: Vec<Nat> = [
            101 * 211,
            103 * 223,
            101 * 227,
            103 * 229,
            233 * 239,
            241 * 251,
            257 * 263,
        ]
        .map(nat)
        .to_vec();
        batch_gcd_into(&small, &mut scratch, &mut out);
        assert_eq!(out, batch_gcd(&small));
        batch_gcd_into(&large, &mut scratch, &mut out);
        assert_eq!(out, batch_gcd(&large));
        batch_gcd_into(&small, &mut scratch, &mut out);
        assert_eq!(out, batch_gcd(&small));
    }
}
