//! The on-disk compiled-arena format and its chunk-streamed loader.
//!
//! `bulkgcd ingest` sanitizes a raw hex corpus **once** and compiles the
//! result to a `corpus.arena` file; every later `scan --arena` run then
//! skips hex parsing and quarantine entirely and can stream the moduli
//! through a bounded-memory window — the path that lets a corpus larger
//! than RAM be scanned tile by tile.
//!
//! # Arena file format (version 1)
//!
//! The same journal idiom as [`crate::checkpoint`] — a text header pinned
//! by a magic line, fsynced writes, explicit torn-tail rules — followed by
//! one binary payload:
//!
//! ```text
//! bulkgcd-arena v1
//! H m=<rows> stride=<limbs> raw=<raw inputs> min_bits=<floor> fp=<fnv1a64 hex16>
//! B <hex64 word> <hex64 word> ...
//! P <payload bytes>
//! <m * stride * 4 bytes of little-endian limbs, row-major>
//! ```
//!
//! * the magic line pins the format version;
//! * `H` carries the arena shape, the ingest floor the corpus was
//!   sanitized with, and the corpus fingerprint — the **same**
//!   [`corpus_fingerprint`] a checkpoint journal binds to, so a scan
//!   resumed from a journal and a scan fed from the arena file agree on
//!   corpus identity;
//! * `B` is the acceptance bitmap of the original raw corpus (`raw` bits,
//!   packed little-endian into 64-bit words): bit `i` set iff raw input
//!   `i` was accepted. Rehydrated into a [`RankSelect`], it maps compacted
//!   rows back to raw corpus positions in O(1) without a `Vec<usize>`
//!   side table;
//! * `P` declares the exact payload length in bytes, then the limbs
//!   follow with **no trailing text**.
//!
//! **Torn-tail rule.** Header lines are only trusted complete (a file
//! ending mid-header fails to parse its final line and is reported as
//! [`StoreError::Corrupt`]); a payload shorter than `P` declared — the
//! signature of a crash mid-write — is [`StoreError::Truncated`], and
//! trailing bytes past the payload are corruption. Unlike the append-only
//! journal there is no valid prefix to salvage: an arena is written in
//! one shot and is either whole or rejected, which is why
//! [`ArenaSource::open`] also streams the payload once to verify the
//! fingerprint before handing out any rows.

use crate::arena::{ArenaError, ModuliArena};
use crate::checkpoint::corpus_fingerprint;
use crate::scan::report::{Finding, FindingKind, ScanReport};
use bulkgcd_bigint::{ops, Limb, Nat};
use bulkgcd_core::{run_in_place, Algorithm, GcdPair, GcdStatus, NoProbe, RankSelect, Termination};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Instant;

/// First line of every arena file.
pub const ARENA_MAGIC: &str = "bulkgcd-arena v1";

/// Bytes per stored limb.
const LIMB_BYTES: usize = std::mem::size_of::<Limb>();

/// Why an arena file could not be written or used.
#[derive(Debug)]
pub enum StoreError {
    /// The arena file could not be read or written.
    Io(io::Error),
    /// A header line failed to parse (including a file torn mid-header).
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The payload is shorter than the header declared — a torn write.
    Truncated {
        /// Bytes the `P` line promised.
        expected: u64,
        /// Bytes actually present after the header.
        found: u64,
    },
    /// The payload does not hash to the header's fingerprint.
    Fingerprint {
        /// The fingerprint stored in the header.
        stored: u64,
        /// The fingerprint of the bytes on disk.
        computed: u64,
    },
    /// The acceptance bitmap does not have exactly one set bit per row.
    AcceptanceMismatch {
        /// Set bits in the bitmap.
        ones: usize,
        /// Rows the arena holds.
        rows: usize,
    },
    /// The payload could not be shaped into a [`ModuliArena`].
    Arena(ArenaError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "arena I/O: {e}"),
            StoreError::Corrupt { line, reason } => {
                write!(f, "arena file corrupt at line {line}: {reason}")
            }
            StoreError::Truncated { expected, found } => write!(
                f,
                "arena payload truncated: header declares {expected} bytes, file holds {found} \
                 (torn write; re-run bulkgcd ingest)"
            ),
            StoreError::Fingerprint { stored, computed } => write!(
                f,
                "arena fingerprint mismatch: header has {stored:016x}, payload hashes to \
                 {computed:016x}"
            ),
            StoreError::AcceptanceMismatch { ones, rows } => write!(
                f,
                "acceptance bitmap has {ones} set bits for {rows} arena rows"
            ),
            StoreError::Arena(e) => write!(f, "arena shape: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ArenaError> for StoreError {
    fn from(e: ArenaError) -> Self {
        StoreError::Arena(e)
    }
}

/// The parsed `H` line of an arena file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaHeader {
    /// Accepted moduli (arena rows).
    pub m: usize,
    /// Limbs per row.
    pub stride: usize,
    /// Raw corpus inputs the acceptance bitmap covers.
    pub raw_len: usize,
    /// The `--min-bits` floor the corpus was sanitized with.
    pub min_bits: u64,
    /// [`corpus_fingerprint`] of the stored arena.
    pub fingerprint: u64,
}

impl ArenaHeader {
    /// Exact payload length in bytes.
    fn payload_bytes(&self) -> u64 {
        (self.m as u64) * (self.stride as u64) * LIMB_BYTES as u64
    }
}

/// Compile a sanitized arena (plus its acceptance bitmap and ingest floor)
/// to `path`. The write is fsynced (`sync_data`) before returning, and the
/// returned header is what [`ArenaSource::open`] will see.
// analyze: journal
pub fn write_arena(
    path: &Path,
    arena: &ModuliArena,
    acceptance: &RankSelect,
    min_bits: u64,
) -> Result<ArenaHeader, StoreError> {
    if acceptance.count_ones() != arena.len() {
        return Err(StoreError::AcceptanceMismatch {
            ones: acceptance.count_ones(),
            rows: arena.len(),
        });
    }
    let header = ArenaHeader {
        m: arena.len(),
        stride: arena.stride(),
        raw_len: acceptance.len(),
        min_bits,
        fingerprint: corpus_fingerprint(arena),
    };
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "{ARENA_MAGIC}")?;
    writeln!(
        w,
        "H m={} stride={} raw={} min_bits={} fp={:016x}",
        header.m, header.stride, header.raw_len, header.min_bits, header.fingerprint
    )?;
    write!(w, "B")?;
    for word in acceptance.words() {
        write!(w, " {word:016x}")?;
    }
    writeln!(w)?;
    writeln!(w, "P {}", header.payload_bytes())?;
    for &limb in arena.as_limbs() {
        w.write_all(&limb.to_le_bytes())?;
    }
    let file = w.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
    file.sync_data()?;
    Ok(header)
}

/// A chunk-streamed reader over an arena file.
///
/// [`open`](Self::open) parses and validates the header, verifies the
/// payload length against the torn-tail rule, and streams the payload once
/// through the fingerprint — without ever materializing the corpus. After
/// that, rows are loaded on demand: [`load_rows`](Self::load_rows) for a
/// bounded window (the larger-than-RAM path), [`load_arena`](Self::load_arena)
/// for the whole corpus (the convenience path feeding the existing
/// pipeline, shard and incremental drivers).
#[derive(Debug)]
pub struct ArenaSource {
    file: File,
    header: ArenaHeader,
    acceptance: RankSelect,
    payload_offset: u64,
}

impl ArenaSource {
    /// Open and validate `path`.
    // analyze: journal(replay)
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut file = File::open(path)?;
        let mut reader = io::BufReader::new(&mut file);
        let mut lineno = 0usize;

        let magic = read_header_line(&mut reader, &mut lineno)?;
        if magic != ARENA_MAGIC {
            return Err(StoreError::Corrupt {
                line: lineno,
                reason: format!("bad magic {magic:?} (want {ARENA_MAGIC:?})"),
            });
        }
        let h_line = read_header_line(&mut reader, &mut lineno)?;
        let header = parse_h_line(&h_line, lineno)?;
        let b_line = read_header_line(&mut reader, &mut lineno)?;
        let words = parse_b_line(&b_line, lineno)?;
        let p_line = read_header_line(&mut reader, &mut lineno)?;
        let declared = parse_p_line(&p_line, lineno)?;
        if declared != header.payload_bytes() {
            return Err(StoreError::Corrupt {
                line: lineno,
                reason: format!(
                    "P declares {declared} bytes but m * stride needs {}",
                    header.payload_bytes()
                ),
            });
        }

        let acceptance = RankSelect::from_words(words, header.raw_len);
        if acceptance.count_ones() != header.m {
            return Err(StoreError::AcceptanceMismatch {
                ones: acceptance.count_ones(),
                rows: header.m,
            });
        }

        // Torn-tail rule: the payload must be exactly as long as declared.
        let payload_offset = reader.stream_position()?;
        drop(reader);
        let file_len = file.metadata()?.len();
        let found = file_len.saturating_sub(payload_offset);
        if found < declared {
            return Err(StoreError::Truncated {
                expected: declared,
                found,
            });
        }
        if found > declared {
            return Err(StoreError::Corrupt {
                line: lineno,
                reason: format!("{} trailing bytes after the payload", found - declared),
            });
        }

        let mut source = ArenaSource {
            file,
            header,
            acceptance,
            payload_offset,
        };
        source.verify_fingerprint()?;
        Ok(source)
    }

    /// Stream the payload once through the corpus fingerprint and compare
    /// with the header — bounded memory regardless of corpus size.
    fn verify_fingerprint(&mut self) -> Result<(), StoreError> {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.header.m as u64).to_le_bytes());
        eat(&(self.header.stride as u64).to_le_bytes());
        self.file.seek(SeekFrom::Start(self.payload_offset))?;
        let mut remaining = self.header.payload_bytes();
        let mut buf = vec![0u8; (1 << 20).min(remaining.max(1) as usize)];
        while remaining > 0 {
            let take = buf.len().min(remaining as usize);
            self.file.read_exact(&mut buf[..take])?;
            eat(&buf[..take]);
            remaining -= take as u64;
        }
        if h != self.header.fingerprint {
            return Err(StoreError::Fingerprint {
                stored: self.header.fingerprint,
                computed: h,
            });
        }
        Ok(())
    }

    /// The validated header.
    pub fn header(&self) -> &ArenaHeader {
        &self.header
    }

    /// Accepted rows (moduli) in the arena.
    pub fn rows(&self) -> usize {
        self.header.m
    }

    /// Limbs per row.
    pub fn stride(&self) -> usize {
        self.header.stride
    }

    /// The acceptance bitmap: compacted row ↔ raw corpus position.
    pub fn acceptance(&self) -> &RankSelect {
        &self.acceptance
    }

    /// Raw corpus position of arena row `row` — O(1) via rank/select.
    ///
    /// Panics if `row >= rows()` (rows come from scan findings over this
    /// arena, so an out-of-range row is a caller bug).
    pub fn raw_index(&self, row: usize) -> usize {
        // analyze: allow(no-panic, reason = "documented panic contract: open() verified count_ones == m, so every row < m has a raw position")
        self.acceptance
            .select1(row)
            .expect("arena row within acceptance bitmap")
    }

    /// Load rows `[start, start + count)` into a row-major limb buffer of
    /// `count * stride` limbs.
    pub fn load_rows(&mut self, start: usize, count: usize) -> Result<Vec<Limb>, StoreError> {
        assert!(start + count <= self.header.m, "row range out of bounds");
        let stride = self.header.stride;
        let byte_off = self.payload_offset + (start * stride * LIMB_BYTES) as u64;
        self.file.seek(SeekFrom::Start(byte_off))?;
        let mut bytes = vec![0u8; count * stride * LIMB_BYTES];
        self.file.read_exact(&mut bytes)?;
        let limbs = bytes
            .chunks_exact(LIMB_BYTES)
            .map(|c| Limb::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(limbs)
    }

    /// Materialize the whole corpus as a [`ModuliArena`] — the bridge to
    /// the in-memory pipeline, shard ([`TilePlan`](crate::shard::TilePlan))
    /// and incremental drivers when the corpus does fit in RAM.
    pub fn load_arena(&mut self) -> Result<ModuliArena, StoreError> {
        let stride = self.header.stride;
        let limbs = self.load_rows(0, self.header.m)?;
        let moduli: Vec<Nat> = limbs
            .chunks_exact(stride.max(1))
            .map(Nat::from_limb_slice)
            .collect();
        let arena = ModuliArena::try_from_moduli(&moduli)?;
        if arena.stride() != stride {
            // The widest row defines the stride; a mismatch means the
            // payload does not belong to this header.
            return Err(StoreError::Corrupt {
                line: 2,
                reason: format!(
                    "stored stride {stride} but widest payload row needs {}",
                    arena.stride()
                ),
            });
        }
        Ok(arena)
    }

    /// All-pairs scalar scan streamed through a bounded limb budget.
    ///
    /// At most two row windows of ~`chunk_limbs` limbs each are resident
    /// at any time (plus the `GcdPair` workspace), so the corpus itself
    /// never has to fit in memory. Produces findings **bitwise identical**
    /// to [`ScanPipeline`](crate::scan::ScanPipeline) with
    /// [`ScalarBackend`](crate::scan::ScalarBackend) over the same corpus:
    /// the scalar backend's termination is per pair
    /// (`min(bits_i, bits_j) / 2` under early termination) and findings
    /// are globally ordered by `(i, j)`, so neither depends on how the
    /// pair space is tiled into chunks.
    pub fn scan_chunked(
        &mut self,
        algo: Algorithm,
        early: bool,
        chunk_limbs: usize,
    ) -> Result<ScanReport, StoreError> {
        let start = Instant::now();
        let m = self.header.m;
        let stride = self.header.stride.max(1);
        let rows_per_chunk = (chunk_limbs / stride).max(1);
        let nchunks = m.div_ceil(rows_per_chunk.max(1)).max(1);
        let mut pair = GcdPair::with_capacity(stride);
        let mut findings = Vec::new();
        for a in 0..nchunks {
            let a_start = a * rows_per_chunk;
            let a_count = rows_per_chunk.min(m - a_start);
            let chunk_a = self.load_rows(a_start, a_count)?;
            scan_window_pairs(
                &mut pair,
                algo,
                early,
                stride,
                &chunk_a,
                a_start,
                &chunk_a,
                a_start,
                &mut findings,
            );
            for b in (a + 1)..nchunks {
                let b_start = b * rows_per_chunk;
                let b_count = rows_per_chunk.min(m - b_start);
                let chunk_b = self.load_rows(b_start, b_count)?;
                scan_window_pairs(
                    &mut pair,
                    algo,
                    early,
                    stride,
                    &chunk_a,
                    a_start,
                    &chunk_b,
                    b_start,
                    &mut findings,
                );
            }
        }
        findings.sort_by_key(|f| (f.i, f.j));
        let duplicate_pairs = findings
            .iter()
            .filter(|f| f.kind == FindingKind::DuplicateModulus)
            .count() as u64;
        Ok(ScanReport {
            findings,
            pairs_scanned: (m as u64) * (m as u64).saturating_sub(1) / 2,
            duplicate_pairs,
            elapsed: start.elapsed(),
            simulated_seconds: None,
        })
    }
}

/// Scan every global pair `(i, j)` with `i < j`, `i` in window A and `j`
/// in window B (A and B may be the same window). Mirrors the scalar
/// backend's per-pair loop exactly.
#[allow(clippy::too_many_arguments)]
fn scan_window_pairs(
    pair: &mut GcdPair,
    algo: Algorithm,
    early: bool,
    stride: usize,
    window_a: &[Limb],
    a_start: usize,
    window_b: &[Limb],
    b_start: usize,
    findings: &mut Vec<Finding>,
) {
    let a_rows = window_a.len() / stride;
    let b_rows = window_b.len() / stride;
    for ia in 0..a_rows {
        let row_a = &window_a[ia * stride..(ia + 1) * stride];
        let i = a_start + ia;
        let jb_first = if a_start == b_start { ia + 1 } else { 0 };
        for jb in jb_first..b_rows {
            let row_b = &window_b[jb * stride..(jb + 1) * stride];
            let j = b_start + jb;
            pair.load_from_limbs(row_a, row_b);
            let term = if early {
                Termination::Early {
                    threshold_bits: ops::bit_len(row_a).min(ops::bit_len(row_b)) / 2,
                }
            } else {
                Termination::Full
            };
            if run_in_place(algo, pair, term, &mut NoProbe) == GcdStatus::Done && !pair.gcd_is_one()
            {
                let factor = pair.x_nat();
                let trimmed_a = &row_a[..ops::normalized_len(row_a)];
                let trimmed_b = &row_b[..ops::normalized_len(row_b)];
                let kind = if factor.as_limbs() == trimmed_a || factor.as_limbs() == trimmed_b {
                    FindingKind::DuplicateModulus
                } else {
                    FindingKind::SharedPrime
                };
                findings.push(Finding { i, j, kind, factor });
            }
        }
    }
}

/// Read one header line (without its newline). A file that ends before the
/// newline is torn mid-header.
fn read_header_line<R: io::BufRead>(r: &mut R, lineno: &mut usize) -> Result<String, StoreError> {
    *lineno += 1;
    let mut buf = Vec::new();
    let n = r.read_until(b'\n', &mut buf)?;
    if n == 0 || buf.last() != Some(&b'\n') {
        return Err(StoreError::Corrupt {
            line: *lineno,
            reason: "file ends mid-header (torn write)".into(),
        });
    }
    buf.pop();
    String::from_utf8(buf).map_err(|_| StoreError::Corrupt {
        line: *lineno,
        reason: "header line is not UTF-8".into(),
    })
}

fn parse_h_line(line: &str, lineno: usize) -> Result<ArenaHeader, StoreError> {
    let rest = line.strip_prefix("H ").ok_or_else(|| StoreError::Corrupt {
        line: lineno,
        reason: format!("expected H line, got {line:?}"),
    })?;
    let mut m = None;
    let mut stride = None;
    let mut raw_len = None;
    let mut min_bits = None;
    let mut fingerprint = None;
    for token in rest.split_whitespace() {
        let (key, value) = token.split_once('=').ok_or_else(|| StoreError::Corrupt {
            line: lineno,
            reason: format!("malformed H field {token:?}"),
        })?;
        let bad = |what: &str| StoreError::Corrupt {
            line: lineno,
            reason: format!("bad {what} value {value:?}"),
        };
        match key {
            "m" => m = Some(value.parse::<usize>().map_err(|_| bad("m"))?),
            "stride" => stride = Some(value.parse::<usize>().map_err(|_| bad("stride"))?),
            "raw" => raw_len = Some(value.parse::<usize>().map_err(|_| bad("raw"))?),
            "min_bits" => min_bits = Some(value.parse::<u64>().map_err(|_| bad("min_bits"))?),
            "fp" => {
                fingerprint = Some(u64::from_str_radix(value, 16).map_err(|_| bad("fp"))?);
            }
            _ => {} // unknown fields are ignored for forward compatibility
        }
    }
    let missing = |what: &str| StoreError::Corrupt {
        line: lineno,
        reason: format!("H line missing {what}"),
    };
    Ok(ArenaHeader {
        m: m.ok_or_else(|| missing("m"))?,
        stride: stride.ok_or_else(|| missing("stride"))?,
        raw_len: raw_len.ok_or_else(|| missing("raw"))?,
        min_bits: min_bits.ok_or_else(|| missing("min_bits"))?,
        fingerprint: fingerprint.ok_or_else(|| missing("fp"))?,
    })
}

fn parse_b_line(line: &str, lineno: usize) -> Result<Vec<u64>, StoreError> {
    let rest = line.strip_prefix('B').ok_or_else(|| StoreError::Corrupt {
        line: lineno,
        reason: format!("expected B line, got {line:?}"),
    })?;
    rest.split_whitespace()
        .map(|w| {
            u64::from_str_radix(w, 16).map_err(|_| StoreError::Corrupt {
                line: lineno,
                reason: format!("bad bitmap word {w:?}"),
            })
        })
        .collect()
}

fn parse_p_line(line: &str, lineno: usize) -> Result<u64, StoreError> {
    let rest = line.strip_prefix("P ").ok_or_else(|| StoreError::Corrupt {
        line: lineno,
        reason: format!("expected P line, got {line:?}"),
    })?;
    rest.trim().parse::<u64>().map_err(|_| StoreError::Corrupt {
        line: lineno,
        reason: format!("bad payload length {rest:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{ScalarBackend, ScanPipeline};
    use bulkgcd_bigint::Nat;
    use bulkgcd_core::RankSelectBuilder;

    fn arena_of(values: &[u64]) -> ModuliArena {
        let moduli: Vec<Nat> = values.iter().map(|&v| Nat::from_u64(v)).collect();
        ModuliArena::try_from_moduli(&moduli).unwrap()
    }

    fn all_accepted(n: usize) -> RankSelect {
        let mut b = RankSelectBuilder::new();
        for _ in 0..n {
            b.push(true);
        }
        b.finish()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("bulkgcd-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn round_trips_header_bitmap_and_rows() {
        let arena = arena_of(&[15, 21, 35, 77]);
        let mut bits = RankSelectBuilder::new();
        for accepted in [true, false, true, true, false, true] {
            bits.push(accepted);
        }
        let acceptance = bits.finish();
        let path = tmp("roundtrip.arena");
        let header = write_arena(&path, &arena, &acceptance, 3).unwrap();
        let mut src = ArenaSource::open(&path).unwrap();
        assert_eq!(src.header(), &header);
        assert_eq!(src.rows(), 4);
        assert_eq!(src.header().raw_len, 6);
        assert_eq!(src.header().min_bits, 3);
        assert_eq!(
            (0..4).map(|r| src.raw_index(r)).collect::<Vec<_>>(),
            vec![0, 2, 3, 5]
        );
        let loaded = src.load_arena().unwrap();
        assert_eq!(loaded, arena);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn acceptance_bitmap_must_match_rows() {
        let arena = arena_of(&[15, 21]);
        let path = tmp("mismatch.arena");
        let err = write_arena(&path, &arena, &all_accepted(3), 0).unwrap_err();
        assert!(matches!(
            err,
            StoreError::AcceptanceMismatch { ones: 3, rows: 2 }
        ));
    }

    #[test]
    fn truncated_payload_is_detected() {
        let arena = arena_of(&[15, 21, 35]);
        let path = tmp("torn.arena");
        write_arena(&path, &arena, &all_accepted(3), 0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        match ArenaSource::open(&path) {
            Err(StoreError::Truncated { expected, found }) => {
                assert_eq!(found + 3, expected);
            }
            other => panic!("want Truncated, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flipped_payload_byte_fails_the_fingerprint() {
        let arena = arena_of(&[15, 21, 35]);
        let path = tmp("flip.arena");
        write_arena(&path, &arena, &all_accepted(3), 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ArenaSource::open(&path),
            Err(StoreError::Fingerprint { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("magic.arena");
        std::fs::write(&path, "bulkgcd-arena v9\nH m=1\n").unwrap();
        assert!(matches!(
            ArenaSource::open(&path),
            Err(StoreError::Corrupt { line: 1, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_torn_mid_header_is_corrupt() {
        let path = tmp("midheader.arena");
        std::fs::write(&path, format!("{ARENA_MAGIC}\nH m=2 stri")).unwrap();
        assert!(matches!(
            ArenaSource::open(&path),
            Err(StoreError::Corrupt { line: 2, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chunked_scan_matches_in_memory_pipeline_bitwise() {
        // Shared factors across chunk boundaries: 3*5, 5*7, 7*11, a
        // duplicate pair, and some coprime filler.
        let values = [15u64, 35, 77, 221, 15, 33, 65, 119, 143, 187];
        let arena = arena_of(&values);
        let path = tmp("chunkscan.arena");
        write_arena(&path, &arena, &all_accepted(values.len()), 0).unwrap();
        let mut src = ArenaSource::open(&path).unwrap();

        let reference = ScanPipeline::new(&arena)
            .backend(ScalarBackend)
            .run()
            .unwrap()
            .scan;
        // A chunk budget of one row per window: every pair crosses a
        // chunk boundary.
        for chunk_limbs in [1, 2, 3, 1000] {
            let chunked = src
                .scan_chunked(Algorithm::Approximate, true, chunk_limbs)
                .unwrap();
            assert_eq!(chunked.findings, reference.findings, "chunk={chunk_limbs}");
            assert_eq!(chunked.pairs_scanned, reference.pairs_scanned);
            assert_eq!(chunked.duplicate_pairs, reference.duplicate_pairs);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
