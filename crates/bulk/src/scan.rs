//! All-pairs weak-key scans.
//!
//! * [`scan_cpu`] — the multithreaded host scan (rayon over §VI blocks,
//!   one reusable [`GcdPair`] workspace per worker);
//! * [`scan_gpu_sim`] — the same scan priced on the simulated GPU, batched
//!   into kernel launches like the paper's runs.
//!
//! Both produce identical findings; only the clock differs.

use crate::pairing::GroupedPairs;
use bulkgcd_bigint::Nat;
use bulkgcd_core::{run, Algorithm, GcdOutcome, GcdPair, NoProbe, Termination};
use bulkgcd_gpu::{simulate_bulk_gcd, BulkGcdLaunch, CostModel, DeviceConfig};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// A pair of moduli found to share a factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Index of the first modulus.
    pub i: usize,
    /// Index of the second modulus.
    pub j: usize,
    /// The shared factor (`gcd(n_i, n_j)`, > 1).
    pub factor: Nat,
}

/// Outcome of a scan.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// Pairs sharing a factor, ordered by (i, j).
    pub findings: Vec<Finding>,
    /// Unordered pairs examined.
    pub pairs_scanned: u64,
    /// Wall-clock time of the scan (host time; for the GPU scan this is
    /// the simulation's own runtime, not the simulated device time).
    pub elapsed: Duration,
    /// Simulated device seconds (GPU scans only).
    pub simulated_seconds: Option<f64>,
}

fn termination_for(a: &Nat, b: &Nat, early: bool) -> Termination {
    if early {
        // s/2 where s is the modulus width: a shared prime has s/2 bits.
        Termination::Early {
            threshold_bits: a.bit_len().min(b.bit_len()) / 2,
        }
    } else {
        Termination::Full
    }
}

/// Scan all pairs of `moduli` on the CPU with `algo`, using every rayon
/// worker. `early` enables the §V early termination (recommended).
///
/// ```
/// use bulkgcd_bigint::Nat;
/// use bulkgcd_bulk::scan_cpu;
/// use bulkgcd_core::Algorithm;
///
/// // Three "moduli"; the first two share the factor 101.
/// let moduli = vec![
///     Nat::from_u64(101 * 211),
///     Nat::from_u64(101 * 223),
///     Nat::from_u64(103 * 227),
/// ];
/// let report = scan_cpu(&moduli, Algorithm::Approximate, false);
/// assert_eq!(report.pairs_scanned, 3);
/// assert_eq!(report.findings.len(), 1);
/// assert_eq!(report.findings[0].factor, Nat::from_u64(101));
/// ```
pub fn scan_cpu(moduli: &[Nat], algo: Algorithm, early: bool) -> ScanReport {
    let start = Instant::now();
    let m = moduli.len();
    if m < 2 {
        return ScanReport {
            findings: Vec::new(),
            pairs_scanned: 0,
            elapsed: start.elapsed(),
            simulated_seconds: None,
        };
    }
    // Group size: the paper uses r = 64 threads per block; any r | m works.
    // Use the largest power of two <= 64 dividing m, falling back to 1.
    let r = (0..=6)
        .rev()
        .map(|k| 1usize << k)
        .find(|r| m.is_multiple_of(*r))
        .unwrap_or(1);
    let grid = GroupedPairs::new(m, r);
    let blocks: Vec<_> = grid.blocks().collect();
    let mut findings: Vec<Finding> = blocks
        .par_iter()
        .map(|&b| {
            // One reusable workspace per block task (worker-local reuse).
            let mut pair = GcdPair::with_capacity(1);
            let mut found = Vec::new();
            for (i, j) in grid.block_pairs(b) {
                let (a, c) = (&moduli[i], &moduli[j]);
                pair.load(a, c);
                let term = termination_for(a, c, early);
                if let GcdOutcome::Gcd(g) = run(algo, &mut pair, term, &mut NoProbe) {
                    if !g.is_one() {
                        found.push(Finding { i, j, factor: g });
                    }
                }
            }
            found
        })
        .flatten()
        .collect();
    findings.sort_by_key(|f| (f.i, f.j));
    ScanReport {
        findings,
        pairs_scanned: grid.total_pairs(),
        elapsed: start.elapsed(),
        simulated_seconds: None,
    }
}

/// Scan all pairs of `moduli` on the simulated GPU.
///
/// Pairs are enumerated in the §VI block order and submitted in launches of
/// `launch_pairs` lanes (bounded memory). Findings are exact; the simulated
/// seconds accumulate across launches.
pub fn scan_gpu_sim(
    moduli: &[Nat],
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch_pairs: usize,
) -> ScanReport {
    let start = Instant::now();
    let m = moduli.len();
    if m < 2 {
        return ScanReport {
            findings: Vec::new(),
            pairs_scanned: 0,
            elapsed: start.elapsed(),
            simulated_seconds: Some(0.0),
        };
    }
    let r = (0..=6)
        .rev()
        .map(|k| 1usize << k)
        .find(|r| m.is_multiple_of(*r))
        .unwrap_or(1);
    let grid = GroupedPairs::new(m, r);
    let early_term = |a: &Nat, b: &Nat| termination_for(a, b, early);

    let mut findings = Vec::new();
    let mut simulated = 0f64;
    let mut batch_idx: Vec<(usize, usize)> = Vec::with_capacity(launch_pairs);
    let mut batch: Vec<(Nat, Nat)> = Vec::with_capacity(launch_pairs);
    let flush = |batch_idx: &mut Vec<(usize, usize)>,
                     batch: &mut Vec<(Nat, Nat)>,
                     findings: &mut Vec<Finding>,
                     simulated: &mut f64| {
        if batch.is_empty() {
            return;
        }
        // One termination setting per launch: take the *smallest* per-pair
        // threshold so a mixed-width batch can never stop before a pair's
        // own shared-prime size (conservative: extra iterations for the
        // wider pairs, never a missed factor).
        let term = batch
            .iter()
            .map(|(a, b)| early_term(a, b))
            .reduce(|acc, t| match (acc, t) {
                (
                    Termination::Early { threshold_bits: x },
                    Termination::Early { threshold_bits: y },
                ) => Termination::Early {
                    threshold_bits: x.min(y),
                },
                _ => Termination::Full,
            })
            .unwrap_or(Termination::Full);
        let launch: BulkGcdLaunch = simulate_bulk_gcd(device, cost, algo, batch, term);
        *simulated += launch.report.seconds;
        for ((i, j), out) in batch_idx.iter().zip(&launch.outcomes) {
            if let GcdOutcome::Gcd(g) = out {
                if !g.is_one() {
                    findings.push(Finding {
                        i: *i,
                        j: *j,
                        factor: g.clone(),
                    });
                }
            }
        }
        batch_idx.clear();
        batch.clear();
    };

    for (i, j) in grid.all_pairs() {
        batch_idx.push((i, j));
        batch.push((moduli[i].clone(), moduli[j].clone()));
        if batch.len() == launch_pairs {
            flush(&mut batch_idx, &mut batch, &mut findings, &mut simulated);
        }
    }
    flush(&mut batch_idx, &mut batch, &mut findings, &mut simulated);
    findings.sort_by_key(|f| (f.i, f.j));
    ScanReport {
        findings,
        pairs_scanned: grid.total_pairs(),
        elapsed: start.elapsed(),
        simulated_seconds: Some(simulated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_rsa::build_corpus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_findings_match_ground_truth(
        findings: &[Finding],
        corpus: &bulkgcd_rsa::Corpus,
    ) {
        assert_eq!(findings.len(), corpus.shared.len());
        for (f, (i, j, p)) in findings.iter().zip(&corpus.shared) {
            assert_eq!((f.i, f.j), (*i, *j));
            assert_eq!(&f.factor, p);
        }
    }

    #[test]
    fn cpu_scan_finds_planted_pairs() {
        let mut rng = StdRng::seed_from_u64(1);
        let corpus = build_corpus(&mut rng, 16, 128, 3);
        for early in [false, true] {
            let rep = scan_cpu(&corpus.moduli(), Algorithm::Approximate, early);
            assert_eq!(rep.pairs_scanned, 16 * 15 / 2);
            check_findings_match_ground_truth(&rep.findings, &corpus);
        }
    }

    #[test]
    fn all_algorithms_agree_on_cpu() {
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = build_corpus(&mut rng, 8, 128, 2);
        let moduli = corpus.moduli();
        let reference = scan_cpu(&moduli, Algorithm::Approximate, true);
        for algo in Algorithm::ALL {
            let rep = scan_cpu(&moduli, algo, true);
            assert_eq!(rep.findings, reference.findings, "{}", algo.name());
        }
    }

    #[test]
    fn gpu_scan_matches_cpu_scan() {
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = build_corpus(&mut rng, 12, 128, 2);
        let moduli = corpus.moduli();
        let cpu = scan_cpu(&moduli, Algorithm::Approximate, true);
        let gpu = scan_gpu_sim(
            &moduli,
            Algorithm::Approximate,
            true,
            &DeviceConfig::gtx_780_ti(),
            &CostModel::default(),
            32,
        );
        assert_eq!(cpu.findings, gpu.findings);
        assert_eq!(cpu.pairs_scanned, gpu.pairs_scanned);
        assert!(gpu.simulated_seconds.unwrap() > 0.0);
    }

    #[test]
    fn clean_corpus_yields_no_findings() {
        let mut rng = StdRng::seed_from_u64(4);
        let corpus = build_corpus(&mut rng, 8, 96, 0);
        let rep = scan_cpu(&corpus.moduli(), Algorithm::Approximate, true);
        assert!(rep.findings.is_empty());
    }

    #[test]
    fn degenerate_corpora() {
        let rep = scan_cpu(&[], Algorithm::Approximate, true);
        assert_eq!(rep.pairs_scanned, 0);
        let rep = scan_cpu(&[Nat::from(15u32)], Algorithm::Approximate, true);
        assert_eq!(rep.pairs_scanned, 0);
    }

    #[test]
    fn odd_corpus_size_uses_group_size_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let corpus = build_corpus(&mut rng, 7, 96, 1);
        let rep = scan_cpu(&corpus.moduli(), Algorithm::Approximate, true);
        assert_eq!(rep.pairs_scanned, 21);
        check_findings_match_ground_truth(&rep.findings, &corpus);
    }
}
