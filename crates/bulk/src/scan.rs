//! All-pairs weak-key scans.
//!
//! * [`scan_cpu`] — the multithreaded host scan: rayon workers walk
//!   contiguous runs of §VI blocks, each with one reusable
//!   [`GcdPair`] workspace and one findings vector for its whole run, and
//!   read operands straight out of a [`ModuliArena`] — zero per-pair heap
//!   allocations in the steady state;
//! * [`scan_gpu_sim`] — the same scan priced on the simulated GPU, batched
//!   into kernel launches like the paper's runs; launches are dispatched
//!   across rayon workers and merged in launch order, so findings and
//!   simulated seconds are identical to the serial reference
//!   ([`scan_gpu_sim_serial`]).
//!
//! Both produce identical findings; only the clock differs.

use crate::arena::ModuliArena;
use crate::pairing::{group_size_for, BlockId, GroupedPairs};
use bulkgcd_bigint::{Limb, Nat};
use bulkgcd_core::{run_in_place, Algorithm, GcdOutcome, GcdPair, GcdStatus, NoProbe, Termination};
use bulkgcd_gpu::{simulate_bulk_gcd, CostModel, DeviceConfig};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// A pair of moduli found to share a factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Index of the first modulus.
    pub i: usize,
    /// Index of the second modulus.
    pub j: usize,
    /// The shared factor (`gcd(n_i, n_j)`, > 1).
    pub factor: Nat,
}

/// Outcome of a scan.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// Pairs sharing a factor, ordered by (i, j).
    pub findings: Vec<Finding>,
    /// Unordered pairs examined.
    pub pairs_scanned: u64,
    /// Wall-clock time of the scan (host time; for the GPU scan this is
    /// the simulation's own runtime, not the simulated device time).
    pub elapsed: Duration,
    /// Simulated device seconds (GPU scans only).
    pub simulated_seconds: Option<f64>,
}

#[inline]
fn termination_for(arena: &ModuliArena, i: usize, j: usize, early: bool) -> Termination {
    if early {
        // s/2 where s is the modulus width: a shared prime has s/2 bits.
        Termination::Early {
            threshold_bits: arena.bit_len(i).min(arena.bit_len(j)) / 2,
        }
    } else {
        Termination::Full
    }
}

/// Fold per-pair termination settings into the single setting a simulated
/// kernel launch applies to every lane.
///
/// The fold is conservative in both directions: any [`Termination::Full`]
/// pair forces the whole launch to `Full` (an early threshold from some
/// *other* pair must never cut a full run short), and a batch of
/// [`Termination::Early`] pairs of mixed widths takes the **smallest**
/// threshold (extra iterations for the wider pairs, never a missed factor).
/// An empty batch gets `Full`.
pub fn combine_terminations(terms: impl IntoIterator<Item = Termination>) -> Termination {
    terms
        .into_iter()
        .reduce(|acc, t| match (acc, t) {
            (
                Termination::Early { threshold_bits: x },
                Termination::Early { threshold_bits: y },
            ) => Termination::Early {
                threshold_bits: x.min(y),
            },
            // Full on either side wins: never narrow a Full pair.
            (Termination::Full, _) | (_, Termination::Full) => Termination::Full,
        })
        .unwrap_or(Termination::Full)
}

/// Scan one §VI block of `grid` against `arena`, appending findings to
/// `found`. `pair` is caller-provided scratch (reused across blocks by the
/// scan workers); after warmup the loop performs **no heap allocations**
/// except when a finding is actually pushed — the property the root
/// crate's allocation-counting test pins down.
pub fn scan_block_into(
    arena: &ModuliArena,
    grid: &GroupedPairs,
    block: BlockId,
    algo: Algorithm,
    early: bool,
    pair: &mut GcdPair,
    found: &mut Vec<Finding>,
) {
    for (i, j) in grid.block_pair_iter(block) {
        pair.load_from_limbs(arena.limbs(i), arena.limbs(j));
        let term = termination_for(arena, i, j, early);
        if run_in_place(algo, pair, term, &mut NoProbe) == GcdStatus::Done && !pair.gcd_is_one() {
            found.push(Finding {
                i,
                j,
                factor: pair.x_nat(),
            });
        }
    }
}

fn empty_report(start: Instant, simulated: Option<f64>) -> ScanReport {
    ScanReport {
        findings: Vec::new(),
        pairs_scanned: 0,
        elapsed: start.elapsed(),
        simulated_seconds: simulated,
    }
}

/// Scan all pairs of `moduli` on the CPU with `algo`, using every rayon
/// worker. `early` enables the §V early termination (recommended).
///
/// Packs the corpus into a [`ModuliArena`] first; use [`scan_cpu_arena`]
/// to reuse an arena across scans.
///
/// ```
/// use bulkgcd_bigint::Nat;
/// use bulkgcd_bulk::scan_cpu;
/// use bulkgcd_core::Algorithm;
///
/// // Three "moduli"; the first two share the factor 101.
/// let moduli = vec![
///     Nat::from_u64(101 * 211),
///     Nat::from_u64(101 * 223),
///     Nat::from_u64(103 * 227),
/// ];
/// let report = scan_cpu(&moduli, Algorithm::Approximate, false);
/// assert_eq!(report.pairs_scanned, 3);
/// assert_eq!(report.findings.len(), 1);
/// assert_eq!(report.findings[0].factor, Nat::from_u64(101));
/// ```
pub fn scan_cpu(moduli: &[Nat], algo: Algorithm, early: bool) -> ScanReport {
    let arena = ModuliArena::from_moduli(moduli);
    scan_cpu_arena(&arena, algo, early)
}

/// [`scan_cpu`] over a pre-packed [`ModuliArena`].
///
/// Each rayon worker takes a contiguous run of §VI blocks with one
/// [`GcdPair`] workspace and one findings vector for the whole run
/// (worker-local scratch, not per-block), reading operands straight from
/// the arena.
pub fn scan_cpu_arena(arena: &ModuliArena, algo: Algorithm, early: bool) -> ScanReport {
    let start = Instant::now();
    let m = arena.len();
    if m < 2 {
        return empty_report(start, None);
    }
    let grid = GroupedPairs::new(m, group_size_for(m));
    let blocks: Vec<BlockId> = grid.blocks().collect();
    let workers = rayon::current_num_threads().max(1);
    let run_len = blocks.len().div_ceil(workers).max(1);
    let mut findings: Vec<Finding> = blocks
        .par_chunks(run_len)
        .map(|run| {
            let mut pair = GcdPair::with_capacity(arena.stride());
            let mut found = Vec::new();
            for &b in run {
                scan_block_into(arena, &grid, b, algo, early, &mut pair, &mut found);
            }
            found
        })
        .flatten()
        .collect();
    findings.sort_by_key(|f| (f.i, f.j));
    ScanReport {
        findings,
        pairs_scanned: grid.total_pairs(),
        elapsed: start.elapsed(),
        simulated_seconds: None,
    }
}

/// Simulate one kernel launch over the index pairs in `lanes`, borrowing
/// operands from the arena. Returns the launch's findings (in lane order)
/// and its simulated seconds.
fn simulate_launch(
    arena: &ModuliArena,
    lanes: &[(usize, usize)],
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
) -> (Vec<Finding>, f64) {
    let term = combine_terminations(
        lanes
            .iter()
            .map(|&(i, j)| termination_for(arena, i, j, early)),
    );
    let inputs: Vec<(&[Limb], &[Limb])> = lanes
        .iter()
        .map(|&(i, j)| (arena.limbs(i), arena.limbs(j)))
        .collect();
    let launch = simulate_bulk_gcd(device, cost, algo, &inputs, term);
    let mut found = Vec::new();
    for (&(i, j), out) in lanes.iter().zip(&launch.outcomes) {
        if let GcdOutcome::Gcd(g) = out {
            if !g.is_one() {
                found.push(Finding {
                    i,
                    j,
                    factor: g.clone(),
                });
            }
        }
    }
    (found, launch.report.seconds)
}

fn merge_launches(
    start: Instant,
    grid: &GroupedPairs,
    results: Vec<(Vec<Finding>, f64)>,
) -> ScanReport {
    let mut findings = Vec::new();
    let mut simulated = 0f64;
    for (found, seconds) in results {
        findings.extend(found);
        simulated += seconds;
    }
    findings.sort_by_key(|f| (f.i, f.j));
    ScanReport {
        findings,
        pairs_scanned: grid.total_pairs(),
        elapsed: start.elapsed(),
        simulated_seconds: Some(simulated),
    }
}

/// Scan all pairs of `moduli` on the simulated GPU.
///
/// Pairs are enumerated in the §VI block order and submitted in launches of
/// `launch_pairs` lanes (bounded memory), borrowed from a [`ModuliArena`]
/// without cloning. Launches run concurrently across rayon workers; the
/// merge is in launch order, so findings and summed simulated seconds are
/// identical to [`scan_gpu_sim_serial`]. Findings are exact.
pub fn scan_gpu_sim(
    moduli: &[Nat],
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch_pairs: usize,
) -> ScanReport {
    let arena = ModuliArena::from_moduli(moduli);
    scan_gpu_sim_arena(&arena, algo, early, device, cost, launch_pairs)
}

/// [`scan_gpu_sim`] over a pre-packed [`ModuliArena`].
pub fn scan_gpu_sim_arena(
    arena: &ModuliArena,
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch_pairs: usize,
) -> ScanReport {
    let start = Instant::now();
    if arena.len() < 2 {
        return empty_report(start, Some(0.0));
    }
    let grid = GroupedPairs::new(arena.len(), group_size_for(arena.len()));
    let all: Vec<(usize, usize)> = grid.all_pairs().collect();
    let results: Vec<(Vec<Finding>, f64)> = all
        .par_chunks(launch_pairs.max(1))
        .map(|lanes| simulate_launch(arena, lanes, algo, early, device, cost))
        .collect();
    merge_launches(start, &grid, results)
}

/// Serial reference for [`scan_gpu_sim`]: same launches, same order, one
/// after another on the calling thread. The parallel scan must match this
/// byte for byte (findings) and launch for launch (simulated seconds are
/// summed in the same order, so even the floating-point sum is identical).
pub fn scan_gpu_sim_serial(
    moduli: &[Nat],
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch_pairs: usize,
) -> ScanReport {
    let start = Instant::now();
    let arena = ModuliArena::from_moduli(moduli);
    if arena.len() < 2 {
        return empty_report(start, Some(0.0));
    }
    let grid = GroupedPairs::new(arena.len(), group_size_for(arena.len()));
    let all: Vec<(usize, usize)> = grid.all_pairs().collect();
    let results: Vec<(Vec<Finding>, f64)> = all
        .chunks(launch_pairs.max(1))
        .map(|lanes| simulate_launch(&arena, lanes, algo, early, device, cost))
        .collect();
    merge_launches(start, &grid, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::prime::random_prime;
    use bulkgcd_bigint::random::random_odd_bits;
    use bulkgcd_rsa::build_corpus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_findings_match_ground_truth(findings: &[Finding], corpus: &bulkgcd_rsa::Corpus) {
        assert_eq!(findings.len(), corpus.shared.len());
        for (f, (i, j, p)) in findings.iter().zip(&corpus.shared) {
            assert_eq!((f.i, f.j), (*i, *j));
            assert_eq!(&f.factor, p);
        }
    }

    #[test]
    fn cpu_scan_finds_planted_pairs() {
        let mut rng = StdRng::seed_from_u64(1);
        let corpus = build_corpus(&mut rng, 16, 128, 3);
        for early in [false, true] {
            let rep = scan_cpu(&corpus.moduli(), Algorithm::Approximate, early);
            assert_eq!(rep.pairs_scanned, 16 * 15 / 2);
            check_findings_match_ground_truth(&rep.findings, &corpus);
        }
    }

    #[test]
    fn all_algorithms_agree_on_cpu() {
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = build_corpus(&mut rng, 8, 128, 2);
        let moduli = corpus.moduli();
        let reference = scan_cpu(&moduli, Algorithm::Approximate, true);
        for algo in Algorithm::ALL {
            let rep = scan_cpu(&moduli, algo, true);
            assert_eq!(rep.findings, reference.findings, "{}", algo.name());
        }
    }

    #[test]
    fn gpu_scan_matches_cpu_scan() {
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = build_corpus(&mut rng, 12, 128, 2);
        let moduli = corpus.moduli();
        let cpu = scan_cpu(&moduli, Algorithm::Approximate, true);
        let gpu = scan_gpu_sim(
            &moduli,
            Algorithm::Approximate,
            true,
            &DeviceConfig::gtx_780_ti(),
            &CostModel::default(),
            32,
        );
        assert_eq!(cpu.findings, gpu.findings);
        assert_eq!(cpu.pairs_scanned, gpu.pairs_scanned);
        assert!(gpu.simulated_seconds.unwrap() > 0.0);
    }

    #[test]
    fn parallel_gpu_sim_matches_serial_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let corpus = build_corpus(&mut rng, 12, 128, 3);
        let moduli = corpus.moduli();
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        for launch_pairs in [1usize, 7, 32, 1000] {
            let par = scan_gpu_sim(
                &moduli,
                Algorithm::Approximate,
                true,
                &device,
                &cost,
                launch_pairs,
            );
            let ser = scan_gpu_sim_serial(
                &moduli,
                Algorithm::Approximate,
                true,
                &device,
                &cost,
                launch_pairs,
            );
            assert_eq!(par.findings, ser.findings, "launch_pairs={launch_pairs}");
            assert_eq!(par.pairs_scanned, ser.pairs_scanned);
            let (ps, ss) = (
                par.simulated_seconds.unwrap(),
                ser.simulated_seconds.unwrap(),
            );
            assert!(
                (ps - ss).abs() <= 1e-12 * ss.max(1.0),
                "launch_pairs={launch_pairs}: parallel {ps} vs serial {ss}"
            );
        }
    }

    #[test]
    fn combine_terminations_folds_conservatively() {
        let e = |bits| Termination::Early {
            threshold_bits: bits,
        };
        // Mixed widths: smallest threshold wins.
        assert_eq!(combine_terminations([e(64), e(48), e(64)]), e(48));
        // Any Full pair pins the whole launch to Full, in either fold order.
        assert_eq!(
            combine_terminations([e(64), Termination::Full, e(48)]),
            Termination::Full
        );
        assert_eq!(
            combine_terminations([Termination::Full, e(64)]),
            Termination::Full
        );
        assert_eq!(
            combine_terminations([e(64), Termination::Full]),
            Termination::Full
        );
        // Degenerate batches.
        assert_eq!(combine_terminations([]), Termination::Full);
        assert_eq!(combine_terminations([Termination::Full]), Termination::Full);
        assert_eq!(combine_terminations([e(10)]), e(10));
    }

    #[test]
    fn mixed_width_batch_still_finds_shared_factor() {
        // Regression for the per-launch termination fold: a batch mixing
        // modulus widths must take the narrowest pair's threshold, so the
        // wide pair's shared factor survives early termination.
        let mut rng = StdRng::seed_from_u64(8);
        let p = random_prime(&mut rng, 64);
        let wide_a = p.mul(&random_prime(&mut rng, 64)); // 128-bit, shares p
        let wide_b = p.mul(&random_prime(&mut rng, 64));
        let moduli = vec![
            wide_a,
            random_odd_bits(&mut rng, 96), // narrower lanes in the same launch
            random_odd_bits(&mut rng, 96),
            wide_b,
        ];
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        // One launch covering all pairs (launch_pairs > m(m-1)/2).
        let gpu = scan_gpu_sim(&moduli, Algorithm::Approximate, true, &device, &cost, 64);
        let cpu = scan_cpu(&moduli, Algorithm::Approximate, true);
        assert_eq!(gpu.findings, cpu.findings);
        assert_eq!(gpu.findings.len(), 1);
        assert_eq!((gpu.findings[0].i, gpu.findings[0].j), (0, 3));
        assert_eq!(gpu.findings[0].factor, p);
    }

    #[test]
    fn clean_corpus_yields_no_findings() {
        let mut rng = StdRng::seed_from_u64(4);
        let corpus = build_corpus(&mut rng, 8, 96, 0);
        let rep = scan_cpu(&corpus.moduli(), Algorithm::Approximate, true);
        assert!(rep.findings.is_empty());
    }

    #[test]
    fn degenerate_corpora() {
        let rep = scan_cpu(&[], Algorithm::Approximate, true);
        assert_eq!(rep.pairs_scanned, 0);
        let rep = scan_cpu(&[Nat::from(15u32)], Algorithm::Approximate, true);
        assert_eq!(rep.pairs_scanned, 0);
    }

    #[test]
    fn odd_corpus_size_uses_group_size_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let corpus = build_corpus(&mut rng, 7, 96, 1);
        let rep = scan_cpu(&corpus.moduli(), Algorithm::Approximate, true);
        assert_eq!(rep.pairs_scanned, 21);
        check_findings_match_ground_truth(&rep.findings, &corpus);
    }

    #[test]
    fn arena_scan_matches_slice_scan() {
        let mut rng = StdRng::seed_from_u64(6);
        let corpus = build_corpus(&mut rng, 8, 128, 2);
        let moduli = corpus.moduli();
        let arena = ModuliArena::from_moduli(&moduli);
        let via_arena = scan_cpu_arena(&arena, Algorithm::Approximate, true);
        let via_slice = scan_cpu(&moduli, Algorithm::Approximate, true);
        assert_eq!(via_arena.findings, via_slice.findings);
        assert_eq!(via_arena.pairs_scanned, via_slice.pairs_scanned);
    }
}
