//! All-pairs weak-key scans.
//!
//! * [`scan_cpu`] — the multithreaded host scan: rayon workers walk
//!   contiguous runs of §VI blocks, each with one reusable
//!   [`GcdPair`] workspace and one findings vector for its whole run, and
//!   read operands straight out of a [`ModuliArena`] — zero per-pair heap
//!   allocations in the steady state;
//! * [`scan_lockstep`] — the lockstep SIMT host scan: warps of pairs run
//!   through the [`LockstepEngine`](crate::lockstep::LockstepEngine)'s
//!   column-major vectorized AEA, one worker-local engine per rayon worker;
//! * [`scan_gpu_sim`] — the same scan priced on the simulated GPU, batched
//!   into kernel launches like the paper's runs; Approximate-Euclid
//!   launches execute on the lockstep engine (costs *measured* from live
//!   execution), other algorithms replay traces. Launches are dispatched
//!   across rayon workers with worker-local scratch reused across
//!   launches, and merged in launch order, so findings and simulated
//!   seconds are identical to the serial reference
//!   ([`scan_gpu_sim_serial`]).
//!
//! All paths produce identical findings; only the clock differs.

use crate::arena::{ArenaError, ModuliArena};
use crate::checkpoint::{JournalError, JournalHeader, LaunchRecord, ScanJournal};
use crate::fault::FaultPlan;
use crate::lockstep::LockstepEngine;
use crate::pairing::{group_size_for, BlockId, GroupedPairs};
use bulkgcd_bigint::{Limb, Nat};
use bulkgcd_core::{run_in_place, Algorithm, GcdOutcome, GcdPair, GcdStatus, NoProbe, Termination};
use bulkgcd_gpu::{
    retry_launch, schedule, simulate_bulk_gcd, CostModel, DeviceConfig, RetryPolicy, WarpWork,
};
use rayon::prelude::*;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What a finding means for the two moduli involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A proper shared factor: `1 < gcd < n_i, n_j`. Both keys factor.
    SharedPrime,
    /// `gcd(n_i, n_j) == n_i` (or `n_j`) — the moduli are duplicates (or
    /// one divides the other). The pair is vulnerable but GCD alone cannot
    /// split either modulus, so it must not be reported as a shared prime.
    DuplicateModulus,
}

/// A pair of moduli found to share a factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Index of the first modulus.
    pub i: usize,
    /// Index of the second modulus.
    pub j: usize,
    /// What the factor means (proper shared prime vs duplicate modulus).
    pub kind: FindingKind,
    /// The shared factor (`gcd(n_i, n_j)`, > 1).
    pub factor: Nat,
}

/// Outcome of a scan.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// Pairs sharing a factor, ordered by (i, j).
    pub findings: Vec<Finding>,
    /// Unordered pairs examined.
    pub pairs_scanned: u64,
    /// Findings of kind [`FindingKind::DuplicateModulus`].
    pub duplicate_pairs: u64,
    /// Wall-clock time of the scan (host time; for the GPU scan this is
    /// the simulation's own runtime, not the simulated device time).
    pub elapsed: Duration,
    /// Simulated device seconds (GPU scans only).
    pub simulated_seconds: Option<f64>,
}

/// Why a scan did not produce a report.
#[derive(Debug)]
pub enum ScanError {
    /// The corpus could not be packed into a [`ModuliArena`].
    Arena(ArenaError),
    /// The checkpoint journal rejected the run (I/O failure, corruption,
    /// or a journal written by a different scan configuration).
    Journal(JournalError),
    /// An injected kill fired at a launch boundary: the scan stopped as a
    /// crashed process would, leaving the journal resumable. Only
    /// [`scan_gpu_sim_resumable`] with a killing [`FaultPlan`] returns this.
    Interrupted {
        /// The launch boundary the kill fired at (not yet executed).
        launch: u64,
    },
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::Arena(e) => write!(f, "corpus rejected: {e}"),
            ScanError::Journal(e) => write!(f, "checkpoint journal: {e}"),
            ScanError::Interrupted { launch } => write!(
                f,
                "scan killed at launch boundary {launch}; resume it from the journal"
            ),
        }
    }
}

impl std::error::Error for ScanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScanError::Arena(e) => Some(e),
            ScanError::Journal(e) => Some(e),
            ScanError::Interrupted { .. } => None,
        }
    }
}

impl From<ArenaError> for ScanError {
    fn from(e: ArenaError) -> Self {
        ScanError::Arena(e)
    }
}

impl From<JournalError> for ScanError {
    fn from(e: JournalError) -> Self {
        ScanError::Journal(e)
    }
}

/// Classify a non-trivial GCD: a factor equal to either modulus marks a
/// duplicate (or dividing) modulus, anything else is a proper shared prime.
/// Compares borrowed limb slices — no allocation on the scan path.
#[inline]
fn kind_of(arena: &ModuliArena, i: usize, j: usize, factor: &Nat) -> FindingKind {
    if factor.as_limbs() == arena.limbs_trimmed(i) || factor.as_limbs() == arena.limbs_trimmed(j) {
        FindingKind::DuplicateModulus
    } else {
        FindingKind::SharedPrime
    }
}

fn count_duplicates(findings: &[Finding]) -> u64 {
    findings
        .iter()
        .filter(|f| f.kind == FindingKind::DuplicateModulus)
        .count() as u64
}

#[inline]
fn termination_for(arena: &ModuliArena, i: usize, j: usize, early: bool) -> Termination {
    if early {
        // s/2 where s is the modulus width: a shared prime has s/2 bits.
        Termination::Early {
            threshold_bits: arena.bit_len(i).min(arena.bit_len(j)) / 2,
        }
    } else {
        Termination::Full
    }
}

/// Fold per-pair termination settings into the single setting a simulated
/// kernel launch applies to every lane.
///
/// The fold is conservative in both directions: any [`Termination::Full`]
/// pair forces the whole launch to `Full` (an early threshold from some
/// *other* pair must never cut a full run short), and a batch of
/// [`Termination::Early`] pairs of mixed widths takes the **smallest**
/// threshold (extra iterations for the wider pairs, never a missed factor).
/// An empty batch gets `Full`.
pub fn combine_terminations(terms: impl IntoIterator<Item = Termination>) -> Termination {
    terms
        .into_iter()
        .reduce(|acc, t| match (acc, t) {
            (
                Termination::Early { threshold_bits: x },
                Termination::Early { threshold_bits: y },
            ) => Termination::Early {
                threshold_bits: x.min(y),
            },
            // Full on either side wins: never narrow a Full pair.
            (Termination::Full, _) | (_, Termination::Full) => Termination::Full,
        })
        .unwrap_or(Termination::Full)
}

/// Scan one §VI block of `grid` against `arena`, appending findings to
/// `found`. `pair` is caller-provided scratch (reused across blocks by the
/// scan workers); after warmup the loop performs **no heap allocations**
/// except when a finding is actually pushed — the property the root
/// crate's allocation-counting test pins down.
pub fn scan_block_into(
    arena: &ModuliArena,
    grid: &GroupedPairs,
    block: BlockId,
    algo: Algorithm,
    early: bool,
    pair: &mut GcdPair,
    found: &mut Vec<Finding>,
) {
    for (i, j) in grid.block_pair_iter(block) {
        pair.load_from_limbs(arena.limbs(i), arena.limbs(j));
        let term = termination_for(arena, i, j, early);
        if run_in_place(algo, pair, term, &mut NoProbe) == GcdStatus::Done && !pair.gcd_is_one() {
            let factor = pair.x_nat();
            found.push(Finding {
                i,
                j,
                kind: kind_of(arena, i, j, &factor),
                factor,
            });
        }
    }
}

fn empty_report(start: Instant, simulated: Option<f64>) -> ScanReport {
    ScanReport {
        findings: Vec::new(),
        pairs_scanned: 0,
        duplicate_pairs: 0,
        elapsed: start.elapsed(),
        simulated_seconds: simulated,
    }
}

/// Scan all pairs of `moduli` on the CPU with `algo`, using every rayon
/// worker. `early` enables the §V early termination (recommended).
///
/// Packs the corpus into a [`ModuliArena`] first — an empty or oversized
/// corpus is reported as [`ScanError::Arena`] instead of panicking; use
/// [`scan_cpu_arena`] to reuse an arena across scans.
///
/// ```
/// use bulkgcd_bigint::Nat;
/// use bulkgcd_bulk::scan_cpu;
/// use bulkgcd_core::Algorithm;
///
/// // Three "moduli"; the first two share the factor 101.
/// let moduli = vec![
///     Nat::from_u64(101 * 211),
///     Nat::from_u64(101 * 223),
///     Nat::from_u64(103 * 227),
/// ];
/// let report = scan_cpu(&moduli, Algorithm::Approximate, false).unwrap();
/// assert_eq!(report.pairs_scanned, 3);
/// assert_eq!(report.findings.len(), 1);
/// assert_eq!(report.findings[0].factor, Nat::from_u64(101));
/// ```
pub fn scan_cpu(moduli: &[Nat], algo: Algorithm, early: bool) -> Result<ScanReport, ScanError> {
    let arena = ModuliArena::try_from_moduli(moduli)?;
    Ok(scan_cpu_arena(&arena, algo, early))
}

/// [`scan_cpu`] over a pre-packed [`ModuliArena`].
///
/// Each rayon worker takes a contiguous run of §VI blocks with one
/// [`GcdPair`] workspace and one findings vector for the whole run
/// (worker-local scratch, not per-block), reading operands straight from
/// the arena.
pub fn scan_cpu_arena(arena: &ModuliArena, algo: Algorithm, early: bool) -> ScanReport {
    let start = Instant::now();
    let m = arena.len();
    if m < 2 {
        return empty_report(start, None);
    }
    let grid = GroupedPairs::new(m, group_size_for(m));
    let blocks: Vec<BlockId> = grid.blocks().collect();
    let workers = rayon::current_num_threads().max(1);
    let run_len = blocks.len().div_ceil(workers).max(1);
    let mut findings: Vec<Finding> = blocks
        .par_chunks(run_len)
        .map(|run| {
            let mut pair = GcdPair::with_capacity(arena.stride());
            let mut found = Vec::new();
            for &b in run {
                scan_block_into(arena, &grid, b, algo, early, &mut pair, &mut found);
            }
            found
        })
        .flatten()
        .collect();
    findings.sort_by_key(|f| (f.i, f.j));
    ScanReport {
        duplicate_pairs: count_duplicates(&findings),
        findings,
        pairs_scanned: grid.total_pairs(),
        elapsed: start.elapsed(),
        simulated_seconds: None,
    }
}

/// The per-launch termination: the conservative fold of the lanes'
/// per-pair settings (what a real kernel launch applies to every lane).
fn launch_termination(arena: &ModuliArena, lanes: &[(usize, usize)], early: bool) -> Termination {
    combine_terminations(
        lanes
            .iter()
            .map(|&(i, j)| termination_for(arena, i, j, early)),
    )
}

/// Harvest findings (with kinds) from a launch's per-lane outcomes.
fn findings_from_outcomes(
    arena: &ModuliArena,
    lanes: &[(usize, usize)],
    outcomes: &[GcdOutcome],
) -> Vec<Finding> {
    let mut found = Vec::new();
    for (&(i, j), out) in lanes.iter().zip(outcomes) {
        if let GcdOutcome::Gcd(g) = out {
            if !g.is_one() {
                found.push(Finding {
                    i,
                    j,
                    kind: kind_of(arena, i, j, g),
                    factor: g.clone(),
                });
            }
        }
    }
    found
}

/// Simulate one kernel launch over the index pairs in `lanes`, borrowing
/// operands from the arena. Returns the launch's findings (in lane order)
/// and its simulated seconds.
fn simulate_launch(
    arena: &ModuliArena,
    lanes: &[(usize, usize)],
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
) -> (Vec<Finding>, f64) {
    let term = launch_termination(arena, lanes, early);
    let inputs: Vec<(&[Limb], &[Limb])> = lanes
        .iter()
        .map(|&(i, j)| (arena.limbs(i), arena.limbs(j)))
        .collect();
    let launch = simulate_bulk_gcd(device, cost, algo, &inputs, term);
    let found = findings_from_outcomes(arena, lanes, &launch.outcomes);
    (found, launch.report.seconds)
}

/// Worker-local launch-execution state, built once per rayon worker and
/// reused across every launch that worker runs: the lockstep engine (operand
/// planes and all scratch rows) plus the per-launch warp-work buffer.
/// Rebuilding these per launch was the `gpu_sim_host` overhead regression.
struct LaunchScratch {
    engine: LockstepEngine,
    warps: Vec<WarpWork>,
}

impl LaunchScratch {
    fn new(warp_size: usize) -> Self {
        LaunchScratch {
            engine: LockstepEngine::new(warp_size.max(1)),
            warps: Vec::new(),
        }
    }
}

/// Harvest the findings of one executed warp from the engine's lanes.
fn harvest_warp(
    arena: &ModuliArena,
    engine: &LockstepEngine,
    warp: &[(usize, usize)],
    found: &mut Vec<Finding>,
) {
    for (t, &(i, j)) in warp.iter().enumerate() {
        if engine.lane_status(t) == GcdStatus::Done && !engine.lane_gcd_is_one(t) {
            let factor = engine.lane_gcd_nat(t);
            found.push(Finding {
                i,
                j,
                kind: kind_of(arena, i, j, &factor),
                factor,
            });
        }
    }
}

/// Execute one kernel launch on the live lockstep engine: warps of
/// `device.warp_size` lanes run the column-major vectorized AEA, and the
/// launch is priced from the [`WarpWork`] *measured* during execution —
/// same accumulator, same scheduler, and (per the equivalence suite) the
/// same numbers as the trace-replay path, so simulated seconds stay
/// bitwise comparable across drivers.
fn lockstep_launch(
    arena: &ModuliArena,
    lanes: &[(usize, usize)],
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    scratch: &mut LaunchScratch,
) -> (Vec<Finding>, f64) {
    let term = launch_termination(arena, lanes, early);
    let words_per_transaction = device.transaction_bytes / 4;
    scratch.warps.clear();
    let mut found = Vec::new();
    let w = scratch.engine.width();
    let mut inputs: Vec<(&[Limb], &[Limb])> = Vec::with_capacity(w);
    for warp in lanes.chunks(w) {
        inputs.clear();
        inputs.extend(warp.iter().map(|&(i, j)| (arena.limbs(i), arena.limbs(j))));
        let work = scratch
            .engine
            .run_warp(&inputs, term, Some((cost, words_per_transaction)))
            .expect("measurement was requested");
        scratch.warps.push(work);
        harvest_warp(arena, &scratch.engine, warp, &mut found);
    }
    let report = schedule(device, &scratch.warps);
    (found, report.seconds)
}

/// One launch, dispatched to its execution backend: Approximate Euclid runs
/// on the live lockstep engine, the other variants replay traces through
/// the cost model (their lockstep interest is comparative, not throughput).
fn launch_on_device(
    arena: &ModuliArena,
    lanes: &[(usize, usize)],
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    scratch: &mut LaunchScratch,
) -> (Vec<Finding>, f64) {
    match algo {
        Algorithm::Approximate => lockstep_launch(arena, lanes, early, device, cost, scratch),
        _ => simulate_launch(arena, lanes, algo, early, device, cost),
    }
}

fn merge_launches(
    start: Instant,
    grid: &GroupedPairs,
    results: Vec<(Vec<Finding>, f64)>,
) -> ScanReport {
    let mut findings = Vec::new();
    let mut simulated = 0f64;
    for (found, seconds) in results {
        findings.extend(found);
        simulated += seconds;
    }
    findings.sort_by_key(|f| (f.i, f.j));
    ScanReport {
        duplicate_pairs: count_duplicates(&findings),
        findings,
        pairs_scanned: grid.total_pairs(),
        elapsed: start.elapsed(),
        simulated_seconds: Some(simulated),
    }
}

/// Scan all pairs of `moduli` on the simulated GPU.
///
/// Pairs are enumerated in the §VI block order and submitted in launches of
/// `launch_pairs` lanes (bounded memory), borrowed from a [`ModuliArena`]
/// without cloning. Launches run concurrently across rayon workers; the
/// merge is in launch order, so findings and summed simulated seconds are
/// identical to [`scan_gpu_sim_serial`]. Findings are exact.
pub fn scan_gpu_sim(
    moduli: &[Nat],
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch_pairs: usize,
) -> Result<ScanReport, ScanError> {
    let arena = ModuliArena::try_from_moduli(moduli)?;
    Ok(scan_gpu_sim_arena(
        &arena,
        algo,
        early,
        device,
        cost,
        launch_pairs,
    ))
}

/// [`scan_gpu_sim`] over a pre-packed [`ModuliArena`].
pub fn scan_gpu_sim_arena(
    arena: &ModuliArena,
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch_pairs: usize,
) -> ScanReport {
    let start = Instant::now();
    if arena.len() < 2 {
        return empty_report(start, Some(0.0));
    }
    let grid = GroupedPairs::new(arena.len(), group_size_for(arena.len()));
    let all: Vec<(usize, usize)> = grid.all_pairs().collect();
    let results: Vec<(Vec<Finding>, f64)> = all
        .par_chunks(launch_pairs.max(1))
        .map_init(
            || LaunchScratch::new(device.warp_size),
            |scratch, lanes| launch_on_device(arena, lanes, algo, early, device, cost, scratch),
        )
        .collect();
    merge_launches(start, &grid, results)
}

/// Serial reference for [`scan_gpu_sim`]: same launches, same order, one
/// after another on the calling thread. The parallel scan must match this
/// byte for byte (findings) and launch for launch (simulated seconds are
/// summed in the same order, so even the floating-point sum is identical).
pub fn scan_gpu_sim_serial(
    moduli: &[Nat],
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch_pairs: usize,
) -> Result<ScanReport, ScanError> {
    let start = Instant::now();
    let arena = ModuliArena::try_from_moduli(moduli)?;
    if arena.len() < 2 {
        return Ok(empty_report(start, Some(0.0)));
    }
    let grid = GroupedPairs::new(arena.len(), group_size_for(arena.len()));
    let all: Vec<(usize, usize)> = grid.all_pairs().collect();
    let mut scratch = LaunchScratch::new(device.warp_size);
    let results: Vec<(Vec<Finding>, f64)> = all
        .chunks(launch_pairs.max(1))
        .map(|lanes| launch_on_device(&arena, lanes, algo, early, device, cost, &mut scratch))
        .collect();
    Ok(merge_launches(start, &grid, results))
}

/// Scan all pairs of `moduli` on the host through the lockstep SIMT engine.
///
/// Pairs are enumerated in §VI block order, grouped into warps of
/// `warp_width` lanes, and executed by the
/// [`LockstepEngine`](crate::lockstep::LockstepEngine)'s column-major
/// vectorized AEA — one shared instruction stream per warp, terminated
/// lanes masked off. Each rayon worker owns one engine for its whole run
/// of warps, so the steady state allocates nothing per warp beyond the
/// borrowed-operand list. Each warp applies the conservative per-launch
/// termination fold of its lanes (see [`combine_terminations`]), exactly
/// like a simulated kernel launch of the same width.
///
/// Findings are identical to [`scan_cpu`] for corpora of uniform modulus
/// width; on mixed-width corpora a warp's narrowest pair sets the shared
/// early-termination threshold (never missing a factor, possibly iterating
/// longer — the same trade the GPU paths make).
///
/// ```
/// use bulkgcd_bigint::Nat;
/// use bulkgcd_bulk::scan_lockstep;
///
/// let moduli = vec![
///     Nat::from_u64(101 * 211),
///     Nat::from_u64(101 * 223),
///     Nat::from_u64(103 * 227),
/// ];
/// let report = scan_lockstep(&moduli, false, 8).unwrap();
/// assert_eq!(report.findings.len(), 1);
/// assert_eq!(report.findings[0].factor, Nat::from_u64(101));
/// ```
pub fn scan_lockstep(
    moduli: &[Nat],
    early: bool,
    warp_width: usize,
) -> Result<ScanReport, ScanError> {
    let arena = ModuliArena::try_from_moduli(moduli)?;
    Ok(scan_lockstep_arena(&arena, early, warp_width))
}

/// [`scan_lockstep`] over a pre-packed [`ModuliArena`].
pub fn scan_lockstep_arena(arena: &ModuliArena, early: bool, warp_width: usize) -> ScanReport {
    let start = Instant::now();
    let m = arena.len();
    if m < 2 {
        return empty_report(start, None);
    }
    let w = warp_width.max(1);
    let grid = GroupedPairs::new(m, group_size_for(m));
    let all: Vec<(usize, usize)> = grid.all_pairs().collect();
    let workers = rayon::current_num_threads().max(1);
    // Whole warps per worker run: rounding the run length up to a multiple
    // of `w` keeps every warp (except possibly the last) full.
    let run_len = all.len().div_ceil(workers).div_ceil(w).max(1) * w;
    let mut findings: Vec<Finding> = all
        .par_chunks(run_len)
        .map_init(
            || LockstepEngine::new(w),
            |engine, run| {
                let mut found = Vec::new();
                let mut inputs: Vec<(&[Limb], &[Limb])> = Vec::with_capacity(w);
                for warp in run.chunks(w) {
                    let term = launch_termination(arena, warp, early);
                    inputs.clear();
                    inputs.extend(warp.iter().map(|&(i, j)| (arena.limbs(i), arena.limbs(j))));
                    engine.run_warp(&inputs, term, None);
                    harvest_warp(arena, engine, warp, &mut found);
                }
                found
            },
        )
        .flatten()
        .collect();
    findings.sort_by_key(|f| (f.i, f.j));
    ScanReport {
        duplicate_pairs: count_duplicates(&findings),
        findings,
        pairs_scanned: grid.total_pairs(),
        elapsed: start.elapsed(),
        simulated_seconds: None,
    }
}

/// Bookkeeping from one fault-tolerant scan run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Launches the whole scan needs.
    pub total_launches: u64,
    /// Launches restored from the journal instead of re-executed.
    pub resumed_launches: u64,
    /// Launches executed (successfully) by this run.
    pub executed_launches: u64,
    /// Retry attempts beyond each launch's first (transient faults).
    pub retried_attempts: u64,
    /// Launches that exhausted the device and fell back to the CPU path.
    pub cpu_fallback_launches: u64,
    /// Total backoff a production driver would have slept between retries.
    pub backoff: Duration,
}

/// A [`ScanReport`] plus the fault-tolerance bookkeeping of the run that
/// produced it.
#[derive(Debug, Clone)]
pub struct ResumableReport {
    /// The scan outcome — findings identical to an uninterrupted
    /// [`scan_gpu_sim_arena`] run over the same corpus.
    pub scan: ScanReport,
    /// Resume/retry/fallback accounting for this run.
    pub stats: FaultStats,
}

/// Execute one launch under fault injection: retry transient faults per
/// `policy`, and degrade to the CPU path (same lanes, same per-launch
/// termination — so byte-identical findings) when the device gives up.
#[allow(clippy::too_many_arguments)]
fn execute_resumable_launch(
    arena: &ModuliArena,
    lanes: &[(usize, usize)],
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch: u64,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    scratch: &mut LaunchScratch,
) -> (LaunchRecord, u64, Duration) {
    let term = launch_termination(arena, lanes, early);
    let (result, outcome) = retry_launch(launch, plan, policy, || {
        launch_on_device(arena, lanes, algo, early, device, cost, scratch)
    });
    let retried = u64::from(outcome.attempts.saturating_sub(1));
    let record = match result {
        Ok((findings, seconds)) => LaunchRecord {
            launch,
            simulated_seconds: seconds,
            cpu_fallback: false,
            findings,
        },
        // Graceful degradation: the device refuses this launch, so its
        // block of lanes runs on the host. Identical termination settings
        // make the findings byte-identical; only the simulated clock is
        // lost (a fallback launch contributes no device seconds).
        Err(_) => {
            let mut pair = GcdPair::with_capacity(arena.stride());
            let mut found = Vec::new();
            for &(i, j) in lanes {
                pair.load_from_limbs(arena.limbs(i), arena.limbs(j));
                if run_in_place(algo, &mut pair, term, &mut NoProbe) == GcdStatus::Done
                    && !pair.gcd_is_one()
                {
                    let factor = pair.x_nat();
                    found.push(Finding {
                        i,
                        j,
                        kind: kind_of(arena, i, j, &factor),
                        factor,
                    });
                }
            }
            LaunchRecord {
                launch,
                simulated_seconds: 0.0,
                cpu_fallback: true,
                findings: found,
            }
        }
    };
    (record, retried, outcome.backoff)
}

/// Fault-tolerant, resumable variant of [`scan_gpu_sim_arena`].
///
/// Each launch is committed to `journal` (and fsynced) the moment it
/// completes, from inside the parallel driver, so a run that dies at any
/// point — not just at the end — keeps every launch that finished before
/// the crash. Resume by calling this again with the reopened journal:
/// completed launches are skipped and the final report — merged from the
/// journal in launch-index order — is byte-identical (findings, order,
/// kinds, and, absent CPU fallbacks, the simulated-seconds sum) to the
/// uninterrupted run's.
///
/// Faults are injected from `plan` (use [`FaultPlan::none`] in production):
/// transient launch faults are retried with exponential backoff under
/// `policy`, persistently failing launches fall back to the CPU path
/// instead of aborting the scan, and an injected kill stops the run at the
/// launch boundary with [`ScanError::Interrupted`] — exactly what a crash
/// would leave behind, minus the crash.
#[allow(clippy::too_many_arguments)]
pub fn scan_gpu_sim_resumable(
    arena: &ModuliArena,
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch_pairs: usize,
    journal: &mut ScanJournal,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<ResumableReport, ScanError> {
    let start = Instant::now();
    let header = JournalHeader::for_scan(arena, algo, early, launch_pairs);
    journal.check_compatible(&header)?;
    if arena.len() < 2 {
        journal.mark_done()?;
        return Ok(ResumableReport {
            scan: empty_report(start, Some(0.0)),
            stats: FaultStats::default(),
        });
    }

    let grid = GroupedPairs::new(arena.len(), group_size_for(arena.len()));
    let all: Vec<(usize, usize)> = grid.all_pairs().collect();
    let chunks: Vec<&[(usize, usize)]> = all.chunks(launch_pairs.max(1)).collect();
    debug_assert_eq!(chunks.len() as u64, header.launches);

    let pending: Vec<u64> = (0..header.launches)
        .filter(|&l| !journal.completed(l))
        .collect();
    let mut stats = FaultStats {
        total_launches: header.launches,
        resumed_launches: header.launches - pending.len() as u64,
        ..FaultStats::default()
    };

    // An injected kill at launch k stops the run at that boundary: work
    // before it commits, nothing at or after it runs — the journal looks
    // exactly like a crashed process's.
    let kill_pos = pending.iter().position(|&l| plan.kills(l));
    let to_run = match kill_pos {
        Some(p) => &pending[..p],
        None => &pending[..],
    };

    // Each launch commits to the journal the moment it completes — from
    // inside the parallel map, serialized behind a mutex — so a real crash
    // (SIGKILL, OOM, power loss) mid-run loses only the launches still in
    // flight, never the whole run. Commits land in completion order, not
    // launch order; the journal keys records by launch index, so the final
    // merge is launch-ordered regardless.
    let per_launch: Result<Vec<(bool, u64, Duration)>, JournalError> = {
        let journal_mx = Mutex::new(&mut *journal);
        to_run
            .par_iter()
            .map_init(
                || LaunchScratch::new(device.warp_size),
                |scratch, &l| {
                    let (record, retried, backoff) = execute_resumable_launch(
                        arena,
                        chunks[l as usize],
                        algo,
                        early,
                        device,
                        cost,
                        l,
                        plan,
                        policy,
                        scratch,
                    );
                    let fallback = record.cpu_fallback;
                    journal_mx
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .record(record)?;
                    Ok((fallback, retried, backoff))
                },
            )
            .collect()
    };
    for (fallback, retried, backoff) in per_launch? {
        stats.executed_launches += 1;
        stats.retried_attempts += retried;
        stats.backoff += backoff;
        if fallback {
            stats.cpu_fallback_launches += 1;
        }
    }

    if let Some(p) = kill_pos {
        return Err(ScanError::Interrupted { launch: pending[p] });
    }
    journal.mark_done()?;

    // The report is merged from the journal — not from this run's results —
    // so resumed and uninterrupted runs reduce the same records the same way.
    let mut findings = Vec::new();
    let mut simulated = 0f64;
    for record in journal.records() {
        findings.extend_from_slice(&record.findings);
        simulated += record.simulated_seconds;
    }
    findings.sort_by_key(|f| (f.i, f.j));
    Ok(ResumableReport {
        scan: ScanReport {
            duplicate_pairs: count_duplicates(&findings),
            findings,
            pairs_scanned: grid.total_pairs(),
            elapsed: start.elapsed(),
            simulated_seconds: Some(simulated),
        },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::prime::random_prime;
    use bulkgcd_bigint::random::random_odd_bits;
    use bulkgcd_rsa::build_corpus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_findings_match_ground_truth(findings: &[Finding], corpus: &bulkgcd_rsa::Corpus) {
        assert_eq!(findings.len(), corpus.shared.len());
        for (f, (i, j, p)) in findings.iter().zip(&corpus.shared) {
            assert_eq!((f.i, f.j), (*i, *j));
            assert_eq!(&f.factor, p);
        }
    }

    #[test]
    fn cpu_scan_finds_planted_pairs() {
        let mut rng = StdRng::seed_from_u64(1);
        let corpus = build_corpus(&mut rng, 16, 128, 3);
        for early in [false, true] {
            let rep = scan_cpu(&corpus.moduli(), Algorithm::Approximate, early).unwrap();
            assert_eq!(rep.pairs_scanned, 16 * 15 / 2);
            check_findings_match_ground_truth(&rep.findings, &corpus);
        }
    }

    #[test]
    fn all_algorithms_agree_on_cpu() {
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = build_corpus(&mut rng, 8, 128, 2);
        let moduli = corpus.moduli();
        let reference = scan_cpu(&moduli, Algorithm::Approximate, true).unwrap();
        for algo in Algorithm::ALL {
            let rep = scan_cpu(&moduli, algo, true).unwrap();
            assert_eq!(rep.findings, reference.findings, "{}", algo.name());
        }
    }

    #[test]
    fn gpu_scan_matches_cpu_scan() {
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = build_corpus(&mut rng, 12, 128, 2);
        let moduli = corpus.moduli();
        let cpu = scan_cpu(&moduli, Algorithm::Approximate, true).unwrap();
        let gpu = scan_gpu_sim(
            &moduli,
            Algorithm::Approximate,
            true,
            &DeviceConfig::gtx_780_ti(),
            &CostModel::default(),
            32,
        )
        .unwrap();
        assert_eq!(cpu.findings, gpu.findings);
        assert_eq!(cpu.pairs_scanned, gpu.pairs_scanned);
        assert!(gpu.simulated_seconds.unwrap() > 0.0);
    }

    #[test]
    fn parallel_gpu_sim_matches_serial_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let corpus = build_corpus(&mut rng, 12, 128, 3);
        let moduli = corpus.moduli();
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        for launch_pairs in [1usize, 7, 32, 1000] {
            let par = scan_gpu_sim(
                &moduli,
                Algorithm::Approximate,
                true,
                &device,
                &cost,
                launch_pairs,
            )
            .unwrap();
            let ser = scan_gpu_sim_serial(
                &moduli,
                Algorithm::Approximate,
                true,
                &device,
                &cost,
                launch_pairs,
            )
            .unwrap();
            assert_eq!(par.findings, ser.findings, "launch_pairs={launch_pairs}");
            assert_eq!(par.pairs_scanned, ser.pairs_scanned);
            let (ps, ss) = (
                par.simulated_seconds.unwrap(),
                ser.simulated_seconds.unwrap(),
            );
            assert!(
                (ps - ss).abs() <= 1e-12 * ss.max(1.0),
                "launch_pairs={launch_pairs}: parallel {ps} vs serial {ss}"
            );
        }
    }

    #[test]
    fn lockstep_scan_matches_cpu_scan_across_widths() {
        let mut rng = StdRng::seed_from_u64(21);
        let corpus = build_corpus(&mut rng, 14, 128, 3);
        let moduli = corpus.moduli();
        for early in [false, true] {
            let cpu = scan_cpu(&moduli, Algorithm::Approximate, early).unwrap();
            for w in [1usize, 3, 8, 32] {
                let ls = scan_lockstep(&moduli, early, w).unwrap();
                assert_eq!(ls.findings, cpu.findings, "early={early} w={w}");
                assert_eq!(ls.pairs_scanned, cpu.pairs_scanned);
                assert_eq!(ls.duplicate_pairs, cpu.duplicate_pairs);
            }
        }
    }

    #[test]
    fn lockstep_scan_classifies_duplicates() {
        let mut rng = StdRng::seed_from_u64(22);
        let corpus = build_corpus(&mut rng, 8, 128, 1);
        let mut moduli = corpus.moduli();
        let dup = moduli[2].clone();
        moduli.push(dup);
        let cpu = scan_cpu(&moduli, Algorithm::Approximate, true).unwrap();
        let ls = scan_lockstep(&moduli, true, 8).unwrap();
        assert_eq!(ls.findings, cpu.findings);
        assert_eq!(ls.duplicate_pairs, 1);
        assert!(ls
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DuplicateModulus));
    }

    #[test]
    fn lockstep_scan_degenerate_corpora() {
        match scan_lockstep(&[], true, 8) {
            Err(ScanError::Arena(ArenaError::EmptyCorpus)) => {}
            other => panic!("expected EmptyCorpus, got {other:?}"),
        }
        let rep = scan_lockstep(&[Nat::from(15u32)], true, 8).unwrap();
        assert_eq!(rep.pairs_scanned, 0);
        // warp_width 0 is clamped to 1, not a panic.
        let mut rng = StdRng::seed_from_u64(23);
        let corpus = build_corpus(&mut rng, 6, 96, 1);
        let rep = scan_lockstep(&corpus.moduli(), true, 0).unwrap();
        check_findings_match_ground_truth(&rep.findings, &corpus);
    }

    #[test]
    fn combine_terminations_folds_conservatively() {
        let e = |bits| Termination::Early {
            threshold_bits: bits,
        };
        // Mixed widths: smallest threshold wins.
        assert_eq!(combine_terminations([e(64), e(48), e(64)]), e(48));
        // Any Full pair pins the whole launch to Full, in either fold order.
        assert_eq!(
            combine_terminations([e(64), Termination::Full, e(48)]),
            Termination::Full
        );
        assert_eq!(
            combine_terminations([Termination::Full, e(64)]),
            Termination::Full
        );
        assert_eq!(
            combine_terminations([e(64), Termination::Full]),
            Termination::Full
        );
        // Degenerate batches.
        assert_eq!(combine_terminations([]), Termination::Full);
        assert_eq!(combine_terminations([Termination::Full]), Termination::Full);
        assert_eq!(combine_terminations([e(10)]), e(10));
    }

    #[test]
    fn mixed_width_batch_still_finds_shared_factor() {
        // Regression for the per-launch termination fold: a batch mixing
        // modulus widths must take the narrowest pair's threshold, so the
        // wide pair's shared factor survives early termination.
        let mut rng = StdRng::seed_from_u64(8);
        let p = random_prime(&mut rng, 64);
        let wide_a = p.mul(&random_prime(&mut rng, 64)); // 128-bit, shares p
        let wide_b = p.mul(&random_prime(&mut rng, 64));
        let moduli = vec![
            wide_a,
            random_odd_bits(&mut rng, 96), // narrower lanes in the same launch
            random_odd_bits(&mut rng, 96),
            wide_b,
        ];
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        // One launch covering all pairs (launch_pairs > m(m-1)/2).
        let gpu = scan_gpu_sim(&moduli, Algorithm::Approximate, true, &device, &cost, 64).unwrap();
        let cpu = scan_cpu(&moduli, Algorithm::Approximate, true).unwrap();
        assert_eq!(gpu.findings, cpu.findings);
        assert_eq!(gpu.findings.len(), 1);
        assert_eq!((gpu.findings[0].i, gpu.findings[0].j), (0, 3));
        assert_eq!(gpu.findings[0].factor, p);
    }

    #[test]
    fn clean_corpus_yields_no_findings() {
        let mut rng = StdRng::seed_from_u64(4);
        let corpus = build_corpus(&mut rng, 8, 96, 0);
        let rep = scan_cpu(&corpus.moduli(), Algorithm::Approximate, true).unwrap();
        assert!(rep.findings.is_empty());
    }

    #[test]
    fn degenerate_corpora() {
        // An empty corpus cannot be packed into an arena: a structured
        // error, not a panic (and not a silent empty report).
        match scan_cpu(&[], Algorithm::Approximate, true) {
            Err(ScanError::Arena(ArenaError::EmptyCorpus)) => {}
            other => panic!("expected EmptyCorpus, got {other:?}"),
        }
        let rep = scan_cpu(&[Nat::from(15u32)], Algorithm::Approximate, true).unwrap();
        assert_eq!(rep.pairs_scanned, 0);
    }

    #[test]
    fn odd_corpus_size_uses_group_size_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let corpus = build_corpus(&mut rng, 7, 96, 1);
        let rep = scan_cpu(&corpus.moduli(), Algorithm::Approximate, true).unwrap();
        assert_eq!(rep.pairs_scanned, 21);
        check_findings_match_ground_truth(&rep.findings, &corpus);
    }

    #[test]
    fn arena_scan_matches_slice_scan() {
        let mut rng = StdRng::seed_from_u64(6);
        let corpus = build_corpus(&mut rng, 8, 128, 2);
        let moduli = corpus.moduli();
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        let via_arena = scan_cpu_arena(&arena, Algorithm::Approximate, true);
        let via_slice = scan_cpu(&moduli, Algorithm::Approximate, true).unwrap();
        assert_eq!(via_arena.findings, via_slice.findings);
        assert_eq!(via_arena.pairs_scanned, via_slice.pairs_scanned);
    }

    #[test]
    fn oversized_corpus_is_a_scan_error() {
        // Width overflow propagates through the scan entry point as a
        // structured ScanError::Arena, exercised here via the capped
        // constructor the scan would hit at real isize::MAX scale.
        let moduli = vec![Nat::from_u64(u64::MAX), Nat::from_u64(u64::MAX - 4)];
        match ModuliArena::try_from_moduli_capped(&moduli, 3).map_err(ScanError::from) {
            Err(ScanError::Arena(ArenaError::WidthOverflow { moduli: m, .. })) => {
                assert_eq!(m, 2)
            }
            other => panic!("expected WidthOverflow, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_moduli_classified_and_counted() {
        let mut rng = StdRng::seed_from_u64(9);
        let corpus = build_corpus(&mut rng, 6, 128, 1);
        let mut moduli = corpus.moduli();
        // Plant a duplicate pair alongside the planted shared-prime pair.
        let dup = moduli[1].clone();
        moduli.push(dup);
        let rep = scan_cpu(&moduli, Algorithm::Approximate, true).unwrap();
        assert_eq!(rep.duplicate_pairs, 1);
        let dups: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::DuplicateModulus)
            .collect();
        assert_eq!(dups.len(), 1);
        assert_eq!((dups[0].i, dups[0].j), (1, 6));
        assert_eq!(
            dups[0].factor, moduli[1],
            "duplicate finding carries gcd = n"
        );
        // The planted shared-prime pair is still classified as such.
        assert!(rep
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::SharedPrime));
        // The GPU path classifies identically.
        let gpu = scan_gpu_sim(
            &moduli,
            Algorithm::Approximate,
            true,
            &DeviceConfig::gtx_780_ti(),
            &CostModel::default(),
            16,
        )
        .unwrap();
        assert_eq!(gpu.findings, rep.findings);
        assert_eq!(gpu.duplicate_pairs, 1);
    }

    /// The uninterrupted resumable run, fault-free: the reference every
    /// fault scenario must reproduce byte for byte.
    fn fault_free_reference(
        arena: &ModuliArena,
        launch_pairs: usize,
    ) -> (ScanReport, ResumableReport) {
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let plain = scan_gpu_sim_arena(
            arena,
            Algorithm::Approximate,
            true,
            &device,
            &cost,
            launch_pairs,
        );
        let mut journal = ScanJournal::in_memory();
        let resumable = scan_gpu_sim_resumable(
            arena,
            Algorithm::Approximate,
            true,
            &device,
            &cost,
            launch_pairs,
            &mut journal,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        )
        .unwrap();
        (plain, resumable)
    }

    #[test]
    fn fault_free_resumable_matches_plain_gpu_scan() {
        let mut rng = StdRng::seed_from_u64(10);
        let corpus = build_corpus(&mut rng, 12, 128, 3);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let (plain, resumable) = fault_free_reference(&arena, 7);
        assert_eq!(resumable.scan.findings, plain.findings);
        assert_eq!(resumable.scan.pairs_scanned, plain.pairs_scanned);
        assert_eq!(
            resumable.scan.simulated_seconds.unwrap().to_bits(),
            plain.simulated_seconds.unwrap().to_bits(),
            "launch-order merge must make even the f64 sum identical"
        );
        assert_eq!(
            resumable.stats.executed_launches,
            resumable.stats.total_launches
        );
        assert_eq!(resumable.stats.resumed_launches, 0);
        assert_eq!(resumable.stats.cpu_fallback_launches, 0);
    }

    #[test]
    fn kill_and_resume_reproduces_uninterrupted_run_at_every_boundary() {
        let mut rng = StdRng::seed_from_u64(11);
        let corpus = build_corpus(&mut rng, 10, 128, 2);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let launch_pairs = 6;
        let (_, reference) = fault_free_reference(&arena, launch_pairs);
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let total = reference.stats.total_launches;
        assert!(
            total > 2,
            "need several launches to make the test meaningful"
        );

        for kill_at in 0..total {
            let plan = FaultPlan::none().with_kill(kill_at);
            let mut journal = ScanJournal::in_memory();
            let interrupted = scan_gpu_sim_resumable(
                &arena,
                Algorithm::Approximate,
                true,
                &device,
                &cost,
                launch_pairs,
                &mut journal,
                &plan,
                &RetryPolicy::default(),
            );
            match interrupted {
                Err(ScanError::Interrupted { launch }) => assert_eq!(launch, kill_at),
                other => panic!("kill at {kill_at}: expected Interrupted, got {other:?}"),
            }
            assert_eq!(
                journal.committed(),
                kill_at,
                "exactly the pre-kill prefix commits"
            );
            assert!(!journal.is_done());

            // Resume with the fired kill dropped: the run completes and is
            // byte-identical to the uninterrupted reference.
            let resumed = scan_gpu_sim_resumable(
                &arena,
                Algorithm::Approximate,
                true,
                &device,
                &cost,
                launch_pairs,
                &mut journal,
                &plan.clone().without_kill_at(kill_at),
                &RetryPolicy::default(),
            )
            .unwrap();
            assert!(journal.is_done());
            assert_eq!(
                resumed.scan.findings, reference.scan.findings,
                "kill at {kill_at}"
            );
            assert_eq!(resumed.scan.duplicate_pairs, reference.scan.duplicate_pairs);
            assert_eq!(
                resumed.scan.simulated_seconds.unwrap().to_bits(),
                reference.scan.simulated_seconds.unwrap().to_bits(),
                "kill at {kill_at}: resumed f64 sum must be bitwise identical"
            );
            assert_eq!(resumed.stats.resumed_launches, kill_at);
            assert_eq!(resumed.stats.executed_launches, total - kill_at);
        }
    }

    #[test]
    fn file_journal_survives_process_boundary_and_resumes() {
        // The closest in-process analogue to a real crash: the killed run's
        // journal handle is dropped, and the resume replays the journal
        // from disk — nothing survives in memory between the two runs.
        let mut rng = StdRng::seed_from_u64(16);
        let corpus = build_corpus(&mut rng, 10, 128, 2);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let launch_pairs = 6;
        let (_, reference) = fault_free_reference(&arena, launch_pairs);
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let kill_at = reference.stats.total_launches / 2;

        let dir = std::env::temp_dir().join("bulkgcd-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("scan-resume-{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        {
            let mut journal = ScanJournal::open(&path).unwrap();
            let plan = FaultPlan::none().with_kill(kill_at);
            match scan_gpu_sim_resumable(
                &arena,
                Algorithm::Approximate,
                true,
                &device,
                &cost,
                launch_pairs,
                &mut journal,
                &plan,
                &RetryPolicy::default(),
            ) {
                Err(ScanError::Interrupted { launch }) => assert_eq!(launch, kill_at),
                other => panic!("expected Interrupted, got {other:?}"),
            }
        }

        let mut journal = ScanJournal::open(&path).unwrap();
        assert_eq!(journal.committed(), kill_at, "pre-kill prefix is on disk");
        assert!(!journal.is_done());
        let resumed = scan_gpu_sim_resumable(
            &arena,
            Algorithm::Approximate,
            true,
            &device,
            &cost,
            launch_pairs,
            &mut journal,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(journal.is_done());
        assert_eq!(resumed.scan.findings, reference.scan.findings);
        assert_eq!(
            resumed.scan.simulated_seconds.unwrap().to_bits(),
            reference.scan.simulated_seconds.unwrap().to_bits()
        );
        assert_eq!(resumed.stats.resumed_launches, kill_at);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn transient_faults_are_retried_and_change_nothing() {
        let mut rng = StdRng::seed_from_u64(12);
        let corpus = build_corpus(&mut rng, 10, 128, 2);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let (_, reference) = fault_free_reference(&arena, 6);
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        // Two launches hiccup: 2 and 1 failing attempts, all within the
        // default 4-attempt budget.
        let plan = FaultPlan::none().with_transient(0, 2).with_transient(2, 1);
        let mut journal = ScanJournal::in_memory();
        let rep = scan_gpu_sim_resumable(
            &arena,
            Algorithm::Approximate,
            true,
            &device,
            &cost,
            6,
            &mut journal,
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(rep.scan.findings, reference.scan.findings);
        assert_eq!(
            rep.scan.simulated_seconds.unwrap().to_bits(),
            reference.scan.simulated_seconds.unwrap().to_bits()
        );
        assert_eq!(rep.stats.retried_attempts, 3);
        assert_eq!(rep.stats.cpu_fallback_launches, 0);
        assert!(
            rep.stats.backoff > Duration::ZERO,
            "backoff must be accounted"
        );
    }

    #[test]
    fn persistent_fault_degrades_to_cpu_with_identical_findings() {
        let mut rng = StdRng::seed_from_u64(13);
        let corpus = build_corpus(&mut rng, 10, 128, 3);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let (_, reference) = fault_free_reference(&arena, 5);
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let total = reference.stats.total_launches;
        // Every launch persistently fails in turn; findings never change.
        for bad in 0..total {
            let plan = FaultPlan::none().with_persistent(bad);
            let mut journal = ScanJournal::in_memory();
            let rep = scan_gpu_sim_resumable(
                &arena,
                Algorithm::Approximate,
                true,
                &device,
                &cost,
                5,
                &mut journal,
                &plan,
                &RetryPolicy::default(),
            )
            .unwrap();
            assert_eq!(
                rep.scan.findings, reference.scan.findings,
                "persistent at {bad}"
            );
            assert_eq!(rep.stats.cpu_fallback_launches, 1);
            // The fallback launch contributes no simulated device seconds.
            assert!(
                rep.scan.simulated_seconds.unwrap() <= reference.scan.simulated_seconds.unwrap()
            );
        }
    }

    #[test]
    fn exhausted_retries_also_degrade_to_cpu() {
        let mut rng = StdRng::seed_from_u64(14);
        let corpus = build_corpus(&mut rng, 8, 128, 2);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let (_, reference) = fault_free_reference(&arena, 6);
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        // 10 transient failures >> the 4-attempt budget: fallback, not loop.
        let plan = FaultPlan::none().with_transient(1, 10);
        let mut journal = ScanJournal::in_memory();
        let rep = scan_gpu_sim_resumable(
            &arena,
            Algorithm::Approximate,
            true,
            &device,
            &cost,
            6,
            &mut journal,
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(rep.scan.findings, reference.scan.findings);
        assert_eq!(rep.stats.cpu_fallback_launches, 1);
        assert_eq!(rep.stats.retried_attempts, 3, "4 attempts = 3 retries");
    }

    #[test]
    fn journal_from_different_corpus_is_refused() {
        let mut rng = StdRng::seed_from_u64(15);
        let corpus_a = build_corpus(&mut rng, 8, 128, 1);
        let corpus_b = build_corpus(&mut rng, 8, 128, 1);
        let arena_a = ModuliArena::try_from_moduli(&corpus_a.moduli()).unwrap();
        let arena_b = ModuliArena::try_from_moduli(&corpus_b.moduli()).unwrap();
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let mut journal = ScanJournal::in_memory();
        scan_gpu_sim_resumable(
            &arena_a,
            Algorithm::Approximate,
            true,
            &device,
            &cost,
            8,
            &mut journal,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        )
        .unwrap();
        match scan_gpu_sim_resumable(
            &arena_b,
            Algorithm::Approximate,
            true,
            &device,
            &cost,
            8,
            &mut journal,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        ) {
            Err(ScanError::Journal(JournalError::Mismatch { field, .. })) => {
                assert_eq!(field, "fingerprint")
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }
}
