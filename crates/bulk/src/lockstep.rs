//! The lockstep SIMT bulk-GCD execution engine.
//!
//! Everything before this module *modeled* the paper's GPU execution
//! (replaying per-pair iteration traces through `gpu::warp`); this module
//! *performs* it on the host. A warp of `W` lanes stores its operands in
//! two column-major planes — limb `k` of all `W` lanes contiguous, the
//! paper's Fig. 3 column-wise arrangement — and executes Approximate
//! Euclid one shared instruction at a time across all lanes:
//!
//! 1. **Plan** (per lane, O(1) words): terminate lanes whose `Y` ran out,
//!    gather the four head words, and classify the iteration via
//!    [`plan_lane`](bulkgcd_core::plan_lane) into the fused β = 0 update or
//!    one of the rare divergent paths.
//! 2. **Vector pass** (shared): one [`fused_submul_rshift_columns_prefix`]
//!    call applies `X ← rshift(X − α·Y)` to every fused lane, limb-row
//!    innermost so the compiler vectorizes across lanes. Masked lanes
//!    (terminated, or queued for a divergent path) ride along as exact
//!    identities with `α = 0` — the SIMT analogue of inactive lanes
//!    burning the issue slot.
//! 3. **Fixups** (per diverged lane): the β > 0 update, the two-pass deep
//!    shift, and the 64-bit Case 1 tail execute scalar, serialized — which
//!    is precisely what a real warp does with divergent branches.
//! 4. **Epilogue** (per lane): renormalize `lX`, compare `X < Y`, and swap
//!    by flipping the lane's plane-selector mask — a pointer swap with no
//!    copying, exactly like [`GcdPair::swap`](bulkgcd_core::GcdPair::swap).
//!
//! Each lane's value sequence is identical, iteration by iteration, to
//! what `run_in_place(Algorithm::Approximate, ..)` computes for that pair
//! — the equivalence suite asserts it — so findings, checkpoints, and
//! resume semantics carry over bit-for-bit.
//!
//! When asked to **measure**, the engine feeds the descriptors of every
//! iteration it executes into the same
//! [`WarpWorkAccumulator`](bulkgcd_gpu::WarpWorkAccumulator) that the
//! trace-replay model uses, so divergence fractions and coalesced-traffic
//! counts come from live execution rather than a replay.

use bulkgcd_bigint::{ops, Limb, Nat, LIMB_BITS};
use bulkgcd_core::{
    copy_lane_columns, fused_submul_rshift_columns_prefix, plan_lane, zero_lane_columns, GcdPair,
    GcdStatus, LanePlan, StepKind, Termination,
};
use bulkgcd_gpu::{CostModel, WarpWork, WarpWorkAccumulator};
use bulkgcd_umm::gcd_trace::IterDesc;
use bulkgcd_umm::trace::{BulkTrace, ThreadTrace};

/// Address-sequence record of one traced warp execution
/// ([`LockstepEngine::run_warp_traced`]), in the UMM trace model's
/// per-thread logical offsets.
///
/// Logical offsets encode the two operand planes back to back: plane-A
/// row `k` is offset `k`, plane-B row `k` is offset `stride + k`. That
/// makes selector flips (the X/Y pointer swap) visible to
/// [`bulkgcd_umm::oblivious::analyze`] exactly the way the paper's
/// column-wise layout would see them.
#[derive(Debug, Clone)]
pub struct LockstepTrace {
    /// Head-read accesses of the per-lane planning phase: exactly 8 slots
    /// (reads or idles) per lane per iteration — the §IV top-two and
    /// bottom-two words of each operand.
    pub plan: BulkTrace,
    /// Accesses of the shared vector pass. Every lane records the same
    /// sequence — masked lanes ride along — so this trace must analyze as
    /// perfectly uniform; that is the dynamic half of the constant-flow
    /// claim the analyze pass checks statically.
    pub vector: BulkTrace,
    /// The vector-pass trip count of each iteration (0 = fixup-only
    /// iteration). Together with `stride` this fully determines `vector`:
    /// the documented residual leak of the semi-oblivious design.
    pub rows_per_iter: Vec<usize>,
    /// Limb rows per plane for this warp (max operand length).
    pub stride: usize,
    /// Lockstep iterations executed until every lane terminated.
    pub iterations: usize,
    /// Compaction/refill service events, part of the public per-iteration
    /// structure: each records the iteration index it preceded, how many
    /// dead columns were reloaded from the pending queue, whether the
    /// survivors were repacked into a dense prefix, and the resident width
    /// afterwards. Empty for plain [`LockstepEngine::run_warp_traced`].
    pub events: Vec<CompactionEvent>,
}

/// One compaction/refill service event in a queue-mode execution
/// ([`LockstepEngine::run_queue`]).
///
/// Events are derived purely from the public termination structure (which
/// lanes have terminated), never from operand values, so recording them in
/// [`LockstepTrace`] leaks nothing beyond the documented per-iteration
/// structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionEvent {
    /// Index of the lockstep iteration this service pass preceded.
    pub iteration: usize,
    /// Dead columns reloaded with pending pairs during this pass.
    pub refilled: usize,
    /// Whether survivors were repacked into a dense column prefix.
    pub repacked: bool,
    /// Resident width (active column prefix) after the pass.
    pub width_after: usize,
}

/// Tuning knobs for queue-mode compaction/refill
/// ([`LockstepEngine::run_queue`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionConfig {
    /// Refill once the resident width (dense survivor prefix) drains below
    /// this fraction of the warp width. Refill is **generational**: the
    /// warp is topped back up to full width in one batch, so freshly
    /// loaded full-width operands — which pin the fused row count at the
    /// full stride — arrive in cohorts instead of trickling in every
    /// iteration. `1.0` refills on any death (maximum occupancy, maximum
    /// row inflation); `0.0` only when the warp is empty (sequential
    /// batches, like plain warps but with tail compaction).
    ///
    /// Refill is additionally **width-gated**: while survivors are
    /// resident, a pending pair is admitted only if its operand length
    /// fits under the current live row ceiling (max `lX` over survivors),
    /// so topping up never re-inflates a vector pass that had already
    /// shrunk below the full stride. A drained warp admits anything. On
    /// uniform corpora the gate turns continuous refill into generational
    /// refill automatically once operands start shrinking.
    pub min_active_fraction: f64,
    /// Reload free columns with pending pairs from the launch queue. When
    /// `false`, the service pass only repacks survivors (pure compaction;
    /// a fully drained warp still reloads the next batch).
    pub refill: bool,
    /// Resident-arena multiplier used by the scan backend: queue mode runs
    /// over `pool_warps` warps' worth of columns in one column arena
    /// (modeling concurrent resident warps on a streaming multiprocessor),
    /// amortizing per-iteration host overheads that a single 32-lane warp
    /// cannot. `0` and `1` both mean a single warp. The engine itself is
    /// width-agnostic — this knob is consumed by `LockstepBackend` when
    /// sizing the queue engine.
    pub pool_warps: usize,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            min_active_fraction: 1.0,
            refill: true,
            pool_warps: 4,
        }
    }
}

/// Occupancy and service-event counters for the engine's most recent run
/// (either mode), reset on every load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockstepStats {
    /// Lockstep iterations that executed (planned at least one lane).
    pub iterations: u64,
    /// Σ running lanes over those iterations (useful work slots).
    pub active_lane_iters: u64,
    /// Σ resident width over those iterations (issued work slots —
    /// masked lanes burn these).
    pub resident_lane_iters: u64,
    /// Repack events (survivors moved into a dense prefix).
    pub compactions: u64,
    /// Dead columns reloaded with pending pairs.
    pub refills: u64,
}

impl LockstepStats {
    /// Mean active-lane occupancy: useful slots over issued slots, the
    /// SIMT-efficiency analogue compaction exists to raise. 1.0 when
    /// nothing ran.
    pub fn occupancy(&self) -> f64 {
        if self.resident_lane_iters == 0 {
            1.0
        } else {
            self.active_lane_iters as f64 / self.resident_lane_iters as f64
        }
    }
}

/// Harvested terminal result of one queue entry.
#[derive(Debug, Clone)]
struct QueueResult {
    status: GcdStatus,
    gcd_is_one: bool,
    factor: Option<Nat>,
}

/// Idle-pad every thread to the bulk's current step count, keeping a
/// queue-mode trace step-aligned across partial-residency iterations.
fn pad_to_steps(tr: &mut BulkTrace) {
    let steps = tr.steps();
    for th in &mut tr.threads {
        while th.len() < steps {
            th.idle();
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneState {
    Running,
    Done,
    Early,
}

/// A reusable lockstep warp executor.
///
/// One engine owns the column-major operand planes and every scratch row a
/// warp needs; [`run_warp`](Self::run_warp) reloads it for each warp of
/// pairs, so a scan driver keeps exactly one engine per worker and the
/// steady-state hot loop allocates nothing.
///
/// ```
/// use bulkgcd_bigint::Nat;
/// use bulkgcd_bulk::LockstepEngine;
/// use bulkgcd_core::{GcdStatus, Termination};
///
/// let mut engine = LockstepEngine::new(8);
/// let (a, b) = (Nat::from_u64(1_043_915), Nat::from_u64(768_955));
/// let inputs = [(a.as_limbs(), b.as_limbs())];
/// engine.run_warp(&inputs, Termination::Full, None);
/// assert_eq!(engine.lane_status(0), GcdStatus::Done);
/// assert_eq!(engine.lane_gcd_nat(0), Nat::from_u64(5));
/// ```
#[derive(Debug, Clone)]
pub struct LockstepEngine {
    w: usize,
    stride: usize,
    n: usize,
    /// Operand plane A, column-major: limb k of lane t at `k*w + t`.
    u: Vec<Limb>,
    /// Operand plane B, same layout.
    v: Vec<Limb>,
    /// Per-lane plane selector: 0 = X in plane A, all-ones = X in plane B.
    sel: Vec<Limb>,
    /// Per-lane fused multiplier for the current iteration (0 = masked).
    alpha: Vec<Limb>,
    /// Per-lane fused shift for the current iteration.
    rs: Vec<u32>,
    lx: Vec<usize>,
    ly: Vec<usize>,
    state: Vec<LaneState>,
    // Vector-pass scratch rows.
    carry: Vec<u64>,
    prev: Vec<Limb>,
    dcur: Vec<Limb>,
    // Divergent-path scratch.
    fixups: Vec<(usize, LanePlan)>,
    xg: Vec<Limb>,
    yg: Vec<Limb>,
    pair: GcdPair,
    // Queue mode (compaction/refill): which queue entry owns each resident
    // column (usize::MAX = dead/harvested), and the harvested results.
    owner: Vec<usize>,
    qres: Vec<Option<QueueResult>>,
    stats: LockstepStats,
    // Measurement.
    live: Vec<IterDesc>,
    acc: WarpWorkAccumulator,
}

impl LockstepEngine {
    /// New engine with `w` lanes per warp (the paper's W = 32; 8 or 16 are
    /// better fits for host SIMD registers).
    pub fn new(w: usize) -> Self {
        assert!(w >= 1, "warp width must be at least 1");
        LockstepEngine {
            w,
            stride: 0,
            n: 0,
            u: Vec::new(),
            v: Vec::new(),
            sel: vec![0; w],
            alpha: vec![0; w],
            rs: vec![0; w],
            lx: vec![0; w],
            ly: vec![0; w],
            state: vec![LaneState::Done; w],
            carry: vec![0; w],
            prev: vec![0; w],
            dcur: vec![0; w],
            fixups: Vec::with_capacity(w),
            xg: Vec::new(),
            yg: Vec::new(),
            pair: GcdPair::with_capacity(1),
            owner: vec![usize::MAX; w],
            qres: Vec::new(),
            stats: LockstepStats::default(),
            live: Vec::with_capacity(w),
            acc: WarpWorkAccumulator::new(32),
        }
    }

    /// Occupancy and service-event counters of the most recent
    /// [`run_warp`](Self::run_warp) / [`run_queue`](Self::run_queue) call.
    pub fn session_stats(&self) -> LockstepStats {
        self.stats
    }

    /// Lanes per warp.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Execute one warp of at most `width()` pairs to termination.
    ///
    /// Operands are borrowed little-endian limb slices (high zero padding
    /// fine). With `measure = Some((cost, words_per_transaction))` the
    /// engine also accumulates the warp's [`WarpWork`] from the iterations
    /// it actually executes and returns it; with `None` it skips all
    /// accounting.
    ///
    /// After return, every lane is terminated: harvest with
    /// [`lane_status`](Self::lane_status) /
    /// [`lane_gcd_is_one`](Self::lane_gcd_is_one) /
    /// [`lane_gcd_nat`](Self::lane_gcd_nat).
    // analyze: constant-flow(public = "w, n, stride, term, measure, live, fused_rows")
    pub fn run_warp(
        &mut self,
        inputs: &[(&[Limb], &[Limb])],
        term: Termination,
        measure: Option<(&CostModel, u64)>,
    ) -> Option<WarpWork> {
        let w = self.w;
        assert!(inputs.len() <= w, "warp overfilled: {} > {w}", inputs.len());
        // analyze: allow(cf-reach, reason = "one-time scatter before lockstep begins: operand placement is per-pair setup, not part of the iteration kernel")
        self.load(inputs);
        if let Some((_, wpt)) = measure {
            self.acc.reset(wpt);
        }
        // Hang insurance only: every path strips bits from the pair, so the
        // scalar bound (~32·stride iterations) holds per lane; the engine
        // matches the scalar sequence exactly.
        let max_iters = 4096 + 64 * LIMB_BITS as usize * self.stride;
        let mut iter = 0usize;
        loop {
            // analyze: allow(cf-branch, reason = "loop exit: the warp runs until every lane terminates; the iteration count is operand-dependent and is the documented residual leak (rows_per_iter in the UMM trace model)")
            if !self.plan_iteration(term, measure.is_some()) {
                break;
            }
            if let Some((cost, _)) = measure {
                self.acc.record_iteration(cost, &self.live);
            }
            let rows = self.fused_rows();
            if rows > 0 {
                fused_submul_rshift_columns_prefix(
                    &mut self.u,
                    &mut self.v,
                    w,
                    self.n,
                    rows,
                    &self.sel,
                    &self.alpha,
                    &self.rs,
                    &mut self.carry,
                    &mut self.prev,
                    &mut self.dcur,
                );
            }
            for fi in 0..self.fixups.len() {
                let (t, plan) = self.fixups[fi];
                // analyze: allow(cf-reach, reason = "serialized scalar-fixup region: diverged lanes already left the vector pass; this is the documented divergence point")
                self.apply_fixup(t, plan);
            }
            self.epilogue();
            iter += 1;
            assert!(
                iter <= max_iters,
                "lockstep engine exceeded {max_iters} iterations"
            );
        }
        measure.map(|_| self.acc.take())
    }

    /// [`run_warp`](Self::run_warp) with measurement always on: returns the
    /// warp's [`WarpWork`] directly, so callers don't have to unwrap an
    /// `Option` that is `Some` by construction.
    pub fn run_warp_measured(
        &mut self,
        inputs: &[(&[Limb], &[Limb])],
        term: Termination,
        cost: &CostModel,
        words_per_transaction: u64,
    ) -> WarpWork {
        self.run_warp(inputs, term, Some((cost, words_per_transaction)))
            .unwrap_or_default()
    }

    /// [`run_warp`](Self::run_warp) recording the address sequence of every
    /// lane in the UMM trace model.
    ///
    /// This is the dynamic cross-check of the analyze pass's static
    /// constant-flow claims: the vector pass must produce an identical
    /// trace in every lane (a pure function of the public per-iteration
    /// structure `rows_per_iter` × `stride`), while the planning phase
    /// must spend exactly 8 step-aligned head-read slots per lane per
    /// iteration. The serialized divergent fixups are the documented
    /// allow-pragma sites and are not part of the lockstep trace.
    ///
    /// Lane results are identical to an untraced run — the trace is
    /// recorded around the same `plan_iteration` / vector-pass / fixup /
    /// epilogue calls, not a reimplementation.
    pub fn run_warp_traced(
        &mut self,
        inputs: &[(&[Limb], &[Limb])],
        term: Termination,
    ) -> LockstepTrace {
        let w = self.w;
        assert!(inputs.len() <= w, "warp overfilled: {} > {w}", inputs.len());
        self.load(inputs);
        let mut plan = BulkTrace::with_threads(self.n);
        let mut vector = BulkTrace::with_threads(self.n);
        let mut rows_per_iter = Vec::new();
        let max_iters = 4096 + 64 * LIMB_BITS as usize * self.stride;
        loop {
            if !self.plan_iteration(term, false) {
                break;
            }
            self.record_plan_reads(&mut plan);
            let rows = self.fused_rows();
            rows_per_iter.push(rows);
            for k in 0..rows {
                // Every lane records the same row sweep: masked lanes ride
                // along with α = 0, exactly like the real kernel.
                for t in 0..self.n {
                    let th = &mut vector.threads[t];
                    th.read(k);
                    th.read(self.stride + k);
                    th.write(k);
                }
            }
            if rows > 0 {
                fused_submul_rshift_columns_prefix(
                    &mut self.u,
                    &mut self.v,
                    w,
                    self.n,
                    rows,
                    &self.sel,
                    &self.alpha,
                    &self.rs,
                    &mut self.carry,
                    &mut self.prev,
                    &mut self.dcur,
                );
            }
            for fi in 0..self.fixups.len() {
                let (t, p) = self.fixups[fi];
                self.apply_fixup(t, p);
            }
            self.epilogue();
            assert!(
                rows_per_iter.len() <= max_iters,
                "lockstep engine exceeded {max_iters} iterations"
            );
        }
        let iterations = rows_per_iter.len();
        LockstepTrace {
            plan,
            vector,
            rows_per_iter,
            stride: self.stride,
            iterations,
            events: Vec::new(),
        }
    }

    /// Execute an arbitrarily long queue of pairs through one warp with
    /// compaction/refill, to termination of every entry.
    ///
    /// The engine loads the first `width()` entries, then between lockstep
    /// iterations runs a **service pass**: terminated lanes are harvested
    /// into a per-entry result store (freeing their columns), and when the
    /// running-lane fraction drops below `cfg.min_active_fraction` dead
    /// columns are refilled with pending entries and/or the survivors are
    /// repacked into a dense column prefix so the shared vector pass stops
    /// issuing masked slots. Lane values are untouched by either move —
    /// lanes are completely value-independent, and the per-lane iteration
    /// sequence is identical to [`run_warp`](Self::run_warp) — so findings
    /// and statuses match the uncompacted engine bit for bit.
    ///
    /// Harvest with [`queue_status`](Self::queue_status) /
    /// [`queue_gcd_is_one`](Self::queue_gcd_is_one) /
    /// [`queue_factor`](Self::queue_factor), indexed by queue entry.
    // analyze: constant-flow(public = "w, n, stride, term, cfg, fused_rows")
    // analyze: zero-alloc
    pub fn run_queue(
        &mut self,
        inputs: &[(&[Limb], &[Limb])],
        term: Termination,
        cfg: CompactionConfig,
    ) {
        let w = self.w;
        // analyze: allow(cf-reach, reason = "one-time load/scatter before lockstep begins: operand placement is per-pair setup, not part of the iteration kernel")
        // analyze: allow(za-alloc, reason = "setup sizes the column planes and queue store once per run, before the iteration loop")
        self.queue_setup(inputs);
        let mut next = self.n;
        let max_iters = self.queue_iter_bound(inputs.len());
        let mut iter = 0usize;
        loop {
            // analyze: allow(cf-branch, reason = "loop exit: the queue runs until every entry terminates; the iteration count is operand-dependent and is the documented residual leak (rows_per_iter in the UMM trace model)")
            if !self.plan_iteration(term, false) {
                // analyze: allow(cf-reach, reason = "harvest/repack/refill service pass between vector iterations: compaction is the documented serialized region")
                self.queue_service(inputs, &mut next, cfg);
                if self.n == 0 {
                    break;
                }
                continue;
            }
            let rows = self.fused_rows();
            if rows > 0 {
                fused_submul_rshift_columns_prefix(
                    &mut self.u,
                    &mut self.v,
                    w,
                    self.n,
                    rows,
                    &self.sel,
                    &self.alpha,
                    &self.rs,
                    &mut self.carry,
                    &mut self.prev,
                    &mut self.dcur,
                );
            }
            for fi in 0..self.fixups.len() {
                let (t, p) = self.fixups[fi];
                // analyze: allow(cf-reach, reason = "serialized scalar-fixup region: diverged lanes already left the vector pass; this is the documented divergence point")
                self.apply_fixup(t, p);
            }
            self.epilogue();
            iter += 1;
            assert!(
                iter <= max_iters,
                "lockstep engine exceeded {max_iters} iterations"
            );
            // analyze: allow(cf-reach, reason = "harvest/repack/refill service pass between vector iterations: compaction is the documented serialized region")
            self.queue_service(inputs, &mut next, cfg);
        }
    }

    /// [`run_queue`](Self::run_queue) recording every queue entry's address
    /// sequence in the UMM trace model, with the compaction/refill service
    /// events in [`LockstepTrace::events`].
    ///
    /// Threads are indexed by **queue entry**, not column: a refilled
    /// entry's thread starts recording at the iteration its column goes
    /// live, idle-padded before and after so the bulk stays step-aligned.
    /// Every resident live column records the identical row sweep each
    /// iteration, so the vector trace must analyze as perfectly uniform
    /// across compaction boundaries — the dynamic half of the queue-mode
    /// constant-flow claim.
    pub fn run_queue_traced(
        &mut self,
        inputs: &[(&[Limb], &[Limb])],
        term: Termination,
        cfg: CompactionConfig,
    ) -> LockstepTrace {
        let w = self.w;
        self.queue_setup(inputs);
        let mut next = self.n;
        let mut plan = BulkTrace::with_threads(inputs.len());
        let mut vector = BulkTrace::with_threads(inputs.len());
        let mut rows_per_iter = Vec::new();
        let mut events: Vec<CompactionEvent> = Vec::new();
        let max_iters = self.queue_iter_bound(inputs.len());
        loop {
            if !self.plan_iteration(term, false) {
                let (refilled, repacked) = self.queue_service(inputs, &mut next, cfg);
                if refilled > 0 || repacked {
                    events.push(CompactionEvent {
                        iteration: rows_per_iter.len(),
                        refilled,
                        repacked,
                        width_after: self.n,
                    });
                }
                if self.n == 0 {
                    break;
                }
                continue;
            }
            self.record_plan_reads_queue(&mut plan);
            let rows = self.fused_rows();
            rows_per_iter.push(rows);
            for k in 0..rows {
                // Every resident column whose entry is still recording
                // rides the same row sweep — including lanes terminated at
                // this iteration's plan, which ride masked exactly like the
                // real kernel until the service pass harvests them.
                for t in 0..self.n {
                    if self.owner[t] == usize::MAX {
                        continue;
                    }
                    let th = &mut vector.threads[self.owner[t]];
                    th.read(k);
                    th.read(self.stride + k);
                    th.write(k);
                }
            }
            pad_to_steps(&mut vector);
            if rows > 0 {
                fused_submul_rshift_columns_prefix(
                    &mut self.u,
                    &mut self.v,
                    w,
                    self.n,
                    rows,
                    &self.sel,
                    &self.alpha,
                    &self.rs,
                    &mut self.carry,
                    &mut self.prev,
                    &mut self.dcur,
                );
            }
            for fi in 0..self.fixups.len() {
                let (t, p) = self.fixups[fi];
                self.apply_fixup(t, p);
            }
            self.epilogue();
            assert!(
                rows_per_iter.len() <= max_iters,
                "lockstep engine exceeded {max_iters} iterations"
            );
            let (refilled, repacked) = self.queue_service(inputs, &mut next, cfg);
            if refilled > 0 || repacked {
                events.push(CompactionEvent {
                    iteration: rows_per_iter.len(),
                    refilled,
                    repacked,
                    width_after: self.n,
                });
            }
        }
        let iterations = rows_per_iter.len();
        LockstepTrace {
            plan,
            vector,
            rows_per_iter,
            stride: self.stride,
            iterations,
            events,
        }
    }

    /// Size the planes for the whole queue (stride = max operand length
    /// over every pending pair, so any refill fits any column), clear the
    /// result store, and load the first `min(width, len)` entries.
    fn queue_setup(&mut self, inputs: &[(&[Limb], &[Limb])]) {
        let w = self.w;
        let mut stride = 1usize;
        for &(a, b) in inputs {
            stride = stride
                .max(ops::normalized_len(a))
                .max(ops::normalized_len(b));
        }
        self.stride = stride;
        let need = stride * w;
        if self.u.len() < need {
            self.u.resize(need, 0);
            self.v.resize(need, 0);
        }
        if self.xg.len() < stride {
            self.xg.resize(stride, 0);
            self.yg.resize(stride, 0);
        }
        for t in 0..w {
            self.sel[t] = 0;
            self.lx[t] = 0;
            self.ly[t] = 0;
            self.state[t] = LaneState::Done;
            self.owner[t] = usize::MAX;
        }
        self.qres.clear();
        self.qres.resize(inputs.len(), None);
        self.stats = LockstepStats::default();
        // load_column zeroes each column it claims, so the planes need no
        // global fill: columns past the resident prefix are never touched.
        self.n = inputs.len().min(w);
        for (t, &(a, b)) in inputs.iter().enumerate().take(self.n) {
            self.load_column(t, t, a, b);
        }
    }

    /// Hang-insurance bound for queue mode: the per-lane scalar bound
    /// scaled by the whole queue (each entry occupies a column for at most
    /// its own scalar iteration count).
    fn queue_iter_bound(&self, total: usize) -> usize {
        4096 + 64 * LIMB_BITS as usize * self.stride * total.max(1)
    }

    /// Load queue entry `q` into column `t`: zero the column's rows in
    /// both planes, scatter the pair with the same larger-to-X (ties: `a`)
    /// ordering rule as a full warp load, and mark the lane running.
    fn load_column(&mut self, t: usize, q: usize, a: &[Limb], b: &[Limb]) {
        let w = self.w;
        zero_lane_columns(&mut self.u, &mut self.v, w, self.stride, t);
        let la = ops::normalized_len(a);
        let lb = ops::normalized_len(b);
        let (hi, lhi, lo, llo) = if ops::cmp(&a[..la], &b[..lb]) == core::cmp::Ordering::Less {
            (b, lb, a, la)
        } else {
            (a, la, b, lb)
        };
        for (k, &limb) in hi[..lhi].iter().enumerate() {
            self.u[k * w + t] = limb;
        }
        for (k, &limb) in lo[..llo].iter().enumerate() {
            self.v[k * w + t] = limb;
        }
        self.sel[t] = 0;
        self.lx[t] = lhi;
        self.ly[t] = llo;
        self.state[t] = LaneState::Running;
        self.owner[t] = q;
    }

    /// Queue-mode service pass, run between iterations: harvest terminated
    /// lanes into the result store, **repack** survivors into a dense
    /// column prefix (shrinking the resident width, so the shared vector
    /// pass stops issuing masked slots — repacking is a handful of plane
    /// copies and strictly cheaper than the slots it retires), and — once
    /// the resident width has drained below `min_active_fraction` of the
    /// warp width — **batch-refill** every free column from the pending
    /// queue. Refilling in generations keeps freshly loaded full-width
    /// operands (which pin the fused row count at the full stride) from
    /// trickling in next to almost-finished survivors every iteration.
    ///
    /// Every decision here derives from the termination structure (which
    /// lanes have terminated), never from operand values. Returns (columns
    /// refilled, whether a repack shrank the resident width).
    fn queue_service(
        &mut self,
        inputs: &[(&[Limb], &[Limb])],
        next: &mut usize,
        cfg: CompactionConfig,
    ) -> (usize, bool) {
        for t in 0..self.n {
            if self.state[t] != LaneState::Running && self.owner[t] != usize::MAX {
                self.harvest_lane(t);
            }
        }
        let running = (0..self.n)
            .filter(|&t| self.state[t] == LaneState::Running)
            .count();
        let repacked = running < self.n;
        if repacked {
            self.repack();
            self.stats.compactions += 1;
        }
        let frac = cfg.min_active_fraction.clamp(0.0, 1.0);
        let threshold = ((frac * self.w as f64).ceil() as usize).clamp(1, self.w);
        let mut refilled = 0usize;
        // A drained warp always reloads the next batch: `refill: false`
        // only disables mid-flight top-ups (sequential batches with tail
        // compaction), never forward progress through the queue.
        if (cfg.refill && self.n < threshold) || self.n == 0 {
            // Width gate: while survivors are resident, admit a pending
            // pair only if it fits under the live row ceiling, so a top-up
            // never re-inflates a vector pass that had already shrunk
            // below the full stride. A drained warp admits anything.
            // Lengths are public in the semi-oblivious model, so the gate
            // derives from the per-iteration structure, not operand values.
            let ceiling = if self.n == 0 {
                self.stride
            } else {
                (0..self.n).map(|t| self.lx[t]).max().unwrap_or(self.stride)
            };
            while self.n < self.w && *next < inputs.len() {
                let (a, b) = inputs[*next];
                let incoming = ops::normalized_len(a).max(ops::normalized_len(b));
                if self.n > 0 && incoming > ceiling {
                    break;
                }
                self.load_column(self.n, *next, a, b);
                *next += 1;
                refilled += 1;
                self.n += 1;
            }
        }
        self.stats.refills += refilled as u64;
        (refilled, repacked)
    }

    /// Move a terminated lane's result into the queue store, freeing its
    /// column for refill. Allocates only for actual findings (gcd > 1).
    fn harvest_lane(&mut self, t: usize) {
        let q = self.owner[t];
        let status = match self.state[t] {
            LaneState::Done => GcdStatus::Done,
            LaneState::Early => GcdStatus::EarlyCoprime,
            LaneState::Running => unreachable!("only terminated lanes are harvested"),
        };
        let gcd_is_one = status == GcdStatus::Done && self.lx[t] == 1 && self.x_plane(t)[t] == 1;
        let factor = if status == GcdStatus::Done && !gcd_is_one {
            // analyze: allow(za-alloc, reason = "allocates only for an actual finding (gcd > 1) — the rare path harvest exists to record")
            Some(self.lane_gcd_nat(t))
        } else {
            None
        };
        self.qres[q] = Some(QueueResult {
            status,
            gcd_is_one,
            factor,
        });
        self.owner[t] = usize::MAX;
    }

    /// Repack live columns into a dense prefix and shrink the resident
    /// width to match, so the shared vector pass stops issuing masked
    /// slots for dead columns. Swap-remove order: each hole is plugged by
    /// the **last** live column, so a death costs one lane move (not a
    /// shift of every survivor — lane order inside the warp is free, the
    /// `owner` registers track queue identity). Pure plane/register copies
    /// — lane values are untouched (α/rs are per-iteration and already
    /// consumed).
    fn repack(&mut self) {
        let w = self.w;
        let mut n = self.n;
        while n > 0 && self.state[n - 1] != LaneState::Running {
            n -= 1;
        }
        let mut t = 0usize;
        while t < n {
            if self.state[t] == LaneState::Running {
                t += 1;
                continue;
            }
            // Column t is dead and column n-1 is live: move it in.
            let src = n - 1;
            copy_lane_columns(&mut self.u, &mut self.v, w, self.stride, src, t);
            self.sel[t] = self.sel[src];
            self.lx[t] = self.lx[src];
            self.ly[t] = self.ly[src];
            self.state[t] = LaneState::Running;
            self.owner[t] = self.owner[src];
            self.state[src] = LaneState::Done;
            self.owner[src] = usize::MAX;
            n -= 1;
            while n > 0 && self.state[n - 1] != LaneState::Running {
                n -= 1;
            }
            t += 1;
        }
        self.n = n;
    }

    /// Number of entries in the engine's last
    /// [`run_queue`](Self::run_queue) call.
    pub fn queue_len(&self) -> usize {
        self.qres.len()
    }

    /// Terminal status of queue entry `q` after
    /// [`run_queue`](Self::run_queue).
    pub fn queue_status(&self, q: usize) -> GcdStatus {
        // analyze: allow(no-panic, reason = "documented panic contract: queue accessors are valid only after run_queue returns, which harvests every entry")
        self.qres[q]
            .as_ref()
            .expect("queue entry not harvested")
            .status
    }

    /// For a [`GcdStatus::Done`] queue entry: is the GCD exactly 1?
    pub fn queue_gcd_is_one(&self, q: usize) -> bool {
        // analyze: allow(no-panic, reason = "documented panic contract: queue accessors are valid only after run_queue returns, which harvests every entry")
        self.qres[q]
            .as_ref()
            .expect("queue entry not harvested")
            .gcd_is_one
    }

    /// For a [`GcdStatus::Done`] queue entry with GCD > 1: the factor,
    /// gathered at harvest time. `None` for coprime or interrupted entries.
    pub fn queue_factor(&self, q: usize) -> Option<&Nat> {
        // analyze: allow(no-panic, reason = "documented panic contract: queue accessors are valid only after run_queue returns, which harvests every entry")
        self.qres[q]
            .as_ref()
            .expect("queue entry not harvested")
            .factor
            .as_ref()
    }

    /// Record this iteration's planning-phase head reads: 8 slots per lane
    /// (§IV's top-two and bottom-two words of each operand), idles for
    /// terminated lanes so the bulk stays step-aligned.
    fn record_plan_reads(&self, tr: &mut BulkTrace) {
        for t in 0..self.n {
            let th = &mut tr.threads[t];
            if self.state[t] != LaneState::Running {
                for _ in 0..8 {
                    th.idle();
                }
                continue;
            }
            self.record_lane_plan_reads(t, th);
        }
    }

    /// Queue-mode variant of [`record_plan_reads`](Self::record_plan_reads):
    /// running lanes record into their owning queue entry's thread, and
    /// every other thread idle-pads to the common step count.
    fn record_plan_reads_queue(&self, tr: &mut BulkTrace) {
        for t in 0..self.n {
            if self.state[t] == LaneState::Running {
                self.record_lane_plan_reads(t, &mut tr.threads[self.owner[t]]);
            }
        }
        pad_to_steps(tr);
    }

    /// One running lane's 8 planning-phase head-read slots.
    fn record_lane_plan_reads(&self, t: usize, th: &mut ThreadTrace) {
        let stride = self.stride;
        let (lx, ly) = (self.lx[t], self.ly[t]);
        // Plane-A offsets are 0..stride, plane-B offsets follow.
        let x_base = if self.sel[t] == 0 { 0 } else { stride };
        let y_base = stride - x_base;
        if lx >= 2 {
            th.read(x_base + lx - 1);
            th.read(x_base + lx - 2);
        } else {
            th.read(x_base);
            th.idle();
        }
        if ly >= 2 {
            th.read(y_base + ly - 1);
            th.read(y_base + ly - 2);
        } else {
            th.read(y_base);
            th.idle();
        }
        if stride >= 2 {
            th.read(x_base + 1);
            th.read(x_base);
            th.read(y_base + 1);
            th.read(y_base);
        } else {
            th.read(x_base);
            th.idle();
            th.read(y_base);
            th.idle();
        }
    }

    /// Terminal status of lane `t` after [`run_warp`](Self::run_warp).
    ///
    /// Panics if the lane index is out of range for the last warp.
    pub fn lane_status(&self, t: usize) -> GcdStatus {
        assert!(t < self.n, "lane {t} out of range ({} loaded)", self.n);
        match self.state[t] {
            LaneState::Done => GcdStatus::Done,
            LaneState::Early => GcdStatus::EarlyCoprime,
            LaneState::Running => unreachable!("run_warp terminates every lane"),
        }
    }

    /// For a [`GcdStatus::Done`] lane: is the GCD exactly 1? Answered from
    /// the length register and one strided word, no allocation.
    pub fn lane_gcd_is_one(&self, t: usize) -> bool {
        assert!(t < self.n);
        self.lx[t] == 1 && self.x_plane(t)[t] == 1
    }

    /// For a [`GcdStatus::Done`] lane: the GCD as an owned `Nat` (gathers
    /// the lane's column; allocates, so reserve it for rare findings).
    pub fn lane_gcd_nat(&self, t: usize) -> Nat {
        assert!(t < self.n);
        let xp = self.x_plane(t);
        let limbs: Vec<Limb> = (0..self.lx[t]).map(|k| xp[k * self.w + t]).collect();
        Nat::from_limbs(&limbs)
    }

    #[inline]
    fn x_plane(&self, t: usize) -> &[Limb] {
        if self.sel[t] == 0 {
            &self.u
        } else {
            &self.v
        }
    }

    fn load(&mut self, inputs: &[(&[Limb], &[Limb])]) {
        let w = self.w;
        self.n = inputs.len();
        let mut stride = 1usize;
        for &(a, b) in inputs {
            stride = stride
                .max(ops::normalized_len(a))
                .max(ops::normalized_len(b));
        }
        self.stride = stride;
        let need = stride * w;
        if self.u.len() < need {
            self.u.resize(need, 0);
            self.v.resize(need, 0);
        }
        self.u[..need].fill(0);
        self.v[..need].fill(0);
        if self.xg.len() < stride {
            self.xg.resize(stride, 0);
            self.yg.resize(stride, 0);
        }
        for t in 0..w {
            self.sel[t] = 0;
            self.lx[t] = 0;
            self.ly[t] = 0;
            self.state[t] = LaneState::Done;
            self.owner[t] = usize::MAX;
        }
        self.qres.clear();
        self.stats = LockstepStats::default();
        for (t, &(a, b)) in inputs.iter().enumerate() {
            // Same ordering rule as GcdPair::load_from_limbs: larger value
            // (ties: a) goes to X, which starts in plane A.
            let la = ops::normalized_len(a);
            let lb = ops::normalized_len(b);
            let (hi, lhi, lo, llo) = if ops::cmp(&a[..la], &b[..lb]) == core::cmp::Ordering::Less {
                (b, lb, a, la)
            } else {
                (a, la, b, lb)
            };
            for (k, &limb) in hi[..lhi].iter().enumerate() {
                self.u[k * w + t] = limb;
            }
            for (k, &limb) in lo[..llo].iter().enumerate() {
                self.v[k * w + t] = limb;
            }
            self.lx[t] = lhi;
            self.ly[t] = llo;
            self.state[t] = LaneState::Running;
        }
    }

    #[inline]
    fn y_bits(&self, t: usize) -> u64 {
        let ly = self.ly[t];
        if ly == 0 {
            return 0;
        }
        let yp = if self.sel[t] == 0 { &self.v } else { &self.u };
        let top = yp[(ly - 1) * self.w + t];
        (ly as u64 - 1) * LIMB_BITS as u64 + (LIMB_BITS - top.leading_zeros()) as u64
    }

    /// Terminate finished lanes, then classify every still-running lane for
    /// this iteration. Returns false when no lane remains (loop exit).
    // analyze: constant-flow(public = "w, n, state, lx, ly, sel, stride, term, record, live, fixups")
    fn plan_iteration(&mut self, term: Termination, record: bool) -> bool {
        let w = self.w;
        self.live.clear();
        self.fixups.clear();
        // Only the resident prefix is ever read downstream (the prefix
        // kernel, `fused_rows`, and the epilogue all stop at `n`).
        self.alpha[..self.n].fill(0);
        self.rs[..self.n].fill(0);
        let mut running = 0usize;
        for t in 0..self.n {
            if self.state[t] != LaneState::Running {
                continue;
            }
            // Same check order as the scalar loop's `finished()`: Y == 0
            // first, then the early-termination bit threshold.
            if self.ly[t] == 0 {
                self.state[t] = LaneState::Done;
                continue;
            }
            if let Termination::Early { threshold_bits } = term {
                // analyze: allow(cf-branch, reason = "early termination compares the live bit length of Y; terminated lanes mask off — the paper's documented data-dependent exit")
                // analyze: allow(cf-reach, reason = "the bit-length probe is an O(1) head-word read; the length it returns is public in the semi-oblivious model (the documented early-exit leak)")
                if self.y_bits(t) < threshold_bits {
                    self.state[t] = LaneState::Early;
                    continue;
                }
            }
            running += 1;
            let (lx, ly) = (self.lx[t], self.ly[t]);
            let (xp, yp) = if self.sel[t] == 0 {
                (&self.u, &self.v)
            } else {
                (&self.v, &self.u)
            };
            // The §IV head accesses: top two and bottom two words per
            // operand, gathered with strided reads from the columns.
            let x_top = if lx >= 2 {
                (xp[(lx - 1) * w + t] as u64) << LIMB_BITS | xp[(lx - 2) * w + t] as u64
            } else {
                xp[t] as u64
            };
            let y_top = if ly >= 2 {
                (yp[(ly - 1) * w + t] as u64) << LIMB_BITS | yp[(ly - 2) * w + t] as u64
            } else {
                yp[t] as u64
            };
            let row1 = if self.stride >= 2 { w + t } else { t };
            let x_lo = if self.stride >= 2 {
                (xp[row1] as u64) << LIMB_BITS | xp[t] as u64
            } else {
                xp[t] as u64
            };
            let y_lo = if self.stride >= 2 {
                (yp[row1] as u64) << LIMB_BITS | yp[t] as u64
            } else {
                yp[t] as u64
            };
            let (plan, _, _, _) = plan_lane(x_top, x_lo, lx, y_top, y_lo, ly);
            if record {
                // analyze: allow(cf-branch, reason = "measurement only: the recorded step kind feeds the same accumulator as the replay model")
                let kind = if plan.is_beta_positive() {
                    StepKind::ApproxBetaPositive
                } else {
                    StepKind::ApproxBetaZero
                };
                // analyze: allow(za-alloc, reason = "live/fixups are cleared each iteration and keep their capacity: a push after warmup reuses the allocation")
                self.live.push(IterDesc {
                    kind,
                    lx,
                    ly,
                    x_in_a: self.sel[t] == 0,
                });
            }
            // analyze: allow(cf-branch, reason = "the fused/divergent dispatch is the documented warp-divergence point: diverged lanes queue for serialized scalar fixups")
            match plan {
                LanePlan::Fused { alpha, rs } => {
                    self.alpha[t] = alpha;
                    self.rs[t] = rs;
                }
                // analyze: allow(za-alloc, reason = "live/fixups are cleared each iteration and keep their capacity: a push after warmup reuses the allocation")
                other => self.fixups.push((t, other)),
            }
        }
        if running > 0 {
            self.stats.iterations += 1;
            self.stats.active_lane_iters += running as u64;
            self.stats.resident_lane_iters += self.n as u64;
        }
        running > 0
    }

    /// Max `lX` over this iteration's fused lanes (the vector-pass trip
    /// count); 0 when this iteration ran only fixups (or nothing).
    fn fused_rows(&self) -> usize {
        (0..self.n)
            .filter(|&t| self.alpha[t] != 0)
            .map(|t| self.lx[t])
            .max()
            .unwrap_or(0)
    }

    /// Serialized scalar execution of one diverged lane, via the same
    /// `GcdPair` updates the scalar algorithm uses — identical values by
    /// construction.
    fn apply_fixup(&mut self, t: usize, plan: LanePlan) {
        let w = self.w;
        let old_lx = self.lx[t];
        let ly = self.ly[t];
        {
            let (xp, yp) = if self.sel[t] == 0 {
                (&self.u, &self.v)
            } else {
                (&self.v, &self.u)
            };
            for k in 0..old_lx {
                self.xg[k] = xp[k * w + t];
            }
            for k in 0..ly {
                self.yg[k] = yp[k * w + t];
            }
        }
        let new_lx;
        match plan {
            LanePlan::WideAlpha { alpha } => {
                // Case 1 tail: X and Y fit in 64 bits, do the arithmetic
                // directly (scalar reference does the same).
                let pack = |g: &[Limb], l: usize| -> u64 {
                    let lo = g[0] as u64;
                    let hi = if l >= 2 { g[1] as u64 } else { 0 };
                    hi << LIMB_BITS | lo
                };
                let x64 = pack(&self.xg, old_lx);
                let y64 = pack(&self.yg, ly);
                let d = x64 - alpha * y64;
                let tz = if d == 0 { 0 } else { d.trailing_zeros() };
                let val = d >> tz;
                let xplane = if self.sel[t] == 0 {
                    &mut self.u
                } else {
                    &mut self.v
                };
                for k in 0..old_lx {
                    xplane[k * w + t] = (val >> (LIMB_BITS as usize * k)) as Limb;
                }
                new_lx = if val == 0 {
                    0
                } else if val >> LIMB_BITS == 0 {
                    1
                } else {
                    2
                };
            }
            LanePlan::DeepShift { alpha } => {
                self.pair
                    .load_from_limbs(&self.xg[..old_lx], &self.yg[..ly]);
                self.pair.x_submul_rshift(alpha);
                new_lx = self.scatter_pair_x(t, old_lx);
            }
            LanePlan::BetaPositive { alpha, beta } => {
                self.pair
                    .load_from_limbs(&self.xg[..old_lx], &self.yg[..ly]);
                self.pair.x_submul_shifted_rshift(alpha, beta);
                new_lx = self.scatter_pair_x(t, old_lx);
            }
            LanePlan::Fused { .. } => unreachable!("fused lanes run in the vector pass"),
        }
        self.lx[t] = new_lx;
    }

    /// Write the fixup pair's X back into the lane's column, restoring the
    /// high-zero padding invariant over the rows it used to occupy.
    fn scatter_pair_x(&mut self, t: usize, old_lx: usize) -> usize {
        let w = self.w;
        let new_lx = self.pair.lx();
        let xs = self.pair.x();
        let xplane = if self.sel[t] == 0 {
            &mut self.u
        } else {
            &mut self.v
        };
        for (k, &limb) in xs.iter().enumerate() {
            xplane[k * w + t] = limb;
        }
        for k in new_lx..old_lx {
            xplane[k * w + t] = 0;
        }
        new_lx
    }

    /// Per-lane iteration tail: renormalize `lX` after the vector pass and
    /// restore `X ≥ Y` by flipping the selector mask (the pointer swap).
    // analyze: constant-flow(public = "w, n, state, lx, ly, sel")
    fn epilogue(&mut self) {
        let w = self.w;
        for t in 0..self.n {
            if self.state[t] != LaneState::Running {
                continue;
            }
            // analyze: allow(cf-branch, reason = "which lanes took the fused path this iteration is operand-derived; renormalization only applies to them")
            if self.alpha[t] != 0 {
                // Vector lanes: the pass preserves padding, so scanning down
                // from the old length is the strided normalized_len.
                let xp = if self.sel[t] == 0 { &self.u } else { &self.v };
                let mut l = self.lx[t];
                // analyze: allow(cf-branch, reason = "renormalization scans the lane's own column for the new length; lengths are public in the semi-oblivious model")
                // analyze: allow(cf-short-circuit, reason = "same scan: the zero-test is the loop condition")
                while l > 0 && xp[(l - 1) * w + t] == 0 {
                    l -= 1;
                }
                self.lx[t] = l;
            }
            let (lx, ly) = (self.lx[t], self.ly[t]);
            let less = {
                let (xp, yp) = if self.sel[t] == 0 {
                    (&self.u, &self.v)
                } else {
                    (&self.v, &self.u)
                };
                match lx.cmp(&ly) {
                    core::cmp::Ordering::Less => true,
                    core::cmp::Ordering::Greater => false,
                    core::cmp::Ordering::Equal => {
                        let mut less = false;
                        for k in (0..lx).rev() {
                            let (xv, yv) = (xp[k * w + t], yp[k * w + t]);
                            // analyze: allow(cf-branch, reason = "equal-length X<Y compare reads operand words; the outcome only flips a selector mask, the address sequence is unchanged")
                            if xv != yv {
                                less = xv < yv;
                                break;
                            }
                        }
                        less
                    }
                }
            };
            // analyze: allow(cf-branch, reason = "the swap is a branchless-in-memory mask flip; the branch only guards three register writes")
            if less {
                self.sel[t] ^= Limb::MAX;
                self.lx[t] = ly;
                self.ly[t] = lx;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::random::random_odd_bits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn warp_vs_reference(pairs: &[(Nat, Nat)], w: usize, term: Termination) {
        let mut engine = LockstepEngine::new(w);
        for chunk in pairs.chunks(w) {
            let inputs: Vec<(&[Limb], &[Limb])> = chunk
                .iter()
                .map(|(a, b)| (a.as_limbs(), b.as_limbs()))
                .collect();
            engine.run_warp(&inputs, term, None);
            for (t, (a, b)) in chunk.iter().enumerate() {
                let mut pair = GcdPair::new(a, b);
                let status = bulkgcd_core::run_in_place(
                    bulkgcd_core::Algorithm::Approximate,
                    &mut pair,
                    term,
                    &mut bulkgcd_core::NoProbe,
                );
                assert_eq!(engine.lane_status(t), status, "status lane {t}");
                if status == GcdStatus::Done {
                    assert_eq!(engine.lane_gcd_nat(t), pair.x_nat(), "gcd lane {t}");
                    assert_eq!(engine.lane_gcd_is_one(t), pair.gcd_is_one());
                }
            }
        }
    }

    #[test]
    fn full_warp_matches_scalar_full_termination() {
        let mut rng = StdRng::seed_from_u64(11);
        let pairs: Vec<(Nat, Nat)> = (0..24)
            .map(|_| {
                (
                    random_odd_bits(&mut rng, 256),
                    random_odd_bits(&mut rng, 256),
                )
            })
            .collect();
        warp_vs_reference(&pairs, 8, Termination::Full);
    }

    #[test]
    fn ragged_warp_and_early_termination() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut pairs: Vec<(Nat, Nat)> = (0..13)
            .map(|_| {
                (
                    random_odd_bits(&mut rng, 192),
                    random_odd_bits(&mut rng, 192),
                )
            })
            .collect();
        // A shared factor so at least one lane runs to Done under Early.
        let p = random_odd_bits(&mut rng, 96);
        pairs.push((
            p.mul(&random_odd_bits(&mut rng, 96)),
            p.mul(&random_odd_bits(&mut rng, 96)),
        ));
        warp_vs_reference(&pairs, 8, Termination::Early { threshold_bits: 96 });
    }

    #[test]
    fn duplicate_pair_in_a_lane() {
        let n = Nat::from_u128(0xdead_beef_cafe_babe_1234_5678_9abc_def1);
        let other = Nat::from_u128(0xfeed_0000_0000_0003);
        warp_vs_reference(&[(n.clone(), n.clone()), (n, other)], 4, Termination::Full);
    }

    #[test]
    fn tiny_and_unbalanced_operands() {
        let cases = vec![
            (Nat::from_u64(1_043_915), Nat::from_u64(768_955)),
            (Nat::from_u64(3), Nat::from_u64(1)),
            (Nat::from_u128(1u128 << 100 | 1), Nat::from_u64(7)),
            (Nat::from_u64(1), Nat::from_u64(1)),
        ];
        warp_vs_reference(&cases, 8, Termination::Full);
    }

    #[test]
    fn engine_reuse_across_different_strides() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut engine = LockstepEngine::new(4);
        for bits in [1024u64, 64, 512, 32] {
            let a = random_odd_bits(&mut rng, bits);
            let b = random_odd_bits(&mut rng, bits);
            engine.run_warp(&[(a.as_limbs(), b.as_limbs())], Termination::Full, None);
            assert_eq!(engine.lane_gcd_nat(0), a.gcd_reference(&b), "{bits} bits");
        }
    }
}
