//! Append-only checkpoint journal for resumable scans.
//!
//! A full all-pairs sweep of a real corpus takes hours; a crash near the
//! end must not force a restart from pair zero. The scan driver
//! ([`scan_gpu_sim_resumable`](crate::scan::scan_gpu_sim_resumable))
//! commits each completed launch to a [`ScanJournal`] — launch index,
//! simulated seconds, CPU-fallback flag, and the launch's findings — and on
//! resume skips every launch the journal already holds. Because the final
//! report is always merged **from the journal**, a resumed run reduces to
//! exactly the records an uninterrupted run would have written, making the
//! resume-equals-rerun property testable byte for byte.
//!
//! # Journal format (version 1)
//!
//! A plain-text, line-oriented, append-only file. No external
//! serialization crates are used; every value round-trips exactly:
//!
//! ```text
//! bulkgcd-scan-journal v1
//! H fp=<fnv1a64 hex16> m=<moduli> stride=<limbs> algo=<tag> early=<0|1> launch_pairs=<lanes> launches=<count>
//! L <launch> sim=<f64-bits hex16> fb=<0|1> n=<findings> <i>,<j>,<S|D>,<factor-hex> ...
//! D
//! ```
//!
//! * the magic line pins the format version;
//! * `H` binds the journal to one scan configuration: a corpus fingerprint
//!   (FNV-1a-64 over the arena's dimensions and limb bytes) plus the
//!   algorithm, termination mode and launch width — resuming with *any*
//!   different configuration is refused with [`JournalError::Mismatch`]
//!   rather than silently merging incompatible findings;
//! * one `L` line per completed launch. Simulated seconds are stored as
//!   the `f64` bit pattern in hex (`to_bits`), not decimal, so the resumed
//!   sum is bitwise identical; factors are lower-case hex;
//! * `D` marks the scan complete.
//!
//! Records are appended line-at-a-time and fsynced (`sync_data`) before
//! the commit returns, so even an OS crash or power loss can only tear the
//! final line. [`ScanJournal::open`] tolerates exactly that: bytes after
//! the last `\n` are dropped (the interrupted launch is simply re-run),
//! while a malformed *complete* line is real corruption and is reported as
//! [`JournalError::Corrupt`]. `L` lines may appear in any order — the
//! parallel driver commits each launch the moment it completes — and are
//! normalised to launch-index order on replay.

use crate::arena::ModuliArena;
use crate::scan::{Finding, FindingKind};
use bulkgcd_bigint::Nat;
use bulkgcd_core::Algorithm;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// First line of every journal file.
const MAGIC: &str = "bulkgcd-scan-journal v1";

/// Why a journal could not be used.
#[derive(Debug)]
pub enum JournalError {
    /// The journal file could not be read or appended to.
    Io(io::Error),
    /// A complete line of the journal failed to parse. (A torn *final*
    /// line — no trailing newline — is not corruption; it is dropped.)
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The journal was written by a different scan configuration and must
    /// not be resumed with this one.
    Mismatch {
        /// The header field that differs.
        field: &'static str,
        /// The journal's value.
        journal: String,
        /// The current run's value.
        run: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O: {e}"),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
            JournalError::Mismatch {
                field,
                journal,
                run,
            } => write!(
                f,
                "journal belongs to a different scan ({field}: journal has {journal}, \
                 this run has {run}); delete it or rerun with the original settings"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// FNV-1a-64 over the arena's shape and limb bytes: cheap, dependency-free,
/// and sensitive to any reordering or edit of the corpus.
pub fn corpus_fingerprint(arena: &ModuliArena) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(arena.len() as u64).to_le_bytes());
    eat(&(arena.stride() as u64).to_le_bytes());
    for i in 0..arena.len() {
        for &limb in arena.limbs(i) {
            eat(&limb.to_le_bytes());
        }
    }
    h
}

/// The configuration a journal is bound to. Two runs may share a journal
/// only if every field matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// [`corpus_fingerprint`] of the arena.
    pub fingerprint: u64,
    /// Number of moduli in the corpus.
    pub moduli: usize,
    /// Arena stride in limbs.
    pub stride: usize,
    /// The GCD algorithm's paper tag (e.g. `(E)`).
    pub algo: String,
    /// Whether §V early termination was enabled.
    pub early: bool,
    /// Lanes per simulated kernel launch.
    pub launch_pairs: usize,
    /// Total launches the scan needs (`ceil(m(m-1)/2 / launch_pairs)`).
    pub launches: u64,
    /// First global launch index this journal covers. `0` for an
    /// unsharded scan; a shard journal covers `[tile_start,
    /// tile_start + tile_launches)` of the global launch sequence.
    pub tile_start: u64,
    /// Number of launches this journal covers. Equal to `launches` for an
    /// unsharded scan.
    pub tile_launches: u64,
}

impl JournalHeader {
    /// The header for a scan of `arena` with the given settings.
    pub fn for_scan(
        arena: &ModuliArena,
        algo: Algorithm,
        early: bool,
        launch_pairs: usize,
    ) -> Self {
        let m = arena.len() as u64;
        let total_pairs = m * m.saturating_sub(1) / 2;
        let launches = total_pairs.div_ceil(launch_pairs.max(1) as u64);
        JournalHeader {
            fingerprint: corpus_fingerprint(arena),
            moduli: arena.len(),
            stride: arena.stride(),
            algo: algo.tag().to_string(),
            early,
            launch_pairs,
            launches,
            tile_start: 0,
            tile_launches: launches,
        }
    }

    /// The header for a shard journal covering launches
    /// `[tile_start, tile_start + tile_launches)` of the same scan.
    pub fn for_tile(
        arena: &ModuliArena,
        algo: Algorithm,
        early: bool,
        launch_pairs: usize,
        tile_start: u64,
        tile_launches: u64,
    ) -> Self {
        let mut header = JournalHeader::for_scan(arena, algo, early, launch_pairs);
        header.tile_start = tile_start;
        header.tile_launches = tile_launches;
        header
    }

    /// Whether this journal covers the whole launch sequence (an
    /// unsharded scan) rather than one shard's tile.
    pub fn is_full_range(&self) -> bool {
        self.tile_start == 0 && self.tile_launches == self.launches
    }

    fn to_line(&self) -> String {
        let mut line = format!(
            "H fp={:016x} m={} stride={} algo={} early={} launch_pairs={} launches={}",
            self.fingerprint,
            self.moduli,
            self.stride,
            self.algo,
            u8::from(self.early),
            self.launch_pairs,
            self.launches,
        );
        // Full-range headers stay byte-identical to the pre-shard format;
        // only shard journals carry the tile fields.
        if !self.is_full_range() {
            line.push_str(&format!(
                " tile_start={} tile_launches={}",
                self.tile_start, self.tile_launches
            ));
        }
        line
    }
}

/// One committed launch: everything needed to reproduce its contribution
/// to the final [`ScanReport`](crate::scan::ScanReport).
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchRecord {
    /// The launch index within the scan's launch sequence.
    pub launch: u64,
    /// Simulated device seconds (0.0 for a CPU-fallback launch).
    pub simulated_seconds: f64,
    /// Whether the launch was degraded to the host path.
    pub cpu_fallback: bool,
    /// The launch's findings, in lane order.
    pub findings: Vec<Finding>,
}

impl LaunchRecord {
    /// The journal line for this record. Also the unit the shard
    /// coordinator fingerprints tile completions over, so it must stay
    /// deterministic for a given record.
    pub(crate) fn to_line(&self) -> String {
        let mut line = format!(
            "L {} sim={:016x} fb={} n={}",
            self.launch,
            self.simulated_seconds.to_bits(),
            u8::from(self.cpu_fallback),
            self.findings.len(),
        );
        for f in &self.findings {
            let kind = match f.kind {
                FindingKind::SharedPrime => 'S',
                FindingKind::DuplicateModulus => 'D',
            };
            line.push_str(&format!(" {},{},{},{}", f.i, f.j, kind, f.factor.to_hex()));
        }
        line
    }
}

/// The append-only checkpoint journal.
///
/// Backed by a file ([`open`](Self::open)) for real crash tolerance, or by
/// nothing ([`in_memory`](Self::in_memory)) when tests only need the
/// resume semantics. Records live in launch-index order regardless of the
/// order they were committed in, which is what makes the parallel driver's
/// merge deterministic.
#[derive(Debug)]
pub struct ScanJournal {
    file: Option<File>,
    header: Option<JournalHeader>,
    /// Whether the magic line is already on disk (written by this run or
    /// replayed from a prior one). A crash between the magic append and
    /// the header append must not lead to a duplicated magic line.
    magic_written: bool,
    records: BTreeMap<u64, LaunchRecord>,
    done: bool,
}

impl ScanJournal {
    /// A journal with no backing file: resume semantics without I/O.
    pub fn in_memory() -> Self {
        ScanJournal {
            file: None,
            header: None,
            magic_written: false,
            records: BTreeMap::new(),
            done: false,
        }
    }

    /// Open (or create) the journal at `path`, replaying any prior run's
    /// records. A torn final line — the signature of a crash mid-append —
    /// is dropped *and truncated away*, so later appends land on a clean
    /// line boundary; that launch will simply be re-executed.
    // analyze: journal(replay)
    pub fn open(path: &Path) -> Result<Self, JournalError> {
        let mut journal = ScanJournal::in_memory();
        if path.exists() {
            let bytes = std::fs::read(path)?;
            journal.replay(&bytes)?;
            let committed = bytes
                .iter()
                .rposition(|&b| b == b'\n')
                .map_or(0, |pos| pos + 1);
            if committed < bytes.len() {
                // Drop the half-written tail before reopening for append —
                // otherwise the next record would be glued onto it and
                // corrupt the journal for every replay after this one.
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(committed as u64)?;
                file.sync_data()?;
            }
        }
        journal.file = Some(OpenOptions::new().create(true).append(true).open(path)?);
        Ok(journal)
    }

    /// Rehydrate a journal from serialized bytes, with the same
    /// torn-tail tolerance as [`open`](Self::open). The shard driver uses
    /// this to model worker-process death deterministically: a dead
    /// worker's journal is exactly the bytes it had fsynced.
    // analyze: journal(replay)
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, JournalError> {
        let mut journal = ScanJournal::in_memory();
        journal.replay(bytes)?;
        Ok(journal)
    }

    /// Serialize the committed state back to journal bytes (records in
    /// launch-index order). `from_bytes(to_bytes())` round-trips.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut text = String::new();
        if self.magic_written || self.header.is_some() {
            text.push_str(MAGIC);
            text.push('\n');
        }
        if let Some(header) = &self.header {
            text.push_str(&header.to_line());
            text.push('\n');
        }
        for rec in self.records.values() {
            text.push_str(&rec.to_line());
            text.push('\n');
        }
        if self.done {
            text.push_str("D\n");
        }
        text.into_bytes()
    }

    // analyze: journal(replay)
    fn replay(&mut self, bytes: &[u8]) -> Result<(), JournalError> {
        // Torn-tail tolerance: only bytes up to the last '\n' are a
        // committed prefix; anything after it is a half-written line.
        let committed = match bytes.iter().rposition(|&b| b == b'\n') {
            Some(pos) => &bytes[..=pos],
            None => return Ok(()), // no complete line yet: fresh journal
        };
        let text = std::str::from_utf8(committed).map_err(|e| JournalError::Corrupt {
            line: 0,
            reason: format!("not UTF-8: {e}"),
        })?;
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let corrupt = |reason: String| JournalError::Corrupt {
                line: lineno,
                reason,
            };
            if idx == 0 {
                if line != MAGIC {
                    return Err(corrupt(format!("expected `{MAGIC}`, found `{line}`")));
                }
                self.magic_written = true;
                continue;
            }
            match line.as_bytes().first() {
                Some(b'H') => self.header = Some(parse_header(line, lineno)?),
                Some(b'L') => {
                    let Some(header) = &self.header else {
                        return Err(corrupt("launch record before header".into()));
                    };
                    let rec = parse_record(line, lineno)?;
                    if rec.launch >= header.launches {
                        return Err(corrupt(format!(
                            "launch index {} out of range (header declares {} launches)",
                            rec.launch, header.launches
                        )));
                    }
                    let tile_end = header.tile_start + header.tile_launches;
                    if rec.launch < header.tile_start || rec.launch >= tile_end {
                        return Err(corrupt(format!(
                            "launch index {} outside this journal's tile [{}, {})",
                            rec.launch, header.tile_start, tile_end
                        )));
                    }
                    self.records.insert(rec.launch, rec);
                }
                Some(b'D') => self.done = true,
                _ => return Err(corrupt(format!("unknown record `{line}`"))),
            }
        }
        Ok(())
    }

    /// Append pre-terminated text in one `write_all` and fsync it.
    /// `File::flush` alone is a no-op — only `sync_data` makes the commit
    /// survive an OS crash or power loss, not just a process death.
    // analyze: journal(append)
    fn append_raw(&mut self, text: &str) -> Result<(), JournalError> {
        if let Some(file) = &mut self.file {
            file.write_all(text.as_bytes())?;
            file.sync_data()?;
        }
        Ok(())
    }

    // analyze: journal(append)
    fn append(&mut self, line: &str) -> Result<(), JournalError> {
        self.append_raw(&format!("{line}\n"))
    }

    /// Bind the journal to `header`, or verify it is already bound to an
    /// identical one. Field-by-field mismatches are reported so the caller
    /// knows *what* diverged (corpus edits show up as `fingerprint`).
    // analyze: journal(create)
    pub fn check_compatible(&mut self, header: &JournalHeader) -> Result<(), JournalError> {
        match &self.header {
            None => {
                // One write for magic + header. A prior run may have died
                // after persisting the magic line but before the header
                // (replay then leaves `header` None with `magic_written`
                // set) — re-appending the magic there would corrupt the
                // journal for every later open.
                let mut text = String::new();
                if !self.magic_written {
                    text.push_str(MAGIC);
                    text.push('\n');
                }
                text.push_str(&header.to_line());
                text.push('\n');
                self.append_raw(&text)?;
                self.magic_written = true;
                self.header = Some(header.clone());
                Ok(())
            }
            Some(existing) => {
                let mismatch = |field: &'static str, journal: String, run: String| {
                    Err(JournalError::Mismatch {
                        field,
                        journal,
                        run,
                    })
                };
                if existing.fingerprint != header.fingerprint {
                    return mismatch(
                        "fingerprint",
                        format!("{:016x}", existing.fingerprint),
                        format!("{:016x}", header.fingerprint),
                    );
                }
                if existing.moduli != header.moduli {
                    return mismatch(
                        "moduli",
                        existing.moduli.to_string(),
                        header.moduli.to_string(),
                    );
                }
                if existing.stride != header.stride {
                    return mismatch(
                        "stride",
                        existing.stride.to_string(),
                        header.stride.to_string(),
                    );
                }
                if existing.algo != header.algo {
                    return mismatch("algo", existing.algo.clone(), header.algo.clone());
                }
                if existing.early != header.early {
                    return mismatch(
                        "early",
                        existing.early.to_string(),
                        header.early.to_string(),
                    );
                }
                if existing.launch_pairs != header.launch_pairs {
                    return mismatch(
                        "launch_pairs",
                        existing.launch_pairs.to_string(),
                        header.launch_pairs.to_string(),
                    );
                }
                // Derived from moduli and launch_pairs, so a driver-written
                // header always agrees — but a hand-edited journal must not
                // smuggle phantom launch records past compatibility.
                if existing.launches != header.launches {
                    return mismatch(
                        "launches",
                        existing.launches.to_string(),
                        header.launches.to_string(),
                    );
                }
                if (existing.tile_start, existing.tile_launches)
                    != (header.tile_start, header.tile_launches)
                {
                    return mismatch(
                        "tile",
                        format!("{}+{}", existing.tile_start, existing.tile_launches),
                        format!("{}+{}", header.tile_start, header.tile_launches),
                    );
                }
                // A done marker vouches for every launch in the journal's
                // range; a done journal missing launch records (truncated
                // by hand, or spliced from a run with a different launch
                // count) would silently merge an incomplete report.
                if self.done && self.records.len() as u64 != existing.tile_launches {
                    return Err(JournalError::Corrupt {
                        line: 0,
                        reason: format!(
                            "journal is marked done but holds {} of {} launch records",
                            self.records.len(),
                            existing.tile_launches
                        ),
                    });
                }
                Ok(())
            }
        }
    }

    /// Whether launch `launch` is already committed.
    pub fn completed(&self, launch: u64) -> bool {
        self.records.contains_key(&launch)
    }

    /// Number of committed launches.
    pub fn committed(&self) -> u64 {
        self.records.len() as u64
    }

    /// Whether the scan this journal tracks ran to completion.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The header the journal is bound to, if any run has started.
    pub fn header(&self) -> Option<&JournalHeader> {
        self.header.as_ref()
    }

    /// Commit one completed launch. The line is written and fsynced
    /// (`sync_data`) before this returns, so a crash immediately after —
    /// including an OS crash or power loss — cannot lose the launch.
    // analyze: journal
    pub fn record(&mut self, record: LaunchRecord) -> Result<(), JournalError> {
        self.append(&record.to_line())?;
        self.records.insert(record.launch, record);
        Ok(())
    }

    /// Mark the scan complete. Idempotent.
    // analyze: journal
    pub fn mark_done(&mut self) -> Result<(), JournalError> {
        if !self.done {
            self.append("D")?;
            self.done = true;
        }
        Ok(())
    }

    /// Committed records in launch-index order — the merge order every
    /// run (interrupted or not) reduces the scan in.
    pub fn records(&self) -> impl Iterator<Item = &LaunchRecord> {
        self.records.values()
    }
}

fn field<'a>(line: &'a str, key: &str, lineno: usize) -> Result<&'a str, JournalError> {
    let prefix = format!("{key}=");
    line.split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(&prefix))
        .ok_or_else(|| JournalError::Corrupt {
            line: lineno,
            reason: format!("missing field `{key}`"),
        })
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str, lineno: usize) -> Result<T, JournalError>
where
    T::Err: fmt::Display,
{
    s.parse().map_err(|e| JournalError::Corrupt {
        line: lineno,
        reason: format!("bad {what} `{s}`: {e}"),
    })
}

fn parse_hex_u64(s: &str, what: &str, lineno: usize) -> Result<u64, JournalError> {
    u64::from_str_radix(s, 16).map_err(|e| JournalError::Corrupt {
        line: lineno,
        reason: format!("bad {what} `{s}`: {e}"),
    })
}

/// An optional `key=value` token. Pre-shard journals have no tile fields;
/// they parse as full-range.
fn opt_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let prefix = format!("{key}=");
    line.split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(&prefix))
}

fn parse_header(line: &str, lineno: usize) -> Result<JournalHeader, JournalError> {
    let launches: u64 = parse_num(field(line, "launches", lineno)?, "launches", lineno)?;
    let tile_start: u64 = match opt_field(line, "tile_start") {
        Some(s) => parse_num(s, "tile_start", lineno)?,
        None => 0,
    };
    let tile_launches: u64 = match opt_field(line, "tile_launches") {
        Some(s) => parse_num(s, "tile_launches", lineno)?,
        None => launches,
    };
    let tile_end = tile_start
        .checked_add(tile_launches)
        .ok_or_else(|| JournalError::Corrupt {
            line: lineno,
            reason: format!("tile range {tile_start}+{tile_launches} overflows"),
        })?;
    if tile_end > launches {
        return Err(JournalError::Corrupt {
            line: lineno,
            reason: format!(
                "tile [{tile_start}, {tile_end}) exceeds the scan's {launches} launches"
            ),
        });
    }
    Ok(JournalHeader {
        fingerprint: parse_hex_u64(field(line, "fp", lineno)?, "fingerprint", lineno)?,
        moduli: parse_num(field(line, "m", lineno)?, "moduli count", lineno)?,
        stride: parse_num(field(line, "stride", lineno)?, "stride", lineno)?,
        algo: field(line, "algo", lineno)?.to_string(),
        early: field(line, "early", lineno)? == "1",
        launch_pairs: parse_num(field(line, "launch_pairs", lineno)?, "launch_pairs", lineno)?,
        launches,
        tile_start,
        tile_launches,
    })
}

fn parse_record(line: &str, lineno: usize) -> Result<LaunchRecord, JournalError> {
    let corrupt = |reason: String| JournalError::Corrupt {
        line: lineno,
        reason,
    };
    let mut toks = line.split_ascii_whitespace();
    toks.next(); // the leading "L"
    let launch = parse_num(
        toks.next()
            .ok_or_else(|| corrupt("missing launch index".into()))?,
        "launch index",
        lineno,
    )?;
    let sim_bits = parse_hex_u64(field(line, "sim", lineno)?, "sim bits", lineno)?;
    let cpu_fallback = field(line, "fb", lineno)? == "1";
    let n: usize = parse_num(field(line, "n", lineno)?, "finding count", lineno)?;
    let mut findings = Vec::with_capacity(n);
    // Findings are the tokens after the fixed fields (launch, sim, fb, n).
    for tok in toks.skip(3) {
        let mut parts = tok.split(',');
        let mut next = |what: &str| {
            parts.next().ok_or_else(|| JournalError::Corrupt {
                line: lineno,
                reason: format!("finding `{tok}` missing {what}"),
            })
        };
        let i = parse_num(next("i")?, "finding index i", lineno)?;
        let j = parse_num(next("j")?, "finding index j", lineno)?;
        let kind = match next("kind")? {
            "S" => FindingKind::SharedPrime,
            "D" => FindingKind::DuplicateModulus,
            other => return Err(corrupt(format!("unknown finding kind `{other}`"))),
        };
        let factor = Nat::from_hex(next("factor")?).map_err(|e| JournalError::Corrupt {
            line: lineno,
            reason: format!("bad factor hex in `{tok}`: {e}"),
        })?;
        findings.push(Finding { i, j, kind, factor });
    }
    if findings.len() != n {
        return Err(corrupt(format!(
            "finding count mismatch: header says {n}, line has {}",
            findings.len()
        )));
    }
    Ok(LaunchRecord {
        launch,
        simulated_seconds: f64::from_bits(sim_bits),
        cpu_fallback,
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> LaunchRecord {
        LaunchRecord {
            launch: 3,
            simulated_seconds: 0.1 + 0.2, // a value decimal printing would mangle
            cpu_fallback: false,
            findings: vec![
                Finding {
                    i: 1,
                    j: 4,
                    kind: FindingKind::SharedPrime,
                    factor: Nat::from_u64(0xdead_beef),
                },
                Finding {
                    i: 2,
                    j: 5,
                    kind: FindingKind::DuplicateModulus,
                    factor: Nat::from_u64(77),
                },
            ],
        }
    }

    #[test]
    fn record_line_roundtrips_exactly() {
        let rec = sample_record();
        let parsed = parse_record(&rec.to_line(), 1).unwrap();
        assert_eq!(parsed, rec);
        // f64 bits survive: bitwise, not approximately.
        assert_eq!(
            parsed.simulated_seconds.to_bits(),
            rec.simulated_seconds.to_bits()
        );
    }

    #[test]
    fn header_line_roundtrips() {
        let header = JournalHeader {
            fingerprint: 0x0123_4567_89ab_cdef,
            moduli: 128,
            stride: 8,
            algo: "(E)".to_string(),
            early: true,
            launch_pairs: 64,
            launches: 127,
            tile_start: 0,
            tile_launches: 127,
        };
        assert_eq!(parse_header(&header.to_line(), 1).unwrap(), header);
        // Pre-shard header lines (no tile fields) parse as full-range.
        assert!(!header.to_line().contains("tile"));
    }

    #[test]
    fn tile_header_roundtrips_and_is_bounds_checked() {
        let mut header = JournalHeader {
            fingerprint: 0x0123_4567_89ab_cdef,
            moduli: 128,
            stride: 8,
            algo: "(E)".to_string(),
            early: true,
            launch_pairs: 64,
            launches: 127,
            tile_start: 40,
            tile_launches: 30,
        };
        assert!(!header.is_full_range());
        assert_eq!(parse_header(&header.to_line(), 1).unwrap(), header);
        // A tile reaching past the scan's launch count is corruption, not
        // a valid shard journal.
        header.tile_launches = 100;
        match parse_header(&header.to_line(), 1) {
            Err(JournalError::Corrupt { reason, .. }) => {
                assert!(reason.contains("exceeds"), "{reason}")
            }
            other => panic!("expected tile bound corruption, got {other:?}"),
        }
    }

    #[test]
    fn journal_file_replays_and_tolerates_torn_tail() {
        let dir = std::env::temp_dir().join("bulkgcd-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("torn-{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let header = JournalHeader {
            fingerprint: 42,
            moduli: 5,
            stride: 2,
            algo: "(E)".to_string(),
            early: false,
            launch_pairs: 2,
            launches: 5,
            tile_start: 0,
            tile_launches: 5,
        };
        let rec = sample_record();
        {
            let mut j = ScanJournal::open(&path).unwrap();
            j.check_compatible(&header).unwrap();
            j.record(rec.clone()).unwrap();
        }
        // Simulate a crash mid-append: a trailing half-written line.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"L 4 sim=0000").unwrap();
        }
        let j = ScanJournal::open(&path).unwrap();
        assert_eq!(j.header(), Some(&header));
        assert!(j.completed(3));
        assert!(!j.completed(4), "torn record must not count as committed");
        assert!(!j.is_done());
        assert_eq!(j.records().cloned().collect::<Vec<_>>(), vec![rec]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_header_is_refused() {
        let mut j = ScanJournal::in_memory();
        let header = JournalHeader {
            fingerprint: 1,
            moduli: 4,
            stride: 2,
            algo: "(E)".to_string(),
            early: false,
            launch_pairs: 2,
            launches: 3,
            tile_start: 0,
            tile_launches: 3,
        };
        j.check_compatible(&header).unwrap();
        let mut other = header.clone();
        other.fingerprint = 2;
        match j.check_compatible(&other) {
            Err(JournalError::Mismatch { field, .. }) => assert_eq!(field, "fingerprint"),
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        let mut other = header.clone();
        other.launch_pairs = 99;
        match j.check_compatible(&other) {
            Err(JournalError::Mismatch { field, .. }) => assert_eq!(field, "launch_pairs"),
            other => panic!("expected launch_pairs mismatch, got {other:?}"),
        }
        // A hand-edited launch count is refused even though the driver
        // always derives it from moduli and launch_pairs.
        let mut other = header.clone();
        other.launches = 99;
        match j.check_compatible(&other) {
            Err(JournalError::Mismatch { field, .. }) => assert_eq!(field, "launches"),
            other => panic!("expected launches mismatch, got {other:?}"),
        }
        // A shard journal for tile [1, 3) must not resume an unsharded
        // scan (or another shard's tile).
        let mut other = header.clone();
        other.tile_start = 1;
        other.tile_launches = 2;
        match j.check_compatible(&other) {
            Err(JournalError::Mismatch { field, .. }) => assert_eq!(field, "tile"),
            other => panic!("expected tile mismatch, got {other:?}"),
        }
        // The original header still matches.
        j.check_compatible(&header).unwrap();
    }

    #[test]
    fn done_journal_with_missing_records_is_refused() {
        // Regression: a journal whose header matches and whose `D` marker
        // is present, but whose launch records were truncated (hand-edit,
        // or a splice from a run with a different launch count), used to
        // pass `check_compatible` and merge an incomplete report.
        let header = JournalHeader {
            fingerprint: 1,
            moduli: 4,
            stride: 2,
            algo: "(E)".to_string(),
            early: false,
            launch_pairs: 2,
            launches: 3,
            tile_start: 0,
            tile_launches: 3,
        };
        let mut text = format!("{MAGIC}\n{}\n", header.to_line());
        // Only 1 of the 3 launches, yet done-marked.
        text.push_str("L 0 sim=0000000000000000 fb=0 n=0\nD\n");
        let mut j = ScanJournal::from_bytes(text.as_bytes()).unwrap();
        assert!(j.is_done());
        match j.check_compatible(&header) {
            Err(JournalError::Corrupt { reason, .. }) => {
                assert!(reason.contains("1 of 3"), "{reason}")
            }
            other => panic!("expected done-count corruption, got {other:?}"),
        }
        // A genuinely complete done journal still passes.
        let mut text = format!("{MAGIC}\n{}\n", header.to_line());
        for launch in 0..3 {
            text.push_str(&format!("L {launch} sim=0000000000000000 fb=0 n=0\n"));
        }
        text.push_str("D\n");
        let mut j = ScanJournal::from_bytes(text.as_bytes()).unwrap();
        j.check_compatible(&header).unwrap();
    }

    #[test]
    fn bytes_roundtrip_preserves_state_and_tile_bounds() {
        let header = JournalHeader {
            fingerprint: 9,
            moduli: 8,
            stride: 2,
            algo: "(E)".to_string(),
            early: true,
            launch_pairs: 2,
            launches: 14,
            tile_start: 2,
            tile_launches: 4,
        };
        let mut j = ScanJournal::in_memory();
        j.check_compatible(&header).unwrap();
        let mut rec = sample_record();
        rec.launch = 4; // inside the tile
        j.record(rec.clone()).unwrap();
        let revived = ScanJournal::from_bytes(&j.to_bytes()).unwrap();
        assert_eq!(revived.header(), Some(&header));
        assert_eq!(revived.records().cloned().collect::<Vec<_>>(), vec![rec]);
        assert!(!revived.is_done());
        assert_eq!(revived.to_bytes(), j.to_bytes());

        // A record outside the tile is rejected on replay even though it
        // is inside the scan's overall launch range.
        let mut text = String::from_utf8(j.to_bytes()).unwrap();
        text.push_str("L 9 sim=0000000000000000 fb=0 n=0\n");
        match ScanJournal::from_bytes(text.as_bytes()) {
            Err(JournalError::Corrupt { reason, .. }) => {
                assert!(reason.contains("outside this journal's tile"), "{reason}")
            }
            other => panic!("expected tile-range corruption, got {other:?}"),
        }
    }

    #[test]
    fn crash_between_magic_and_header_does_not_duplicate_magic() {
        // A run that died after persisting the magic line but before the
        // header leaves `MAGIC\n` on disk. The next open must append only
        // the header; a second magic line would make every later replay
        // fail as corrupt — an unrecoverable journal from a recoverable
        // crash.
        let dir = std::env::temp_dir().join("bulkgcd-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("magic-only-{}.journal", std::process::id()));
        std::fs::write(&path, format!("{MAGIC}\n")).unwrap();

        let header = JournalHeader {
            fingerprint: 7,
            moduli: 4,
            stride: 2,
            algo: "(E)".to_string(),
            early: false,
            launch_pairs: 2,
            launches: 3,
            tile_start: 0,
            tile_launches: 3,
        };
        {
            let mut j = ScanJournal::open(&path).unwrap();
            assert!(j.header().is_none());
            j.check_compatible(&header).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.matches(MAGIC).count(),
            1,
            "magic line must not be duplicated:\n{text}"
        );
        let mut j = ScanJournal::open(&path).unwrap();
        assert_eq!(j.header(), Some(&header));
        j.check_compatible(&header).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_order_commits_replay_in_launch_order() {
        // The parallel driver commits launches as they complete, so on-disk
        // L lines can be in any order; replay must normalise them.
        let mut j = ScanJournal::in_memory();
        let header_line =
            "H fp=0000000000000001 m=4 stride=2 algo=(E) early=0 launch_pairs=2 launches=4";
        let mut text = format!("{MAGIC}\n{header_line}\n");
        for launch in [2u64, 0, 3, 1] {
            let rec = LaunchRecord {
                launch,
                simulated_seconds: launch as f64,
                cpu_fallback: false,
                findings: Vec::new(),
            };
            text.push_str(&rec.to_line());
            text.push('\n');
        }
        j.replay(text.as_bytes()).unwrap();
        let order: Vec<u64> = j.records().map(|r| r.launch).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(j.committed(), 4);
    }

    #[test]
    fn phantom_launch_record_is_corrupt() {
        // An L record whose launch index is outside the header's declared
        // launch count must not be silently merged into the final report.
        let mut j = ScanJournal::in_memory();
        let bytes = format!(
            "{MAGIC}\nH fp=0000000000000001 m=4 stride=2 algo=(E) early=0 \
             launch_pairs=2 launches=3\nL 3 sim=0000000000000000 fb=0 n=0\n"
        );
        match j.replay(bytes.as_bytes()) {
            Err(JournalError::Corrupt { line, reason }) => {
                assert_eq!(line, 3);
                assert!(reason.contains("out of range"), "{reason}");
            }
            other => panic!("expected out-of-range corruption, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_complete_line_is_an_error() {
        let mut j = ScanJournal::in_memory();
        let bytes =
            format!("{MAGIC}\nH fp=zz m=1 stride=1 algo=(E) early=0 launch_pairs=1 launches=0\n");
        match j.replay(bytes.as_bytes()) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected corruption at line 2, got {other:?}"),
        }
    }

    #[test]
    fn mark_done_is_idempotent() {
        let mut j = ScanJournal::in_memory();
        assert!(!j.is_done());
        j.mark_done().unwrap();
        j.mark_done().unwrap();
        assert!(j.is_done());
    }
}
