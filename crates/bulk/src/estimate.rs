//! Full-corpus scan-time estimation.
//!
//! The paper's headline numbers time **all** `16384·16383/2 ≈ 1.34·10⁸`
//! pairs. Replaying that many GCDs through the simulator is pointless —
//! per-pair work is i.i.d., so a sampled launch extrapolates: simulate a
//! representative batch, take its per-GCD cost at full device occupancy,
//! and scale. This module packages that extrapolation and is how the
//! harness reproduces the paper's "63.0 seconds for 20000 moduli"-class
//! figures without hours of host time.

use bulkgcd_bigint::Nat;
use bulkgcd_core::{Algorithm, Termination};
use bulkgcd_gpu::{simulate_bulk_gcd_pairs, CostModel, DeviceConfig};

/// Projected cost of scanning all pairs of a corpus of `m` moduli.
#[derive(Debug, Clone)]
pub struct ScanEstimate {
    /// Number of unordered pairs `m(m−1)/2`.
    pub pairs: u64,
    /// Simulated seconds per GCD at full occupancy (from the sample).
    pub per_gcd_seconds: f64,
    /// Projected seconds for the full scan.
    pub total_seconds: f64,
    /// Pairs actually simulated.
    pub sampled_pairs: usize,
    /// Host→device transfer seconds for the input moduli (§VII footnote).
    pub transfer_seconds: f64,
}

/// Estimate the full all-pairs scan of `m` moduli of `bits` bits on
/// `device`, from a simulated launch over `sample` representative pairs.
///
/// `sample` should be large enough to occupy the device (≥ 2 warps per
/// SM); it is clamped up to that threshold.
pub fn estimate_full_scan(
    device: &DeviceConfig,
    cost: &CostModel,
    algo: Algorithm,
    sample_pairs: &[(Nat, Nat)],
    m: u64,
    bits: u64,
    term: Termination,
) -> ScanEstimate {
    assert!(!sample_pairs.is_empty(), "need at least one sampled pair");
    let launch = simulate_bulk_gcd_pairs(device, cost, algo, sample_pairs, term);
    let pairs = m * m.saturating_sub(1) / 2;
    let per_gcd = launch.per_gcd_seconds;
    ScanEstimate {
        pairs,
        per_gcd_seconds: per_gcd,
        total_seconds: per_gcd * pairs as f64,
        sampled_pairs: sample_pairs.len(),
        transfer_seconds: device.host_transfer_seconds(m * bits / 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::random::random_odd_bits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(n: usize, bits: u64) -> Vec<(Nat, Nat)> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|_| {
                (
                    random_odd_bits(&mut rng, bits),
                    random_odd_bits(&mut rng, bits),
                )
            })
            .collect()
    }

    #[test]
    fn estimate_scales_linearly_in_pairs() {
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let s = sample(64, 256);
        let term = Termination::Early {
            threshold_bits: 128,
        };
        let small =
            estimate_full_scan(&device, &cost, Algorithm::Approximate, &s, 1_000, 256, term);
        let large = estimate_full_scan(
            &device,
            &cost,
            Algorithm::Approximate,
            &s,
            10_000,
            256,
            term,
        );
        assert_eq!(small.pairs, 1_000 * 999 / 2);
        assert_eq!(large.pairs, 10_000 * 9_999 / 2);
        let ratio = large.total_seconds / small.total_seconds;
        let expect = large.pairs as f64 / small.pairs as f64;
        assert!((ratio - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn transfer_negligible_vs_scan_at_paper_scale() {
        // The §VII footnote at the paper's own scale: 16K 1024-bit moduli.
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let s = sample(96, 1024);
        let est = estimate_full_scan(
            &device,
            &cost,
            Algorithm::Approximate,
            &s,
            16_384,
            1024,
            Termination::Early {
                threshold_bits: 512,
            },
        );
        assert!(est.transfer_seconds < 0.01);
        assert!(
            est.total_seconds > est.transfer_seconds * 100.0,
            "scan {} s vs transfer {} s",
            est.total_seconds,
            est.transfer_seconds
        );
        // The paper reports 0.346 us/GCD -> 46 s for the full 1024-bit
        // early-terminate scan; the simulated estimate should land within
        // an order of magnitude.
        assert!(
            (5.0..500.0).contains(&est.total_seconds),
            "estimated {} s",
            est.total_seconds
        );
    }
}
