//! Deterministic fault plans for testing the resumable scan driver.
//!
//! A [`FaultPlan`] maps launch indices to injected failures and is the
//! [`FaultInjector`] the resumable scan
//! ([`scan_gpu_sim_resumable`](crate::scan::scan_gpu_sim_resumable)) runs
//! against. Three failure classes cover the fault surface:
//!
//! * **transient** launch faults — retried with exponential backoff;
//! * **persistent** launch faults — the launch degrades to the CPU path;
//! * **kills** — the *process* dies at a launch boundary. Kills are not
//!   launch faults at all (the injector never reports them); the scan
//!   driver checks [`kills`](FaultPlan::kills) at each boundary and stops
//!   exactly as a crash would, leaving the journal resumable.
//!
//! The plan is immutable and answers purely from the launch index, so the
//! parallel driver can query it from any worker, any number of times, and
//! a replayed run sees identical faults. To resume after an injected kill,
//! drop the kill that fired ([`without_kill_at`](FaultPlan::without_kill_at))
//! — modelling that the crash does not recur — and run the same plan again.

use bulkgcd_gpu::{FaultInjector, LaunchFault};
use std::collections::BTreeMap;

/// The failure injected at one launch index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// The launch's first `failures` attempts fail transiently; the next
    /// attempt succeeds. Exercises the retry/backoff loop (and, when
    /// `failures` exceeds the retry budget, the CPU fallback).
    Transient {
        /// How many leading attempts fail.
        failures: u32,
    },
    /// Every attempt fails; the launch can only complete on the CPU path.
    Persistent,
    /// The process dies at this launch's boundary, before it runs.
    Kill,
}

/// A deterministic, seeded-or-scripted schedule of injected failures.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: BTreeMap<u64, FaultSpec>,
}

/// SplitMix64: the tiny, high-quality mixer behind the seeded plan.
/// Inlined so the library crate needs no RNG dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// The production plan: nothing ever fails.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add a kill at launch `launch`'s boundary.
    pub fn with_kill(mut self, launch: u64) -> Self {
        self.faults.insert(launch, FaultSpec::Kill);
        self
    }

    /// Make launch `launch` fail transiently for its first `failures`
    /// attempts.
    pub fn with_transient(mut self, launch: u64, failures: u32) -> Self {
        self.faults
            .insert(launch, FaultSpec::Transient { failures });
        self
    }

    /// Make launch `launch` fail persistently (CPU fallback).
    pub fn with_persistent(mut self, launch: u64) -> Self {
        self.faults.insert(launch, FaultSpec::Persistent);
        self
    }

    /// A reproducible pseudo-random plan over `launches` launch indices:
    /// roughly 10% transient (1–3 failing attempts), 5% persistent and 10%
    /// kills. The same seed always yields the same plan, so a failing
    /// fuzz case is its seed.
    pub fn seeded(seed: u64, launches: u64) -> Self {
        let mut plan = FaultPlan::none();
        for launch in 0..launches {
            let roll = splitmix64(seed ^ splitmix64(launch));
            match roll % 100 {
                0..=9 => {
                    let failures = 1 + (roll >> 32) as u32 % 3;
                    plan.faults
                        .insert(launch, FaultSpec::Transient { failures });
                }
                10..=14 => {
                    plan.faults.insert(launch, FaultSpec::Persistent);
                }
                15..=24 => {
                    plan.faults.insert(launch, FaultSpec::Kill);
                }
                _ => {}
            }
        }
        plan
    }

    /// Whether the plan has no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of faulted launches in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the process is scheduled to die at launch `launch`'s
    /// boundary.
    pub fn kills(&self, launch: u64) -> bool {
        self.faults.get(&launch) == Some(&FaultSpec::Kill)
    }

    /// The lowest-indexed kill, if any.
    pub fn first_kill(&self) -> Option<u64> {
        self.kill_launches().next()
    }

    /// All kill boundaries, in launch order.
    pub fn kill_launches(&self) -> impl Iterator<Item = u64> + '_ {
        self.faults
            .iter()
            .filter(|(_, spec)| **spec == FaultSpec::Kill)
            .map(|(&launch, _)| launch)
    }

    /// The plan with the kill at `launch` removed — the resume step after
    /// that kill fired (the crash does not recur). Non-kill faults at
    /// `launch` are kept.
    pub fn without_kill_at(mut self, launch: u64) -> Self {
        if self.kills(launch) {
            self.faults.remove(&launch);
        }
        self
    }

    /// The plan with every kill removed: the run that is finally allowed
    /// to finish (transient/persistent faults still fire).
    pub fn without_kills(mut self) -> Self {
        self.faults.retain(|_, spec| *spec != FaultSpec::Kill);
        self
    }

    /// The scripted fault at `launch`, if any.
    pub fn spec(&self, launch: u64) -> Option<FaultSpec> {
        self.faults.get(&launch).copied()
    }
}

/// The shard-level failure injected on one tile's *first* assignment.
///
/// These model the failure classes of the multi-shard coordinator
/// (DESIGN.md §4c): where [`FaultSpec`] breaks individual launches,
/// `ShardFaultSpec` breaks *workers* — the processes executing whole
/// tiles — and exercises the lease/reclaim/fingerprint machinery of
/// [`Coordinator`](crate::shard::Coordinator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFaultSpec {
    /// The worker process dies after committing `after_launches` of its
    /// tile (clamped into the tile). Its journal keeps the committed
    /// prefix; its lease is never renewed, so the coordinator reclaims
    /// the tile and a fresh worker resumes from the journal.
    WorkerDeath {
        /// Launches the worker commits before dying.
        after_launches: u64,
    },
    /// The worker finishes its tile but stalls long enough that its lease
    /// expires before it reports back. Its renewal is refused
    /// (`LeaseLost`), it abandons the tile without completing it, and the
    /// reclaiming worker finds a fully committed journal to resume.
    LeaseLoss,
    /// [`WorkerDeath`](Self::WorkerDeath) plus a torn final journal line
    /// (the crash hit mid-append). Resume must drop the torn tail and
    /// re-execute only the uncommitted launches.
    TornJournal {
        /// Launches the worker commits before dying mid-append.
        after_launches: u64,
    },
    /// The worker completes its tile normally, then a resurrected
    /// incarnation of it submits the same completion again. The
    /// coordinator must detect the duplicate by tile fingerprint and
    /// discard it.
    DuplicateCompletion,
}

/// A deterministic schedule of [`ShardFaultSpec`]s keyed by tile index.
///
/// Like [`FaultPlan`], the plan is immutable, answers purely from the
/// tile index, and a seeded plan replays identically from its seed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardFaultPlan {
    faults: BTreeMap<u64, ShardFaultSpec>,
}

impl ShardFaultPlan {
    /// The production plan: every worker is healthy.
    pub fn none() -> Self {
        ShardFaultPlan::default()
    }

    /// Kill tile `tile`'s first worker after it commits `after_launches`.
    pub fn with_worker_death(mut self, tile: u64, after_launches: u64) -> Self {
        self.faults
            .insert(tile, ShardFaultSpec::WorkerDeath { after_launches });
        self
    }

    /// Expire tile `tile`'s first worker's lease before it reports back.
    pub fn with_lease_loss(mut self, tile: u64) -> Self {
        self.faults.insert(tile, ShardFaultSpec::LeaseLoss);
        self
    }

    /// Kill tile `tile`'s first worker mid-append after `after_launches`.
    pub fn with_torn_journal(mut self, tile: u64, after_launches: u64) -> Self {
        self.faults
            .insert(tile, ShardFaultSpec::TornJournal { after_launches });
        self
    }

    /// Have tile `tile`'s first worker submit its completion twice.
    pub fn with_duplicate_completion(mut self, tile: u64) -> Self {
        self.faults
            .insert(tile, ShardFaultSpec::DuplicateCompletion);
        self
    }

    /// A reproducible pseudo-random plan over `tiles` tile indices:
    /// roughly 15% worker deaths, 10% lease losses, 10% torn journals and
    /// 10% duplicate completions. The same seed always yields the same
    /// plan, so a failing fuzz case is its seed.
    pub fn seeded(seed: u64, tiles: u64) -> Self {
        let mut plan = ShardFaultPlan::none();
        for tile in 0..tiles {
            // Salted so a shard plan and a launch plan from the same seed
            // are decorrelated.
            let roll = splitmix64(seed ^ splitmix64(tile ^ 0x5a5a_5a5a_5a5a_5a5a));
            let after_launches = roll >> 32;
            match roll % 100 {
                0..=14 => {
                    plan.faults
                        .insert(tile, ShardFaultSpec::WorkerDeath { after_launches });
                }
                15..=24 => {
                    plan.faults.insert(tile, ShardFaultSpec::LeaseLoss);
                }
                25..=34 => {
                    plan.faults
                        .insert(tile, ShardFaultSpec::TornJournal { after_launches });
                }
                35..=44 => {
                    plan.faults
                        .insert(tile, ShardFaultSpec::DuplicateCompletion);
                }
                _ => {}
            }
        }
        plan
    }

    /// Whether the plan has no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of faulted tiles in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The scripted fault for tile `tile`, if any.
    pub fn spec(&self, tile: u64) -> Option<ShardFaultSpec> {
        self.faults.get(&tile).copied()
    }
}

impl FaultInjector for FaultPlan {
    fn fault(&self, launch: u64, attempt: u32) -> Option<LaunchFault> {
        match self.faults.get(&launch) {
            Some(FaultSpec::Transient { failures }) if attempt < *failures => {
                Some(LaunchFault::Transient)
            }
            Some(FaultSpec::Persistent) => Some(LaunchFault::Persistent),
            // Kills are process deaths at launch boundaries, handled by the
            // scan driver — from the device's point of view nothing failed.
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_faults_fire_where_scripted() {
        let plan = FaultPlan::none()
            .with_transient(2, 2)
            .with_persistent(5)
            .with_kill(7);
        assert_eq!(plan.fault(2, 0), Some(LaunchFault::Transient));
        assert_eq!(plan.fault(2, 1), Some(LaunchFault::Transient));
        assert_eq!(plan.fault(2, 2), None, "third attempt succeeds");
        assert_eq!(plan.fault(5, 9), Some(LaunchFault::Persistent));
        assert_eq!(plan.fault(7, 0), None, "kills are not launch faults");
        assert!(plan.kills(7));
        assert!(!plan.kills(2));
        assert_eq!(plan.fault(0, 0), None);
    }

    #[test]
    fn kill_bookkeeping() {
        let plan = FaultPlan::none()
            .with_kill(3)
            .with_kill(9)
            .with_transient(1, 1);
        assert_eq!(plan.first_kill(), Some(3));
        assert_eq!(plan.kill_launches().collect::<Vec<_>>(), vec![3, 9]);

        let resumed = plan.clone().without_kill_at(3);
        assert_eq!(resumed.first_kill(), Some(9));
        assert_eq!(resumed.fault(1, 0), Some(LaunchFault::Transient));

        let finishing = plan.without_kills();
        assert_eq!(finishing.first_kill(), None);
        assert_eq!(
            finishing.fault(1, 0),
            Some(LaunchFault::Transient),
            "non-kill faults survive without_kills"
        );
    }

    #[test]
    fn without_kill_at_keeps_non_kill_faults() {
        let plan = FaultPlan::none().with_persistent(4).without_kill_at(4);
        assert_eq!(plan.spec(4), Some(FaultSpec::Persistent));
    }

    #[test]
    fn seeded_shard_plans_are_reproducible_and_cover_every_kind() {
        let a = ShardFaultPlan::seeded(99, 400);
        assert_eq!(a, ShardFaultPlan::seeded(99, 400));
        assert_ne!(a, ShardFaultPlan::seeded(100, 400));
        let specs: Vec<_> = (0..400).filter_map(|t| a.spec(t)).collect();
        assert!(specs
            .iter()
            .any(|s| matches!(s, ShardFaultSpec::WorkerDeath { .. })));
        assert!(specs.contains(&ShardFaultSpec::LeaseLoss));
        assert!(specs
            .iter()
            .any(|s| matches!(s, ShardFaultSpec::TornJournal { .. })));
        assert!(specs.contains(&ShardFaultSpec::DuplicateCompletion));
        // Healthy tiles exist too: the plan must not fault everything.
        assert!(a.len() < 400);
    }

    #[test]
    fn scripted_shard_faults_fire_where_scripted() {
        let plan = ShardFaultPlan::none()
            .with_worker_death(0, 2)
            .with_lease_loss(1)
            .with_torn_journal(2, 0)
            .with_duplicate_completion(3);
        assert_eq!(
            plan.spec(0),
            Some(ShardFaultSpec::WorkerDeath { after_launches: 2 })
        );
        assert_eq!(plan.spec(1), Some(ShardFaultSpec::LeaseLoss));
        assert_eq!(
            plan.spec(2),
            Some(ShardFaultSpec::TornJournal { after_launches: 0 })
        );
        assert_eq!(plan.spec(3), Some(ShardFaultSpec::DuplicateCompletion));
        assert_eq!(plan.spec(4), None);
        assert_eq!(plan.len(), 4);
        assert!(ShardFaultPlan::none().is_empty());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan::seeded(1234, 200);
        let b = FaultPlan::seeded(1234, 200);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(1235, 200);
        assert_ne!(a, c, "different seeds should differ over 200 launches");
        // The advertised rates are rough, but over 200 launches each class
        // should appear at least once.
        let specs: Vec<_> = (0..200).filter_map(|l| a.spec(l)).collect();
        assert!(specs
            .iter()
            .any(|s| matches!(s, FaultSpec::Transient { .. })));
        assert!(specs.contains(&FaultSpec::Persistent));
        assert!(specs.contains(&FaultSpec::Kill));
    }
}
