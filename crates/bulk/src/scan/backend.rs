//! Scan execution backends.
//!
//! A [`ScanBackend`] answers one question — *how does a batch of pairs get
//! its GCDs computed?* — and nothing else. Enumeration (§VI block order),
//! batching, checkpointing, retry, and metrics all live in the
//! [`ScanPipeline`](crate::scan::ScanPipeline) driver, so a new execution
//! strategy (a real GPU, a faster Euclid variant) is one `impl` here, not
//! another hand-written `scan_*` family.
//!
//! Launch-driven backends hand the pipeline a [`LaunchExecutor`] — the
//! worker-local scratch (engine planes, operand workspaces, device handles)
//! reused across every launch a worker runs. Whole-corpus backends (the
//! product-tree baseline) instead implement [`ScanBackend::run_whole`] and
//! opt out of the launch driver entirely.

use crate::arena::ModuliArena;
use crate::lockstep::{CompactionConfig, LockstepEngine};
use crate::pairing::{BlockId, GroupedPairs};
use crate::scan::report::{Finding, FindingKind};
use bulkgcd_bigint::{Limb, Nat, LIMB_BITS};
use bulkgcd_core::{
    run_in_place, Algorithm, GcdOutcome, GcdPair, GcdStatus, NoProbe, StatsProbe, Termination,
};
use bulkgcd_gpu::{schedule, simulate_bulk_gcd, CostModel, DeviceConfig, WarpWork};
use std::sync::OnceLock;

/// Everything a backend needs to execute launches over one corpus: the
/// packed operands and the scan's algorithm/termination settings.
#[derive(Clone, Copy)]
pub struct ExecCtx<'a> {
    /// The packed corpus the scan reads operands from.
    pub arena: &'a ModuliArena,
    /// The GCD variant to run.
    pub algo: Algorithm,
    /// Whether §V early termination is enabled.
    pub early: bool,
}

/// What one executed launch produced: its findings plus the execution
/// metrics the pipeline's metrics layer aggregates.
#[derive(Debug, Clone, Default)]
pub struct LaunchOutput {
    /// Findings, in lane order (the pipeline sorts globally).
    pub findings: Vec<Finding>,
    /// Simulated device seconds (`None` for host-only backends).
    pub simulated_seconds: Option<f64>,
    /// Warps executed (0 when the backend has no warp structure).
    pub warps: u64,
    /// Warp-instructions issued, including divergence serialisation.
    pub warp_instructions: f64,
    /// Coalesced memory transactions issued.
    pub mem_transactions: u64,
    /// Total GCD lane-iterations (0 when the backend does not count them).
    pub lane_iterations: u64,
    /// Σ running lanes over lockstep iterations (useful issue slots; 0 for
    /// backends without a lockstep engine).
    pub active_lane_iters: u64,
    /// Σ resident warp width over lockstep iterations (issued slots —
    /// masked lanes burn these; the active/resident ratio is the launch's
    /// mean active-lane occupancy).
    pub resident_lane_iters: u64,
    /// Compaction events (survivors repacked into a dense column prefix).
    pub compactions: u64,
    /// Refill events (dead columns reloaded with pending pairs).
    pub refills: u64,
}

/// Worker-local launch execution state: one per rayon worker, reused across
/// every launch that worker runs (rebuilding scratch per launch was the
/// `gpu_sim_host` overhead regression).
pub trait LaunchExecutor {
    /// Execute one launch over the index pairs in `lanes`.
    fn execute(&mut self, cx: &ExecCtx<'_>, lanes: &[(usize, usize)]) -> LaunchOutput;
}

/// An execution strategy for the all-pairs scan.
///
/// Implementations are cheap, `Sync` descriptions (a warp width, a device
/// model); the mutable state lives in the [`LaunchExecutor`]s they mint.
pub trait ScanBackend: Sync {
    /// Short name for reports and error messages.
    fn name(&self) -> &'static str;

    /// Whether this backend prices launches on the simulated device clock
    /// (fills `simulated_seconds`).
    fn prices_launches(&self) -> bool {
        false
    }

    /// The launch length this backend prefers when the caller did not fix
    /// one: how many pairs each worker-run should cover for `total_pairs`
    /// spread over `workers` workers.
    fn preferred_run_len(&self, total_pairs: usize, workers: usize) -> usize {
        total_pairs.div_ceil(workers.max(1)).max(1)
    }

    /// Mint a fresh worker-local executor.
    fn executor(&self, cx: &ExecCtx<'_>) -> Box<dyn LaunchExecutor + Send>;

    /// True for backends with no launch structure (the product-tree
    /// baseline): the pipeline routes them through [`run_whole`]
    /// (Self::run_whole) and refuses launch-oriented layers on them.
    fn is_whole_corpus(&self) -> bool {
        false
    }

    /// Whole-corpus escape hatch: a backend with no launch structure (the
    /// product-tree baseline) computes every finding in one shot and
    /// returns `Some`; launch-driven backends return `None` (the default).
    fn run_whole(&self, _cx: &ExecCtx<'_>) -> Option<Vec<Finding>> {
        None
    }
}

// ---------------------------------------------------------------------------
// Shared per-pair helpers.
// ---------------------------------------------------------------------------

/// Classify a non-trivial GCD: a factor equal to either modulus marks a
/// duplicate (or dividing) modulus, anything else is a proper shared prime.
/// Compares borrowed limb slices — no allocation on the scan path.
#[inline]
pub(crate) fn kind_of(arena: &ModuliArena, i: usize, j: usize, factor: &Nat) -> FindingKind {
    if factor.as_limbs() == arena.limbs_trimmed(i) || factor.as_limbs() == arena.limbs_trimmed(j) {
        FindingKind::DuplicateModulus
    } else {
        FindingKind::SharedPrime
    }
}

#[inline]
pub(crate) fn termination_for(arena: &ModuliArena, i: usize, j: usize, early: bool) -> Termination {
    if early {
        // s/2 where s is the modulus width: a shared prime has s/2 bits.
        Termination::Early {
            threshold_bits: arena.bit_len(i).min(arena.bit_len(j)) / 2,
        }
    } else {
        Termination::Full
    }
}

/// Fold per-pair termination settings into the single setting a simulated
/// kernel launch applies to every lane.
///
/// The fold is conservative in both directions: any [`Termination::Full`]
/// pair forces the whole launch to `Full` (an early threshold from some
/// *other* pair must never cut a full run short), and a batch of
/// [`Termination::Early`] pairs of mixed widths takes the **smallest**
/// threshold (extra iterations for the wider pairs, never a missed factor).
/// An empty batch gets `Full`.
pub fn combine_terminations(terms: impl IntoIterator<Item = Termination>) -> Termination {
    terms
        .into_iter()
        .reduce(|acc, t| match (acc, t) {
            (
                Termination::Early { threshold_bits: x },
                Termination::Early { threshold_bits: y },
            ) => Termination::Early {
                threshold_bits: x.min(y),
            },
            // Full on either side wins: never narrow a Full pair.
            (Termination::Full, _) | (_, Termination::Full) => Termination::Full,
        })
        .unwrap_or(Termination::Full)
}

/// The per-launch termination: the conservative fold of the lanes'
/// per-pair settings (what a real kernel launch applies to every lane).
pub(crate) fn launch_termination(
    arena: &ModuliArena,
    lanes: &[(usize, usize)],
    early: bool,
) -> Termination {
    combine_terminations(
        lanes
            .iter()
            .map(|&(i, j)| termination_for(arena, i, j, early)),
    )
}

/// Scan one §VI block of `grid` against `arena`, appending findings to
/// `found`. `pair` is caller-provided scratch (reused across blocks by the
/// scan workers); after warmup the loop performs **no heap allocations**
/// except when a finding is actually pushed — the property the root
/// crate's allocation-counting test pins down.
// analyze: zero-alloc
pub fn scan_block_into(
    arena: &ModuliArena,
    grid: &GroupedPairs,
    block: BlockId,
    algo: Algorithm,
    early: bool,
    pair: &mut GcdPair,
    found: &mut Vec<Finding>,
) {
    for (i, j) in grid.block_pair_iter(block) {
        pair.load_from_limbs(arena.limbs(i), arena.limbs(j));
        let term = termination_for(arena, i, j, early);
        if run_in_place(algo, pair, term, &mut NoProbe) == GcdStatus::Done && !pair.gcd_is_one() {
            // analyze: allow(za-alloc, reason = "a factor hit is the rare path the scan exists to surface; materializing and recording the finding may allocate")
            let factor = pair.x_nat();
            let kind = kind_of(arena, i, j, &factor);
            found.push(Finding { i, j, kind, factor });
        }
    }
}

/// Run `lanes` on the host with one shared `term` (the CPU degradation path
/// for a persistently faulted launch: identical termination settings make
/// the findings byte-identical to the device run's).
pub(crate) fn scalar_fallback(
    cx: &ExecCtx<'_>,
    lanes: &[(usize, usize)],
    term: Termination,
) -> Vec<Finding> {
    let arena = cx.arena;
    let mut pair = GcdPair::with_capacity(arena.stride());
    let mut found = Vec::new();
    for &(i, j) in lanes {
        pair.load_from_limbs(arena.limbs(i), arena.limbs(j));
        if run_in_place(cx.algo, &mut pair, term, &mut NoProbe) == GcdStatus::Done
            && !pair.gcd_is_one()
        {
            let factor = pair.x_nat();
            found.push(Finding {
                i,
                j,
                kind: kind_of(arena, i, j, &factor),
                factor,
            });
        }
    }
    found
}

/// Harvest the findings of one executed warp from the engine's lanes.
fn harvest_warp(
    arena: &ModuliArena,
    engine: &LockstepEngine,
    warp: &[(usize, usize)],
    found: &mut Vec<Finding>,
) {
    for (t, &(i, j)) in warp.iter().enumerate() {
        if engine.lane_status(t) == GcdStatus::Done && !engine.lane_gcd_is_one(t) {
            let factor = engine.lane_gcd_nat(t);
            found.push(Finding {
                i,
                j,
                kind: kind_of(arena, i, j, &factor),
                factor,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// ScalarBackend — the per-pair run_in_place host scan.
// ---------------------------------------------------------------------------

/// The multithreaded host scan: each lane runs [`run_in_place`] on a
/// worker-local [`GcdPair`] workspace with its own per-pair termination —
/// zero per-pair heap allocations in the steady state.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

struct ScalarExecutor {
    pair: GcdPair,
}

impl LaunchExecutor for ScalarExecutor {
    fn execute(&mut self, cx: &ExecCtx<'_>, lanes: &[(usize, usize)]) -> LaunchOutput {
        let arena = cx.arena;
        let mut out = LaunchOutput::default();
        for &(i, j) in lanes {
            self.pair.load_from_limbs(arena.limbs(i), arena.limbs(j));
            let term = termination_for(arena, i, j, cx.early);
            if run_in_place(cx.algo, &mut self.pair, term, &mut NoProbe) == GcdStatus::Done
                && !self.pair.gcd_is_one()
            {
                let factor = self.pair.x_nat();
                out.findings.push(Finding {
                    i,
                    j,
                    kind: kind_of(arena, i, j, &factor),
                    factor,
                });
            }
        }
        out
    }
}

impl ScanBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn executor(&self, cx: &ExecCtx<'_>) -> Box<dyn LaunchExecutor + Send> {
        Box::new(ScalarExecutor {
            pair: GcdPair::with_capacity(cx.arena.stride()),
        })
    }
}

// ---------------------------------------------------------------------------
// LockstepBackend — the column-major SIMT host scan.
// ---------------------------------------------------------------------------

/// The lockstep SIMT host scan: warps of `warp_width` lanes run the
/// [`LockstepEngine`]'s column-major vectorized AEA — one shared
/// instruction stream per warp, terminated lanes masked off.
///
/// Without compaction, each warp applies the conservative per-launch
/// termination fold of its lanes (see [`combine_terminations`]), exactly
/// like a simulated kernel launch of the same width. With
/// `compaction: Some(cfg)`, the whole launch becomes one pending queue
/// feeding a single compacting warp ([`LockstepEngine::run_queue`]):
/// terminated lanes are harvested and their columns refilled with pending
/// pairs (and/or survivors repacked into a dense prefix), and the
/// termination fold is taken over the launch — the same launch-level fold
/// the simulated-GPU backend applies, still conservative, never missing a
/// factor.
#[derive(Debug, Clone, Copy)]
pub struct LockstepBackend {
    /// Lanes per warp (clamped to ≥ 1).
    pub warp_width: usize,
    /// Compaction/refill tuning; `None` runs plain fixed warps.
    pub compaction: Option<CompactionConfig>,
}

impl LockstepBackend {
    /// Plain fixed-warp backend of the given width (no compaction).
    pub fn new(warp_width: usize) -> Self {
        LockstepBackend {
            warp_width,
            compaction: None,
        }
    }

    /// Builder: enable queue-mode compaction/refill with `cfg`.
    pub fn with_compaction(mut self, cfg: CompactionConfig) -> Self {
        self.compaction = Some(cfg);
        self
    }

    fn width(&self) -> usize {
        self.warp_width.max(1)
    }
}

impl Default for LockstepBackend {
    /// The paper's W = 32, no compaction.
    fn default() -> Self {
        LockstepBackend::new(32)
    }
}

struct LockstepExecutor {
    engine: LockstepEngine,
    compaction: Option<CompactionConfig>,
}

impl LockstepExecutor {
    /// Fold the engine's per-run occupancy/service counters into the
    /// launch output.
    fn accumulate_stats(engine: &LockstepEngine, out: &mut LaunchOutput) {
        let st = engine.session_stats();
        out.active_lane_iters += st.active_lane_iters;
        out.resident_lane_iters += st.resident_lane_iters;
        out.compactions += st.compactions;
        out.refills += st.refills;
    }
}

impl LaunchExecutor for LockstepExecutor {
    fn execute(&mut self, cx: &ExecCtx<'_>, lanes: &[(usize, usize)]) -> LaunchOutput {
        let arena = cx.arena;
        let w = self.engine.width();
        let mut out = LaunchOutput::default();
        if let Some(cfg) = self.compaction {
            // Queue mode: the launch is one pending queue through a single
            // compacting warp, under the launch-level termination fold.
            let term = launch_termination(arena, lanes, cx.early);
            let inputs: Vec<(&[Limb], &[Limb])> = lanes
                .iter()
                .map(|&(i, j)| (arena.limbs(i), arena.limbs(j)))
                .collect();
            self.engine.run_queue(&inputs, term, cfg);
            for (q, &(i, j)) in lanes.iter().enumerate() {
                // A queue entry carries a factor exactly when it completed
                // with a non-trivial GCD — the same harvest rule as
                // `harvest_warp` applies to plain warps.
                if let Some(factor) = self.engine.queue_factor(q) {
                    let factor = factor.clone();
                    out.findings.push(Finding {
                        i,
                        j,
                        kind: kind_of(arena, i, j, &factor),
                        factor,
                    });
                }
            }
            out.warps += 1;
            Self::accumulate_stats(&self.engine, &mut out);
            return out;
        }
        let mut inputs: Vec<(&[Limb], &[Limb])> = Vec::with_capacity(w);
        for warp in lanes.chunks(w) {
            let term = launch_termination(arena, warp, cx.early);
            inputs.clear();
            inputs.extend(warp.iter().map(|&(i, j)| (arena.limbs(i), arena.limbs(j))));
            self.engine.run_warp(&inputs, term, None);
            harvest_warp(arena, &self.engine, warp, &mut out.findings);
            out.warps += 1;
            Self::accumulate_stats(&self.engine, &mut out);
        }
        out
    }
}

impl ScanBackend for LockstepBackend {
    fn name(&self) -> &'static str {
        if self.compaction.is_some() {
            "lockstep-compact"
        } else {
            "lockstep"
        }
    }

    fn preferred_run_len(&self, total_pairs: usize, workers: usize) -> usize {
        // Whole warps per worker run: rounding the run length up to a
        // multiple of the warp width keeps every warp (except possibly the
        // global last) full, and keeps warp boundaries aligned across any
        // worker count.
        let w = self.width();
        total_pairs.div_ceil(workers.max(1)).div_ceil(w).max(1) * w
    }

    fn executor(&self, _cx: &ExecCtx<'_>) -> Box<dyn LaunchExecutor + Send> {
        // Queue mode hosts a pooled resident arena of `pool_warps` warps'
        // worth of columns (modeling concurrent resident warps on an SM),
        // amortizing per-iteration host overheads; plain mode stays at the
        // paper-faithful single warp.
        let width = match self.compaction {
            Some(cfg) => self.width().saturating_mul(cfg.pool_warps.max(1)),
            None => self.width(),
        };
        Box::new(LockstepExecutor {
            engine: LockstepEngine::new(width),
            compaction: self.compaction,
        })
    }
}

// ---------------------------------------------------------------------------
// GpuSimBackend — launches priced on the simulated device.
// ---------------------------------------------------------------------------

/// The simulated-GPU backend: launches are priced on `device` under `cost`.
/// Approximate-Euclid launches execute on the live lockstep engine (costs
/// *measured* during execution); other algorithms replay traces through the
/// cost model. Per the equivalence suite both paths produce the same
/// numbers, so simulated seconds stay bitwise comparable across drivers.
#[derive(Debug, Clone)]
pub struct GpuSimBackend {
    /// The device model launches are priced on.
    pub device: DeviceConfig,
    /// The per-instruction/per-transaction cost model.
    pub cost: CostModel,
}

/// Worker-local launch-execution state for the simulated GPU: the lockstep
/// engine (operand planes and all scratch rows) plus the per-launch
/// warp-work buffer.
struct GpuSimExecutor {
    device: DeviceConfig,
    cost: CostModel,
    engine: LockstepEngine,
    warps: Vec<WarpWork>,
}

impl GpuSimExecutor {
    /// Execute one launch on the live lockstep engine: warps of
    /// `device.warp_size` lanes run the column-major vectorized AEA, and
    /// the launch is priced from the [`WarpWork`] *measured* during
    /// execution — same accumulator, same scheduler, and (per the
    /// equivalence suite) the same numbers as the trace-replay path.
    fn lockstep_launch(&mut self, cx: &ExecCtx<'_>, lanes: &[(usize, usize)]) -> LaunchOutput {
        let arena = cx.arena;
        let term = launch_termination(arena, lanes, cx.early);
        let words_per_transaction = self.device.transaction_bytes / 4;
        self.warps.clear();
        let mut out = LaunchOutput::default();
        let w = self.engine.width();
        let mut inputs: Vec<(&[Limb], &[Limb])> = Vec::with_capacity(w);
        for warp in lanes.chunks(w) {
            inputs.clear();
            inputs.extend(warp.iter().map(|&(i, j)| (arena.limbs(i), arena.limbs(j))));
            let work =
                self.engine
                    .run_warp_measured(&inputs, term, &self.cost, words_per_transaction);
            out.lane_iterations += work.lane_iterations;
            let st = self.engine.session_stats();
            out.active_lane_iters += st.active_lane_iters;
            out.resident_lane_iters += st.resident_lane_iters;
            self.warps.push(work);
            harvest_warp(arena, &self.engine, warp, &mut out.findings);
        }
        let report = schedule(&self.device, &self.warps);
        out.simulated_seconds = Some(report.seconds);
        out.warps = report.warps as u64;
        out.warp_instructions = report.total_warp_instructions;
        out.mem_transactions = report.total_transactions;
        out
    }

    /// Trace-replay path for the non-Approximate variants (their lockstep
    /// interest is comparative, not throughput).
    fn replay_launch(&mut self, cx: &ExecCtx<'_>, lanes: &[(usize, usize)]) -> LaunchOutput {
        let arena = cx.arena;
        let term = launch_termination(arena, lanes, cx.early);
        let inputs: Vec<(&[Limb], &[Limb])> = lanes
            .iter()
            .map(|&(i, j)| (arena.limbs(i), arena.limbs(j)))
            .collect();
        let launch = simulate_bulk_gcd(&self.device, &self.cost, cx.algo, &inputs, term);
        let mut out = LaunchOutput {
            simulated_seconds: Some(launch.report.seconds),
            warps: launch.report.warps as u64,
            warp_instructions: launch.report.total_warp_instructions,
            mem_transactions: launch.report.total_transactions,
            lane_iterations: launch.total_iterations,
            ..LaunchOutput::default()
        };
        for (&(i, j), outcome) in lanes.iter().zip(&launch.outcomes) {
            if let GcdOutcome::Gcd(g) = outcome {
                if !g.is_one() {
                    out.findings.push(Finding {
                        i,
                        j,
                        kind: kind_of(arena, i, j, g),
                        factor: g.clone(),
                    });
                }
            }
        }
        out
    }
}

impl LaunchExecutor for GpuSimExecutor {
    fn execute(&mut self, cx: &ExecCtx<'_>, lanes: &[(usize, usize)]) -> LaunchOutput {
        match cx.algo {
            Algorithm::Approximate => self.lockstep_launch(cx, lanes),
            _ => self.replay_launch(cx, lanes),
        }
    }
}

impl ScanBackend for GpuSimBackend {
    fn name(&self) -> &'static str {
        "gpu-sim"
    }

    fn prices_launches(&self) -> bool {
        true
    }

    fn executor(&self, _cx: &ExecCtx<'_>) -> Box<dyn LaunchExecutor + Send> {
        Box::new(GpuSimExecutor {
            engine: LockstepEngine::new(self.device.warp_size.max(1)),
            device: self.device.clone(),
            cost: self.cost.clone(),
            warps: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------------
// ProductTreeBackend — the batch-GCD baseline behind the same trait.
// ---------------------------------------------------------------------------

/// The product/remainder-tree batch-GCD baseline (Heninger et al.) as a
/// whole-corpus backend: quasi-linear in the corpus size, no launch
/// structure, emitting the same [`ScanReport`](crate::scan::ScanReport)
/// shape as every other backend. The on-ramp for the Pelofske-style
/// pairwise/product-tree hybrid.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProductTreeBackend {
    /// Use the rayon-parallel tree construction.
    pub parallel: bool,
}

impl ScanBackend for ProductTreeBackend {
    fn name(&self) -> &'static str {
        "product-tree"
    }

    fn is_whole_corpus(&self) -> bool {
        true
    }

    fn executor(&self, _cx: &ExecCtx<'_>) -> Box<dyn LaunchExecutor + Send> {
        unreachable!("product-tree is a whole-corpus backend; run_whole covers it")
    }

    fn run_whole(&self, cx: &ExecCtx<'_>) -> Option<Vec<Finding>> {
        Some(product_tree_findings(cx, self.parallel))
    }
}

/// The product-tree whole-corpus computation, shared with [`AutoBackend`].
fn product_tree_findings(cx: &ExecCtx<'_>, parallel: bool) -> Vec<Finding> {
    let arena = cx.arena;
    let moduli: Vec<Nat> = (0..arena.len()).map(|i| arena.nat(i)).collect();
    let gcds = if parallel {
        crate::batch::batch_gcd_parallel(&moduli)
    } else {
        crate::batch::batch_gcd(&moduli)
    };
    // Batch GCD reports per-modulus factors; synthesize pairwise
    // findings for vulnerable moduli by pairing the flagged ones (the
    // number of moduli with gcd > 1 is tiny in any real corpus, so the
    // quadratic pass over them costs nothing).
    let flagged: Vec<usize> = (0..moduli.len()).filter(|&i| !gcds[i].is_one()).collect();
    let mut findings = Vec::new();
    for (a, &i) in flagged.iter().enumerate() {
        for &j in &flagged[a + 1..] {
            let g = moduli[i].gcd(&moduli[j]);
            if !g.is_one() {
                findings.push(Finding {
                    i,
                    j,
                    kind: kind_of(arena, i, j, &g),
                    factor: g,
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// AutoBackend — probe the corpus, pick the fastest strategy.
// ---------------------------------------------------------------------------

/// Corpus sizes at/above this many moduli resolve to the product-tree
/// baseline: batch GCD is quasi-linear in the corpus while every pairwise
/// backend is quadratic, so past this point the tree always wins. The
/// subquadratic arithmetic ladder (Toom-3/NTT multiply, Newton division,
/// half-GCD) cut the tree's node costs enough to pull this crossover down
/// from its pre-ladder 4096 (see `BENCH_scan.json` batch-tree rows).
pub const AUTO_PRODUCT_TREE_MIN_MODULI: usize = 2048;

/// Minimum operand width (bits) below which compacted lockstep still loses
/// to the scalar scan on the bench matrix and the selector picks scalar.
/// Calibrated against `BENCH_scan.json` (`scan_bench --gate-compaction`).
pub const AUTO_LOCKSTEP_MIN_BITS: usize = 512;

/// Probe-measured β > 0 iteration fraction above which warp divergence
/// (serialized scalar fixups) vetoes the lockstep engine. §V measures
/// < 10⁻⁸ on random RSA moduli, so any corpus tripping this is shaped
/// adversarially for the fused path.
pub const AUTO_MAX_BETA_FRACTION: f64 = 0.05;

/// How many leading bits of the operands the divergence probe actually
/// consumes per sampled pair: the probe early-terminates once a pair has
/// shaved this many bits (a few dozen AEA iterations — plenty to estimate
/// the per-iteration β > 0 fraction), so probing costs a small fraction of
/// one full GCD per sampled pair instead of a whole one.
pub const AUTO_PROBE_DEPTH_BITS: u64 = 64;

/// The strategy [`AutoBackend`] resolved to for its corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AutoChoice {
    Scalar,
    Lockstep,
    ProductTree,
}

/// The auto-tuning selector: probes the corpus once (size, operand width,
/// and a [`StatsProbe`] divergence sample over a deterministic pair
/// prefix) and resolves to the fastest fixed strategy for that corpus:
///
/// 1. **Product tree** when the corpus has at least
///    `product_tree_min_moduli` moduli — quasi-linear beats any pairwise
///    scan at scale.
/// 2. **Scalar** when operands are narrower than
///    [`AUTO_LOCKSTEP_MIN_BITS`], when the algorithm is not Approximate
///    Euclid (the lockstep engine is AEA-only), or when the shallow probe
///    sees a β > 0 fraction above [`AUTO_MAX_BETA_FRACTION`] (divergence
///    serialization would dominate).
/// 3. **Lockstep with compaction/refill** otherwise.
///
/// The decision is cached per backend instance, so construct one
/// `AutoBackend` per corpus (the convenience [`Backend::Auto`] constructs
/// one per call and re-derives the decision — same answer, repeated
/// probe). In launch-driven (layered/journaled) runs a product-tree
/// resolution degrades to the scalar executor, since the tree has no
/// launch structure to checkpoint.
#[derive(Debug, Clone, Default)]
pub struct AutoBackend {
    /// Lanes per warp for the lockstep resolution (0 → default 32).
    pub warp_width: usize,
    /// Compaction tuning for the lockstep resolution.
    pub compaction: CompactionConfig,
    /// Corpus size at which the product tree takes over.
    /// 0 → [`AUTO_PRODUCT_TREE_MIN_MODULI`].
    pub product_tree_min_moduli: usize,
    /// How many adjacent-index pairs the divergence probe runs
    /// (0 → default 64).
    pub probe_pairs: usize,
    choice: OnceLock<AutoChoice>,
}

impl AutoBackend {
    /// Selector with the given lockstep warp width (0 → default 32) and
    /// default thresholds.
    pub fn new(warp_width: usize) -> Self {
        AutoBackend {
            warp_width,
            ..AutoBackend::default()
        }
    }

    fn width(&self) -> usize {
        if self.warp_width == 0 {
            32
        } else {
            self.warp_width
        }
    }

    fn tree_min(&self) -> usize {
        if self.product_tree_min_moduli == 0 {
            AUTO_PRODUCT_TREE_MIN_MODULI
        } else {
            self.product_tree_min_moduli
        }
    }

    /// Resolve (once per instance) which strategy this corpus gets.
    fn decide(&self, cx: &ExecCtx<'_>) -> AutoChoice {
        *self.choice.get_or_init(|| {
            let arena = cx.arena;
            let m = arena.len();
            if m >= self.tree_min() {
                return AutoChoice::ProductTree;
            }
            if cx.algo != Algorithm::Approximate {
                // The lockstep engine executes AEA only; other variants
                // run scalar.
                return AutoChoice::Scalar;
            }
            if arena.stride() * (LIMB_BITS as usize) < AUTO_LOCKSTEP_MIN_BITS {
                return AutoChoice::Scalar;
            }
            // Divergence probe: run a deterministic prefix of adjacent
            // pairs through the scalar AEA with a StatsProbe and measure
            // the β > 0 fraction. Each sampled pair is probed shallowly —
            // early-terminated after [`AUTO_PROBE_DEPTH_BITS`] bits of
            // reduction — so the probe costs a small fraction of a full
            // GCD per pair and stays negligible next to the scan itself.
            let sample = if self.probe_pairs == 0 {
                64
            } else {
                self.probe_pairs
            };
            let width_bits = (arena.stride() * LIMB_BITS as usize) as u64;
            let depth = Termination::Early {
                threshold_bits: width_bits.saturating_sub(AUTO_PROBE_DEPTH_BITS).max(1),
            };
            let mut probe = StatsProbe::default();
            let mut pair = GcdPair::with_capacity(arena.stride());
            for i in 0..m.saturating_sub(1).min(sample) {
                pair.load_from_limbs(arena.limbs(i), arena.limbs(i + 1));
                run_in_place(Algorithm::Approximate, &mut pair, depth, &mut probe);
            }
            let s = &probe.stats;
            let beta_frac = if s.iterations == 0 {
                0.0
            } else {
                s.beta_nonzero as f64 / s.iterations as f64
            };
            if beta_frac > AUTO_MAX_BETA_FRACTION {
                AutoChoice::Scalar
            } else {
                AutoChoice::Lockstep
            }
        })
    }
}

impl ScanBackend for AutoBackend {
    fn name(&self) -> &'static str {
        match self.choice.get() {
            Some(AutoChoice::Scalar) => "auto:scalar",
            Some(AutoChoice::Lockstep) => "auto:lockstep-compact",
            Some(AutoChoice::ProductTree) => "auto:product-tree",
            None => "auto",
        }
    }

    fn preferred_run_len(&self, total_pairs: usize, workers: usize) -> usize {
        // Warp-multiple rounding: required for the lockstep resolution,
        // harmless for the others.
        let w = self.width();
        total_pairs.div_ceil(workers.max(1)).div_ceil(w).max(1) * w
    }

    fn executor(&self, cx: &ExecCtx<'_>) -> Box<dyn LaunchExecutor + Send> {
        match self.decide(cx) {
            AutoChoice::Lockstep => LockstepBackend::new(self.width())
                .with_compaction(self.compaction)
                .executor(cx),
            // Product-tree corpora normally exit via run_whole before any
            // executor is minted; launch-driven drivers degrade to scalar.
            AutoChoice::Scalar | AutoChoice::ProductTree => ScalarBackend.executor(cx),
        }
    }

    fn run_whole(&self, cx: &ExecCtx<'_>) -> Option<Vec<Finding>> {
        match self.decide(cx) {
            AutoChoice::ProductTree => Some(product_tree_findings(cx, true)),
            AutoChoice::Scalar | AutoChoice::Lockstep => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Backend — the one-stop enum for ScanPipeline::backend.
// ---------------------------------------------------------------------------

/// Ready-made backend selection for
/// [`ScanPipeline::backend`](crate::scan::ScanPipeline::backend): every
/// fixed strategy with its default tuning, plus [`Auto`](Backend::Auto).
///
/// Each pipeline call constructs the concrete backend on the fly, so
/// `Backend::Auto` re-derives its per-corpus decision on every use; the
/// probe is deterministic and cheap, but construct an [`AutoBackend`]
/// directly to cache the resolution across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Per-pair scalar host scan ([`ScalarBackend`]).
    Scalar,
    /// Fixed lockstep SIMT warps of width 32 ([`LockstepBackend`]).
    Lockstep,
    /// Lockstep with default compaction/refill
    /// ([`LockstepBackend::with_compaction`]).
    LockstepCompact,
    /// Product/remainder-tree batch GCD, parallel
    /// ([`ProductTreeBackend`]).
    ProductTree,
    /// Probe the corpus and pick the fastest of the above
    /// ([`AutoBackend`]).
    Auto,
}

impl ScanBackend for Backend {
    fn name(&self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Lockstep => "lockstep",
            Backend::LockstepCompact => "lockstep-compact",
            Backend::ProductTree => "product-tree",
            Backend::Auto => "auto",
        }
    }

    fn preferred_run_len(&self, total_pairs: usize, workers: usize) -> usize {
        match self {
            Backend::Scalar => ScalarBackend.preferred_run_len(total_pairs, workers),
            Backend::Lockstep | Backend::LockstepCompact => {
                LockstepBackend::default().preferred_run_len(total_pairs, workers)
            }
            Backend::ProductTree => {
                ProductTreeBackend { parallel: true }.preferred_run_len(total_pairs, workers)
            }
            Backend::Auto => AutoBackend::default().preferred_run_len(total_pairs, workers),
        }
    }

    fn executor(&self, cx: &ExecCtx<'_>) -> Box<dyn LaunchExecutor + Send> {
        match self {
            Backend::Scalar => ScalarBackend.executor(cx),
            Backend::Lockstep => LockstepBackend::default().executor(cx),
            Backend::LockstepCompact => LockstepBackend::default()
                .with_compaction(CompactionConfig::default())
                .executor(cx),
            Backend::ProductTree => ProductTreeBackend { parallel: true }.executor(cx),
            Backend::Auto => AutoBackend::default().executor(cx),
        }
    }

    fn is_whole_corpus(&self) -> bool {
        matches!(self, Backend::ProductTree)
    }

    fn run_whole(&self, cx: &ExecCtx<'_>) -> Option<Vec<Finding>> {
        match self {
            Backend::ProductTree => ProductTreeBackend { parallel: true }.run_whole(cx),
            Backend::Auto => AutoBackend::default().run_whole(cx),
            _ => None,
        }
    }
}
