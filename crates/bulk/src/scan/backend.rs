//! Scan execution backends.
//!
//! A [`ScanBackend`] answers one question — *how does a batch of pairs get
//! its GCDs computed?* — and nothing else. Enumeration (§VI block order),
//! batching, checkpointing, retry, and metrics all live in the
//! [`ScanPipeline`](crate::scan::ScanPipeline) driver, so a new execution
//! strategy (a real GPU, a faster Euclid variant) is one `impl` here, not
//! another hand-written `scan_*` family.
//!
//! Launch-driven backends hand the pipeline a [`LaunchExecutor`] — the
//! worker-local scratch (engine planes, operand workspaces, device handles)
//! reused across every launch a worker runs. Whole-corpus backends (the
//! product-tree baseline) instead implement [`ScanBackend::run_whole`] and
//! opt out of the launch driver entirely.

use crate::arena::ModuliArena;
use crate::lockstep::LockstepEngine;
use crate::pairing::{BlockId, GroupedPairs};
use crate::scan::report::{Finding, FindingKind};
use bulkgcd_bigint::{Limb, Nat};
use bulkgcd_core::{run_in_place, Algorithm, GcdOutcome, GcdPair, GcdStatus, NoProbe, Termination};
use bulkgcd_gpu::{schedule, simulate_bulk_gcd, CostModel, DeviceConfig, WarpWork};

/// Everything a backend needs to execute launches over one corpus: the
/// packed operands and the scan's algorithm/termination settings.
#[derive(Clone, Copy)]
pub struct ExecCtx<'a> {
    /// The packed corpus the scan reads operands from.
    pub arena: &'a ModuliArena,
    /// The GCD variant to run.
    pub algo: Algorithm,
    /// Whether §V early termination is enabled.
    pub early: bool,
}

/// What one executed launch produced: its findings plus the execution
/// metrics the pipeline's metrics layer aggregates.
#[derive(Debug, Clone, Default)]
pub struct LaunchOutput {
    /// Findings, in lane order (the pipeline sorts globally).
    pub findings: Vec<Finding>,
    /// Simulated device seconds (`None` for host-only backends).
    pub simulated_seconds: Option<f64>,
    /// Warps executed (0 when the backend has no warp structure).
    pub warps: u64,
    /// Warp-instructions issued, including divergence serialisation.
    pub warp_instructions: f64,
    /// Coalesced memory transactions issued.
    pub mem_transactions: u64,
    /// Total GCD lane-iterations (0 when the backend does not count them).
    pub lane_iterations: u64,
}

/// Worker-local launch execution state: one per rayon worker, reused across
/// every launch that worker runs (rebuilding scratch per launch was the
/// `gpu_sim_host` overhead regression).
pub trait LaunchExecutor {
    /// Execute one launch over the index pairs in `lanes`.
    fn execute(&mut self, cx: &ExecCtx<'_>, lanes: &[(usize, usize)]) -> LaunchOutput;
}

/// An execution strategy for the all-pairs scan.
///
/// Implementations are cheap, `Sync` descriptions (a warp width, a device
/// model); the mutable state lives in the [`LaunchExecutor`]s they mint.
pub trait ScanBackend: Sync {
    /// Short name for reports and error messages.
    fn name(&self) -> &'static str;

    /// Whether this backend prices launches on the simulated device clock
    /// (fills `simulated_seconds`).
    fn prices_launches(&self) -> bool {
        false
    }

    /// The launch length this backend prefers when the caller did not fix
    /// one: how many pairs each worker-run should cover for `total_pairs`
    /// spread over `workers` workers.
    fn preferred_run_len(&self, total_pairs: usize, workers: usize) -> usize {
        total_pairs.div_ceil(workers.max(1)).max(1)
    }

    /// Mint a fresh worker-local executor.
    fn executor(&self, cx: &ExecCtx<'_>) -> Box<dyn LaunchExecutor + Send>;

    /// True for backends with no launch structure (the product-tree
    /// baseline): the pipeline routes them through [`run_whole`]
    /// (Self::run_whole) and refuses launch-oriented layers on them.
    fn is_whole_corpus(&self) -> bool {
        false
    }

    /// Whole-corpus escape hatch: a backend with no launch structure (the
    /// product-tree baseline) computes every finding in one shot and
    /// returns `Some`; launch-driven backends return `None` (the default).
    fn run_whole(&self, _cx: &ExecCtx<'_>) -> Option<Vec<Finding>> {
        None
    }
}

// ---------------------------------------------------------------------------
// Shared per-pair helpers.
// ---------------------------------------------------------------------------

/// Classify a non-trivial GCD: a factor equal to either modulus marks a
/// duplicate (or dividing) modulus, anything else is a proper shared prime.
/// Compares borrowed limb slices — no allocation on the scan path.
#[inline]
pub(crate) fn kind_of(arena: &ModuliArena, i: usize, j: usize, factor: &Nat) -> FindingKind {
    if factor.as_limbs() == arena.limbs_trimmed(i) || factor.as_limbs() == arena.limbs_trimmed(j) {
        FindingKind::DuplicateModulus
    } else {
        FindingKind::SharedPrime
    }
}

#[inline]
pub(crate) fn termination_for(arena: &ModuliArena, i: usize, j: usize, early: bool) -> Termination {
    if early {
        // s/2 where s is the modulus width: a shared prime has s/2 bits.
        Termination::Early {
            threshold_bits: arena.bit_len(i).min(arena.bit_len(j)) / 2,
        }
    } else {
        Termination::Full
    }
}

/// Fold per-pair termination settings into the single setting a simulated
/// kernel launch applies to every lane.
///
/// The fold is conservative in both directions: any [`Termination::Full`]
/// pair forces the whole launch to `Full` (an early threshold from some
/// *other* pair must never cut a full run short), and a batch of
/// [`Termination::Early`] pairs of mixed widths takes the **smallest**
/// threshold (extra iterations for the wider pairs, never a missed factor).
/// An empty batch gets `Full`.
pub fn combine_terminations(terms: impl IntoIterator<Item = Termination>) -> Termination {
    terms
        .into_iter()
        .reduce(|acc, t| match (acc, t) {
            (
                Termination::Early { threshold_bits: x },
                Termination::Early { threshold_bits: y },
            ) => Termination::Early {
                threshold_bits: x.min(y),
            },
            // Full on either side wins: never narrow a Full pair.
            (Termination::Full, _) | (_, Termination::Full) => Termination::Full,
        })
        .unwrap_or(Termination::Full)
}

/// The per-launch termination: the conservative fold of the lanes'
/// per-pair settings (what a real kernel launch applies to every lane).
pub(crate) fn launch_termination(
    arena: &ModuliArena,
    lanes: &[(usize, usize)],
    early: bool,
) -> Termination {
    combine_terminations(
        lanes
            .iter()
            .map(|&(i, j)| termination_for(arena, i, j, early)),
    )
}

/// Scan one §VI block of `grid` against `arena`, appending findings to
/// `found`. `pair` is caller-provided scratch (reused across blocks by the
/// scan workers); after warmup the loop performs **no heap allocations**
/// except when a finding is actually pushed — the property the root
/// crate's allocation-counting test pins down.
pub fn scan_block_into(
    arena: &ModuliArena,
    grid: &GroupedPairs,
    block: BlockId,
    algo: Algorithm,
    early: bool,
    pair: &mut GcdPair,
    found: &mut Vec<Finding>,
) {
    for (i, j) in grid.block_pair_iter(block) {
        pair.load_from_limbs(arena.limbs(i), arena.limbs(j));
        let term = termination_for(arena, i, j, early);
        if run_in_place(algo, pair, term, &mut NoProbe) == GcdStatus::Done && !pair.gcd_is_one() {
            let factor = pair.x_nat();
            found.push(Finding {
                i,
                j,
                kind: kind_of(arena, i, j, &factor),
                factor,
            });
        }
    }
}

/// Run `lanes` on the host with one shared `term` (the CPU degradation path
/// for a persistently faulted launch: identical termination settings make
/// the findings byte-identical to the device run's).
pub(crate) fn scalar_fallback(
    cx: &ExecCtx<'_>,
    lanes: &[(usize, usize)],
    term: Termination,
) -> Vec<Finding> {
    let arena = cx.arena;
    let mut pair = GcdPair::with_capacity(arena.stride());
    let mut found = Vec::new();
    for &(i, j) in lanes {
        pair.load_from_limbs(arena.limbs(i), arena.limbs(j));
        if run_in_place(cx.algo, &mut pair, term, &mut NoProbe) == GcdStatus::Done
            && !pair.gcd_is_one()
        {
            let factor = pair.x_nat();
            found.push(Finding {
                i,
                j,
                kind: kind_of(arena, i, j, &factor),
                factor,
            });
        }
    }
    found
}

/// Harvest the findings of one executed warp from the engine's lanes.
fn harvest_warp(
    arena: &ModuliArena,
    engine: &LockstepEngine,
    warp: &[(usize, usize)],
    found: &mut Vec<Finding>,
) {
    for (t, &(i, j)) in warp.iter().enumerate() {
        if engine.lane_status(t) == GcdStatus::Done && !engine.lane_gcd_is_one(t) {
            let factor = engine.lane_gcd_nat(t);
            found.push(Finding {
                i,
                j,
                kind: kind_of(arena, i, j, &factor),
                factor,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// ScalarBackend — the per-pair run_in_place host scan.
// ---------------------------------------------------------------------------

/// The multithreaded host scan: each lane runs [`run_in_place`] on a
/// worker-local [`GcdPair`] workspace with its own per-pair termination —
/// zero per-pair heap allocations in the steady state.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

struct ScalarExecutor {
    pair: GcdPair,
}

impl LaunchExecutor for ScalarExecutor {
    fn execute(&mut self, cx: &ExecCtx<'_>, lanes: &[(usize, usize)]) -> LaunchOutput {
        let arena = cx.arena;
        let mut out = LaunchOutput::default();
        for &(i, j) in lanes {
            self.pair.load_from_limbs(arena.limbs(i), arena.limbs(j));
            let term = termination_for(arena, i, j, cx.early);
            if run_in_place(cx.algo, &mut self.pair, term, &mut NoProbe) == GcdStatus::Done
                && !self.pair.gcd_is_one()
            {
                let factor = self.pair.x_nat();
                out.findings.push(Finding {
                    i,
                    j,
                    kind: kind_of(arena, i, j, &factor),
                    factor,
                });
            }
        }
        out
    }
}

impl ScanBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn executor(&self, cx: &ExecCtx<'_>) -> Box<dyn LaunchExecutor + Send> {
        Box::new(ScalarExecutor {
            pair: GcdPair::with_capacity(cx.arena.stride()),
        })
    }
}

// ---------------------------------------------------------------------------
// LockstepBackend — the column-major SIMT host scan.
// ---------------------------------------------------------------------------

/// The lockstep SIMT host scan: warps of `warp_width` lanes run the
/// [`LockstepEngine`]'s column-major vectorized AEA — one shared
/// instruction stream per warp, terminated lanes masked off. Each warp
/// applies the conservative per-launch termination fold of its lanes
/// (see [`combine_terminations`]), exactly like a simulated kernel launch
/// of the same width.
#[derive(Debug, Clone, Copy)]
pub struct LockstepBackend {
    /// Lanes per warp (clamped to ≥ 1).
    pub warp_width: usize,
}

impl LockstepBackend {
    fn width(&self) -> usize {
        self.warp_width.max(1)
    }
}

struct LockstepExecutor {
    engine: LockstepEngine,
}

impl LaunchExecutor for LockstepExecutor {
    fn execute(&mut self, cx: &ExecCtx<'_>, lanes: &[(usize, usize)]) -> LaunchOutput {
        let arena = cx.arena;
        let w = self.engine.width();
        let mut out = LaunchOutput::default();
        let mut inputs: Vec<(&[Limb], &[Limb])> = Vec::with_capacity(w);
        for warp in lanes.chunks(w) {
            let term = launch_termination(arena, warp, cx.early);
            inputs.clear();
            inputs.extend(warp.iter().map(|&(i, j)| (arena.limbs(i), arena.limbs(j))));
            self.engine.run_warp(&inputs, term, None);
            harvest_warp(arena, &self.engine, warp, &mut out.findings);
            out.warps += 1;
        }
        out
    }
}

impl ScanBackend for LockstepBackend {
    fn name(&self) -> &'static str {
        "lockstep"
    }

    fn preferred_run_len(&self, total_pairs: usize, workers: usize) -> usize {
        // Whole warps per worker run: rounding the run length up to a
        // multiple of the warp width keeps every warp (except possibly the
        // global last) full, and keeps warp boundaries aligned across any
        // worker count.
        let w = self.width();
        total_pairs.div_ceil(workers.max(1)).div_ceil(w).max(1) * w
    }

    fn executor(&self, _cx: &ExecCtx<'_>) -> Box<dyn LaunchExecutor + Send> {
        Box::new(LockstepExecutor {
            engine: LockstepEngine::new(self.width()),
        })
    }
}

// ---------------------------------------------------------------------------
// GpuSimBackend — launches priced on the simulated device.
// ---------------------------------------------------------------------------

/// The simulated-GPU backend: launches are priced on `device` under `cost`.
/// Approximate-Euclid launches execute on the live lockstep engine (costs
/// *measured* during execution); other algorithms replay traces through the
/// cost model. Per the equivalence suite both paths produce the same
/// numbers, so simulated seconds stay bitwise comparable across drivers.
#[derive(Debug, Clone)]
pub struct GpuSimBackend {
    /// The device model launches are priced on.
    pub device: DeviceConfig,
    /// The per-instruction/per-transaction cost model.
    pub cost: CostModel,
}

/// Worker-local launch-execution state for the simulated GPU: the lockstep
/// engine (operand planes and all scratch rows) plus the per-launch
/// warp-work buffer.
struct GpuSimExecutor {
    device: DeviceConfig,
    cost: CostModel,
    engine: LockstepEngine,
    warps: Vec<WarpWork>,
}

impl GpuSimExecutor {
    /// Execute one launch on the live lockstep engine: warps of
    /// `device.warp_size` lanes run the column-major vectorized AEA, and
    /// the launch is priced from the [`WarpWork`] *measured* during
    /// execution — same accumulator, same scheduler, and (per the
    /// equivalence suite) the same numbers as the trace-replay path.
    fn lockstep_launch(&mut self, cx: &ExecCtx<'_>, lanes: &[(usize, usize)]) -> LaunchOutput {
        let arena = cx.arena;
        let term = launch_termination(arena, lanes, cx.early);
        let words_per_transaction = self.device.transaction_bytes / 4;
        self.warps.clear();
        let mut out = LaunchOutput::default();
        let w = self.engine.width();
        let mut inputs: Vec<(&[Limb], &[Limb])> = Vec::with_capacity(w);
        for warp in lanes.chunks(w) {
            inputs.clear();
            inputs.extend(warp.iter().map(|&(i, j)| (arena.limbs(i), arena.limbs(j))));
            let work =
                self.engine
                    .run_warp_measured(&inputs, term, &self.cost, words_per_transaction);
            out.lane_iterations += work.lane_iterations;
            self.warps.push(work);
            harvest_warp(arena, &self.engine, warp, &mut out.findings);
        }
        let report = schedule(&self.device, &self.warps);
        out.simulated_seconds = Some(report.seconds);
        out.warps = report.warps as u64;
        out.warp_instructions = report.total_warp_instructions;
        out.mem_transactions = report.total_transactions;
        out
    }

    /// Trace-replay path for the non-Approximate variants (their lockstep
    /// interest is comparative, not throughput).
    fn replay_launch(&mut self, cx: &ExecCtx<'_>, lanes: &[(usize, usize)]) -> LaunchOutput {
        let arena = cx.arena;
        let term = launch_termination(arena, lanes, cx.early);
        let inputs: Vec<(&[Limb], &[Limb])> = lanes
            .iter()
            .map(|&(i, j)| (arena.limbs(i), arena.limbs(j)))
            .collect();
        let launch = simulate_bulk_gcd(&self.device, &self.cost, cx.algo, &inputs, term);
        let mut out = LaunchOutput {
            simulated_seconds: Some(launch.report.seconds),
            warps: launch.report.warps as u64,
            warp_instructions: launch.report.total_warp_instructions,
            mem_transactions: launch.report.total_transactions,
            lane_iterations: launch.total_iterations,
            ..LaunchOutput::default()
        };
        for (&(i, j), outcome) in lanes.iter().zip(&launch.outcomes) {
            if let GcdOutcome::Gcd(g) = outcome {
                if !g.is_one() {
                    out.findings.push(Finding {
                        i,
                        j,
                        kind: kind_of(arena, i, j, g),
                        factor: g.clone(),
                    });
                }
            }
        }
        out
    }
}

impl LaunchExecutor for GpuSimExecutor {
    fn execute(&mut self, cx: &ExecCtx<'_>, lanes: &[(usize, usize)]) -> LaunchOutput {
        match cx.algo {
            Algorithm::Approximate => self.lockstep_launch(cx, lanes),
            _ => self.replay_launch(cx, lanes),
        }
    }
}

impl ScanBackend for GpuSimBackend {
    fn name(&self) -> &'static str {
        "gpu-sim"
    }

    fn prices_launches(&self) -> bool {
        true
    }

    fn executor(&self, _cx: &ExecCtx<'_>) -> Box<dyn LaunchExecutor + Send> {
        Box::new(GpuSimExecutor {
            engine: LockstepEngine::new(self.device.warp_size.max(1)),
            device: self.device.clone(),
            cost: self.cost.clone(),
            warps: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------------
// ProductTreeBackend — the batch-GCD baseline behind the same trait.
// ---------------------------------------------------------------------------

/// The product/remainder-tree batch-GCD baseline (Heninger et al.) as a
/// whole-corpus backend: quasi-linear in the corpus size, no launch
/// structure, emitting the same [`ScanReport`](crate::scan::ScanReport)
/// shape as every other backend. The on-ramp for the Pelofske-style
/// pairwise/product-tree hybrid.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProductTreeBackend {
    /// Use the rayon-parallel tree construction.
    pub parallel: bool,
}

impl ScanBackend for ProductTreeBackend {
    fn name(&self) -> &'static str {
        "product-tree"
    }

    fn is_whole_corpus(&self) -> bool {
        true
    }

    fn executor(&self, _cx: &ExecCtx<'_>) -> Box<dyn LaunchExecutor + Send> {
        unreachable!("product-tree is a whole-corpus backend; run_whole covers it")
    }

    fn run_whole(&self, cx: &ExecCtx<'_>) -> Option<Vec<Finding>> {
        let arena = cx.arena;
        let moduli: Vec<Nat> = (0..arena.len()).map(|i| arena.nat(i)).collect();
        let gcds = if self.parallel {
            crate::batch::batch_gcd_parallel(&moduli)
        } else {
            crate::batch::batch_gcd(&moduli)
        };
        // Batch GCD reports per-modulus factors; synthesize pairwise
        // findings for vulnerable moduli by pairing the flagged ones (the
        // number of moduli with gcd > 1 is tiny in any real corpus, so the
        // quadratic pass over them costs nothing).
        let flagged: Vec<usize> = (0..moduli.len()).filter(|&i| !gcds[i].is_one()).collect();
        let mut findings = Vec::new();
        for (a, &i) in flagged.iter().enumerate() {
            for &j in &flagged[a + 1..] {
                let g = moduli[i].gcd_reference(&moduli[j]);
                if !g.is_one() {
                    findings.push(Finding {
                        i,
                        j,
                        kind: kind_of(arena, i, j, &g),
                        factor: g,
                    });
                }
            }
        }
        Some(findings)
    }
}
