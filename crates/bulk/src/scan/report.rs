//! Scan outcome types: findings, reports, errors, and pipeline metrics.

use crate::arena::ArenaError;
use crate::checkpoint::JournalError;
use bulkgcd_bigint::Nat;
use std::fmt;
use std::time::Duration;

/// What a finding means for the two moduli involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A proper shared factor: `1 < gcd < n_i, n_j`. Both keys factor.
    SharedPrime,
    /// `gcd(n_i, n_j) == n_i` (or `n_j`) — the moduli are duplicates (or
    /// one divides the other). The pair is vulnerable but GCD alone cannot
    /// split either modulus, so it must not be reported as a shared prime.
    DuplicateModulus,
}

/// A pair of moduli found to share a factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Index of the first modulus.
    pub i: usize,
    /// Index of the second modulus.
    pub j: usize,
    /// What the factor means (proper shared prime vs duplicate modulus).
    pub kind: FindingKind,
    /// The shared factor (`gcd(n_i, n_j)`, > 1).
    pub factor: Nat,
}

/// Outcome of a scan.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// Pairs sharing a factor, ordered by (i, j).
    pub findings: Vec<Finding>,
    /// Unordered pairs examined.
    pub pairs_scanned: u64,
    /// Findings of kind [`FindingKind::DuplicateModulus`].
    pub duplicate_pairs: u64,
    /// Wall-clock time of the scan (host time; for the GPU scan this is
    /// the simulation's own runtime, not the simulated device time).
    pub elapsed: Duration,
    /// Simulated device seconds (launch-priced backends only). Prefer the
    /// checked accessor [`simulated`](Self::simulated) over unwrapping.
    pub simulated_seconds: Option<f64>,
}

impl ScanReport {
    /// Simulated device seconds, or [`NoSimulatedClock`] when the scan ran
    /// on a backend that does not price launches (the pure-CPU paths).
    ///
    /// The field is `None` exactly on those paths, so an `unwrap()` there
    /// turns a backend mix-up into a panic; this accessor turns it into a
    /// diagnosable error instead.
    pub fn simulated(&self) -> Result<f64, NoSimulatedClock> {
        self.simulated_seconds.ok_or(NoSimulatedClock)
    }
}

/// Asked a pure-CPU scan report for its simulated device clock.
///
/// Returned by [`ScanReport::simulated`]: only launch-priced backends (the
/// simulated GPU) fill `simulated_seconds`; the scalar and lockstep host
/// scans have no device clock to report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoSimulatedClock;

impl fmt::Display for NoSimulatedClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scan has no simulated device clock (it ran on a pure-CPU backend, \
             not the simulated GPU)"
        )
    }
}

impl std::error::Error for NoSimulatedClock {}

/// Why a scan did not produce a report.
#[derive(Debug)]
pub enum ScanError {
    /// The corpus could not be packed into a [`ModuliArena`](crate::arena::ModuliArena).
    Arena(ArenaError),
    /// The checkpoint journal rejected the run (I/O failure, corruption,
    /// or a journal written by a different scan configuration).
    Journal(JournalError),
    /// An injected kill fired at a launch boundary: the scan stopped as a
    /// crashed process would, leaving the journal resumable. Only pipelines
    /// running under a killing [`FaultPlan`](crate::fault::FaultPlan)
    /// return this.
    Interrupted {
        /// The launch boundary the kill fired at (not yet executed).
        launch: u64,
    },
    /// The requested layer stack asks the backend for a capability it does
    /// not have (e.g. checkpointing a whole-corpus product-tree backend,
    /// which has no launch boundaries to journal).
    Unsupported {
        /// The backend that lacks the capability.
        backend: &'static str,
        /// What was asked of it.
        what: &'static str,
    },
    /// The pipeline was restricted to a tile that does not fit the scan's
    /// launch sequence (a shard plan built for a different corpus or
    /// launch width).
    InvalidTile {
        /// First launch of the requested tile.
        tile_start: u64,
        /// Launch count of the requested tile.
        tile_launches: u64,
        /// Launches the scan actually has.
        launches: u64,
    },
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::Arena(e) => write!(f, "corpus rejected: {e}"),
            ScanError::Journal(e) => write!(f, "checkpoint journal: {e}"),
            ScanError::Interrupted { launch } => write!(
                f,
                "scan killed at launch boundary {launch}; resume it from the journal"
            ),
            ScanError::Unsupported { backend, what } => {
                write!(f, "the {backend} backend does not support {what}")
            }
            ScanError::InvalidTile {
                tile_start,
                tile_launches,
                launches,
            } => write!(
                f,
                "tile [{tile_start}, {}) does not fit a scan of {launches} launches; \
                 the shard plan was built for a different corpus or launch width",
                tile_start.saturating_add(*tile_launches)
            ),
        }
    }
}

impl std::error::Error for ScanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScanError::Arena(e) => Some(e),
            ScanError::Journal(e) => Some(e),
            ScanError::Interrupted { .. }
            | ScanError::Unsupported { .. }
            | ScanError::InvalidTile { .. } => None,
        }
    }
}

impl From<ArenaError> for ScanError {
    fn from(e: ArenaError) -> Self {
        ScanError::Arena(e)
    }
}

impl From<JournalError> for ScanError {
    fn from(e: JournalError) -> Self {
        ScanError::Journal(e)
    }
}

/// Bookkeeping from one fault-tolerant scan run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Launches the whole scan needs.
    pub total_launches: u64,
    /// Launches restored from the journal instead of re-executed.
    pub resumed_launches: u64,
    /// Launches executed (successfully) by this run.
    pub executed_launches: u64,
    /// Retry attempts beyond each launch's first (transient faults).
    pub retried_attempts: u64,
    /// Launches that exhausted the device and fell back to the CPU path.
    pub cpu_fallback_launches: u64,
    /// Total backoff a production driver would have slept between retries.
    pub backoff: Duration,
}

/// A [`ScanReport`] plus the fault-tolerance bookkeeping of the run that
/// produced it (the legacy resumable-scan result shape).
#[derive(Debug, Clone)]
pub struct ResumableReport {
    /// The scan outcome — findings identical to an uninterrupted run over
    /// the same corpus.
    pub scan: ScanReport,
    /// Resume/retry/fallback accounting for this run.
    pub stats: FaultStats,
}

/// Everything a [`ScanPipeline`](crate::scan::ScanPipeline) run produces.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The scan outcome.
    pub scan: ScanReport,
    /// Resume/retry/fallback accounting (all-zero except `total_launches`
    /// and `executed_launches` for un-layered runs).
    pub stats: FaultStats,
    /// Per-launch execution metrics, when the pipeline's metrics layer was
    /// enabled.
    pub metrics: Option<ScanMetrics>,
}

impl PipelineReport {
    /// The legacy resumable-report view of this run.
    pub fn into_resumable(self) -> ResumableReport {
        ResumableReport {
            scan: self.scan,
            stats: self.stats,
        }
    }
}

/// Execution metrics of one pipeline launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchMetrics {
    /// The launch index within the scan's launch sequence.
    pub launch: u64,
    /// Lanes (pairs) the launch covered.
    pub lanes: u64,
    /// Warps executed (0 for the scalar backend).
    pub warps: u64,
    /// Warp-instructions issued, including divergence serialisation.
    pub warp_instructions: f64,
    /// Coalesced memory transactions issued.
    pub mem_transactions: u64,
    /// Total GCD lane-iterations (0 when the backend does not count them).
    pub lane_iterations: u64,
    /// Σ running lanes over lockstep iterations (useful issue slots; 0
    /// for backends without a lockstep engine).
    pub active_lane_iters: u64,
    /// Σ resident warp width over lockstep iterations (issued slots).
    pub resident_lane_iters: u64,
    /// Compaction events (survivors repacked into a dense column prefix).
    pub compactions: u64,
    /// Refill events (dead columns reloaded with pending pairs).
    pub refills: u64,
    /// Simulated device seconds (launch-priced backends only).
    pub simulated_seconds: Option<f64>,
    /// Host wall-clock seconds spent executing the launch.
    pub host_seconds: f64,
    /// Attempts made (1 for a first-try success).
    pub attempts: u32,
    /// Backoff a production driver would have slept retrying this launch.
    pub backoff: Duration,
    /// Whether the launch degraded to the CPU fallback path.
    pub cpu_fallback: bool,
}

impl LaunchMetrics {
    /// Mean active-lane occupancy of this launch: useful issue slots over
    /// issued slots. `None` for backends without a lockstep engine (no
    /// slots were issued).
    pub fn occupancy(&self) -> Option<f64> {
        if self.resident_lane_iters == 0 {
            None
        } else {
            Some(self.active_lane_iters as f64 / self.resident_lane_iters as f64)
        }
    }
}

/// Structured per-launch metrics collected by the pipeline's metrics layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanMetrics {
    /// The backend that executed the scan.
    pub backend: &'static str,
    /// Launches the whole scan needs.
    pub total_launches: u64,
    /// Launches restored from the journal instead of executed this run
    /// (those have no [`LaunchMetrics`] row).
    pub resumed_launches: u64,
    /// One row per launch executed by this run, in launch-index order.
    pub launches: Vec<LaunchMetrics>,
}

impl ScanMetrics {
    /// Sum of host seconds across executed launches.
    pub fn total_host_seconds(&self) -> f64 {
        self.launches.iter().map(|l| l.host_seconds).sum()
    }

    /// Sum of simulated seconds across executed launches, if any launch
    /// was priced.
    pub fn total_simulated_seconds(&self) -> Option<f64> {
        if self.launches.iter().all(|l| l.simulated_seconds.is_none()) {
            return None;
        }
        Some(
            self.launches
                .iter()
                .filter_map(|l| l.simulated_seconds)
                .sum(),
        )
    }

    /// Total warps executed.
    pub fn total_warps(&self) -> u64 {
        self.launches.iter().map(|l| l.warps).sum()
    }

    /// Total warp-instructions issued.
    pub fn total_warp_instructions(&self) -> f64 {
        self.launches.iter().map(|l| l.warp_instructions).sum()
    }

    /// Total coalesced memory transactions issued.
    pub fn total_mem_transactions(&self) -> u64 {
        self.launches.iter().map(|l| l.mem_transactions).sum()
    }

    /// Retry attempts beyond each launch's first.
    pub fn retried_attempts(&self) -> u64 {
        self.launches
            .iter()
            .map(|l| u64::from(l.attempts.saturating_sub(1)))
            .sum()
    }

    /// Launches that degraded to the CPU fallback path.
    pub fn cpu_fallbacks(&self) -> u64 {
        self.launches.iter().filter(|l| l.cpu_fallback).count() as u64
    }

    /// Total compaction events across executed launches.
    pub fn total_compactions(&self) -> u64 {
        self.launches.iter().map(|l| l.compactions).sum()
    }

    /// Total refill events across executed launches.
    pub fn total_refills(&self) -> u64 {
        self.launches.iter().map(|l| l.refills).sum()
    }

    /// Scan-wide mean active-lane occupancy, weighted by issued slots.
    /// `None` when no launch issued lockstep slots (scalar/product-tree
    /// backends).
    pub fn mean_occupancy(&self) -> Option<f64> {
        let resident: u64 = self.launches.iter().map(|l| l.resident_lane_iters).sum();
        if resident == 0 {
            return None;
        }
        let active: u64 = self.launches.iter().map(|l| l.active_lane_iters).sum();
        Some(active as f64 / resident as f64)
    }

    /// Total backoff a production driver would have slept.
    pub fn total_backoff(&self) -> Duration {
        self.launches.iter().map(|l| l.backoff).sum()
    }

    /// Render the metrics as a JSON document (no external serializer; the
    /// same hand-rolled convention as `BENCH_scan.json`).
    pub fn to_json(&self) -> String {
        fn f64_field(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.9}")
            } else {
                "null".to_string()
            }
        }
        fn opt_f64(x: Option<f64>) -> String {
            match x {
                Some(v) => f64_field(v),
                None => "null".to_string(),
            }
        }
        let rows: Vec<String> = self
            .launches
            .iter()
            .map(|l| {
                format!(
                    concat!(
                        "    {{\"launch\": {}, \"lanes\": {}, \"warps\": {}, ",
                        "\"warp_instructions\": {}, \"mem_transactions\": {}, ",
                        "\"lane_iterations\": {}, \"occupancy\": {}, ",
                        "\"compactions\": {}, \"refills\": {}, ",
                        "\"simulated_seconds\": {}, ",
                        "\"host_seconds\": {}, \"attempts\": {}, ",
                        "\"backoff_seconds\": {}, \"cpu_fallback\": {}}}"
                    ),
                    l.launch,
                    l.lanes,
                    l.warps,
                    f64_field(l.warp_instructions),
                    l.mem_transactions,
                    l.lane_iterations,
                    opt_f64(l.occupancy()),
                    l.compactions,
                    l.refills,
                    opt_f64(l.simulated_seconds),
                    f64_field(l.host_seconds),
                    l.attempts,
                    f64_field(l.backoff.as_secs_f64()),
                    l.cpu_fallback,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"backend\": \"{backend}\",\n",
                "  \"total_launches\": {total},\n",
                "  \"resumed_launches\": {resumed},\n",
                "  \"executed_launches\": {executed},\n",
                "  \"retried_attempts\": {retried},\n",
                "  \"cpu_fallback_launches\": {fallbacks},\n",
                "  \"total_backoff_seconds\": {backoff},\n",
                "  \"total_host_seconds\": {host},\n",
                "  \"total_simulated_seconds\": {sim},\n",
                "  \"total_warps\": {warps},\n",
                "  \"total_warp_instructions\": {insts},\n",
                "  \"total_mem_transactions\": {txns},\n",
                "  \"mean_occupancy\": {occupancy},\n",
                "  \"total_compactions\": {compactions},\n",
                "  \"total_refills\": {refills},\n",
                "  \"launches\": [\n{rows}\n  ]\n",
                "}}\n"
            ),
            backend = self.backend,
            total = self.total_launches,
            resumed = self.resumed_launches,
            executed = self.launches.len(),
            retried = self.retried_attempts(),
            fallbacks = self.cpu_fallbacks(),
            backoff = f64_field(self.total_backoff().as_secs_f64()),
            host = f64_field(self.total_host_seconds()),
            sim = opt_f64(self.total_simulated_seconds()),
            warps = self.total_warps(),
            insts = f64_field(self.total_warp_instructions()),
            txns = self.total_mem_transactions(),
            occupancy = opt_f64(self.mean_occupancy()),
            compactions = self.total_compactions(),
            refills = self.total_refills(),
            rows = rows.join(",\n"),
        )
    }
}
