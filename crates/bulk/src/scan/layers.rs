//! Middleware layers of the scan pipeline.
//!
//! Each layer wraps the backend's launch execution with one orthogonal
//! concern, and the [`ScanPipeline`](crate::scan::ScanPipeline) builder
//! stacks them:
//!
//! * [`CheckpointLayer`] — commit every completed launch to a
//!   [`ScanJournal`] the moment it finishes, so a killed scan resumes
//!   mid-corpus (from `bulk::checkpoint`);
//! * [`FaultLayer`] — inject deterministic launch faults and process kills
//!   from a [`FaultPlan`] (from `bulk::fault`, test/chaos harness);
//! * [`RetryLayer`] — retry transiently faulted launches with exponential
//!   backoff under a [`RetryPolicy`], degrading persistently failing
//!   launches to the CPU path (from `gpu::fault`);
//! * [`MetricsLayer`] — time every launch and collect its warp work and
//!   retry accounting into a structured
//!   [`ScanMetrics`](crate::scan::ScanMetrics).
//!
//! The per-launch composition lives in [`run_layered_launch`]: fault
//! injection and retry wrap the backend executor, checkpointing records
//! the result, metrics observes all of it. Layer order is fixed by the
//! pipeline (it is semantics, not configuration).

use crate::checkpoint::{LaunchRecord, ScanJournal};
use crate::fault::FaultPlan;
use crate::scan::backend::{launch_termination, scalar_fallback, ExecCtx, LaunchExecutor};
use crate::scan::report::LaunchMetrics;
use bulkgcd_gpu::{retry_launch, RetryPolicy};
use std::path::PathBuf;
use std::time::Instant;

/// Journal a scan commits completed launches to: a path the pipeline opens
/// (and owns) itself, or a caller-held journal handle (the legacy
/// `scan_gpu_sim_resumable` calling convention, and what the kill/resume
/// tests use to inspect the journal between runs).
pub enum CheckpointLayer<'j> {
    /// Open (or resume) the journal file at this path.
    Path(PathBuf),
    /// Use a journal the caller already holds.
    Journal(&'j mut ScanJournal),
}

/// Deterministic fault injection: the launch faults and process kills of a
/// [`FaultPlan`] applied to every launch the pipeline runs.
#[derive(Clone, Copy)]
pub struct FaultLayer<'p> {
    /// The plan faults are drawn from.
    pub plan: &'p FaultPlan,
}

/// Retry transiently faulted launches under this policy; launches that
/// exhaust it degrade to the CPU path instead of aborting the scan.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryLayer {
    /// Attempt/backoff budget per launch.
    pub policy: RetryPolicy,
}

/// Collect per-launch execution metrics
/// ([`ScanMetrics`](crate::scan::ScanMetrics)) alongside the scan report.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsLayer;

/// One launch's fully-layered result: the journal record (what checkpoint
/// commits) plus the metrics row (what the metrics layer aggregates — also
/// the source of the run's [`FaultStats`](crate::scan::FaultStats)).
pub(crate) struct LayeredLaunch {
    pub record: LaunchRecord,
    pub metrics: LaunchMetrics,
}

/// Execute one launch through the fault/retry stack: inject faults from
/// `plan`, retry transient ones per `policy`, and degrade to the CPU path
/// (same lanes, same per-launch termination — so byte-identical findings)
/// when the device gives up.
pub(crate) fn run_layered_launch(
    cx: &ExecCtx<'_>,
    executor: &mut (dyn LaunchExecutor + Send),
    lanes: &[(usize, usize)],
    launch: u64,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> LayeredLaunch {
    let t0 = Instant::now();
    let (result, outcome) = retry_launch(launch, plan, policy, || executor.execute(cx, lanes));
    let (record, metrics) = match result {
        Ok(out) => (
            LaunchRecord {
                launch,
                simulated_seconds: out.simulated_seconds.unwrap_or(0.0),
                cpu_fallback: false,
                findings: out.findings,
            },
            LaunchMetrics {
                launch,
                lanes: lanes.len() as u64,
                warps: out.warps,
                warp_instructions: out.warp_instructions,
                mem_transactions: out.mem_transactions,
                lane_iterations: out.lane_iterations,
                active_lane_iters: out.active_lane_iters,
                resident_lane_iters: out.resident_lane_iters,
                compactions: out.compactions,
                refills: out.refills,
                simulated_seconds: out.simulated_seconds,
                host_seconds: t0.elapsed().as_secs_f64(),
                attempts: outcome.attempts,
                backoff: outcome.backoff,
                cpu_fallback: false,
            },
        ),
        // Graceful degradation: the device refuses this launch, so its
        // block of lanes runs on the host. Identical termination settings
        // make the findings byte-identical; only the simulated clock is
        // lost (a fallback launch contributes no device seconds).
        Err(_) => {
            let term = launch_termination(cx.arena, lanes, cx.early);
            let found = scalar_fallback(cx, lanes, term);
            (
                LaunchRecord {
                    launch,
                    simulated_seconds: 0.0,
                    cpu_fallback: true,
                    findings: found,
                },
                LaunchMetrics {
                    launch,
                    lanes: lanes.len() as u64,
                    warps: 0,
                    warp_instructions: 0.0,
                    mem_transactions: 0,
                    lane_iterations: 0,
                    active_lane_iters: 0,
                    resident_lane_iters: 0,
                    compactions: 0,
                    refills: 0,
                    simulated_seconds: None,
                    host_seconds: t0.elapsed().as_secs_f64(),
                    attempts: outcome.attempts,
                    backoff: outcome.backoff,
                    cpu_fallback: true,
                },
            )
        }
    };
    LayeredLaunch { record, metrics }
}
