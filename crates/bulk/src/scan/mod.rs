//! All-pairs weak-key scans, composed from two orthogonal axes.
//!
//! The paper's bulk-execution strategy is one algorithm (Approximate
//! Euclid over all `m(m−1)/2` pairs) with orthogonal execution concerns:
//! *how* GCDs are computed and *what* wraps the execution. This module
//! encodes exactly that split:
//!
//! * a [`ScanBackend`] picks the execution strategy — [`ScalarBackend`]
//!   (per-pair `run_in_place`), [`LockstepBackend`] (column-major SIMT
//!   warps), [`GpuSimBackend`] (launches priced on the simulated device),
//!   [`ProductTreeBackend`] (the batch-GCD baseline);
//! * middleware layers wrap the launch driver — [`CheckpointLayer`]
//!   (resumable journal), [`FaultLayer`]/[`RetryLayer`] (fault injection
//!   and retry-with-backoff), [`MetricsLayer`] (per-launch execution
//!   metrics);
//!
//! composed by the [`ScanPipeline`] builder:
//!
//! ```
//! use bulkgcd_bigint::Nat;
//! use bulkgcd_bulk::{LockstepBackend, ModuliArena, ScanPipeline};
//!
//! let moduli = vec![
//!     Nat::from_u64(101 * 211),
//!     Nat::from_u64(101 * 223),
//!     Nat::from_u64(103 * 227),
//! ];
//! let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
//! let report = ScanPipeline::new(&arena)
//!     .early(false)
//!     .backend(LockstepBackend::new(8))
//!     .run()
//!     .unwrap();
//! assert_eq!(report.scan.findings.len(), 1);
//! assert_eq!(report.scan.findings[0].factor, Nat::from_u64(101));
//! ```
//!
//! All backends produce identical findings; only the clock (and the
//! per-launch metrics) differ. The legacy `scan_*` functions remain as
//! thin deprecated shims over the builder, pinned bitwise-equal to their
//! pre-refactor outputs by the `shim_pins` test suite.

pub mod backend;
pub mod layers;
pub mod report;

pub use backend::{
    combine_terminations, scan_block_into, AutoBackend, Backend, ExecCtx, GpuSimBackend,
    LaunchExecutor, LaunchOutput, LockstepBackend, ProductTreeBackend, ScalarBackend, ScanBackend,
    AUTO_LOCKSTEP_MIN_BITS, AUTO_MAX_BETA_FRACTION, AUTO_PRODUCT_TREE_MIN_MODULI,
};
pub use layers::{CheckpointLayer, FaultLayer, MetricsLayer, RetryLayer};
pub use report::{
    FaultStats, Finding, FindingKind, LaunchMetrics, NoSimulatedClock, PipelineReport,
    ResumableReport, ScanError, ScanMetrics, ScanReport,
};

use crate::arena::ModuliArena;
use crate::checkpoint::{JournalError, JournalHeader, ScanJournal};
use crate::fault::FaultPlan;
use crate::pairing::{group_size_for, GroupedPairs};
use crate::shard::Tile;
use bulkgcd_bigint::Nat;
use bulkgcd_core::Algorithm;
use bulkgcd_gpu::{CostModel, DeviceConfig, RetryPolicy};
use layers::run_layered_launch;
use rayon::prelude::*;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Launch size (pairs per simulated kernel launch) used when the caller
/// does not set one on a launch-priced backend.
pub const DEFAULT_LAUNCH_PAIRS: usize = 4096;

fn count_duplicates(findings: &[Finding]) -> u64 {
    findings
        .iter()
        .filter(|f| f.kind == FindingKind::DuplicateModulus)
        .count() as u64
}

fn empty_report(start: Instant, simulated: Option<f64>) -> ScanReport {
    ScanReport {
        findings: Vec::new(),
        pairs_scanned: 0,
        duplicate_pairs: 0,
        elapsed: start.elapsed(),
        simulated_seconds: simulated,
    }
}

/// The composable all-pairs scan: one backend, any stack of layers.
///
/// Defaults: [`Algorithm::Approximate`], §V early termination on, the
/// [`ScalarBackend`], no layers. `run()` enumerates pairs in the paper's
/// §VI block order, batches them (into launches for priced backends, into
/// worker runs otherwise), executes each batch on the backend through the
/// configured layers, and merges results in launch order — so findings
/// *and* the floating-point sum of simulated seconds are independent of
/// the worker count.
pub struct ScanPipeline<'a> {
    arena: &'a ModuliArena,
    algo: Algorithm,
    early: bool,
    backend: Box<dyn ScanBackend + 'a>,
    launch_pairs: Option<usize>,
    serial: bool,
    tile: Option<Tile>,
    checkpoint: Option<CheckpointLayer<'a>>,
    fault: Option<FaultLayer<'a>>,
    retry: RetryLayer,
    metrics: Option<MetricsLayer>,
}

impl<'a> ScanPipeline<'a> {
    /// Start building a scan over `arena` with the default configuration
    /// (Approximate Euclid, early termination, [`ScalarBackend`], no
    /// layers).
    pub fn new(arena: &'a ModuliArena) -> Self {
        ScanPipeline {
            arena,
            algo: Algorithm::Approximate,
            early: true,
            backend: Box::new(ScalarBackend),
            launch_pairs: None,
            serial: false,
            tile: None,
            checkpoint: None,
            fault: None,
            retry: RetryLayer::default(),
            metrics: None,
        }
    }

    /// Select the GCD variant (default: [`Algorithm::Approximate`]).
    pub fn algorithm(mut self, algo: Algorithm) -> Self {
        self.algo = algo;
        self
    }

    /// Enable or disable §V early termination (default: enabled).
    pub fn early(mut self, early: bool) -> Self {
        self.early = early;
        self
    }

    /// Select the execution backend (default: [`ScalarBackend`]).
    pub fn backend(mut self, backend: impl ScanBackend + 'a) -> Self {
        self.backend = Box::new(backend);
        self
    }

    /// Fix the launch size in pairs. Defaults to [`DEFAULT_LAUNCH_PAIRS`]
    /// for launch-priced backends and to the backend's preferred worker-run
    /// length otherwise.
    pub fn launch_pairs(mut self, pairs: usize) -> Self {
        self.launch_pairs = Some(pairs);
        self
    }

    /// Run launches sequentially on the calling thread instead of across
    /// the rayon pool (the reference the parallel driver must match).
    pub fn serial(mut self, serial: bool) -> Self {
        self.serial = serial;
        self
    }

    /// Restrict the scan to one shard's [`Tile`] of the global launch
    /// sequence (launches `[tile.start, tile.end())`). Launch indices,
    /// per-launch results and journal records keep their *global* numbering,
    /// so per-tile reports fold back into an unsharded report exactly —
    /// see [`shard::merge`](crate::shard::merge). The tile must come from a
    /// [`TilePlan`](crate::shard::TilePlan) built with the same corpus and
    /// the same `launch_pairs` as this pipeline.
    pub fn tile(mut self, tile: Tile) -> Self {
        self.tile = Some(tile);
        self
    }

    /// Commit completed launches to the journal file at `path` (created if
    /// absent, resumed if it holds a compatible partial scan).
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(CheckpointLayer::Path(path.into()));
        self
    }

    /// Commit completed launches to a journal the caller already holds
    /// (the kill/resume tests inspect it between runs).
    pub fn journal(mut self, journal: &'a mut ScanJournal) -> Self {
        self.checkpoint = Some(CheckpointLayer::Journal(journal));
        self
    }

    /// Inject deterministic launch faults and kills from `plan`
    /// (test/chaos harness; production scans simply omit this).
    pub fn faults(mut self, plan: &'a FaultPlan) -> Self {
        self.fault = Some(FaultLayer { plan });
        self
    }

    /// Set the retry/backoff policy for transiently faulted launches
    /// (default: [`RetryPolicy::default`], 4 attempts).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = RetryLayer { policy };
        self
    }

    /// Collect per-launch [`ScanMetrics`] into the report.
    pub fn metrics(mut self) -> Self {
        self.metrics = Some(MetricsLayer);
        self
    }

    /// Execute the scan.
    pub fn run(self) -> Result<PipelineReport, ScanError> {
        let start = Instant::now();
        let ScanPipeline {
            arena,
            algo,
            early,
            backend,
            launch_pairs,
            serial,
            tile,
            checkpoint,
            fault,
            retry,
            metrics,
        } = self;
        let cx = ExecCtx { arena, algo, early };
        let layered = checkpoint.is_some() || fault.is_some();
        let collect_metrics = metrics.is_some();

        // Whole-corpus backends have no launch boundaries: nothing to
        // journal, retry, fault — or restrict to a tile of launches —
        // surface the mismatch instead of silently ignoring the layers.
        if backend.is_whole_corpus() {
            if layered {
                return Err(ScanError::Unsupported {
                    backend: backend.name(),
                    what: "checkpoint/fault/retry layers (it has no launch boundaries)",
                });
            }
            if tile.is_some() {
                return Err(ScanError::Unsupported {
                    backend: backend.name(),
                    what: "tile-restricted scans (it has no launch boundaries)",
                });
            }
        }
        if layered {
            run_layered(
                start,
                cx,
                &*backend,
                launch_pairs,
                serial,
                tile,
                checkpoint,
                fault,
                retry,
                collect_metrics,
            )
        } else {
            run_unlayered(
                start,
                cx,
                &*backend,
                launch_pairs,
                serial,
                tile,
                collect_metrics,
            )
        }
    }
}

/// Direct mode: no journal, no faults. Batches run straight on the
/// backend across the rayon pool (or serially), merged in launch order.
/// A [`Tile`] restricts execution to its launch range; launch numbering
/// stays global so tiled runs compose back into the unsharded result.
fn run_unlayered(
    start: Instant,
    cx: ExecCtx<'_>,
    backend: &dyn ScanBackend,
    launch_pairs: Option<usize>,
    serial: bool,
    tile: Option<Tile>,
    collect_metrics: bool,
) -> Result<PipelineReport, ScanError> {
    let prices = backend.prices_launches();
    let m = cx.arena.len();

    // Whole-corpus escape hatch (the product-tree baseline). `run()`
    // already refused tiles for whole-corpus backends.
    if m >= 2 && tile.is_none() {
        if let Some(mut findings) = backend.run_whole(&cx) {
            let grid = GroupedPairs::new(m, group_size_for(m));
            findings.sort_by_key(|f| (f.i, f.j));
            let host = start.elapsed();
            let metrics = collect_metrics.then(|| ScanMetrics {
                backend: backend.name(),
                total_launches: 1,
                resumed_launches: 0,
                launches: vec![LaunchMetrics {
                    launch: 0,
                    lanes: grid.total_pairs(),
                    warps: 0,
                    warp_instructions: 0.0,
                    mem_transactions: 0,
                    lane_iterations: 0,
                    active_lane_iters: 0,
                    resident_lane_iters: 0,
                    compactions: 0,
                    refills: 0,
                    simulated_seconds: None,
                    host_seconds: host.as_secs_f64(),
                    attempts: 1,
                    backoff: std::time::Duration::ZERO,
                    cpu_fallback: false,
                }],
            });
            return Ok(PipelineReport {
                scan: ScanReport {
                    duplicate_pairs: count_duplicates(&findings),
                    findings,
                    pairs_scanned: grid.total_pairs(),
                    elapsed: start.elapsed(),
                    simulated_seconds: None,
                },
                stats: FaultStats {
                    total_launches: 1,
                    executed_launches: 1,
                    ..FaultStats::default()
                },
                metrics,
            });
        }
    }

    if m < 2 {
        if let Some(t) = tile {
            // No pairs means no launches: no tile can fit.
            return Err(ScanError::InvalidTile {
                tile_start: t.start,
                tile_launches: t.launches,
                launches: 0,
            });
        }
        return Ok(PipelineReport {
            scan: empty_report(start, prices.then_some(0.0)),
            stats: FaultStats::default(),
            metrics: collect_metrics.then(|| ScanMetrics {
                backend: backend.name(),
                ..ScanMetrics::default()
            }),
        });
    }

    let grid = GroupedPairs::new(m, group_size_for(m));
    let all: Vec<(usize, usize)> = grid.all_pairs().collect();
    let workers = rayon::current_num_threads().max(1);
    let chunk = match launch_pairs {
        Some(lp) => lp.max(1),
        // A tiled run must chunk exactly like every other shard of the
        // same plan, so it cannot use the worker-count-dependent default.
        None if prices || tile.is_some() => DEFAULT_LAUNCH_PAIRS,
        None => backend.preferred_run_len(all.len(), workers),
    };
    let launches = (all.len() as u64).div_ceil(chunk as u64);
    let (lo, hi) = match tile {
        Some(t) => {
            if t.launches == 0 || t.end() > launches {
                return Err(ScanError::InvalidTile {
                    tile_start: t.start,
                    tile_launches: t.launches,
                    launches,
                });
            }
            (t.start as usize, t.end() as usize)
        }
        None => (0, launches as usize),
    };
    let chunks: Vec<&[(usize, usize)]> = all.chunks(chunk).collect();
    let run_chunks = &chunks[lo..hi];

    let outputs: Vec<(LaunchOutput, f64)> = if serial {
        let mut ex = backend.executor(&cx);
        run_chunks
            .iter()
            .map(|lanes| {
                let t0 = Instant::now();
                let out = ex.execute(&cx, lanes);
                (out, t0.elapsed().as_secs_f64())
            })
            .collect()
    } else {
        run_chunks
            .par_iter()
            .map_init(
                || backend.executor(&cx),
                |ex, lanes| {
                    let t0 = Instant::now();
                    let out = ex.execute(&cx, lanes);
                    (out, t0.elapsed().as_secs_f64())
                },
            )
            .collect()
    };

    let total_launches = outputs.len() as u64;
    let pairs_scanned = run_chunks.iter().map(|c| c.len() as u64).sum();
    let mut findings = Vec::new();
    let mut simulated = 0f64;
    let mut rows = collect_metrics.then(Vec::new);
    for (idx, (out, host_seconds)) in outputs.into_iter().enumerate() {
        simulated += out.simulated_seconds.unwrap_or(0.0);
        if let Some(rows) = &mut rows {
            rows.push(LaunchMetrics {
                launch: (lo + idx) as u64,
                lanes: run_chunks[idx].len() as u64,
                warps: out.warps,
                warp_instructions: out.warp_instructions,
                mem_transactions: out.mem_transactions,
                lane_iterations: out.lane_iterations,
                active_lane_iters: out.active_lane_iters,
                resident_lane_iters: out.resident_lane_iters,
                compactions: out.compactions,
                refills: out.refills,
                simulated_seconds: out.simulated_seconds,
                host_seconds,
                attempts: 1,
                backoff: std::time::Duration::ZERO,
                cpu_fallback: false,
            });
        }
        findings.extend(out.findings);
    }
    findings.sort_by_key(|f| (f.i, f.j));
    Ok(PipelineReport {
        scan: ScanReport {
            duplicate_pairs: count_duplicates(&findings),
            findings,
            pairs_scanned,
            elapsed: start.elapsed(),
            simulated_seconds: prices.then_some(simulated),
        },
        stats: FaultStats {
            total_launches,
            executed_launches: total_launches,
            ..FaultStats::default()
        },
        metrics: rows.map(|launches| ScanMetrics {
            backend: backend.name(),
            total_launches,
            resumed_launches: 0,
            launches,
        }),
    })
}

/// Layered mode: the checkpoint/fault/retry stack around the launch
/// driver. Each launch is committed to the journal (and fsynced) the
/// moment it completes, from inside the parallel driver, so a run that
/// dies at any point keeps every launch that finished before the crash;
/// the final report is merged from the journal in launch-index order, so
/// resumed and uninterrupted runs reduce the same records the same way.
#[allow(clippy::too_many_arguments)]
fn run_layered(
    start: Instant,
    cx: ExecCtx<'_>,
    backend: &dyn ScanBackend,
    launch_pairs: Option<usize>,
    serial: bool,
    tile: Option<Tile>,
    checkpoint: Option<CheckpointLayer<'_>>,
    fault: Option<FaultLayer<'_>>,
    retry: RetryLayer,
    collect_metrics: bool,
) -> Result<PipelineReport, ScanError> {
    let arena = cx.arena;
    let prices = backend.prices_launches();
    let none_plan = FaultPlan::none();
    let plan = fault.map(|f| f.plan).unwrap_or(&none_plan);
    let policy = &retry.policy;

    let mut owned_journal;
    let journal: &mut ScanJournal = match checkpoint {
        Some(CheckpointLayer::Journal(j)) => j,
        Some(CheckpointLayer::Path(path)) => {
            owned_journal = ScanJournal::open(&path)?;
            &mut owned_journal
        }
        None => {
            owned_journal = ScanJournal::in_memory();
            &mut owned_journal
        }
    };

    let lp = launch_pairs.unwrap_or(DEFAULT_LAUNCH_PAIRS).max(1);
    let mut header = JournalHeader::for_scan(arena, cx.algo, cx.early, lp);
    if let Some(t) = tile {
        if t.launches == 0 || t.end() > header.launches {
            return Err(ScanError::InvalidTile {
                tile_start: t.start,
                tile_launches: t.launches,
                launches: header.launches,
            });
        }
        // The journal binds to the tile, too: a shard journal cannot
        // resume another shard's tile or the unsharded scan.
        header.tile_start = t.start;
        header.tile_launches = t.launches;
    }
    journal.check_compatible(&header)?;
    if arena.len() < 2 {
        journal.mark_done()?;
        return Ok(PipelineReport {
            scan: empty_report(start, prices.then_some(0.0)),
            stats: FaultStats::default(),
            metrics: collect_metrics.then(|| ScanMetrics {
                backend: backend.name(),
                ..ScanMetrics::default()
            }),
        });
    }

    let grid = GroupedPairs::new(arena.len(), group_size_for(arena.len()));
    let all: Vec<(usize, usize)> = grid.all_pairs().collect();
    let chunks: Vec<&[(usize, usize)]> = all.chunks(lp).collect();
    debug_assert_eq!(chunks.len() as u64, header.launches);

    // Launch indices stay global even for a tile-restricted run, so the
    // journal's records and the fault plan's keys mean the same thing
    // sharded or not.
    let tile_range = header.tile_start..header.tile_start + header.tile_launches;
    let pending: Vec<u64> = tile_range
        .clone()
        .filter(|&l| !journal.completed(l))
        .collect();
    let mut stats = FaultStats {
        total_launches: header.tile_launches,
        resumed_launches: header.tile_launches - pending.len() as u64,
        ..FaultStats::default()
    };

    // An injected kill at launch k stops the run at that boundary: work
    // before it commits, nothing at or after it runs — the journal looks
    // exactly like a crashed process's.
    let kill_pos = pending.iter().position(|&l| plan.kills(l));
    let to_run = match kill_pos {
        Some(p) => &pending[..p],
        None => &pending[..],
    };

    // Each launch commits to the journal the moment it completes — from
    // inside the parallel map, serialized behind a mutex — so a real crash
    // (SIGKILL, OOM, power loss) mid-run loses only the launches still in
    // flight, never the whole run. Commits land in completion order, not
    // launch order; the journal keys records by launch index, so the final
    // merge is launch-ordered regardless.
    let per_launch: Result<Vec<LaunchMetrics>, JournalError> = {
        let journal_mx = Mutex::new(&mut *journal);
        let commit = |metrics_and_record: layers::LayeredLaunch| {
            let layers::LayeredLaunch { record, metrics } = metrics_and_record;
            journal_mx
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .record(record)?;
            Ok(metrics)
        };
        if serial {
            let mut ex = backend.executor(&cx);
            to_run
                .iter()
                .map(|&l| {
                    commit(run_layered_launch(
                        &cx,
                        ex.as_mut(),
                        chunks[l as usize],
                        l,
                        plan,
                        policy,
                    ))
                })
                .collect()
        } else {
            to_run
                .par_iter()
                .map_init(
                    || backend.executor(&cx),
                    |ex, &l| {
                        commit(run_layered_launch(
                            &cx,
                            ex.as_mut(),
                            chunks[l as usize],
                            l,
                            plan,
                            policy,
                        ))
                    },
                )
                .collect()
        }
    };
    let rows = per_launch?;
    for row in &rows {
        stats.executed_launches += 1;
        stats.retried_attempts += u64::from(row.attempts.saturating_sub(1));
        stats.backoff += row.backoff;
        if row.cpu_fallback {
            stats.cpu_fallback_launches += 1;
        }
    }

    if let Some(p) = kill_pos {
        return Err(ScanError::Interrupted { launch: pending[p] });
    }
    journal.mark_done()?;

    // The report is merged from the journal — not from this run's results —
    // so resumed and uninterrupted runs reduce the same records the same way.
    let mut findings = Vec::new();
    let mut simulated = 0f64;
    for record in journal.records() {
        findings.extend_from_slice(&record.findings);
        simulated += record.simulated_seconds;
    }
    findings.sort_by_key(|f| (f.i, f.j));
    let pairs_scanned = tile_range.map(|l| chunks[l as usize].len() as u64).sum();
    Ok(PipelineReport {
        scan: ScanReport {
            duplicate_pairs: count_duplicates(&findings),
            findings,
            pairs_scanned,
            elapsed: start.elapsed(),
            simulated_seconds: prices.then_some(simulated),
        },
        metrics: collect_metrics.then(|| ScanMetrics {
            backend: backend.name(),
            total_launches: stats.total_launches,
            resumed_launches: stats.resumed_launches,
            launches: rows,
        }),
        stats,
    })
}

// ---------------------------------------------------------------------------
// Legacy entry points — thin deprecated shims over the builder, kept one
// release for API stability and pinned bitwise-equal to their pre-refactor
// outputs by the `shim_pins` test suite.
// ---------------------------------------------------------------------------

/// Scan all pairs of `moduli` on the CPU with `algo`, using every rayon
/// worker. `early` enables the §V early termination (recommended).
#[deprecated(
    since = "0.5.0",
    note = "use ScanPipeline::new(&arena).algorithm(algo).early(early).run() — see DESIGN.md's migration table"
)]
pub fn scan_cpu(moduli: &[Nat], algo: Algorithm, early: bool) -> Result<ScanReport, ScanError> {
    let arena = ModuliArena::try_from_moduli(moduli)?;
    #[allow(deprecated)]
    Ok(scan_cpu_arena(&arena, algo, early))
}

/// `scan_cpu` over a pre-packed [`ModuliArena`].
#[deprecated(
    since = "0.5.0",
    note = "use ScanPipeline::new(arena).algorithm(algo).early(early).run()"
)]
pub fn scan_cpu_arena(arena: &ModuliArena, algo: Algorithm, early: bool) -> ScanReport {
    ScanPipeline::new(arena)
        .algorithm(algo)
        .early(early)
        .run()
        // analyze: allow(no-panic, reason = "deprecated shim; a pipeline with no journal/fault layers is infallible by construction")
        .expect("the un-layered scalar scan cannot fail")
        .scan
}

/// Scan all pairs of `moduli` on the simulated GPU in launches of
/// `launch_pairs` lanes.
#[deprecated(
    since = "0.5.0",
    note = "use ScanPipeline::new(&arena).backend(GpuSimBackend { device, cost }).launch_pairs(n).run()"
)]
pub fn scan_gpu_sim(
    moduli: &[Nat],
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch_pairs: usize,
) -> Result<ScanReport, ScanError> {
    let arena = ModuliArena::try_from_moduli(moduli)?;
    #[allow(deprecated)]
    Ok(scan_gpu_sim_arena(
        &arena,
        algo,
        early,
        device,
        cost,
        launch_pairs,
    ))
}

/// `scan_gpu_sim` over a pre-packed [`ModuliArena`].
#[deprecated(
    since = "0.5.0",
    note = "use ScanPipeline::new(arena).backend(GpuSimBackend { device, cost }).launch_pairs(n).run()"
)]
pub fn scan_gpu_sim_arena(
    arena: &ModuliArena,
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch_pairs: usize,
) -> ScanReport {
    ScanPipeline::new(arena)
        .algorithm(algo)
        .early(early)
        .backend(GpuSimBackend {
            device: device.clone(),
            cost: cost.clone(),
        })
        .launch_pairs(launch_pairs)
        .run()
        // analyze: allow(no-panic, reason = "deprecated shim; a pipeline with no journal/fault layers is infallible by construction")
        .expect("the un-layered GPU-sim scan cannot fail")
        .scan
}

/// Serial reference for `scan_gpu_sim`: same launches, same order, one
/// after another on the calling thread.
#[deprecated(
    since = "0.5.0",
    note = "use ScanPipeline::new(&arena).backend(GpuSimBackend { device, cost }).launch_pairs(n).serial(true).run()"
)]
pub fn scan_gpu_sim_serial(
    moduli: &[Nat],
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch_pairs: usize,
) -> Result<ScanReport, ScanError> {
    let arena = ModuliArena::try_from_moduli(moduli)?;
    Ok(ScanPipeline::new(&arena)
        .algorithm(algo)
        .early(early)
        .backend(GpuSimBackend {
            device: device.clone(),
            cost: cost.clone(),
        })
        .launch_pairs(launch_pairs)
        .serial(true)
        .run()
        // analyze: allow(no-panic, reason = "deprecated shim; a pipeline with no journal/fault layers is infallible by construction")
        .expect("the un-layered GPU-sim scan cannot fail")
        .scan)
}

/// Scan all pairs of `moduli` on the host through the lockstep SIMT engine
/// in warps of `warp_width` lanes.
#[deprecated(
    since = "0.5.0",
    note = "use ScanPipeline::new(&arena).backend(LockstepBackend::new(warp_width)).run()"
)]
pub fn scan_lockstep(
    moduli: &[Nat],
    early: bool,
    warp_width: usize,
) -> Result<ScanReport, ScanError> {
    let arena = ModuliArena::try_from_moduli(moduli)?;
    #[allow(deprecated)]
    Ok(scan_lockstep_arena(&arena, early, warp_width))
}

/// `scan_lockstep` over a pre-packed [`ModuliArena`].
#[deprecated(
    since = "0.5.0",
    note = "use ScanPipeline::new(arena).backend(LockstepBackend::new(warp_width)).run()"
)]
pub fn scan_lockstep_arena(arena: &ModuliArena, early: bool, warp_width: usize) -> ScanReport {
    ScanPipeline::new(arena)
        .early(early)
        .backend(LockstepBackend::new(warp_width))
        .run()
        // analyze: allow(no-panic, reason = "deprecated shim; a pipeline with no journal/fault layers is infallible by construction")
        .expect("the un-layered lockstep scan cannot fail")
        .scan
}

/// Fault-tolerant, resumable variant of `scan_gpu_sim_arena`.
#[deprecated(
    since = "0.5.0",
    note = "use ScanPipeline::new(arena).backend(GpuSimBackend { device, cost }).launch_pairs(n).journal(j).faults(plan).retry(policy).run()"
)]
#[allow(clippy::too_many_arguments)]
pub fn scan_gpu_sim_resumable(
    arena: &ModuliArena,
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    launch_pairs: usize,
    journal: &mut ScanJournal,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<ResumableReport, ScanError> {
    ScanPipeline::new(arena)
        .algorithm(algo)
        .early(early)
        .backend(GpuSimBackend {
            device: device.clone(),
            cost: cost.clone(),
        })
        .launch_pairs(launch_pairs)
        .journal(journal)
        .faults(plan)
        .retry(*policy)
        .run()
        .map(PipelineReport::into_resumable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::ArenaError;
    use bulkgcd_bigint::prime::random_prime;
    use bulkgcd_bigint::random::random_odd_bits;
    use bulkgcd_core::Termination;
    use bulkgcd_rsa::build_corpus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn gpu_backend() -> GpuSimBackend {
        GpuSimBackend {
            device: DeviceConfig::gtx_780_ti(),
            cost: CostModel::default(),
        }
    }

    fn cpu_scan(moduli: &[Nat], algo: Algorithm, early: bool) -> Result<ScanReport, ScanError> {
        let arena = ModuliArena::try_from_moduli(moduli)?;
        Ok(ScanPipeline::new(&arena)
            .algorithm(algo)
            .early(early)
            .run()?
            .scan)
    }

    fn gpu_scan(
        moduli: &[Nat],
        algo: Algorithm,
        early: bool,
        launch_pairs: usize,
        serial: bool,
    ) -> Result<ScanReport, ScanError> {
        let arena = ModuliArena::try_from_moduli(moduli)?;
        Ok(ScanPipeline::new(&arena)
            .algorithm(algo)
            .early(early)
            .backend(gpu_backend())
            .launch_pairs(launch_pairs)
            .serial(serial)
            .run()?
            .scan)
    }

    fn lockstep_scan(moduli: &[Nat], early: bool, w: usize) -> Result<ScanReport, ScanError> {
        let arena = ModuliArena::try_from_moduli(moduli)?;
        Ok(ScanPipeline::new(&arena)
            .early(early)
            .backend(LockstepBackend::new(w))
            .run()?
            .scan)
    }

    fn resumable_scan(
        arena: &ModuliArena,
        launch_pairs: usize,
        journal: &mut ScanJournal,
        plan: &FaultPlan,
    ) -> Result<ResumableReport, ScanError> {
        ScanPipeline::new(arena)
            .backend(gpu_backend())
            .launch_pairs(launch_pairs)
            .journal(journal)
            .faults(plan)
            .run()
            .map(PipelineReport::into_resumable)
    }

    fn check_findings_match_ground_truth(findings: &[Finding], corpus: &bulkgcd_rsa::Corpus) {
        assert_eq!(findings.len(), corpus.shared.len());
        for (f, (i, j, p)) in findings.iter().zip(&corpus.shared) {
            assert_eq!((f.i, f.j), (*i, *j));
            assert_eq!(&f.factor, p);
        }
    }

    #[test]
    fn cpu_scan_finds_planted_pairs() {
        let mut rng = StdRng::seed_from_u64(1);
        let corpus = build_corpus(&mut rng, 16, 128, 3);
        for early in [false, true] {
            let rep = cpu_scan(&corpus.moduli(), Algorithm::Approximate, early).unwrap();
            assert_eq!(rep.pairs_scanned, 16 * 15 / 2);
            check_findings_match_ground_truth(&rep.findings, &corpus);
        }
    }

    #[test]
    fn all_algorithms_agree_on_cpu() {
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = build_corpus(&mut rng, 8, 128, 2);
        let moduli = corpus.moduli();
        let reference = cpu_scan(&moduli, Algorithm::Approximate, true).unwrap();
        for algo in Algorithm::ALL {
            let rep = cpu_scan(&moduli, algo, true).unwrap();
            assert_eq!(rep.findings, reference.findings, "{}", algo.name());
        }
    }

    #[test]
    fn gpu_scan_matches_cpu_scan() {
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = build_corpus(&mut rng, 12, 128, 2);
        let moduli = corpus.moduli();
        let cpu = cpu_scan(&moduli, Algorithm::Approximate, true).unwrap();
        let gpu = gpu_scan(&moduli, Algorithm::Approximate, true, 32, false).unwrap();
        assert_eq!(cpu.findings, gpu.findings);
        assert_eq!(cpu.pairs_scanned, gpu.pairs_scanned);
        assert!(gpu.simulated().unwrap() > 0.0);
        // The checked accessor errors (not panics) on pure-CPU reports.
        assert_eq!(cpu.simulated(), Err(NoSimulatedClock));
    }

    #[test]
    fn parallel_gpu_sim_matches_serial_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let corpus = build_corpus(&mut rng, 12, 128, 3);
        let moduli = corpus.moduli();
        for launch_pairs in [1usize, 7, 32, 1000] {
            let par = gpu_scan(&moduli, Algorithm::Approximate, true, launch_pairs, false).unwrap();
            let ser = gpu_scan(&moduli, Algorithm::Approximate, true, launch_pairs, true).unwrap();
            assert_eq!(par.findings, ser.findings, "launch_pairs={launch_pairs}");
            assert_eq!(par.pairs_scanned, ser.pairs_scanned);
            let (ps, ss) = (par.simulated().unwrap(), ser.simulated().unwrap());
            assert!(
                (ps - ss).abs() <= 1e-12 * ss.max(1.0),
                "launch_pairs={launch_pairs}: parallel {ps} vs serial {ss}"
            );
        }
    }

    #[test]
    fn lockstep_scan_matches_cpu_scan_across_widths() {
        let mut rng = StdRng::seed_from_u64(21);
        let corpus = build_corpus(&mut rng, 14, 128, 3);
        let moduli = corpus.moduli();
        for early in [false, true] {
            let cpu = cpu_scan(&moduli, Algorithm::Approximate, early).unwrap();
            for w in [1usize, 3, 8, 32] {
                let ls = lockstep_scan(&moduli, early, w).unwrap();
                assert_eq!(ls.findings, cpu.findings, "early={early} w={w}");
                assert_eq!(ls.pairs_scanned, cpu.pairs_scanned);
                assert_eq!(ls.duplicate_pairs, cpu.duplicate_pairs);
            }
        }
    }

    #[test]
    fn lockstep_scan_classifies_duplicates() {
        let mut rng = StdRng::seed_from_u64(22);
        let corpus = build_corpus(&mut rng, 8, 128, 1);
        let mut moduli = corpus.moduli();
        let dup = moduli[2].clone();
        moduli.push(dup);
        let cpu = cpu_scan(&moduli, Algorithm::Approximate, true).unwrap();
        let ls = lockstep_scan(&moduli, true, 8).unwrap();
        assert_eq!(ls.findings, cpu.findings);
        assert_eq!(ls.duplicate_pairs, 1);
        assert!(ls
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DuplicateModulus));
    }

    #[test]
    fn lockstep_scan_degenerate_corpora() {
        match lockstep_scan(&[], true, 8) {
            Err(ScanError::Arena(ArenaError::EmptyCorpus)) => {}
            other => panic!("expected EmptyCorpus, got {other:?}"),
        }
        let rep = lockstep_scan(&[Nat::from(15u32)], true, 8).unwrap();
        assert_eq!(rep.pairs_scanned, 0);
        // warp_width 0 is clamped to 1, not a panic.
        let mut rng = StdRng::seed_from_u64(23);
        let corpus = build_corpus(&mut rng, 6, 96, 1);
        let rep = lockstep_scan(&corpus.moduli(), true, 0).unwrap();
        check_findings_match_ground_truth(&rep.findings, &corpus);
    }

    #[test]
    fn combine_terminations_folds_conservatively() {
        let e = |bits| Termination::Early {
            threshold_bits: bits,
        };
        // Mixed widths: smallest threshold wins.
        assert_eq!(combine_terminations([e(64), e(48), e(64)]), e(48));
        // Any Full pair pins the whole launch to Full, in either fold order.
        assert_eq!(
            combine_terminations([e(64), Termination::Full, e(48)]),
            Termination::Full
        );
        assert_eq!(
            combine_terminations([Termination::Full, e(64)]),
            Termination::Full
        );
        assert_eq!(
            combine_terminations([e(64), Termination::Full]),
            Termination::Full
        );
        // Degenerate batches.
        assert_eq!(combine_terminations([]), Termination::Full);
        assert_eq!(combine_terminations([Termination::Full]), Termination::Full);
        assert_eq!(combine_terminations([e(10)]), e(10));
    }

    #[test]
    fn mixed_width_batch_still_finds_shared_factor() {
        // Regression for the per-launch termination fold: a batch mixing
        // modulus widths must take the narrowest pair's threshold, so the
        // wide pair's shared factor survives early termination.
        let mut rng = StdRng::seed_from_u64(8);
        let p = random_prime(&mut rng, 64);
        let wide_a = p.mul(&random_prime(&mut rng, 64)); // 128-bit, shares p
        let wide_b = p.mul(&random_prime(&mut rng, 64));
        let moduli = vec![
            wide_a,
            random_odd_bits(&mut rng, 96), // narrower lanes in the same launch
            random_odd_bits(&mut rng, 96),
            wide_b,
        ];
        // One launch covering all pairs (launch_pairs > m(m-1)/2).
        let gpu = gpu_scan(&moduli, Algorithm::Approximate, true, 64, false).unwrap();
        let cpu = cpu_scan(&moduli, Algorithm::Approximate, true).unwrap();
        assert_eq!(gpu.findings, cpu.findings);
        assert_eq!(gpu.findings.len(), 1);
        assert_eq!((gpu.findings[0].i, gpu.findings[0].j), (0, 3));
        assert_eq!(gpu.findings[0].factor, p);
    }

    #[test]
    fn clean_corpus_yields_no_findings() {
        let mut rng = StdRng::seed_from_u64(4);
        let corpus = build_corpus(&mut rng, 8, 96, 0);
        let rep = cpu_scan(&corpus.moduli(), Algorithm::Approximate, true).unwrap();
        assert!(rep.findings.is_empty());
    }

    #[test]
    fn degenerate_corpora() {
        // An empty corpus cannot be packed into an arena: a structured
        // error, not a panic (and not a silent empty report).
        match cpu_scan(&[], Algorithm::Approximate, true) {
            Err(ScanError::Arena(ArenaError::EmptyCorpus)) => {}
            other => panic!("expected EmptyCorpus, got {other:?}"),
        }
        let rep = cpu_scan(&[Nat::from(15u32)], Algorithm::Approximate, true).unwrap();
        assert_eq!(rep.pairs_scanned, 0);
    }

    #[test]
    fn odd_corpus_size_uses_group_size_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let corpus = build_corpus(&mut rng, 7, 96, 1);
        let rep = cpu_scan(&corpus.moduli(), Algorithm::Approximate, true).unwrap();
        assert_eq!(rep.pairs_scanned, 21);
        check_findings_match_ground_truth(&rep.findings, &corpus);
    }

    #[test]
    fn oversized_corpus_is_a_scan_error() {
        // Width overflow propagates through the scan entry point as a
        // structured ScanError::Arena, exercised here via the capped
        // constructor the scan would hit at real isize::MAX scale.
        let moduli = vec![Nat::from_u64(u64::MAX), Nat::from_u64(u64::MAX - 4)];
        match ModuliArena::try_from_moduli_capped(&moduli, 3).map_err(ScanError::from) {
            Err(ScanError::Arena(ArenaError::WidthOverflow { moduli: m, .. })) => {
                assert_eq!(m, 2)
            }
            other => panic!("expected WidthOverflow, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_moduli_classified_and_counted() {
        let mut rng = StdRng::seed_from_u64(9);
        let corpus = build_corpus(&mut rng, 6, 128, 1);
        let mut moduli = corpus.moduli();
        // Plant a duplicate pair alongside the planted shared-prime pair.
        let dup = moduli[1].clone();
        moduli.push(dup);
        let rep = cpu_scan(&moduli, Algorithm::Approximate, true).unwrap();
        assert_eq!(rep.duplicate_pairs, 1);
        let dups: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::DuplicateModulus)
            .collect();
        assert_eq!(dups.len(), 1);
        assert_eq!((dups[0].i, dups[0].j), (1, 6));
        assert_eq!(
            dups[0].factor, moduli[1],
            "duplicate finding carries gcd = n"
        );
        // The planted shared-prime pair is still classified as such.
        assert!(rep
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::SharedPrime));
        // The GPU path classifies identically.
        let gpu = gpu_scan(&moduli, Algorithm::Approximate, true, 16, false).unwrap();
        assert_eq!(gpu.findings, rep.findings);
        assert_eq!(gpu.duplicate_pairs, 1);
    }

    #[test]
    fn product_tree_backend_matches_pairwise_scan() {
        let mut rng = StdRng::seed_from_u64(31);
        let corpus = build_corpus(&mut rng, 10, 128, 2);
        let mut moduli = corpus.moduli();
        let dup = moduli[3].clone();
        moduli.push(dup);
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        let pairwise = ScanPipeline::new(&arena).run().unwrap().scan;
        for parallel in [false, true] {
            let batch = ScanPipeline::new(&arena)
                .backend(ProductTreeBackend { parallel })
                .run()
                .unwrap()
                .scan;
            assert_eq!(batch.findings, pairwise.findings, "parallel={parallel}");
            assert_eq!(batch.pairs_scanned, pairwise.pairs_scanned);
            assert_eq!(batch.duplicate_pairs, pairwise.duplicate_pairs);
            assert_eq!(batch.simulated_seconds, None);
        }
    }

    #[test]
    fn product_tree_backend_refuses_launch_layers() {
        let mut rng = StdRng::seed_from_u64(32);
        let corpus = build_corpus(&mut rng, 6, 96, 1);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let mut journal = ScanJournal::in_memory();
        match ScanPipeline::new(&arena)
            .backend(ProductTreeBackend::default())
            .journal(&mut journal)
            .run()
        {
            Err(ScanError::Unsupported { backend, .. }) => assert_eq!(backend, "product-tree"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn metrics_layer_accounts_every_launch() {
        let mut rng = StdRng::seed_from_u64(33);
        let corpus = build_corpus(&mut rng, 12, 128, 2);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let rep = ScanPipeline::new(&arena)
            .backend(gpu_backend())
            .launch_pairs(7)
            .metrics()
            .run()
            .unwrap();
        let metrics = rep.metrics.expect("metrics requested");
        assert_eq!(metrics.backend, "gpu-sim");
        assert_eq!(metrics.total_launches, rep.stats.total_launches);
        assert_eq!(metrics.launches.len() as u64, metrics.total_launches);
        // Rows are in launch order and cover every pair exactly once.
        for (idx, row) in metrics.launches.iter().enumerate() {
            assert_eq!(row.launch, idx as u64);
            assert!(row.lanes > 0);
            assert!(row.warps > 0);
            assert!(row.warp_instructions > 0.0);
            assert_eq!(row.attempts, 1);
            assert!(!row.cpu_fallback);
        }
        let lanes: u64 = metrics.launches.iter().map(|l| l.lanes).sum();
        assert_eq!(lanes, rep.scan.pairs_scanned);
        // Per-launch simulated seconds sum to the report's clock (same
        // launch-order f64 sum).
        assert_eq!(
            metrics.total_simulated_seconds().unwrap().to_bits(),
            rep.scan.simulated().unwrap().to_bits()
        );
        // The JSON rendering carries the roll-ups.
        let json = metrics.to_json();
        assert!(json.contains("\"backend\": \"gpu-sim\""));
        assert!(json.contains("\"total_launches\""));
        assert!(json.contains("\"launches\": ["));
    }

    /// The uninterrupted resumable run, fault-free: the reference every
    /// fault scenario must reproduce byte for byte.
    fn fault_free_reference(
        arena: &ModuliArena,
        launch_pairs: usize,
    ) -> (ScanReport, ResumableReport) {
        let plain = ScanPipeline::new(arena)
            .backend(gpu_backend())
            .launch_pairs(launch_pairs)
            .run()
            .unwrap()
            .scan;
        let mut journal = ScanJournal::in_memory();
        let resumable =
            resumable_scan(arena, launch_pairs, &mut journal, &FaultPlan::none()).unwrap();
        (plain, resumable)
    }

    #[test]
    fn fault_free_resumable_matches_plain_gpu_scan() {
        let mut rng = StdRng::seed_from_u64(10);
        let corpus = build_corpus(&mut rng, 12, 128, 3);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let (plain, resumable) = fault_free_reference(&arena, 7);
        assert_eq!(resumable.scan.findings, plain.findings);
        assert_eq!(resumable.scan.pairs_scanned, plain.pairs_scanned);
        assert_eq!(
            resumable.scan.simulated().unwrap().to_bits(),
            plain.simulated().unwrap().to_bits(),
            "launch-order merge must make even the f64 sum identical"
        );
        assert_eq!(
            resumable.stats.executed_launches,
            resumable.stats.total_launches
        );
        assert_eq!(resumable.stats.resumed_launches, 0);
        assert_eq!(resumable.stats.cpu_fallback_launches, 0);
    }

    #[test]
    fn kill_and_resume_reproduces_uninterrupted_run_at_every_boundary() {
        let mut rng = StdRng::seed_from_u64(11);
        let corpus = build_corpus(&mut rng, 10, 128, 2);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let launch_pairs = 6;
        let (_, reference) = fault_free_reference(&arena, launch_pairs);
        let total = reference.stats.total_launches;
        assert!(
            total > 2,
            "need several launches to make the test meaningful"
        );

        for kill_at in 0..total {
            let plan = FaultPlan::none().with_kill(kill_at);
            let mut journal = ScanJournal::in_memory();
            match resumable_scan(&arena, launch_pairs, &mut journal, &plan) {
                Err(ScanError::Interrupted { launch }) => assert_eq!(launch, kill_at),
                other => panic!("kill at {kill_at}: expected Interrupted, got {other:?}"),
            }
            assert_eq!(
                journal.committed(),
                kill_at,
                "exactly the pre-kill prefix commits"
            );
            assert!(!journal.is_done());

            // Resume with the fired kill dropped: the run completes and is
            // byte-identical to the uninterrupted reference.
            let resumed = resumable_scan(
                &arena,
                launch_pairs,
                &mut journal,
                &plan.clone().without_kill_at(kill_at),
            )
            .unwrap();
            assert!(journal.is_done());
            assert_eq!(
                resumed.scan.findings, reference.scan.findings,
                "kill at {kill_at}"
            );
            assert_eq!(resumed.scan.duplicate_pairs, reference.scan.duplicate_pairs);
            assert_eq!(
                resumed.scan.simulated().unwrap().to_bits(),
                reference.scan.simulated().unwrap().to_bits(),
                "kill at {kill_at}: resumed f64 sum must be bitwise identical"
            );
            assert_eq!(resumed.stats.resumed_launches, kill_at);
            assert_eq!(resumed.stats.executed_launches, total - kill_at);
        }
    }

    #[test]
    fn file_journal_survives_process_boundary_and_resumes() {
        // The closest in-process analogue to a real crash: the killed run's
        // journal handle is dropped, and the resume replays the journal
        // from disk — nothing survives in memory between the two runs.
        // Exercises the pipeline's own path-opening checkpoint layer too.
        let mut rng = StdRng::seed_from_u64(16);
        let corpus = build_corpus(&mut rng, 10, 128, 2);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let launch_pairs = 6;
        let (_, reference) = fault_free_reference(&arena, launch_pairs);
        let kill_at = reference.stats.total_launches / 2;

        let dir = std::env::temp_dir().join("bulkgcd-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("scan-resume-{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        {
            let plan = FaultPlan::none().with_kill(kill_at);
            match ScanPipeline::new(&arena)
                .backend(gpu_backend())
                .launch_pairs(launch_pairs)
                .checkpoint(&path)
                .faults(&plan)
                .run()
            {
                Err(ScanError::Interrupted { launch }) => assert_eq!(launch, kill_at),
                other => panic!("expected Interrupted, got {other:?}"),
            }
        }

        let mut journal = ScanJournal::open(&path).unwrap();
        assert_eq!(journal.committed(), kill_at, "pre-kill prefix is on disk");
        assert!(!journal.is_done());
        let resumed =
            resumable_scan(&arena, launch_pairs, &mut journal, &FaultPlan::none()).unwrap();
        assert!(journal.is_done());
        assert_eq!(resumed.scan.findings, reference.scan.findings);
        assert_eq!(
            resumed.scan.simulated().unwrap().to_bits(),
            reference.scan.simulated().unwrap().to_bits()
        );
        assert_eq!(resumed.stats.resumed_launches, kill_at);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn transient_faults_are_retried_and_change_nothing() {
        let mut rng = StdRng::seed_from_u64(12);
        let corpus = build_corpus(&mut rng, 10, 128, 2);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let (_, reference) = fault_free_reference(&arena, 6);
        // Two launches hiccup: 2 and 1 failing attempts, all within the
        // default 4-attempt budget.
        let plan = FaultPlan::none().with_transient(0, 2).with_transient(2, 1);
        let mut journal = ScanJournal::in_memory();
        let rep = resumable_scan(&arena, 6, &mut journal, &plan).unwrap();
        assert_eq!(rep.scan.findings, reference.scan.findings);
        assert_eq!(
            rep.scan.simulated().unwrap().to_bits(),
            reference.scan.simulated().unwrap().to_bits()
        );
        assert_eq!(rep.stats.retried_attempts, 3);
        assert_eq!(rep.stats.cpu_fallback_launches, 0);
        assert!(
            rep.stats.backoff > Duration::ZERO,
            "backoff must be accounted"
        );
    }

    #[test]
    fn persistent_fault_degrades_to_cpu_with_identical_findings() {
        let mut rng = StdRng::seed_from_u64(13);
        let corpus = build_corpus(&mut rng, 10, 128, 3);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let (_, reference) = fault_free_reference(&arena, 5);
        let total = reference.stats.total_launches;
        // Every launch persistently fails in turn; findings never change.
        for bad in 0..total {
            let plan = FaultPlan::none().with_persistent(bad);
            let mut journal = ScanJournal::in_memory();
            let rep = resumable_scan(&arena, 5, &mut journal, &plan).unwrap();
            assert_eq!(
                rep.scan.findings, reference.scan.findings,
                "persistent at {bad}"
            );
            assert_eq!(rep.stats.cpu_fallback_launches, 1);
            // The fallback launch contributes no simulated device seconds.
            assert!(rep.scan.simulated().unwrap() <= reference.scan.simulated().unwrap());
        }
    }

    #[test]
    fn exhausted_retries_also_degrade_to_cpu() {
        let mut rng = StdRng::seed_from_u64(14);
        let corpus = build_corpus(&mut rng, 8, 128, 2);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let (_, reference) = fault_free_reference(&arena, 6);
        // 10 transient failures >> the 4-attempt budget: fallback, not loop.
        let plan = FaultPlan::none().with_transient(1, 10);
        let mut journal = ScanJournal::in_memory();
        let rep = resumable_scan(&arena, 6, &mut journal, &plan).unwrap();
        assert_eq!(rep.scan.findings, reference.scan.findings);
        assert_eq!(rep.stats.cpu_fallback_launches, 1);
        assert_eq!(rep.stats.retried_attempts, 3, "4 attempts = 3 retries");
    }

    #[test]
    fn layered_metrics_record_retries_and_fallbacks() {
        let mut rng = StdRng::seed_from_u64(34);
        let corpus = build_corpus(&mut rng, 10, 128, 2);
        let arena = ModuliArena::try_from_moduli(&corpus.moduli()).unwrap();
        let plan = FaultPlan::none().with_transient(1, 2).with_persistent(3);
        let mut journal = ScanJournal::in_memory();
        let rep = ScanPipeline::new(&arena)
            .backend(gpu_backend())
            .launch_pairs(7)
            .journal(&mut journal)
            .faults(&plan)
            .metrics()
            .run()
            .unwrap();
        let metrics = rep.metrics.expect("metrics requested");
        assert_eq!(metrics.retried_attempts(), rep.stats.retried_attempts);
        assert_eq!(metrics.cpu_fallbacks(), rep.stats.cpu_fallback_launches);
        assert_eq!(metrics.total_backoff(), rep.stats.backoff);
        let row1 = &metrics.launches[1];
        assert_eq!(row1.attempts, 3, "two transient failures then success");
        let row3 = &metrics.launches[3];
        assert!(row3.cpu_fallback);
        assert_eq!(row3.simulated_seconds, None);
    }

    #[test]
    fn journal_from_different_corpus_is_refused() {
        let mut rng = StdRng::seed_from_u64(15);
        let corpus_a = build_corpus(&mut rng, 8, 128, 1);
        let corpus_b = build_corpus(&mut rng, 8, 128, 1);
        let arena_a = ModuliArena::try_from_moduli(&corpus_a.moduli()).unwrap();
        let arena_b = ModuliArena::try_from_moduli(&corpus_b.moduli()).unwrap();
        let mut journal = ScanJournal::in_memory();
        resumable_scan(&arena_a, 8, &mut journal, &FaultPlan::none()).unwrap();
        match resumable_scan(&arena_b, 8, &mut journal, &FaultPlan::none()) {
            Err(ScanError::Journal(JournalError::Mismatch { field, .. })) => {
                assert_eq!(field, "fingerprint")
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }
}
