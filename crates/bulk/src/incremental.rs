//! Incremental weak-key checking.
//!
//! The all-pairs scan answers "which of these m keys share primes"; a key
//! *service* faces the streaming variant: "does this one new modulus share
//! a prime with anything we have seen?". A precomputed product tree makes
//! each check one `P mod n` plus one GCD — quasi-constant work per new key
//! instead of m pairwise GCDs.

use crate::batch::ProductTree;
use bulkgcd_bigint::Nat;
use std::fmt;

/// A zero modulus offered to the index. `gcd(0, n) = n` would make it
/// "share a factor" with every key; a key service must refuse it at the
/// door instead of poisoning the product tree (a zero leaf zeroes the
/// root, breaking every later check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroModulus;

impl fmt::Display for ZeroModulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "candidate modulus is zero")
    }
}

impl std::error::Error for ZeroModulus {}

/// A corpus index supporting O(log-ish) shared-prime checks against all
/// previously registered moduli.
#[derive(Debug, Clone, Default)]
pub struct CorpusIndex {
    moduli: Vec<Nat>,
    /// Product tree over `moduli`; rebuilt lazily after inserts.
    tree: Option<ProductTree>,
}

impl CorpusIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index over the corpus stored in a compiled arena file (`bulkgcd
    /// ingest` output) — the bridge that lets the incremental key service
    /// bootstrap from the same on-disk artifact the batch scans stream.
    ///
    /// A sanitized arena never stores a zero modulus, so finding one is
    /// reported as arena corruption rather than [`ZeroModulus`].
    pub fn from_arena_source(
        source: &mut crate::store::ArenaSource,
    ) -> Result<Self, crate::store::StoreError> {
        let stride = source.stride().max(1);
        let limbs = source.load_rows(0, source.rows())?;
        let moduli: Vec<Nat> = limbs
            .chunks_exact(stride)
            .map(Nat::from_limb_slice)
            .collect();
        Self::from_moduli(&moduli).map_err(|_| crate::store::StoreError::Corrupt {
            line: 2,
            reason: "arena stores a zero modulus".into(),
        })
    }

    /// Index over an initial corpus. Refuses a corpus containing a zero
    /// modulus, for the same reason [`Self::insert`] does.
    pub fn from_moduli(moduli: &[Nat]) -> Result<Self, ZeroModulus> {
        if moduli.iter().any(Nat::is_zero) {
            return Err(ZeroModulus);
        }
        let mut idx = CorpusIndex {
            moduli: moduli.to_vec(),
            tree: None,
        };
        idx.rebuild();
        Ok(idx)
    }

    fn rebuild(&mut self) {
        self.tree = if self.moduli.is_empty() {
            None
        } else {
            Some(ProductTree::build(&self.moduli))
        };
    }

    /// Number of indexed moduli.
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// Check a candidate modulus against everything indexed: returns
    /// `gcd(n, P mod n)` — a value > 1 exactly when `n` shares a factor
    /// with (or equals) some indexed modulus. A zero candidate is refused
    /// ([`ZeroModulus`]) rather than asserted away.
    pub fn shared_factor(&self, n: &Nat) -> Result<Nat, ZeroModulus> {
        if n.is_zero() {
            return Err(ZeroModulus);
        }
        let Some(tree) = &self.tree else {
            return Ok(Nat::one());
        };
        let r = tree.root().rem(n);
        if r.is_zero() {
            // n divides the product: n itself is (a product of) shared
            // primes — the duplicate-modulus case.
            return Ok(n.clone());
        }
        Ok(r.gcd_reference(n))
    }

    /// Register a new modulus (call [`Self::commit`] when done inserting).
    /// A zero modulus is refused — indexing one would zero the product
    /// tree's root and break every later check.
    pub fn insert(&mut self, n: Nat) -> Result<(), ZeroModulus> {
        if n.is_zero() {
            return Err(ZeroModulus);
        }
        self.moduli.push(n);
        self.tree = None;
        Ok(())
    }

    /// Rebuild the tree after a batch of [`Self::insert`]s.
    pub fn commit(&mut self) {
        self.rebuild();
    }

    /// Check-then-insert in one step: returns the shared factor (1 when
    /// clean) and registers the modulus either way. A zero modulus is
    /// refused and the index is left untouched.
    ///
    /// Note: rebuilding per key is O(m) multiplications; batch inserts and
    /// a single [`Self::commit`] when throughput matters.
    pub fn check_and_insert(&mut self, n: &Nat) -> Result<Nat, ZeroModulus> {
        if self.tree.is_none() && !self.moduli.is_empty() {
            self.rebuild();
        }
        let g = self.shared_factor(n)?;
        self.insert(n.clone())?;
        self.commit();
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::prime::random_rsa_prime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nat(v: u128) -> Nat {
        Nat::from_u128(v)
    }

    #[test]
    fn empty_index_reports_clean() {
        let idx = CorpusIndex::new();
        assert!(idx.is_empty());
        assert!(idx.shared_factor(&nat(101 * 103)).unwrap().is_one());
    }

    #[test]
    fn index_bootstraps_from_a_compiled_arena() {
        use crate::arena::ModuliArena;
        use crate::store::{write_arena, ArenaSource};
        use bulkgcd_core::rankselect::RankSelect;

        let moduli = [nat(101 * 211), nat(103 * 223), nat(107 * 227)];
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        let path = std::env::temp_dir().join(format!("bulkgcd-incr-{}.arena", std::process::id()));
        let acceptance = RankSelect::from_bools(&[true; 3]);
        write_arena(&path, &arena, &acceptance, 0).unwrap();
        let mut source = ArenaSource::open(&path).unwrap();
        let idx = CorpusIndex::from_arena_source(&mut source).unwrap();
        assert_eq!(idx.len(), 3);
        assert_eq!(
            idx.shared_factor(&nat(103 * 1009)).unwrap(),
            nat(103),
            "indexed corpus must expose the shared prime"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn detects_shared_prime_with_indexed_modulus() {
        let idx =
            CorpusIndex::from_moduli(&[nat(101 * 211), nat(103 * 223), nat(107 * 227)]).unwrap();
        assert_eq!(idx.len(), 3);
        // Candidate shares 103 with the second modulus.
        assert_eq!(idx.shared_factor(&nat(103 * 229)).unwrap(), nat(103));
        // Clean candidate.
        assert!(idx.shared_factor(&nat(109 * 233)).unwrap().is_one());
    }

    #[test]
    fn duplicate_modulus_detected() {
        let n = nat(101 * 211);
        let idx = CorpusIndex::from_moduli(&[n.clone(), nat(103 * 223)]).unwrap();
        assert_eq!(idx.shared_factor(&n).unwrap(), n);
    }

    #[test]
    fn check_and_insert_stream() {
        let mut idx = CorpusIndex::new();
        assert!(idx.check_and_insert(&nat(101 * 211)).unwrap().is_one());
        assert!(idx.check_and_insert(&nat(103 * 223)).unwrap().is_one());
        // Third key reuses 101.
        assert_eq!(idx.check_and_insert(&nat(101 * 227)).unwrap(), nat(101));
        assert_eq!(idx.len(), 3);
        // Fourth key reuses 227 from the third.
        assert_eq!(idx.check_and_insert(&nat(227 * 229)).unwrap(), nat(227));
    }

    #[test]
    fn matches_pairwise_scan_on_rsa_corpus() {
        let mut rng = StdRng::seed_from_u64(1);
        let shared = random_rsa_prime(&mut rng, 48);
        let moduli = vec![
            random_rsa_prime(&mut rng, 48).mul(&random_rsa_prime(&mut rng, 48)),
            shared.mul(&random_rsa_prime(&mut rng, 48)),
            random_rsa_prime(&mut rng, 48).mul(&random_rsa_prime(&mut rng, 48)),
        ];
        let idx = CorpusIndex::from_moduli(&moduli).unwrap();
        let candidate = shared.mul(&random_rsa_prime(&mut rng, 48));
        assert_eq!(idx.shared_factor(&candidate).unwrap(), shared);
    }

    #[test]
    fn insert_without_commit_then_query_rebuilds() {
        let mut idx = CorpusIndex::new();
        idx.insert(nat(101 * 211)).unwrap();
        idx.insert(nat(103 * 223)).unwrap();
        idx.commit();
        assert_eq!(idx.shared_factor(&nat(211 * 9973)).unwrap(), nat(211));
    }

    #[test]
    fn zero_moduli_are_refused_not_asserted() {
        let mut idx = CorpusIndex::from_moduli(&[nat(101 * 211)]).unwrap();
        assert_eq!(idx.shared_factor(&Nat::default()), Err(ZeroModulus));
        assert_eq!(idx.insert(Nat::default()), Err(ZeroModulus));
        assert_eq!(idx.check_and_insert(&Nat::default()), Err(ZeroModulus));
        assert_eq!(idx.len(), 1, "refused moduli must not be registered");
        assert_eq!(
            CorpusIndex::from_moduli(&[nat(3), Nat::default()]).err(),
            Some(ZeroModulus)
        );
    }
}
