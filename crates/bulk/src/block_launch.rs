//! The paper's exact kernel shape on the simulated GPU (§VI–§VII).
//!
//! "We use CUDA blocks with 64 threads in which each thread computes GCDs
//! of 64 pairs of RSA moduli" — thread `k` of block `(i, j)` walks its row
//! of the group cross-product *sequentially*. The lane trace is therefore
//! the concatenation of up to `r` GCD traces, and diagonal blocks are
//! naturally ragged (thread `k` has only `r−1−k` pairs), which costs SIMT
//! efficiency the flat per-pair launch of [`crate::scan::scan_gpu_sim`]
//! does not pay. This module prices that exact shape.

use crate::pairing::GroupedPairs;
use crate::scan::{Finding, FindingKind};
use bulkgcd_bigint::Nat;
use bulkgcd_core::{run, Algorithm, GcdOutcome, GcdPair, Termination};
use bulkgcd_gpu::{execute_warp, schedule, CostModel, DeviceConfig, GpuReport, WarpWork};
use bulkgcd_umm::gcd_trace::{IterDesc, IterProbe};

/// Report of a §VII-shaped launch.
#[derive(Debug, Clone)]
pub struct BlockLaunchReport {
    /// Shared-factor findings (exact).
    pub findings: Vec<Finding>,
    /// Pairs covered (= m(m−1)/2).
    pub pairs_scanned: u64,
    /// Device-level simulation of the whole grid.
    pub gpu: GpuReport,
    /// Simulated seconds per GCD.
    pub per_gcd_seconds: f64,
    /// Number of §VI blocks simulated (the non-trivial `i <= j` ones).
    pub blocks: usize,
}

/// Run the §VI grid with `r` threads per block on the simulated `device`.
///
/// `moduli.len()` must be a multiple of `r` (pad the corpus, as a real
/// launch would).
pub fn scan_gpu_blocks(
    moduli: &[Nat],
    algo: Algorithm,
    early: bool,
    device: &DeviceConfig,
    cost: &CostModel,
    r: usize,
) -> BlockLaunchReport {
    let m = moduli.len();
    let grid = GroupedPairs::new(m, r);
    let term = |a: &Nat, b: &Nat| -> Termination {
        if early {
            Termination::Early {
                threshold_bits: a.bit_len().min(b.bit_len()) / 2,
            }
        } else {
            Termination::Full
        }
    };

    let mut findings = Vec::new();
    let mut warps: Vec<WarpWork> = Vec::new();
    let mut pair_ws = GcdPair::with_capacity(1);
    let words_per_transaction = device.transaction_bytes / 4;
    let mut blocks = 0usize;

    for b in grid.blocks() {
        blocks += 1;
        // Lane k = thread k of the block; its trace is the concatenation of
        // its sequential pairs' traces.
        let mut lanes: Vec<Vec<IterDesc>> = Vec::with_capacity(r);
        for k in 0..r {
            let mut lane = Vec::new();
            for (i, j) in grid.thread_pairs(b, k) {
                pair_ws.load(&moduli[i], &moduli[j]);
                let mut probe = IterProbe::default();
                let out = run(algo, &mut pair_ws, term(&moduli[i], &moduli[j]), &mut probe);
                lane.extend(probe.iters);
                if let GcdOutcome::Gcd(g) = out {
                    if !g.is_one() {
                        let kind = if g == moduli[i] || g == moduli[j] {
                            FindingKind::DuplicateModulus
                        } else {
                            FindingKind::SharedPrime
                        };
                        findings.push(Finding {
                            i,
                            j,
                            kind,
                            factor: g,
                        });
                    }
                }
            }
            lanes.push(lane);
        }
        for chunk in lanes.chunks(device.warp_size) {
            warps.push(execute_warp(chunk, cost, words_per_transaction));
        }
    }
    findings.sort_by_key(|f| (f.i, f.j));
    let gpu = schedule(device, &warps);
    let pairs = grid.total_pairs();
    BlockLaunchReport {
        findings,
        pairs_scanned: pairs,
        per_gcd_seconds: if pairs == 0 {
            0.0
        } else {
            gpu.seconds / pairs as f64
        },
        gpu,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::ModuliArena;
    use crate::scan::ScanPipeline;
    use bulkgcd_rsa::build_corpus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn block_launch_findings_match_cpu_scan() {
        let mut rng = StdRng::seed_from_u64(1);
        let corpus = build_corpus(&mut rng, 16, 128, 2);
        let moduli = corpus.moduli();
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        let cpu = ScanPipeline::new(&arena).run().unwrap().scan;
        let blk = scan_gpu_blocks(
            &moduli,
            Algorithm::Approximate,
            true,
            &DeviceConfig::gtx_780_ti(),
            &CostModel::default(),
            4,
        );
        assert_eq!(blk.findings, cpu.findings);
        assert_eq!(blk.pairs_scanned, 16 * 15 / 2);
        assert_eq!(blk.blocks, 4 * 5 / 2);
        assert!(blk.gpu.seconds > 0.0);
    }

    #[test]
    fn diagonal_raggedness_costs_simt_efficiency() {
        // A single diagonal block (m == r): thread k has r-1-k pairs, so
        // lanes are maximally ragged and SIMT efficiency must be well
        // below 1.
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = build_corpus(&mut rng, 8, 128, 0);
        let blk = scan_gpu_blocks(
            &corpus.moduli(),
            Algorithm::Approximate,
            true,
            &DeviceConfig::gtx_780_ti(),
            &CostModel::default(),
            8,
        );
        assert_eq!(blk.blocks, 1);
        assert!(
            blk.gpu.mean_simt_efficiency < 0.8,
            "efficiency {}",
            blk.gpu.mean_simt_efficiency
        );
    }

    #[test]
    fn per_gcd_time_comparable_to_flat_launch() {
        use crate::scan::GpuSimBackend;
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = build_corpus(&mut rng, 16, 192, 0);
        let moduli = corpus.moduli();
        let device = DeviceConfig::gtx_780_ti();
        let cost = CostModel::default();
        let blk = scan_gpu_blocks(&moduli, Algorithm::Approximate, true, &device, &cost, 4);
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        let flat = ScanPipeline::new(&arena)
            .backend(GpuSimBackend {
                device: device.clone(),
                cost: cost.clone(),
            })
            .launch_pairs(1024)
            .run()
            .unwrap()
            .scan;
        let flat_s = flat.simulated().unwrap();
        // Same work, same device: within a small factor of each other
        // (the block shape pays raggedness, the flat shape pays nothing).
        let ratio = blk.gpu.seconds / flat_s;
        assert!(
            (0.3..12.0).contains(&ratio),
            "block {} vs flat {flat_s} (ratio {ratio})",
            blk.gpu.seconds
        );
    }
}
