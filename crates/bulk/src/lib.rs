//! # bulkgcd-bulk
//!
//! All-pairs weak-RSA-key scanning — the orchestration layer of the
//! reproduction:
//!
//! * [`arena`] — the whole corpus packed into one contiguous fixed-stride
//!   limb buffer ([`ModuliArena`]), handing out borrowed operand slices so
//!   the scans allocate nothing per pair;
//! * [`pairing`] — the paper's §VI group/block decomposition of the
//!   `m(m−1)/2` pairs, with exact-coverage guarantees;
//! * [`scan`] — the composable [`ScanPipeline`]: one [`ScanBackend`]
//!   (scalar / lockstep / simulated-GPU / product-tree) crossed with a
//!   stack of middleware layers (checkpoint, fault injection, retry,
//!   metrics), all producing identical findings;
//! * [`lockstep`] — the lockstep SIMT engine: a launch's operands stored
//!   column-major (limb `k` of all lanes contiguous, the paper's Fig. 3
//!   layout), Approximate Euclid executed one shared instruction at a time
//!   across the warp with per-lane active masks; the engine behind
//!   [`scan_lockstep`] and the Approximate-Euclid GPU-sim launches;
//! * [`batch`] — the product/remainder-tree **batch GCD** baseline
//!   (the pre-existing attack the paper competes with);
//! * [`pipeline`] — scan → factor → private-key recovery, end to end;
//! * [`checkpoint`] — the append-only scan journal: launches commit as
//!   they complete, so a killed scan resumes mid-corpus and provably
//!   reproduces the uninterrupted run's findings;
//! * [`fault`] — deterministic fault plans (transient/persistent launch
//!   faults, process kills at launch boundaries) that drive the
//!   fault-tolerance test suite;
//! * [`shard`] — multi-shard coordination: a [`TilePlan`] partitioning the
//!   launch sequence, a lease-ledger [`Coordinator`] surviving worker
//!   deaths, and a [`merge`](shard::merge) that reproduces the unsharded
//!   report bit for bit;
//! * [`store`] — the on-disk compiled-arena format (`bulkgcd ingest` →
//!   `corpus.arena`): fingerprinted header, succinct acceptance bitmap,
//!   and a chunk-streamed [`ArenaSource`] loader whose bounded-memory
//!   scan reproduces the in-memory findings bit for bit.

#![warn(missing_docs)]

pub mod arena;
pub mod batch;
pub mod block_launch;
pub mod checkpoint;
pub mod estimate;
pub mod fault;
pub mod incremental;
pub mod lockstep;
pub mod pairing;
pub mod pipeline;
pub mod scan;
pub mod shard;
pub mod store;

pub use arena::{ArenaError, ModuliArena};
pub use batch::{batch_gcd, batch_gcd_into, batch_gcd_parallel, BatchScratch, ProductTree};
pub use block_launch::{scan_gpu_blocks, BlockLaunchReport};
pub use checkpoint::{corpus_fingerprint, JournalError, JournalHeader, LaunchRecord, ScanJournal};
pub use estimate::{estimate_full_scan, ScanEstimate};
pub use fault::{FaultPlan, FaultSpec, ShardFaultPlan, ShardFaultSpec};
pub use incremental::{CorpusIndex, ZeroModulus};
pub use lockstep::{
    CompactionConfig, CompactionEvent, LockstepEngine, LockstepStats, LockstepTrace,
};
pub use pairing::{group_size_for, BlockId, GroupedPairs};
pub use pipeline::{break_weak_keys, recover_keys, BreakReport, BrokenKey};
pub use scan::{
    combine_terminations, scan_block_into, AutoBackend, Backend, CheckpointLayer, ExecCtx,
    FaultLayer, FaultStats, Finding, FindingKind, GpuSimBackend, LaunchExecutor, LaunchMetrics,
    LaunchOutput, LockstepBackend, MetricsLayer, NoSimulatedClock, PipelineReport,
    ProductTreeBackend, ResumableReport, RetryLayer, ScalarBackend, ScanBackend, ScanError,
    ScanMetrics, ScanPipeline, ScanReport, AUTO_LOCKSTEP_MIN_BITS, AUTO_MAX_BETA_FRACTION,
    AUTO_PRODUCT_TREE_MIN_MODULI, DEFAULT_LAUNCH_PAIRS,
};
#[allow(deprecated)]
pub use scan::{
    scan_cpu, scan_cpu_arena, scan_gpu_sim, scan_gpu_sim_arena, scan_gpu_sim_resumable,
    scan_gpu_sim_serial, scan_lockstep, scan_lockstep_arena,
};
pub use shard::{
    merge_tiles, run_sharded, tile_fingerprint, Coordinator, MergeError, ShardConfig, ShardError,
    ShardStats, ShardWorker, ShardedReport, Tile, TilePlan,
};
pub use store::{write_arena, ArenaHeader, ArenaSource, StoreError, ARENA_MAGIC};
