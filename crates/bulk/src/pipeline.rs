//! The end-to-end weak-key attack pipeline: scan → factor → recover keys.
//!
//! This is the "break weak RSA keys" deliverable of the paper's title:
//! given a pile of public keys, find shared-prime pairs by bulk GCD and
//! output working private keys for every vulnerable modulus.

use crate::arena::ModuliArena;
use crate::scan::{Finding, ScanError, ScanPipeline, ScanReport};
use bulkgcd_core::Algorithm;
use bulkgcd_rsa::{recover_private_key, PrivateKey, PublicKey};

/// A successfully broken key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokenKey {
    /// Index of the key in the input slice.
    pub index: usize,
    /// The recovered private key.
    pub private: PrivateKey,
    /// The shared prime that broke it.
    pub factor: bulkgcd_bigint::Nat,
}

/// Result of [`break_weak_keys`].
#[derive(Debug, Clone)]
pub struct BreakReport {
    /// The scan that produced the factors.
    pub scan: ScanReport,
    /// Every broken key (deduplicated, ordered by index).
    pub broken: Vec<BrokenKey>,
}

/// Turn scan findings into private keys.
///
/// A finding `gcd(n_i, n_j) = g` breaks both keys when `g` is a proper
/// factor. Identical moduli (`g == n`) factor neither — the pair is flagged
/// by the scan but cannot be split by GCD alone, exactly as in the paper's
/// threat model.
pub fn recover_keys(keys: &[PublicKey], findings: &[Finding]) -> Vec<BrokenKey> {
    let mut broken: Vec<BrokenKey> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for f in findings {
        for idx in [f.i, f.j] {
            if !seen.insert(idx) {
                continue;
            }
            if let Ok(private) = recover_private_key(&keys[idx], &f.factor) {
                broken.push(BrokenKey {
                    index: idx,
                    private,
                    factor: f.factor.clone(),
                });
            }
        }
    }
    broken.sort_by_key(|b| b.index);
    broken
}

/// Scan all pairs of `keys` on the CPU with `algo` (early termination on)
/// and recover a private key for every vulnerable modulus.
///
/// An empty key list is a corpus the arena refuses to pack, reported as
/// [`ScanError::Arena`] rather than a panic.
pub fn break_weak_keys(keys: &[PublicKey], algo: Algorithm) -> Result<BreakReport, ScanError> {
    let moduli: Vec<_> = keys.iter().map(|k| k.n.clone()).collect();
    let arena = ModuliArena::try_from_moduli(&moduli)?;
    let scan = ScanPipeline::new(&arena).algorithm(algo).run()?.scan;
    let broken = recover_keys(keys, &scan.findings);
    Ok(BreakReport { scan, broken })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::Nat;
    use bulkgcd_rsa::{build_corpus, decrypt, encrypt};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn end_to_end_break_and_decrypt() {
        let mut rng = StdRng::seed_from_u64(1);
        let corpus = build_corpus(&mut rng, 10, 128, 2);
        let publics: Vec<_> = corpus.keys.iter().map(|k| k.public.clone()).collect();
        let report = break_weak_keys(&publics, Algorithm::Approximate).unwrap();

        let vulnerable = corpus.vulnerable_indices();
        assert_eq!(
            report.broken.iter().map(|b| b.index).collect::<Vec<_>>(),
            vulnerable
        );
        // Every recovered key actually decrypts.
        for b in &report.broken {
            let kp = &corpus.keys[b.index];
            let m = Nat::from(0xc0ffeeu32);
            let c = encrypt(&kp.public, &m).unwrap();
            assert_eq!(decrypt(&b.private, &c).unwrap(), m);
            assert_eq!(b.private.d, kp.private.d);
        }
    }

    #[test]
    fn findings_break_both_endpoints_once() {
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = build_corpus(&mut rng, 8, 128, 1);
        let publics: Vec<_> = corpus.keys.iter().map(|k| k.public.clone()).collect();
        let report = break_weak_keys(&publics, Algorithm::FastBinary).unwrap();
        assert_eq!(report.broken.len(), 2);
        assert_eq!(report.scan.findings.len(), 1);
    }

    #[test]
    fn clean_corpus_breaks_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = build_corpus(&mut rng, 6, 96, 0);
        let publics: Vec<_> = corpus.keys.iter().map(|k| k.public.clone()).collect();
        let report = break_weak_keys(&publics, Algorithm::Approximate).unwrap();
        assert!(report.broken.is_empty());
        assert_eq!(report.scan.pairs_scanned, 15);
    }

    #[test]
    fn identical_moduli_flagged_but_not_factored() {
        use bulkgcd_rsa::generate_keypair;
        let mut rng = StdRng::seed_from_u64(4);
        let kp = generate_keypair(&mut rng, 96);
        let other = generate_keypair(&mut rng, 96);
        let keys = vec![kp.public.clone(), kp.public.clone(), other.public.clone()];
        let report = break_weak_keys(&keys, Algorithm::Approximate).unwrap();
        // The duplicate pair is found (gcd = n), but n is not a proper
        // factor, so no key is recovered from it.
        assert_eq!(report.scan.findings.len(), 1);
        assert_eq!(report.scan.findings[0].factor, kp.public.n);
        assert!(report.broken.is_empty());
    }
}
