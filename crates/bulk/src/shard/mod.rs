//! Multi-shard scan coordination: partition, lease, execute, merge.
//!
//! This module turns the single-process [`ScanPipeline`](crate::scan::ScanPipeline)
//! into a fault-tolerant multi-worker scan without touching the pipeline's
//! execution semantics:
//!
//! * [`plan`] — [`TilePlan`] splits the global launch sequence into
//!   contiguous [`Tile`]s aligned to launch boundaries, so sharding never
//!   changes what any individual launch computes;
//! * [`coordinator`] — [`Coordinator`] owns an append-only tile-assignment
//!   ledger (same journal idiom as [`checkpoint`](crate::checkpoint)):
//!   lease-based tile ownership on a logical clock, heartbeat renewal,
//!   expired-lease reclaim for dead-worker detection, and duplicate
//!   completions discriminated from conflicting ones by tile fingerprint;
//! * [`worker`] — [`ShardWorker`] runs any [`ScanBackend`](crate::scan::ScanBackend)
//!   over its tile through the existing pipeline layers (per-shard
//!   checkpoint journal, fault, retry, metrics), so each shard survives
//!   kill/resume exactly like an unsharded scan;
//! * [`merge`] — [`merge_tiles`] folds completed per-shard journals in
//!   global launch order, reproducing the unsharded report bit for bit
//!   (including the non-associative `f64` simulated-seconds sum);
//! * [`driver`] — [`run_sharded`] plays the whole protocol end to end
//!   under a deterministic [`ShardFaultPlan`](crate::fault::ShardFaultPlan)
//!   (worker deaths, torn journals, lease losses, duplicate completions).

pub mod coordinator;
pub mod driver;
pub mod merge;
pub mod plan;
pub mod worker;

pub use coordinator::{
    tile_fingerprint, Completion, CoordStats, Coordinator, Lease, LedgerError, LedgerHeader,
    TileState,
};
pub use driver::{run_sharded, ShardConfig, ShardError, ShardStats, ShardedReport};
pub use merge::{merge_tiles, MergeError};
pub use plan::{Tile, TilePlan};
pub use worker::ShardWorker;
