//! Deterministic merge of per-shard journals into one unsharded report.
//!
//! Why the merge is exact (the proof sketch, expanded in DESIGN.md §4c):
//! tiles are unions of *whole launches*, and a launch's journal record —
//! its findings (each pair lives in exactly one launch), its
//! `combine_terminations` fold (computed within the launch), and its
//! simulated seconds (priced per launch) — does not depend on which
//! process executed it. The unsharded scan builds its report by folding
//! journal records in global launch order: findings concatenated then
//! sorted by `(i, j)`, simulated seconds summed as `f64` in launch order.
//! This module performs the *same fold over the same records in the same
//! order*, just read from several journals instead of one — so the merged
//! report is bitwise identical, including the non-associative `f64` sum.

use crate::checkpoint::ScanJournal;
use crate::scan::report::{Finding, FindingKind, ScanReport};
use crate::shard::TilePlan;
use std::fmt;
use std::time::Duration;

/// Why per-shard journals could not be merged.
#[derive(Debug)]
pub enum MergeError {
    /// The number of journals does not match the plan's tile count.
    WrongJournalCount {
        /// Tiles in the plan.
        expected: usize,
        /// Journals supplied.
        got: usize,
    },
    /// A journal is not bound to the tile the plan puts at its position.
    TileMismatch {
        /// The tile position in the plan.
        tile: usize,
        /// What the journal's header covers (`start+launches`), or `None`
        /// if it has no header at all.
        journal: Option<(u64, u64)>,
        /// What the plan expects.
        expected: (u64, u64),
    },
    /// A journal is not done-marked or is missing launch records: its
    /// shard has not finished.
    Incomplete {
        /// The unfinished tile.
        tile: usize,
        /// Records committed so far.
        committed: u64,
        /// Records the tile needs.
        needed: u64,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::WrongJournalCount { expected, got } => {
                write!(f, "expected {expected} shard journals, got {got}")
            }
            MergeError::TileMismatch {
                tile,
                journal,
                expected,
            } => write!(
                f,
                "journal {tile} covers {journal:?}, but the plan's tile {tile} is \
                 [{}, +{})",
                expected.0, expected.1
            ),
            MergeError::Incomplete {
                tile,
                committed,
                needed,
            } => write!(
                f,
                "tile {tile} is incomplete ({committed} of {needed} launches committed)"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Fold completed per-shard journals (index-aligned with
/// `plan.tiles()`) into the report an unsharded scan of the same corpus
/// would produce. `priced` states whether the backend prices launches
/// (fills `simulated_seconds`); `elapsed` is the caller's wall-clock for
/// the whole sharded run.
pub fn merge_tiles(
    plan: &TilePlan,
    journals: &[&ScanJournal],
    priced: bool,
    elapsed: Duration,
) -> Result<ScanReport, MergeError> {
    if journals.len() != plan.len() {
        return Err(MergeError::WrongJournalCount {
            expected: plan.len(),
            got: journals.len(),
        });
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut simulated = 0f64;
    for (tile, journal) in plan.tiles().iter().zip(journals) {
        let expected = (tile.start, tile.launches);
        match journal.header() {
            Some(h) if (h.tile_start, h.tile_launches) == expected => {}
            other => {
                return Err(MergeError::TileMismatch {
                    tile: tile.index,
                    journal: other.map(|h| (h.tile_start, h.tile_launches)),
                    expected,
                });
            }
        }
        if !journal.is_done() || journal.committed() != tile.launches {
            return Err(MergeError::Incomplete {
                tile: tile.index,
                committed: journal.committed(),
                needed: tile.launches,
            });
        }
        // Tiles are ordered by start and journals key records by launch
        // index, so this iterates records in *global* launch order — the
        // exact fold order of the unsharded merge, which is what keeps the
        // f64 sum bitwise identical.
        for record in journal.records() {
            findings.extend_from_slice(&record.findings);
            simulated += record.simulated_seconds;
        }
    }
    // Per-tile pair counts sum back to the full triangle by construction,
    // so take the total from the plan's corpus directly.
    let pairs_scanned = total_pairs(plan.moduli());

    findings.sort_by_key(|f| (f.i, f.j));
    let duplicate_pairs = findings
        .iter()
        .filter(|f| f.kind == FindingKind::DuplicateModulus)
        .count() as u64;
    Ok(ScanReport {
        findings,
        pairs_scanned,
        duplicate_pairs,
        elapsed,
        simulated_seconds: priced.then_some(simulated),
    })
}

fn total_pairs(moduli: usize) -> u64 {
    let m = moduli as u64;
    m * m.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{JournalHeader, LaunchRecord, ScanJournal};

    fn journal_for(
        header: &JournalHeader,
        tile: (u64, u64),
        records: impl IntoIterator<Item = LaunchRecord>,
        done: bool,
    ) -> ScanJournal {
        let mut h = header.clone();
        h.tile_start = tile.0;
        h.tile_launches = tile.1;
        let mut j = ScanJournal::in_memory();
        j.check_compatible(&h).unwrap();
        for rec in records {
            j.record(rec).unwrap();
        }
        if done {
            j.mark_done().unwrap();
        }
        j
    }

    fn rec(launch: u64, sim: f64) -> LaunchRecord {
        LaunchRecord {
            launch,
            simulated_seconds: sim,
            cpu_fallback: false,
            findings: Vec::new(),
        }
    }

    fn header() -> JournalHeader {
        JournalHeader {
            fingerprint: 7,
            moduli: 4, // 6 pairs, launch_pairs=2 => 3 launches
            stride: 2,
            algo: "(E)".to_string(),
            early: true,
            launch_pairs: 2,
            launches: 3,
            tile_start: 0,
            tile_launches: 3,
        }
    }

    #[test]
    fn merge_sums_simulated_seconds_in_global_launch_order() {
        let plan = TilePlan::new(4, 2, 2); // tiles [0,2) and [2,3)
        let h = header();
        let j0 = journal_for(&h, (0, 2), [rec(0, 0.1), rec(1, 0.2)], true);
        let j1 = journal_for(&h, (2, 1), [rec(2, 0.3)], true);
        let merged = merge_tiles(&plan, &[&j0, &j1], true, Duration::ZERO).unwrap();
        let expected = 0.1f64 + 0.2 + 0.3; // the unsharded fold order
        assert_eq!(
            merged.simulated_seconds.unwrap().to_bits(),
            expected.to_bits()
        );
        assert_eq!(merged.pairs_scanned, 6);
        assert!(merged.findings.is_empty());
    }

    #[test]
    fn incomplete_or_mismatched_journals_are_refused() {
        let plan = TilePlan::new(4, 2, 2);
        let h = header();
        let done0 = journal_for(&h, (0, 2), [rec(0, 0.0), rec(1, 0.0)], true);
        // Not done-marked.
        let undone = journal_for(&h, (2, 1), [rec(2, 0.0)], false);
        match merge_tiles(&plan, &[&done0, &undone], true, Duration::ZERO) {
            Err(MergeError::Incomplete { tile: 1, .. }) => {}
            other => panic!("expected Incomplete, got {other:?}"),
        }
        // Wrong tile bounds for its position.
        let wrong = journal_for(&h, (0, 2), [rec(0, 0.0), rec(1, 0.0)], true);
        match merge_tiles(&plan, &[&done0, &wrong], true, Duration::ZERO) {
            Err(MergeError::TileMismatch { tile: 1, .. }) => {}
            other => panic!("expected TileMismatch, got {other:?}"),
        }
        // Wrong journal count.
        match merge_tiles(&plan, &[&done0], true, Duration::ZERO) {
            Err(MergeError::WrongJournalCount {
                expected: 2,
                got: 1,
            }) => {}
            other => panic!("expected WrongJournalCount, got {other:?}"),
        }
    }
}
