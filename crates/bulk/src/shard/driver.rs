//! The sharded-scan driver: a deterministic event loop over logical time.
//!
//! `run_sharded` plays the full multi-worker protocol — acquire, execute,
//! heartbeat, die, reclaim, resume, complete, merge — inside one process,
//! with worker incarnations (`w0`, `w1`, …) standing in for processes and
//! a logical clock (one tick per executed launch) standing in for wall
//! time. Per-tile journals live either in memory (serialized through
//! [`ScanJournal::to_bytes`], so a "dead" worker's journal is exactly the
//! bytes it had fsynced) or as real files under a directory, where a
//! killed *host* process can also resume: the ledger and every shard
//! journal replay on reopen.
//!
//! Injected [`ShardFaultSpec`]s fire on a tile's first assignment only —
//! like [`FaultPlan`] kills, the failure does not recur on resume — so
//! every seeded schedule terminates.

use crate::arena::ModuliArena;
use crate::checkpoint::{JournalError, ScanJournal};
use crate::fault::{FaultPlan, ShardFaultPlan, ShardFaultSpec};
use crate::scan::report::{LaunchMetrics, ScanError, ScanMetrics, ScanReport};
use crate::scan::ScanBackend;
use crate::shard::coordinator::{Completion, CoordStats, Coordinator, LedgerError, LedgerHeader};
use crate::shard::merge::{merge_tiles, MergeError};
use crate::shard::worker::ShardWorker;
use crate::shard::{tile_fingerprint, TilePlan};
use bulkgcd_core::Algorithm;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::PathBuf;
use std::time::Instant;

/// Configuration of one sharded scan.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of tiles to partition the launch sequence into (the actual
    /// tile count is capped at the launch count).
    pub shards: usize,
    /// Lanes per launch — the chunking unit tiles are aligned to.
    pub launch_pairs: usize,
    /// The GCD variant.
    pub algo: Algorithm,
    /// Whether §V early termination is enabled.
    pub early: bool,
    /// Run each worker's launches serially (the deterministic reference).
    pub serial: bool,
    /// Collect per-launch metrics rows into the merged report.
    pub collect_metrics: bool,
    /// Lease length in logical ticks (one tick ≈ one executed launch).
    /// `0` picks a safe default: twice the largest tile plus slack, so a
    /// healthy worker can always finish and heartbeat in time.
    pub lease_ticks: u64,
    /// Persist the ledger and per-tile journals under this directory
    /// (`ledger` and `shard-<i>.journal`); `None` keeps them in memory.
    pub dir: Option<PathBuf>,
}

impl ShardConfig {
    /// A sharded scan with `shards` tiles and the library defaults
    /// (Approximate Euclid, early termination on, parallel workers,
    /// auto lease, in-memory journals).
    pub fn new(shards: usize, launch_pairs: usize) -> Self {
        ShardConfig {
            shards,
            launch_pairs,
            algo: Algorithm::Approximate,
            early: true,
            serial: false,
            collect_metrics: false,
            lease_ticks: 0,
            dir: None,
        }
    }
}

/// Accounting for one sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Tiles in the plan.
    pub tiles: usize,
    /// Worker incarnations that attempted a tile.
    pub worker_attempts: u64,
    /// Attempts that died mid-tile (injected worker deaths, torn or not).
    pub worker_deaths: u64,
    /// Worker deaths that additionally tore the journal's final line.
    pub torn_journals: u64,
    /// Attempts that finished their tile but lost the lease before
    /// reporting, abandoning a fully committed journal.
    pub lease_losses: u64,
    /// Completions the coordinator discarded as duplicates.
    pub duplicate_completions: u64,
    /// Launches restored from shard journals instead of re-executed.
    pub resumed_launches: u64,
    /// Launches executed across all attempts.
    pub executed_launches: u64,
    /// Retry attempts beyond first across all launches.
    pub retried_attempts: u64,
    /// Launches that degraded to the CPU fallback path.
    pub cpu_fallback_launches: u64,
}

/// Everything a sharded scan produces.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// The merged scan outcome — bitwise identical to an unsharded run.
    pub scan: ScanReport,
    /// Driver-side accounting.
    pub stats: ShardStats,
    /// Coordinator-side accounting (leases, reclaims, duplicates).
    pub coordinator: CoordStats,
    /// Merged per-launch metrics rows (launches executed under a kill and
    /// then resumed have no row, as in the single-process pipeline).
    pub metrics: Option<ScanMetrics>,
}

/// Why a sharded scan failed.
#[derive(Debug)]
pub enum ShardError {
    /// A worker's pipeline failed for a non-kill reason.
    Scan(ScanError),
    /// The coordinator's ledger refused an operation.
    Ledger(LedgerError),
    /// A shard journal could not be read or written.
    Journal(JournalError),
    /// Per-shard journals could not be merged.
    Merge(MergeError),
    /// Journal-directory I/O failed.
    Io(io::Error),
    /// The event loop stopped making progress — a protocol bug, surfaced
    /// instead of hanging.
    Stalled {
        /// Attempts made before giving up.
        attempts: u64,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Scan(e) => write!(f, "shard worker scan: {e}"),
            ShardError::Ledger(e) => write!(f, "shard coordinator: {e}"),
            ShardError::Journal(e) => write!(f, "shard journal: {e}"),
            ShardError::Merge(e) => write!(f, "shard merge: {e}"),
            ShardError::Io(e) => write!(f, "shard directory I/O: {e}"),
            ShardError::Stalled { attempts } => write!(
                f,
                "sharded scan stalled after {attempts} worker attempts; \
                 this is a coordinator protocol bug"
            ),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Scan(e) => Some(e),
            ShardError::Ledger(e) => Some(e),
            ShardError::Journal(e) => Some(e),
            ShardError::Merge(e) => Some(e),
            ShardError::Io(e) => Some(e),
            ShardError::Stalled { .. } => None,
        }
    }
}

impl From<ScanError> for ShardError {
    fn from(e: ScanError) -> Self {
        ShardError::Scan(e)
    }
}
impl From<LedgerError> for ShardError {
    fn from(e: LedgerError) -> Self {
        ShardError::Ledger(e)
    }
}
impl From<JournalError> for ShardError {
    fn from(e: JournalError) -> Self {
        ShardError::Journal(e)
    }
}
impl From<MergeError> for ShardError {
    fn from(e: MergeError) -> Self {
        ShardError::Merge(e)
    }
}
impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// Where per-tile journals live between worker incarnations.
enum JournalStore {
    Memory(Vec<Vec<u8>>),
    Dir(PathBuf),
}

impl JournalStore {
    fn path(dir: &std::path::Path, tile: usize) -> PathBuf {
        dir.join(format!("shard-{tile}.journal"))
    }

    fn load(&self, tile: usize) -> Result<ScanJournal, ShardError> {
        match self {
            JournalStore::Memory(store) => Ok(ScanJournal::from_bytes(&store[tile])?),
            JournalStore::Dir(dir) => Ok(ScanJournal::open(&Self::path(dir, tile))?),
        }
    }

    /// Persist the journal's committed state. File-backed journals are
    /// already on disk (every commit was appended and fsynced); only the
    /// in-memory store needs an explicit write-back.
    fn save(&mut self, tile: usize, journal: &ScanJournal) {
        if let JournalStore::Memory(store) = self {
            store[tile] = journal.to_bytes();
        }
    }

    /// Tear the journal's tail: append a half-written line with no
    /// terminating newline, exactly what a crash mid-append leaves.
    fn tear(&mut self, tile: usize, journal: &ScanJournal) -> Result<(), ShardError> {
        const TORN: &[u8] = b"L 999999 sim=00";
        match self {
            JournalStore::Memory(store) => {
                store[tile] = journal.to_bytes();
                store[tile].extend_from_slice(TORN);
            }
            JournalStore::Dir(dir) => {
                let mut f = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(Self::path(dir, tile))?;
                f.write_all(TORN)?;
            }
        }
        Ok(())
    }
}

/// Run a sharded all-pairs scan of `arena`: plan tiles, coordinate
/// worker incarnations under `faults`, and merge the per-shard journals
/// into a report bitwise identical to an unsharded
/// [`ScanPipeline`](crate::scan::ScanPipeline) run with the same backend
/// and `launch_pairs`.
///
/// `make_backend` is called once per worker incarnation — each stands in
/// for a fresh process with its own backend instance.
pub fn run_sharded<B, F>(
    arena: &ModuliArena,
    config: &ShardConfig,
    faults: &ShardFaultPlan,
    make_backend: F,
) -> Result<ShardedReport, ShardError>
where
    B: ScanBackend,
    F: Fn() -> B,
{
    let start = Instant::now();
    let priced = make_backend().prices_launches();
    let backend_name = make_backend().name();
    let plan = TilePlan::new(arena.len(), config.launch_pairs, config.shards);

    let mut stats = ShardStats {
        tiles: plan.len(),
        ..ShardStats::default()
    };

    if plan.is_empty() {
        // Fewer than two moduli: nothing to shard, nothing to scan.
        return Ok(ShardedReport {
            scan: ScanReport {
                findings: Vec::new(),
                pairs_scanned: 0,
                duplicate_pairs: 0,
                elapsed: start.elapsed(),
                simulated_seconds: priced.then_some(0.0),
            },
            stats,
            coordinator: CoordStats::default(),
            metrics: config.collect_metrics.then(|| ScanMetrics {
                backend: backend_name,
                ..ScanMetrics::default()
            }),
        });
    }

    let mut coordinator = match &config.dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            Coordinator::open(&dir.join("ledger"))?
        }
        None => Coordinator::in_memory(),
    };
    coordinator.check_compatible(&LedgerHeader::for_plan(
        arena,
        config.algo,
        config.early,
        &plan,
    ))?;

    let mut store = match &config.dir {
        Some(dir) => JournalStore::Dir(dir.clone()),
        None => JournalStore::Memory(vec![Vec::new(); plan.len()]),
    };

    // A lease must outlive a healthy worker's longest possible attempt
    // (one tick per executed launch) with room to heartbeat.
    let max_tile = plan.tiles().iter().map(|t| t.launches).max().unwrap_or(1);
    let lease = if config.lease_ticks == 0 {
        2 * max_tile + 2
    } else {
        config.lease_ticks
    };

    let mut clock: u64 = 0;
    let mut incarnation: u64 = 0;
    let mut fault_armed: Vec<bool> = vec![true; plan.len()];
    let mut metrics_rows: BTreeMap<u64, LaunchMetrics> = BTreeMap::new();
    // Generous progress bound: each tile needs at most a handful of
    // attempts (its one injected fault, then healthy retries).
    let max_attempts = plan.len() as u64 * 8 + 64;

    while !coordinator.all_complete() {
        if stats.worker_attempts >= max_attempts {
            return Err(ShardError::Stalled {
                attempts: stats.worker_attempts,
            });
        }
        let worker_name = format!("w{incarnation}");
        let Some(grant) = coordinator.acquire(&worker_name, clock, lease)? else {
            // Every incomplete tile is under a live lease held by a dead
            // worker (a live one would have completed before we got
            // here): advance to the earliest expiry and reclaim.
            match coordinator.next_expiry() {
                Some(expiry) => clock = clock.max(expiry),
                None => {
                    return Err(ShardError::Stalled {
                        attempts: stats.worker_attempts,
                    })
                }
            }
            continue;
        };
        incarnation += 1;
        stats.worker_attempts += 1;
        let tile = plan.tiles()[grant.tile];
        let fault = if fault_armed[tile.index] {
            fault_armed[tile.index] = false;
            faults.spec(tile.index as u64)
        } else {
            None
        };

        let launch_faults = match fault {
            Some(ShardFaultSpec::WorkerDeath { after_launches })
            | Some(ShardFaultSpec::TornJournal { after_launches }) => {
                FaultPlan::none().with_kill(tile.start + after_launches % tile.launches)
            }
            _ => FaultPlan::none(),
        };

        let mut journal = store.load(tile.index)?;
        let before = journal.committed();
        stats.resumed_launches += before;

        let worker = ShardWorker::new(
            &worker_name,
            arena,
            config.algo,
            config.early,
            config.launch_pairs,
        )
        .serial(config.serial)
        .collect_metrics(config.collect_metrics);
        let result = worker.attempt(make_backend(), tile, &mut journal, &launch_faults);

        let executed = journal.committed() - before;
        stats.executed_launches += executed;
        // Logical time: one tick per executed launch.
        clock = clock.saturating_add(executed);

        match result {
            Ok(report) => {
                stats.retried_attempts += report.stats.retried_attempts;
                stats.cpu_fallback_launches += report.stats.cpu_fallback_launches;
                if let Some(metrics) = report.metrics {
                    for row in metrics.launches {
                        metrics_rows.entry(row.launch).or_insert(row);
                    }
                }
                store.save(tile.index, &journal);

                if matches!(fault, Some(ShardFaultSpec::LeaseLoss)) {
                    // The worker finished but stalls past its expiry; its
                    // heartbeat is refused and it must abandon the tile —
                    // with the journal fully committed for the reclaimer.
                    clock = clock.max(grant.expires);
                    match coordinator.renew(tile.index, &worker_name, clock, lease) {
                        Err(LedgerError::LeaseLost { .. }) => {
                            stats.lease_losses += 1;
                            continue;
                        }
                        Ok(_) => {
                            return Err(ShardError::Stalled {
                                attempts: stats.worker_attempts,
                            })
                        }
                        Err(e) => return Err(e.into()),
                    }
                }

                // Healthy completion path: heartbeat, then report. A
                // refused heartbeat (caller-set lease shorter than the
                // tile) is a lease loss, not an error — the journal is
                // done and the reclaimer completes it cheaply.
                match coordinator.renew(tile.index, &worker_name, clock, lease) {
                    Ok(_) => {}
                    Err(LedgerError::LeaseLost { .. }) => {
                        stats.lease_losses += 1;
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                }
                let fp = tile_fingerprint(&journal);
                match coordinator.complete(tile.index, &worker_name, fp)? {
                    Completion::Accepted => {}
                    Completion::Duplicate => stats.duplicate_completions += 1,
                }
                if matches!(fault, Some(ShardFaultSpec::DuplicateCompletion)) {
                    // The worker's resurrected incarnation resubmits the
                    // same completion; the fingerprint match discards it.
                    match coordinator.complete(tile.index, &worker_name, fp)? {
                        Completion::Duplicate => stats.duplicate_completions += 1,
                        Completion::Accepted => {
                            return Err(ShardError::Stalled {
                                attempts: stats.worker_attempts,
                            })
                        }
                    }
                }
            }
            Err(ScanError::Interrupted { .. }) => {
                // The worker died at a launch boundary. Its journal keeps
                // the committed prefix; its lease runs out on its own and
                // the tile is reclaimed then.
                stats.worker_deaths += 1;
                if matches!(fault, Some(ShardFaultSpec::TornJournal { .. })) {
                    stats.torn_journals += 1;
                    store.tear(tile.index, &journal)?;
                } else {
                    store.save(tile.index, &journal);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }

    // Merge straight from the journals — the single source of truth, as
    // in the single-process pipeline.
    let journals: Vec<ScanJournal> = (0..plan.len())
        .map(|tile| store.load(tile))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&ScanJournal> = journals.iter().collect();
    let scan = merge_tiles(&plan, &refs, priced, start.elapsed())?;

    let metrics = config.collect_metrics.then(|| {
        let rows: Vec<LaunchMetrics> = metrics_rows.into_values().collect();
        ScanMetrics {
            backend: backend_name,
            total_launches: plan.launches(),
            resumed_launches: plan.launches() - rows.len() as u64,
            launches: rows,
        }
    });

    Ok(ShardedReport {
        scan,
        stats,
        coordinator: coordinator.stats(),
        metrics,
    })
}
