//! A shard worker: one incarnation of a process executing one tile.
//!
//! A [`ShardWorker`] is deliberately thin — it is the existing
//! [`ScanPipeline`] pointed at a [`Tile`], with the shard journal as its
//! [`CheckpointLayer`](crate::scan::CheckpointLayer) and the usual
//! fault/retry/metrics layers around the backend. Everything the
//! single-process scan guarantees (per-launch fsynced commits, torn-tail
//! tolerance, resume-equals-rerun bitwise) therefore holds *per shard*
//! for free; the [`Coordinator`](crate::shard::Coordinator) only decides
//! who runs which tile when.

use crate::arena::ModuliArena;
use crate::checkpoint::ScanJournal;
use crate::fault::FaultPlan;
use crate::scan::{PipelineReport, ScanBackend, ScanError, ScanPipeline};
use crate::shard::Tile;
use bulkgcd_core::Algorithm;

/// One worker incarnation's scan configuration. The driver mints a fresh
/// name (`w0`, `w1`, …) per incarnation so the ledger distinguishes a
/// resurrected worker from its predecessor.
#[derive(Debug, Clone)]
pub struct ShardWorker<'a> {
    /// The worker's name as recorded in the ledger.
    pub name: String,
    arena: &'a ModuliArena,
    algo: Algorithm,
    early: bool,
    launch_pairs: usize,
    serial: bool,
    collect_metrics: bool,
}

impl<'a> ShardWorker<'a> {
    /// A worker named `name` scanning `arena` with the given settings.
    pub fn new(
        name: impl Into<String>,
        arena: &'a ModuliArena,
        algo: Algorithm,
        early: bool,
        launch_pairs: usize,
    ) -> Self {
        ShardWorker {
            name: name.into(),
            arena,
            algo,
            early,
            launch_pairs,
            serial: false,
            collect_metrics: false,
        }
    }

    /// Run launches serially inside the worker (the deterministic
    /// reference mode).
    pub fn serial(mut self, serial: bool) -> Self {
        self.serial = serial;
        self
    }

    /// Collect per-launch [`ScanMetrics`](crate::scan::ScanMetrics) rows.
    pub fn collect_metrics(mut self, collect: bool) -> Self {
        self.collect_metrics = collect;
        self
    }

    /// Execute (or resume) `tile` through the full pipeline stack,
    /// committing every completed launch to `journal`. Returns
    /// [`ScanError::Interrupted`] if `faults` kills the worker at a launch
    /// boundary — the journal then holds exactly the committed prefix, as
    /// after a real crash.
    pub fn attempt<B: ScanBackend + 'a>(
        &self,
        backend: B,
        tile: Tile,
        journal: &mut ScanJournal,
        faults: &FaultPlan,
    ) -> Result<PipelineReport, ScanError> {
        let mut pipeline = ScanPipeline::new(self.arena)
            .algorithm(self.algo)
            .early(self.early)
            .backend(backend)
            .launch_pairs(self.launch_pairs)
            .serial(self.serial)
            .tile(tile)
            .journal(journal)
            .faults(faults);
        if self.collect_metrics {
            pipeline = pipeline.metrics();
        }
        pipeline.run()
    }
}
