//! Tile planning: partitioning the launch sequence into shard-sized
//! contiguous ranges.
//!
//! The §VI pair triangle is already linearised into launches (chunks of
//! [`GroupedPairs::all_pairs`](crate::pairing::GroupedPairs::all_pairs) of
//! `launch_pairs` lanes) by the [`ScanPipeline`](crate::scan::ScanPipeline).
//! A [`TilePlan`] splits that launch sequence — *not* the pair triangle
//! directly — into contiguous [`Tile`]s, so every tile boundary is also a
//! launch boundary. That alignment is what makes the sharded merge exact:
//! per-launch records (findings, `combine_terminations` folds, simulated
//! seconds) are unchanged by sharding, and replaying them in global launch
//! order reproduces the unsharded report bit for bit.

use crate::pairing::{group_size_for, GroupedPairs};

/// One shard's contiguous range of the global launch sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tile {
    /// Position of this tile in the plan (0-based, ascending with
    /// `start`).
    pub index: usize,
    /// First global launch index the tile covers.
    pub start: u64,
    /// Number of launches the tile covers (≥ 1 in any plan).
    pub launches: u64,
}

impl Tile {
    /// One past the last launch index the tile covers.
    pub fn end(&self) -> u64 {
        self.start + self.launches
    }

    /// Whether global launch `launch` falls inside this tile.
    pub fn contains(&self, launch: u64) -> bool {
        (self.start..self.end()).contains(&launch)
    }
}

/// A partition of a scan's launch sequence into contiguous tiles.
///
/// Tiles are near-equal (they differ by at most one launch), ordered by
/// `start`, and cover `[0, launches)` exactly — the invariants the
/// [`merge`](crate::shard::merge) module re-verifies before folding
/// per-shard results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilePlan {
    moduli: usize,
    launch_pairs: usize,
    launches: u64,
    tiles: Vec<Tile>,
}

impl TilePlan {
    /// Plan `shards` tiles for a scan of `moduli` keys in launches of
    /// `launch_pairs` pairs. Produces `min(shards.max(1), launches)`
    /// tiles — never an empty tile — and no tiles at all when the corpus
    /// has no pairs to scan.
    pub fn new(moduli: usize, launch_pairs: usize, shards: usize) -> Self {
        let launch_pairs = launch_pairs.max(1);
        let launches = if moduli < 2 {
            0
        } else {
            let grid = GroupedPairs::new(moduli, group_size_for(moduli));
            grid.total_pairs().div_ceil(launch_pairs as u64)
        };
        let want = (shards.max(1) as u64).min(launches);
        let mut tiles = Vec::with_capacity(want as usize);
        let mut start = 0u64;
        for index in 0..want {
            // First `launches % want` tiles get one extra launch.
            let len = launches / want + u64::from(index < launches % want);
            tiles.push(Tile {
                index: index as usize,
                start,
                launches: len,
            });
            start += len;
        }
        TilePlan {
            moduli,
            launch_pairs,
            launches,
            tiles,
        }
    }

    /// Number of moduli the plan was built for.
    pub fn moduli(&self) -> usize {
        self.moduli
    }

    /// Launch width the plan was built for.
    pub fn launch_pairs(&self) -> usize {
        self.launch_pairs
    }

    /// Total launches in the scan the tiles partition.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// The tiles, ordered by `start`.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Number of tiles in the plan.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the plan has no tiles (a corpus with fewer than two keys).
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_exact_cover(plan: &TilePlan) {
        let mut next = 0u64;
        for (i, tile) in plan.tiles().iter().enumerate() {
            assert_eq!(tile.index, i);
            assert_eq!(tile.start, next, "tiles must be contiguous");
            assert!(tile.launches >= 1, "no empty tiles");
            next = tile.end();
        }
        assert_eq!(next, plan.launches(), "tiles must cover every launch");
    }

    #[test]
    fn tiles_cover_launches_exactly_and_near_equally() {
        for moduli in [2usize, 3, 5, 16, 33, 100] {
            for launch_pairs in [1usize, 2, 7, 64] {
                for shards in [1usize, 2, 3, 4, 9] {
                    let plan = TilePlan::new(moduli, launch_pairs, shards);
                    assert_exact_cover(&plan);
                    assert!(plan.len() as u64 <= plan.launches().max(1));
                    assert!(plan.len() <= shards);
                    if let (Some(max), Some(min)) = (
                        plan.tiles().iter().map(|t| t.launches).max(),
                        plan.tiles().iter().map(|t| t.launches).min(),
                    ) {
                        assert!(max - min <= 1, "tiles must be near-equal");
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_corpora_yield_no_tiles() {
        assert!(TilePlan::new(0, 64, 4).is_empty());
        assert!(TilePlan::new(1, 64, 4).is_empty());
        assert_eq!(TilePlan::new(0, 64, 4).launches(), 0);
    }

    #[test]
    fn more_shards_than_launches_caps_at_one_launch_per_tile() {
        // 3 moduli => 3 pairs; launch_pairs=2 => 2 launches, 8 shards.
        let plan = TilePlan::new(3, 2, 8);
        assert_eq!(plan.launches(), 2);
        assert_eq!(plan.len(), 2);
        assert_exact_cover(&plan);
    }

    #[test]
    fn tile_contains_matches_range() {
        let tile = Tile {
            index: 1,
            start: 4,
            launches: 3,
        };
        assert_eq!(tile.end(), 7);
        assert!(!tile.contains(3));
        assert!(tile.contains(4));
        assert!(tile.contains(6));
        assert!(!tile.contains(7));
    }
}
