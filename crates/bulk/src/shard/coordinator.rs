//! The tile-assignment coordinator: an append-only lease ledger.
//!
//! One coordinator owns the [`TilePlan`](crate::shard::TilePlan) and hands
//! tiles to workers under *leases* measured on a logical clock (plain
//! `u64` ticks supplied by the caller — never wall time, so every test
//! and every resumed run replays identically). The protocol:
//!
//! * [`acquire`](Coordinator::acquire) assigns the lowest-indexed
//!   incomplete tile that is unassigned *or whose lease has expired* —
//!   expiry is the dead-worker detector: a worker that stops heartbeating
//!   loses the tile and a fresh worker resumes it from its journal;
//! * [`renew`](Coordinator::renew) is the heartbeat: it extends the lease
//!   iff the caller still holds it and it has not expired, otherwise the
//!   worker learns it lost the tile ([`LedgerError::LeaseLost`]) and must
//!   abandon it without completing;
//! * [`complete`](Coordinator::complete) records the tile's result
//!   fingerprint (FNV-1a-64 over the shard journal's launch records, see
//!   [`tile_fingerprint`]). A second completion with the *same*
//!   fingerprint — a resurrected worker resubmitting — is discarded as
//!   [`Completion::Duplicate`]; a different fingerprint is
//!   [`LedgerError::ConflictingCompletion`], because deterministic tiles
//!   cannot legitimately produce two different results.
//!
//! The ledger uses the same hand-rolled journal idiom as
//! [`bulk::checkpoint`](crate::checkpoint): line-oriented plain text,
//! magic + header in one append, fsync per record, torn-tail tolerance:
//!
//! ```text
//! bulkgcd-shard-ledger v1
//! H fp=<hex16> m=<moduli> launch_pairs=<n> launches=<n> tiles=<n> algo=<tag> early=<0|1>
//! A tile=<i> worker=<name> expires=<tick>
//! R tile=<i> worker=<name> expires=<tick>
//! C tile=<i> worker=<name> fp=<hex16>
//! ```

use crate::arena::ModuliArena;
use crate::checkpoint::{corpus_fingerprint, ScanJournal};
use crate::shard::TilePlan;
use bulkgcd_core::Algorithm;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// First line of every ledger file.
const MAGIC: &str = "bulkgcd-shard-ledger v1";

/// FNV-1a-64 over a completed tile journal's launch records (their exact
/// journal lines, in launch order). Two executions of the same tile over
/// the same corpus — original, resumed, or re-run by a reclaiming worker —
/// produce the same records and therefore the same fingerprint; the
/// coordinator uses it to tell harmless duplicate completions from
/// impossible conflicting ones.
pub fn tile_fingerprint(journal: &ScanJournal) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for record in journal.records() {
        for b in record.to_line().bytes().chain(std::iter::once(b'\n')) {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Why the ledger refused an operation.
#[derive(Debug)]
pub enum LedgerError {
    /// The ledger file could not be read or appended to.
    Io(io::Error),
    /// A complete ledger line failed to parse (a torn final line is
    /// dropped, not an error).
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The ledger belongs to a different sharded scan configuration.
    Mismatch {
        /// The header field that differs.
        field: &'static str,
        /// The ledger's value.
        ledger: String,
        /// The current run's value.
        run: String,
    },
    /// A tile index outside the plan.
    UnknownTile {
        /// The offending tile index.
        tile: usize,
    },
    /// The caller no longer holds the tile's lease (it expired or the
    /// tile was reassigned); it must abandon the tile.
    LeaseLost {
        /// The tile whose lease was lost.
        tile: usize,
        /// The worker that lost it.
        worker: String,
    },
    /// Two completions of the same tile reported different result
    /// fingerprints — impossible for a deterministic scan, so one of the
    /// journals is corrupt or belongs to a different corpus.
    ConflictingCompletion {
        /// The tile completed twice.
        tile: usize,
        /// The fingerprint already on record.
        have: u64,
        /// The conflicting fingerprint just submitted.
        got: u64,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Io(e) => write!(f, "ledger I/O: {e}"),
            LedgerError::Corrupt { line, reason } => {
                write!(f, "ledger corrupt at line {line}: {reason}")
            }
            LedgerError::Mismatch { field, ledger, run } => write!(
                f,
                "ledger belongs to a different sharded scan ({field}: ledger has {ledger}, \
                 this run has {run}); delete it or rerun with the original settings"
            ),
            LedgerError::UnknownTile { tile } => {
                write!(f, "tile {tile} is outside the ledger's tile plan")
            }
            LedgerError::LeaseLost { tile, worker } => write!(
                f,
                "worker {worker} no longer holds the lease on tile {tile}; \
                 the tile was reclaimed"
            ),
            LedgerError::ConflictingCompletion { tile, have, got } => write!(
                f,
                "tile {tile} completed twice with different fingerprints \
                 ({have:016x} vs {got:016x}); a shard journal is corrupt"
            ),
        }
    }
}

impl std::error::Error for LedgerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LedgerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LedgerError {
    fn from(e: io::Error) -> Self {
        LedgerError::Io(e)
    }
}

/// The sharded-scan configuration a ledger is bound to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerHeader {
    /// [`corpus_fingerprint`] of the arena.
    pub fingerprint: u64,
    /// Number of moduli in the corpus.
    pub moduli: usize,
    /// Lanes per launch (the tile plan's chunking unit).
    pub launch_pairs: usize,
    /// Total launches in the scan.
    pub launches: u64,
    /// Number of tiles in the plan.
    pub tiles: usize,
    /// The GCD algorithm's paper tag.
    pub algo: String,
    /// Whether §V early termination was enabled.
    pub early: bool,
}

impl LedgerHeader {
    /// The header binding a ledger to `arena` scanned under `plan`.
    pub fn for_plan(arena: &ModuliArena, algo: Algorithm, early: bool, plan: &TilePlan) -> Self {
        LedgerHeader {
            fingerprint: corpus_fingerprint(arena),
            moduli: arena.len(),
            launch_pairs: plan.launch_pairs(),
            launches: plan.launches(),
            tiles: plan.len(),
            algo: algo.tag().to_string(),
            early,
        }
    }

    fn to_line(&self) -> String {
        format!(
            "H fp={:016x} m={} launch_pairs={} launches={} tiles={} algo={} early={}",
            self.fingerprint,
            self.moduli,
            self.launch_pairs,
            self.launches,
            self.tiles,
            self.algo,
            u8::from(self.early),
        )
    }
}

/// Where one tile is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileState {
    /// Never assigned (or its only lease expired before this ledger was
    /// written — unassigned and expired-lease tiles are acquired alike).
    Unassigned,
    /// Leased to a worker until the `expires` tick (exclusive: the lease
    /// is dead once `now >= expires`).
    Leased {
        /// The worker holding the lease.
        worker: String,
        /// First tick at which the lease counts as expired.
        expires: u64,
    },
    /// Completed, with the result fingerprint on record.
    Complete {
        /// The worker whose completion was accepted.
        worker: String,
        /// [`tile_fingerprint`] of the completed shard journal.
        fingerprint: u64,
    },
}

/// What [`Coordinator::complete`] did with a submitted completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// First completion of the tile: recorded.
    Accepted,
    /// The tile was already complete with an identical fingerprint — a
    /// resurrected worker resubmitting. Discarded.
    Duplicate,
}

/// Run accounting for one coordinator lifetime (not persisted: replaying
/// a ledger reconstructs tile *states*, not historical counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoordStats {
    /// Tiles handed out (first assignments and reassignments).
    pub assignments: u64,
    /// Successful lease renewals (heartbeats).
    pub renewals: u64,
    /// Assignments that reclaimed an expired lease from a dead worker.
    pub reclaimed_leases: u64,
    /// Completions discarded as duplicates (matching fingerprint).
    pub duplicate_completions: u64,
    /// Renewals refused because the lease was expired or reassigned.
    pub lost_leases: u64,
}

/// The append-only tile-assignment ledger. See the module docs for the
/// protocol and the on-disk format.
#[derive(Debug)]
pub struct Coordinator {
    file: Option<File>,
    magic_written: bool,
    header: Option<LedgerHeader>,
    states: Vec<TileState>,
    stats: CoordStats,
}

impl Coordinator {
    /// A ledger with no backing file: protocol semantics without I/O.
    pub fn in_memory() -> Self {
        Coordinator {
            file: None,
            magic_written: false,
            header: None,
            states: Vec::new(),
            stats: CoordStats::default(),
        }
    }

    /// Open (or create) the ledger at `path`, replaying any prior run's
    /// records. Leases replay with their recorded expiry ticks, so a
    /// restarted coordinator resumes dead-worker detection where it left
    /// off; a torn final line is dropped.
    // analyze: journal(replay)
    pub fn open(path: &Path) -> Result<Self, LedgerError> {
        let mut ledger = Coordinator::in_memory();
        if path.exists() {
            ledger.replay(&std::fs::read(path)?)?;
        }
        ledger.file = Some(OpenOptions::new().create(true).append(true).open(path)?);
        Ok(ledger)
    }

    // analyze: journal(replay)
    fn replay(&mut self, bytes: &[u8]) -> Result<(), LedgerError> {
        let committed = match bytes.iter().rposition(|&b| b == b'\n') {
            Some(pos) => &bytes[..=pos],
            None => return Ok(()),
        };
        let text = std::str::from_utf8(committed).map_err(|e| LedgerError::Corrupt {
            line: 0,
            reason: format!("not UTF-8: {e}"),
        })?;
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let corrupt = |reason: String| LedgerError::Corrupt {
                line: lineno,
                reason,
            };
            if idx == 0 {
                if line != MAGIC {
                    return Err(corrupt(format!("expected `{MAGIC}`, found `{line}`")));
                }
                self.magic_written = true;
                continue;
            }
            match line.as_bytes().first() {
                Some(b'H') => {
                    let header = parse_header(line, lineno)?;
                    self.states = vec![TileState::Unassigned; header.tiles];
                    self.header = Some(header);
                }
                Some(b'A') | Some(b'R') => {
                    let (tile, worker, expires) = parse_lease_line(line, lineno)?;
                    let state = self.state_mut(tile, lineno)?;
                    if let TileState::Complete { .. } = state {
                        return Err(corrupt(format!("lease recorded for complete tile {tile}")));
                    }
                    *state = TileState::Leased { worker, expires };
                }
                Some(b'C') => {
                    let (tile, worker, fingerprint) = parse_complete_line(line, lineno)?;
                    let state = self.state_mut(tile, lineno)?;
                    if let TileState::Complete {
                        fingerprint: have, ..
                    } = state
                    {
                        if *have != fingerprint {
                            return Err(corrupt(format!(
                                "tile {tile} completed twice with different fingerprints"
                            )));
                        }
                    }
                    *state = TileState::Complete {
                        worker,
                        fingerprint,
                    };
                }
                _ => return Err(corrupt(format!("unknown record `{line}`"))),
            }
        }
        Ok(())
    }

    fn state_mut(&mut self, tile: usize, lineno: usize) -> Result<&mut TileState, LedgerError> {
        let tiles = self.states.len();
        self.states.get_mut(tile).ok_or(LedgerError::Corrupt {
            line: lineno,
            reason: format!("tile {tile} out of range (header declares {tiles} tiles)"),
        })
    }

    // analyze: journal(append)
    fn append_raw(&mut self, text: &str) -> Result<(), LedgerError> {
        if let Some(file) = &mut self.file {
            file.write_all(text.as_bytes())?;
            file.sync_data()?;
        }
        Ok(())
    }

    // analyze: journal(append)
    fn append(&mut self, line: &str) -> Result<(), LedgerError> {
        self.append_raw(&format!("{line}\n"))
    }

    /// Bind the ledger to `header`, or verify it is already bound to an
    /// identical one (same magic-plus-header single-append idiom as the
    /// scan journal).
    // analyze: journal(create)
    pub fn check_compatible(&mut self, header: &LedgerHeader) -> Result<(), LedgerError> {
        match &self.header {
            None => {
                let mut text = String::new();
                if !self.magic_written {
                    text.push_str(MAGIC);
                    text.push('\n');
                }
                text.push_str(&header.to_line());
                text.push('\n');
                self.append_raw(&text)?;
                self.magic_written = true;
                self.states = vec![TileState::Unassigned; header.tiles];
                self.header = Some(header.clone());
                Ok(())
            }
            Some(existing) => {
                let mismatch = |field: &'static str, ledger: String, run: String| {
                    Err(LedgerError::Mismatch { field, ledger, run })
                };
                if existing.fingerprint != header.fingerprint {
                    return mismatch(
                        "fingerprint",
                        format!("{:016x}", existing.fingerprint),
                        format!("{:016x}", header.fingerprint),
                    );
                }
                if existing.moduli != header.moduli {
                    return mismatch(
                        "moduli",
                        existing.moduli.to_string(),
                        header.moduli.to_string(),
                    );
                }
                if existing.launch_pairs != header.launch_pairs {
                    return mismatch(
                        "launch_pairs",
                        existing.launch_pairs.to_string(),
                        header.launch_pairs.to_string(),
                    );
                }
                if existing.launches != header.launches {
                    return mismatch(
                        "launches",
                        existing.launches.to_string(),
                        header.launches.to_string(),
                    );
                }
                if existing.tiles != header.tiles {
                    return mismatch(
                        "tiles",
                        existing.tiles.to_string(),
                        header.tiles.to_string(),
                    );
                }
                if existing.algo != header.algo {
                    return mismatch("algo", existing.algo.clone(), header.algo.clone());
                }
                if existing.early != header.early {
                    return mismatch(
                        "early",
                        existing.early.to_string(),
                        header.early.to_string(),
                    );
                }
                Ok(())
            }
        }
    }

    /// Assign the lowest-indexed acquirable tile to `worker` with a lease
    /// until `now + lease_ticks`. A tile is acquirable if it was never
    /// assigned, or if it is leased and `now >= expires` — the latter is a
    /// reclaim from a worker presumed dead. Returns `None` when every
    /// incomplete tile is under a live lease (the caller should wait until
    /// [`next_expiry`](Self::next_expiry)).
    // analyze: journal
    pub fn acquire(
        &mut self,
        worker: &str,
        now: u64,
        lease_ticks: u64,
    ) -> Result<Option<Lease>, LedgerError> {
        for tile in 0..self.states.len() {
            let reclaim = match &self.states[tile] {
                TileState::Unassigned => false,
                TileState::Leased { expires, .. } if now >= *expires => true,
                _ => continue,
            };
            let expires = now.saturating_add(lease_ticks.max(1));
            self.append(&format!("A tile={tile} worker={worker} expires={expires}"))?;
            self.states[tile] = TileState::Leased {
                worker: worker.to_string(),
                expires,
            };
            self.stats.assignments += 1;
            if reclaim {
                self.stats.reclaimed_leases += 1;
            }
            return Ok(Some(Lease { tile, expires }));
        }
        Ok(None)
    }

    /// Heartbeat: extend `worker`'s lease on `tile` to `now + lease_ticks`.
    /// Refused with [`LedgerError::LeaseLost`] if the lease expired
    /// (`now >= expires`), was reassigned to another worker, or the tile
    /// is already complete — in every case the worker must abandon the
    /// tile (its journal keeps the work for whoever resumes it).
    // analyze: journal
    pub fn renew(
        &mut self,
        tile: usize,
        worker: &str,
        now: u64,
        lease_ticks: u64,
    ) -> Result<u64, LedgerError> {
        let lost = |worker: &str| {
            Err(LedgerError::LeaseLost {
                tile,
                worker: worker.to_string(),
            })
        };
        match self.states.get(tile) {
            None => Err(LedgerError::UnknownTile { tile }),
            Some(TileState::Leased {
                worker: holder,
                expires,
            }) if holder == worker => {
                if now >= *expires {
                    self.stats.lost_leases += 1;
                    return lost(worker);
                }
                let expires = now.saturating_add(lease_ticks.max(1));
                self.append(&format!("R tile={tile} worker={worker} expires={expires}"))?;
                self.states[tile] = TileState::Leased {
                    worker: worker.to_string(),
                    expires,
                };
                self.stats.renewals += 1;
                Ok(expires)
            }
            Some(_) => {
                self.stats.lost_leases += 1;
                lost(worker)
            }
        }
    }

    /// Record `worker`'s completion of `tile` with result `fingerprint`.
    /// The first completion wins regardless of lease state — the shard
    /// journal it fingerprints is the authoritative result. An identical
    /// re-submission (a resurrected worker) is discarded as
    /// [`Completion::Duplicate`]; a different fingerprint is an error.
    // analyze: journal
    pub fn complete(
        &mut self,
        tile: usize,
        worker: &str,
        fingerprint: u64,
    ) -> Result<Completion, LedgerError> {
        match self.states.get(tile) {
            None => Err(LedgerError::UnknownTile { tile }),
            Some(TileState::Complete {
                fingerprint: have, ..
            }) => {
                if *have != fingerprint {
                    return Err(LedgerError::ConflictingCompletion {
                        tile,
                        have: *have,
                        got: fingerprint,
                    });
                }
                self.stats.duplicate_completions += 1;
                Ok(Completion::Duplicate)
            }
            Some(_) => {
                self.append(&format!(
                    "C tile={tile} worker={worker} fp={fingerprint:016x}"
                ))?;
                self.states[tile] = TileState::Complete {
                    worker: worker.to_string(),
                    fingerprint,
                };
                Ok(Completion::Accepted)
            }
        }
    }

    /// Whether every tile is complete.
    pub fn all_complete(&self) -> bool {
        self.states
            .iter()
            .all(|s| matches!(s, TileState::Complete { .. }))
    }

    /// Number of tiles not yet complete.
    pub fn incomplete(&self) -> usize {
        self.states
            .iter()
            .filter(|s| !matches!(s, TileState::Complete { .. }))
            .count()
    }

    /// The earliest lease expiry among leased tiles — the tick at which
    /// an idle caller should retry [`acquire`](Self::acquire).
    pub fn next_expiry(&self) -> Option<u64> {
        self.states
            .iter()
            .filter_map(|s| match s {
                TileState::Leased { expires, .. } => Some(*expires),
                _ => None,
            })
            .min()
    }

    /// The state of tile `tile`, if it is in the plan.
    pub fn tile_state(&self, tile: usize) -> Option<&TileState> {
        self.states.get(tile)
    }

    /// The accepted fingerprint of tile `tile`, if it is complete.
    pub fn completed_fingerprint(&self, tile: usize) -> Option<u64> {
        match self.states.get(tile) {
            Some(TileState::Complete { fingerprint, .. }) => Some(*fingerprint),
            _ => None,
        }
    }

    /// Run accounting since this coordinator was constructed.
    pub fn stats(&self) -> CoordStats {
        self.stats
    }

    /// The header the ledger is bound to, if any run has started.
    pub fn header(&self) -> Option<&LedgerHeader> {
        self.header.as_ref()
    }
}

fn field<'a>(line: &'a str, key: &str, lineno: usize) -> Result<&'a str, LedgerError> {
    let prefix = format!("{key}=");
    line.split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(&prefix))
        .ok_or_else(|| LedgerError::Corrupt {
            line: lineno,
            reason: format!("missing field `{key}`"),
        })
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str, lineno: usize) -> Result<T, LedgerError>
where
    T::Err: fmt::Display,
{
    s.parse().map_err(|e| LedgerError::Corrupt {
        line: lineno,
        reason: format!("bad {what} `{s}`: {e}"),
    })
}

fn parse_hex_u64(s: &str, what: &str, lineno: usize) -> Result<u64, LedgerError> {
    u64::from_str_radix(s, 16).map_err(|e| LedgerError::Corrupt {
        line: lineno,
        reason: format!("bad {what} `{s}`: {e}"),
    })
}

fn parse_header(line: &str, lineno: usize) -> Result<LedgerHeader, LedgerError> {
    Ok(LedgerHeader {
        fingerprint: parse_hex_u64(field(line, "fp", lineno)?, "fingerprint", lineno)?,
        moduli: parse_num(field(line, "m", lineno)?, "moduli count", lineno)?,
        launch_pairs: parse_num(field(line, "launch_pairs", lineno)?, "launch_pairs", lineno)?,
        launches: parse_num(field(line, "launches", lineno)?, "launches", lineno)?,
        tiles: parse_num(field(line, "tiles", lineno)?, "tile count", lineno)?,
        algo: field(line, "algo", lineno)?.to_string(),
        early: field(line, "early", lineno)? == "1",
    })
}

fn parse_lease_line(line: &str, lineno: usize) -> Result<(usize, String, u64), LedgerError> {
    Ok((
        parse_num(field(line, "tile", lineno)?, "tile index", lineno)?,
        field(line, "worker", lineno)?.to_string(),
        parse_num(field(line, "expires", lineno)?, "expiry tick", lineno)?,
    ))
}

fn parse_complete_line(line: &str, lineno: usize) -> Result<(usize, String, u64), LedgerError> {
    Ok((
        parse_num(field(line, "tile", lineno)?, "tile index", lineno)?,
        field(line, "worker", lineno)?.to_string(),
        parse_hex_u64(field(line, "fp", lineno)?, "fingerprint", lineno)?,
    ))
}

/// A granted lease: which tile, and when it expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The tile index assigned.
    pub tile: usize,
    /// First tick at which the lease counts as expired.
    pub expires: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(tiles: usize) -> LedgerHeader {
        LedgerHeader {
            fingerprint: 0xfeed,
            moduli: 16,
            launch_pairs: 4,
            launches: 30,
            tiles,
            algo: "(E)".to_string(),
            early: true,
        }
    }

    fn coordinator(tiles: usize) -> Coordinator {
        let mut c = Coordinator::in_memory();
        c.check_compatible(&header(tiles)).unwrap();
        c
    }

    #[test]
    fn lease_protocol_assigns_renews_and_completes() {
        let mut c = coordinator(2);
        let lease = c.acquire("w0", 0, 10).unwrap().unwrap();
        assert_eq!(lease.tile, 0);
        assert_eq!(lease.expires, 10);
        // Heartbeat extends the lease.
        assert_eq!(c.renew(0, "w0", 5, 10).unwrap(), 15);
        // Second worker gets the next tile; then nothing is acquirable.
        assert_eq!(c.acquire("w1", 5, 10).unwrap().unwrap().tile, 1);
        assert!(c.acquire("w2", 5, 10).unwrap().is_none());
        assert_eq!(c.next_expiry(), Some(15));

        assert_eq!(c.complete(0, "w0", 0xabc).unwrap(), Completion::Accepted);
        assert_eq!(c.complete(1, "w1", 0xdef).unwrap(), Completion::Accepted);
        assert!(c.all_complete());
        assert_eq!(c.completed_fingerprint(0), Some(0xabc));
        assert_eq!(c.stats().assignments, 2);
        assert_eq!(c.stats().renewals, 1);
        assert_eq!(c.stats().reclaimed_leases, 0);
    }

    #[test]
    fn expired_lease_is_reclaimed_and_dead_workers_renewal_is_refused() {
        let mut c = coordinator(1);
        c.acquire("w0", 0, 10).unwrap().unwrap();
        // Before expiry nothing is acquirable.
        assert!(c.acquire("w1", 9, 10).unwrap().is_none());
        // At the expiry tick the tile is reclaimed.
        let lease = c.acquire("w1", 10, 10).unwrap().unwrap();
        assert_eq!(lease.tile, 0);
        assert_eq!(c.stats().reclaimed_leases, 1);
        // The dead worker's late heartbeat is refused...
        match c.renew(0, "w0", 11, 10) {
            Err(LedgerError::LeaseLost { tile: 0, .. }) => {}
            other => panic!("expected LeaseLost, got {other:?}"),
        }
        // ...and the live holder's is not.
        c.renew(0, "w1", 11, 10).unwrap();
        assert_eq!(c.stats().lost_leases, 1);
    }

    #[test]
    fn renewal_at_expiry_tick_is_already_too_late() {
        let mut c = coordinator(1);
        c.acquire("w0", 0, 10).unwrap().unwrap();
        match c.renew(0, "w0", 10, 10) {
            Err(LedgerError::LeaseLost { .. }) => {}
            other => panic!("expected LeaseLost at the expiry tick, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_completion_discarded_conflicting_refused() {
        let mut c = coordinator(1);
        c.acquire("w0", 0, 10).unwrap().unwrap();
        assert_eq!(c.complete(0, "w0", 0xabc).unwrap(), Completion::Accepted);
        // A resurrected worker resubmits the same result: discarded.
        assert_eq!(c.complete(0, "w0", 0xabc).unwrap(), Completion::Duplicate);
        assert_eq!(c.stats().duplicate_completions, 1);
        // A different fingerprint can only mean corruption.
        match c.complete(0, "w1", 0x123) {
            Err(LedgerError::ConflictingCompletion { tile: 0, .. }) => {}
            other => panic!("expected ConflictingCompletion, got {other:?}"),
        }
    }

    #[test]
    fn ledger_file_replays_and_tolerates_torn_tail() {
        let dir = std::env::temp_dir().join("bulkgcd-ledger-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("torn-{}.ledger", std::process::id()));
        let _ = std::fs::remove_file(&path);

        {
            let mut c = Coordinator::open(&path).unwrap();
            c.check_compatible(&header(2)).unwrap();
            c.acquire("w0", 0, 10).unwrap().unwrap();
            c.complete(0, "w0", 0xabc).unwrap();
            c.acquire("w1", 3, 10).unwrap().unwrap();
        }
        // A crash mid-append leaves a torn line; replay drops it.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"C tile=1 wor").unwrap();
        }
        let mut c = Coordinator::open(&path).unwrap();
        c.check_compatible(&header(2)).unwrap();
        assert_eq!(c.completed_fingerprint(0), Some(0xabc));
        assert!(matches!(
            c.tile_state(1),
            Some(TileState::Leased { expires: 13, .. })
        ));
        assert!(!c.all_complete());
        assert_eq!(c.incomplete(), 1);
        // The restarted coordinator resumes dead-worker detection: w1's
        // replayed lease expires at 13 and is then reclaimable.
        assert!(c.acquire("w2", 12, 10).unwrap().is_none());
        assert_eq!(c.acquire("w2", 13, 10).unwrap().unwrap().tile, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_ledger_is_refused() {
        let mut c = coordinator(2);
        let mut other = header(2);
        other.tiles = 3;
        match c.check_compatible(&other) {
            Err(LedgerError::Mismatch { field: "tiles", .. }) => {}
            other => panic!("expected tiles mismatch, got {other:?}"),
        }
        let mut other = header(2);
        other.fingerprint = 1;
        match c.check_compatible(&other) {
            Err(LedgerError::Mismatch {
                field: "fingerprint",
                ..
            }) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        c.check_compatible(&header(2)).unwrap();
    }

    #[test]
    fn completion_survives_restart_as_duplicate_detector() {
        let dir = std::env::temp_dir().join("bulkgcd-ledger-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dup-{}.ledger", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut c = Coordinator::open(&path).unwrap();
            c.check_compatible(&header(1)).unwrap();
            c.acquire("w0", 0, 10).unwrap().unwrap();
            c.complete(0, "w0", 0xabc).unwrap();
        }
        let mut c = Coordinator::open(&path).unwrap();
        c.check_compatible(&header(1)).unwrap();
        assert_eq!(c.complete(0, "w0", 0xabc).unwrap(), Completion::Duplicate);
        match c.complete(0, "w0", 0xbad) {
            Err(LedgerError::ConflictingCompletion { .. }) => {}
            other => panic!("expected ConflictingCompletion, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }
}
