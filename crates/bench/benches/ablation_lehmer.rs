//! Ablation (extension): the paper's Approximate Euclid against full
//! Lehmer (Knuth Algorithm L) — the classical way to batch Euclid steps.
//! Lehmer does fewer multiword passes but each pass runs a long, highly
//! divergent 64-bit cosequence loop; the paper's one-shot approximation is
//! what makes the SIMT version tick.

use bulkgcd_bench::rsa_modulus_pairs;
use bulkgcd_core::lehmer::lehmer_euclid;
use bulkgcd_core::{run, Algorithm, GcdPair, NoProbe, StatsProbe, Termination};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_lehmer_vs_approximate(c: &mut Criterion) {
    let bits = 1024u64;
    let pairs = rsa_modulus_pairs(8, bits, 61);
    let term = Termination::Early {
        threshold_bits: bits / 2,
    };

    // Multiword-pass counts, printed once.
    let mut ws = GcdPair::with_capacity(1);
    let mut approx_iters = 0u64;
    let mut lehmer_iters = 0u64;
    for (a, b) in &pairs {
        ws.load(a, b);
        let mut sp = StatsProbe::default();
        run(Algorithm::Approximate, &mut ws, term, &mut sp);
        approx_iters += sp.stats.iterations;
        ws.load(a, b);
        let mut sp = StatsProbe::default();
        lehmer_euclid(&mut ws, term, &mut sp);
        lehmer_iters += sp.stats.iterations;
    }
    println!(
        "[ablation_lehmer] multiword passes over {} pairs: approximate {} vs lehmer {}",
        pairs.len(),
        approx_iters,
        lehmer_iters
    );

    let mut group = c.benchmark_group("quotient_batching_1024bit");
    group.bench_function(BenchmarkId::from_parameter("approximate_euclid"), |b| {
        let mut ws = GcdPair::with_capacity(1);
        let mut i = 0;
        b.iter(|| {
            let (x, y) = &pairs[i % pairs.len()];
            i += 1;
            ws.load(x, y);
            black_box(run(Algorithm::Approximate, &mut ws, term, &mut NoProbe))
        });
    });
    group.bench_function(BenchmarkId::from_parameter("lehmer"), |b| {
        let mut ws = GcdPair::with_capacity(1);
        let mut i = 0;
        b.iter(|| {
            let (x, y) = &pairs[i % pairs.len()];
            i += 1;
            ws.load(x, y);
            black_box(lehmer_euclid(&mut ws, term, &mut NoProbe))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lehmer_vs_approximate);
criterion_main!(benches);
