//! Ablation: the approximate quotient (one 64-bit division on the top
//! words) against the exact multiword quotient (Fast Euclid) — the paper's
//! central design decision. Iteration counts are near-identical (Table IV's
//! (E)−(B) column); per-iteration cost is what differs.

use bulkgcd_bench::{iteration_summary, rsa_modulus_pairs};
use bulkgcd_core::{run, Algorithm, GcdPair, NoProbe, Termination};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_quotient_strategy(c: &mut Criterion) {
    let bits = 1024u64;
    let pairs = rsa_modulus_pairs(8, bits, 51);
    let term = Termination::Early {
        threshold_bits: bits / 2,
    };

    // The iteration-count side of the ablation, printed once.
    let exact = iteration_summary(Algorithm::Fast, &pairs, term);
    let approx = iteration_summary(Algorithm::Approximate, &pairs, term);
    println!(
        "[ablation_approx] mean iterations: exact-quotient {:.2} vs approx-quotient {:.2} (gap {:+.4})",
        exact.mean_iterations,
        approx.mean_iterations,
        approx.mean_iterations - exact.mean_iterations
    );

    let mut group = c.benchmark_group("quotient_strategy_1024bit");
    for algo in [Algorithm::Fast, Algorithm::Approximate] {
        group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
            let mut ws = GcdPair::with_capacity(1);
            let mut i = 0;
            b.iter(|| {
                let (x, y) = &pairs[i % pairs.len()];
                i += 1;
                ws.load(x, y);
                black_box(run(algo, &mut ws, term, &mut NoProbe))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quotient_strategy);
criterion_main!(benches);
