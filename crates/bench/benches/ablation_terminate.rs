//! Ablation: early termination vs running to Y = 0 (the §V design choice
//! that halves iteration counts for RSA moduli).

use bulkgcd_bench::rsa_modulus_pairs;
use bulkgcd_core::{run, Algorithm, GcdPair, NoProbe, Termination};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_terminate(c: &mut Criterion) {
    for bits in [512u64, 1024] {
        let pairs = rsa_modulus_pairs(8, bits, 41);
        let mut group = c.benchmark_group(format!("approx_{bits}bit"));
        for (name, term) in [
            ("non_terminate", Termination::Full),
            (
                "early_terminate",
                Termination::Early {
                    threshold_bits: bits / 2,
                },
            ),
        ] {
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                let mut ws = GcdPair::with_capacity(1);
                let mut i = 0;
                b.iter(|| {
                    let (x, y) = &pairs[i % pairs.len()];
                    i += 1;
                    ws.load(x, y);
                    black_box(run(Algorithm::Approximate, &mut ws, term, &mut NoProbe))
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_terminate);
criterion_main!(benches);
