//! Ablation: column-wise vs row-wise arrangement (the Fig. 3 design
//! choice). Benchmarks the *simulation* of both layouts and reports the
//! modelled UMM time units via Criterion's output; the interesting number
//! is the simulated ratio printed once per run.

use bulkgcd_bench::odd_pairs;
use bulkgcd_core::{Algorithm, Termination};
use bulkgcd_umm::gcd_trace::bulk_gcd_trace;
use bulkgcd_umm::{simulate, Layout, UmmConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_layout(c: &mut Criterion) {
    let inputs = odd_pairs(64, 512, 31);
    let bulk = bulk_gcd_trace(
        Algorithm::Approximate,
        &inputs,
        Termination::Early {
            threshold_bits: 256,
        },
    );
    let cfg = UmmConfig::new(32, 32);

    // Report the modelled effect once.
    let col = simulate(&bulk, Layout::ColumnWise, cfg);
    let row = simulate(&bulk, Layout::RowWise, cfg);
    println!(
        "[ablation_layout] UMM time units: column-wise {} vs row-wise {} ({:.1}x)",
        col.time_units,
        row.time_units,
        row.time_units as f64 / col.time_units as f64
    );

    let mut group = c.benchmark_group("umm_simulate");
    group.sample_size(10);
    for layout in [Layout::ColumnWise, Layout::RowWise] {
        group.bench_function(BenchmarkId::from_parameter(format!("{layout:?}")), |b| {
            b.iter(|| black_box(simulate(&bulk, layout, cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
