//! Extension bench: the paper's pairwise all-pairs scan against the
//! product/remainder-tree batch GCD (the pre-existing attack). Pairwise is
//! O(m²) cheap-per-pair; batch GCD is quasi-linear with huge constants —
//! the crossover is the interesting artifact.

use bulkgcd_bulk::{batch_gcd, ModuliArena, ProductTreeBackend, ScanPipeline};
use bulkgcd_core::Algorithm;
use bulkgcd_rsa::build_corpus;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_batch_vs_pairwise(c: &mut Criterion) {
    for m in [16usize, 64] {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let corpus = build_corpus(&mut rng, m, 512, 1);
        let moduli = corpus.moduli();

        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        let mut group = c.benchmark_group(format!("weak_key_scan_m{m}_512bit"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter("pairwise_approx_euclid"), |b| {
            b.iter(|| {
                black_box(
                    ScanPipeline::new(&arena)
                        .algorithm(Algorithm::Approximate)
                        .run()
                        .unwrap(),
                )
            })
        });
        group.bench_function(BenchmarkId::from_parameter("batch_gcd"), |b| {
            b.iter(|| black_box(batch_gcd(&moduli)))
        });
        group.bench_function(BenchmarkId::from_parameter("batch_gcd_pipeline"), |b| {
            b.iter(|| {
                black_box(
                    ScanPipeline::new(&arena)
                        .backend(ProductTreeBackend { parallel: false })
                        .run()
                        .unwrap(),
                )
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_batch_vs_pairwise);
criterion_main!(benches);
