//! Criterion micro-benchmarks: one GCD for each of the five Euclidean
//! variants at several modulus sizes (the CPU column of Table V, under a
//! statistics-grade harness).

use bulkgcd_bench::rsa_modulus_pairs;
use bulkgcd_core::{run, Algorithm, GcdPair, NoProbe, Termination};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_gcd(c: &mut Criterion) {
    for bits in [512u64, 1024] {
        let pairs = rsa_modulus_pairs(8, bits, 123);
        let mut group = c.benchmark_group(format!("gcd_{bits}bit_early"));
        for algo in Algorithm::ALL {
            group.bench_function(BenchmarkId::from_parameter(algo.tag()), |b| {
                let mut ws = GcdPair::with_capacity(1);
                let mut i = 0;
                b.iter(|| {
                    let (x, y) = &pairs[i % pairs.len()];
                    i += 1;
                    ws.load(x, y);
                    black_box(run(
                        algo,
                        &mut ws,
                        Termination::Early {
                            threshold_bits: bits / 2,
                        },
                        &mut NoProbe,
                    ))
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_gcd);
criterion_main!(benches);
