//! Scan-pipeline throughput: the arena-backed zero-allocation CPU scan
//! against the pre-refactor per-block-workspace path, and the parallel
//! simulated-GPU scan against its serial reference, across corpus sizes.
//!
//! Run: `cargo bench -p bulkgcd-bench --bench scan_throughput`

use bulkgcd_bigint::Nat;
use bulkgcd_bulk::group_size_for;
use bulkgcd_bulk::{GpuSimBackend, GroupedPairs, ModuliArena, ScanPipeline};
use bulkgcd_core::{run, Algorithm, GcdOutcome, GcdPair, NoProbe, Termination};
use bulkgcd_gpu::{CostModel, DeviceConfig};
use bulkgcd_rsa::build_corpus;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

const BITS: u64 = 128;
const SIZES: [usize; 3] = [16, 32, 64];

fn moduli_of(m: usize) -> Vec<Nat> {
    let mut rng = StdRng::seed_from_u64(0x5ca9 ^ m as u64);
    build_corpus(&mut rng, m, BITS, 2).moduli()
}

/// The pre-refactor CPU scan: one fresh workspace and findings vector per
/// §VI block, operands loaded from owned `Nat`s, allocating `run`.
fn scan_cpu_prerefactor(moduli: &[Nat], algo: Algorithm, early: bool) -> usize {
    let m = moduli.len();
    let grid = GroupedPairs::new(m, group_size_for(m));
    let blocks: Vec<_> = grid.blocks().collect();
    let findings: Vec<(usize, usize, Nat)> = blocks
        .par_iter()
        .map(|&b| {
            let mut pair = GcdPair::with_capacity(1);
            let mut found = Vec::new();
            for (i, j) in grid.block_pairs(b) {
                let (a, c) = (&moduli[i], &moduli[j]);
                pair.load(a, c);
                let term = if early {
                    Termination::Early {
                        threshold_bits: a.bit_len().min(c.bit_len()) / 2,
                    }
                } else {
                    Termination::Full
                };
                if let GcdOutcome::Gcd(g) = run(algo, &mut pair, term, &mut NoProbe) {
                    if !g.is_one() {
                        found.push((i, j, g));
                    }
                }
            }
            found
        })
        .flatten()
        .collect();
    findings.len()
}

fn bench_cpu_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_cpu");
    group.sample_size(10);
    for &m in &SIZES {
        let moduli = moduli_of(m);
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        group.bench_function(BenchmarkId::new("arena", m), |b| {
            b.iter(|| ScanPipeline::new(&arena).run().unwrap().scan.findings.len())
        });
        group.bench_function(BenchmarkId::new("prerefactor", m), |b| {
            b.iter(|| scan_cpu_prerefactor(&moduli, Algorithm::Approximate, true))
        });
    }
    group.finish();
}

fn bench_gpu_sim_scan(c: &mut Criterion) {
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();
    let mut group = c.benchmark_group("scan_gpu_sim");
    group.sample_size(10);
    for &m in &SIZES {
        let moduli = moduli_of(m);
        let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
        let gpu_scan = |serial: bool| {
            ScanPipeline::new(&arena)
                .backend(GpuSimBackend {
                    device: device.clone(),
                    cost: cost.clone(),
                })
                .launch_pairs(64)
                .serial(serial)
                .run()
                .unwrap()
                .scan
                .simulated_seconds
        };
        group.bench_function(BenchmarkId::new("parallel", m), |b| {
            b.iter(|| gpu_scan(false))
        });
        group.bench_function(BenchmarkId::new("serial", m), |b| b.iter(|| gpu_scan(true)));
    }
    group.finish();
}

criterion_group!(benches, bench_cpu_scan, bench_gpu_sim_scan);
criterion_main!(benches);
