//! Criterion micro-benchmarks for the arithmetic substrate: the fused
//! multiply-subtract-shift (the AEA inner loop), full division (the Fast
//! Euclid inner loop), multiplication, Montgomery modpow, and the
//! subquadratic dispatch ladder (Toom-3/NTT multiply, Newton division,
//! half-GCD) against the legacy schoolbook/Karatsuba/Knuth/binary paths.

use bulkgcd_bigint::random::random_odd_bits;
use bulkgcd_bigint::{ops, thresholds, Barrett, Montgomery};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);

    let mut group = c.benchmark_group("fused_submul_rshift");
    for bits in [512u64, 1024, 4096] {
        let x = random_odd_bits(&mut rng, bits);
        let y = random_odd_bits(&mut rng, bits - 40);
        group.bench_function(BenchmarkId::from_parameter(bits), |b| {
            b.iter_batched(
                || x.limbs().to_vec(),
                |mut xs| {
                    black_box(ops::fused_submul_rshift(
                        &mut xs,
                        y.limbs(),
                        0xdead_beef | 1,
                    ))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("div_rem");
    for bits in [512u64, 1024] {
        let x = random_odd_bits(&mut rng, bits);
        let y = random_odd_bits(&mut rng, bits / 2);
        group.bench_function(BenchmarkId::from_parameter(bits), |b| {
            b.iter(|| black_box(x.div_rem(&y)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("mul");
    for bits in [512u64, 4096, 65_536] {
        let x = random_odd_bits(&mut rng, bits);
        let y = random_odd_bits(&mut rng, bits);
        group.bench_function(BenchmarkId::from_parameter(bits), |b| {
            b.iter(|| black_box(x.mul(&y)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("modpow");
    group.sample_size(10);
    for bits in [256u64, 512] {
        let m = random_odd_bits(&mut rng, bits);
        let base = random_odd_bits(&mut rng, bits - 1);
        let e = random_odd_bits(&mut rng, bits);
        let mont = Montgomery::new(&m);
        let barrett = Barrett::new(&m);
        group.bench_function(BenchmarkId::new("montgomery_window", bits), |b| {
            b.iter(|| black_box(mont.pow_window(&base, &e)))
        });
        group.bench_function(BenchmarkId::new("montgomery_binary", bits), |b| {
            b.iter(|| black_box(mont.pow_binary(&base, &e)))
        });
        group.bench_function(BenchmarkId::new("barrett", bits), |b| {
            b.iter(|| black_box(barrett.pow(&base, &e)))
        });
        group.bench_function(BenchmarkId::new("naive", bits), |b| {
            b.iter(|| black_box(base.modpow_naive(&e, &m)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("square_vs_mul");
    for bits in [512u64, 4096] {
        let x = random_odd_bits(&mut rng, bits);
        group.bench_function(BenchmarkId::new("square", bits), |b| {
            b.iter(|| black_box(x.square()))
        });
        group.bench_function(BenchmarkId::new("mul_self", bits), |b| {
            let y = x.clone();
            b.iter(|| black_box(x.mul(&y)))
        });
    }
    group.finish();
}

/// The subquadratic ladder against the legacy kernels, one group per
/// operation, widths in limbs (32-bit words). The `legacy` arms pin every
/// cutoff to `usize::MAX` via [`thresholds::set_legacy_ladder`], so both
/// arms run the exact same driver code and differ only in dispatch.
fn bench_ladder(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(41);

    let mut group = c.benchmark_group("mul_ladder");
    group.sample_size(10);
    for limbs in [256u64, 1024, 4096, 8192] {
        let x = random_odd_bits(&mut rng, limbs * 32);
        let y = random_odd_bits(&mut rng, limbs * 32);
        group.bench_function(BenchmarkId::new("ladder", limbs), |b| {
            thresholds::reset_ladder();
            b.iter(|| black_box(x.mul(&y)))
        });
        group.bench_function(BenchmarkId::new("legacy", limbs), |b| {
            thresholds::set_legacy_ladder();
            b.iter(|| black_box(x.mul(&y)));
            thresholds::reset_ladder();
        });
    }
    group.finish();

    let mut group = c.benchmark_group("div_ladder");
    group.sample_size(10);
    for limbs in [1024u64, 4096, 8192] {
        let x = random_odd_bits(&mut rng, limbs * 64);
        let y = random_odd_bits(&mut rng, limbs * 32);
        group.bench_function(BenchmarkId::new("ladder", limbs), |b| {
            thresholds::reset_ladder();
            b.iter(|| black_box(x.div_rem(&y)))
        });
        group.bench_function(BenchmarkId::new("legacy", limbs), |b| {
            thresholds::set_legacy_ladder();
            b.iter(|| black_box(x.div_rem(&y)));
            thresholds::reset_ladder();
        });
    }
    group.finish();

    let mut group = c.benchmark_group("gcd_ladder");
    group.sample_size(10);
    for limbs in [384u64, 1536] {
        let x = random_odd_bits(&mut rng, limbs * 32);
        let y = random_odd_bits(&mut rng, limbs * 32 - 17);
        group.bench_function(BenchmarkId::new("ladder", limbs), |b| {
            thresholds::reset_ladder();
            b.iter(|| black_box(x.gcd(&y)))
        });
        group.bench_function(BenchmarkId::new("legacy", limbs), |b| {
            thresholds::set_legacy_ladder();
            b.iter(|| black_box(x.gcd(&y)));
            thresholds::reset_ladder();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substrate, bench_ladder);
criterion_main!(benches);
