//! Reproduces **Table II**: the traces of Original Euclidean and Fast
//! Euclidean (with quotient column) on the paper's running example,
//! asserting the iteration counts (11 and 8) and the exact quotient
//! sequences.
//!
//! Run: `cargo run -p bulkgcd-bench --bin table2`

use bulkgcd_bigint::Nat;
use bulkgcd_core::smallword::trace;
use bulkgcd_core::Algorithm;

const X: u128 = 1_043_915;
const Y: u128 = 768_955;

fn grouped(v: u128) -> String {
    if v == 0 {
        "0000".to_string()
    } else {
        Nat::from_u128(v).to_binary_grouped()
    }
}

fn main() {
    println!("TABLE II. An example of computation performed by Original Euclidean");
    println!("algorithm and Fast Euclidean algorithm");
    println!();
    let orig = trace(Algorithm::Original, X, Y, 4);
    let fast = trace(Algorithm::Fast, X, Y, 4);
    let rows = orig.rows.len().max(fast.rows.len());
    println!(
        "{:>3} | {:<26} {:>5} | {:<26} {:>5}",
        "#", "Original X after", "Q", "Fast X after", "Q"
    );
    for i in 0..rows {
        let o = orig.rows.get(i);
        let f = fast.rows.get(i);
        println!(
            "{:>3} | {:<26} {:>5} | {:<26} {:>5}",
            i + 1,
            o.map_or(String::new(), |r| grouped(r.x_after)),
            o.and_then(|r| r.q).map_or(String::new(), |q| q.to_string()),
            f.map_or(String::new(), |r| grouped(r.x_after)),
            f.and_then(|r| r.q).map_or(String::new(), |q| q.to_string()),
        );
    }
    let qo: Vec<u128> = orig.rows.iter().filter_map(|r| r.q).collect();
    let qf: Vec<u128> = fast.rows.iter().filter_map(|r| r.q).collect();
    println!();
    println!(
        "Original: {} iterations, Q = {qo:?} (paper: [1,2,1,3,1,10,1,83,1,4,2])",
        orig.iterations()
    );
    println!(
        "Fast: {} iterations, Q = {qf:?} (paper: [1,43,9,11,1,1,1,5])",
        fast.iterations()
    );
    assert_eq!(orig.iterations(), 11);
    assert_eq!(fast.iterations(), 8);
    assert_eq!(qo, vec![1, 2, 1, 3, 1, 10, 1, 83, 1, 4, 2]);
    assert_eq!(qf, vec![1, 43, 9, 11, 1, 1, 1, 5]);
}
