//! Machine-readable arithmetic-ladder benchmark: `BENCH_bigint.json`.
//!
//! Times the width-dispatched ladder (Karatsuba → Toom-3 → 3-prime NTT
//! multiplication, Newton-reciprocal division, half-GCD) against the
//! legacy quadratic configuration (Karatsuba + Knuth + binary GCD) over a
//! width sweep, plus the end-to-end product-tree batch scan at the largest
//! corpus, and writes one JSON report for tooling to diff across commits.
//! The two arms run in one process: the legacy arm flips the global cutoff
//! ladder via [`thresholds::set_legacy_ladder`] before each sample and the
//! new arm restores it with [`thresholds::reset_ladder`], so both time the
//! *same* entry points (`Nat::mul`, `Nat::div_rem`, `Nat::gcd`) and the
//! dispatch overhead itself is inside the measurement.
//!
//! Run: `cargo run --release -p bulkgcd-bench --bin bigint_bench --
//!       [--mul-limbs 32,64,...] [--div-limbs ...] [--gcd-limbs ...]
//!       [--reps 3] [--out BENCH_bigint.json] [--gate-subquadratic]`
//!
//! `--gate-subquadratic` (used by `scripts/check.sh`) additionally fails
//! the run (exit 1) unless, judged as medians of per-round ratios from the
//! interleaved timing loop:
//!
//! * at the widest mul width benched (>= 8192 limbs by default) the
//!   dispatched multiply is >= 1.5x legacy Karatsuba, and the dispatched
//!   division is >= 1.5x Knuth at the widest div shape;
//! * at the 32- and 64-limb widths the ladder costs at most 1.05x the
//!   legacy path (the dispatch must be free where it changes nothing);
//! * at the largest corpus the end-to-end [`ProductTreeBackend`] batch
//!   scan is measurably (>= 1.05x) faster under the new ladder, and its
//!   findings are bitwise-identical to the scalar pairwise scan's.

use bulkgcd_bench::gate::{best_of, median_speedup, round_times};
use bulkgcd_bench::Options;
use bulkgcd_bigint::random::random_odd_bits;
use bulkgcd_bigint::{thresholds, Nat, LIMB_BITS};
use bulkgcd_bulk::{ModuliArena, ProductTreeBackend, ScanPipeline};
use bulkgcd_rsa::build_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// A `Nat` of exactly `limbs` limbs (top bit set), odd.
fn nat_of_limbs(rng: &mut StdRng, limbs: usize) -> Nat {
    random_odd_bits(rng, limbs as u64 * LIMB_BITS as u64)
}

/// Time `iters` back-to-back calls of `op` under the default ladder and
/// under the legacy quadratic configuration, interleaved; returns
/// (ladder_best, legacy_best, speedup) with the best times per single
/// `op` call and `speedup` the median of per-round legacy/ladder ratios.
/// Narrow widths pass `iters` large enough that the per-sample ladder
/// toggle (a handful of atomic stores plus an env lookup) is amortized
/// out of the measurement.
fn ladder_vs_legacy(reps: usize, iters: usize, mut op: impl FnMut() -> usize) -> (f64, f64, f64) {
    let iters = iters.max(1);
    let op = core::cell::RefCell::new(&mut op);
    let batch = |toggle: fn()| {
        toggle();
        let mut f = op.borrow_mut();
        let mut acc = 0usize;
        for _ in 0..iters {
            acc = acc.rotate_left(7) ^ black_box(f());
        }
        acc
    };
    let mut run_ladder = || batch(thresholds::reset_ladder);
    let mut run_legacy = || {
        let r = batch(thresholds::set_legacy_ladder);
        thresholds::reset_ladder();
        r
    };
    let (times, sinks) = round_times(reps, &mut [&mut run_ladder, &mut run_legacy]);
    assert_eq!(
        sinks[0], sinks[1],
        "ladder and legacy arms must compute the same result"
    );
    let ladder = best_of(&times[0]) / iters as f64;
    let legacy = best_of(&times[1]) / iters as f64;
    (ladder, legacy, median_speedup(&times[1], &times[0]))
}

/// Cheap deterministic digest of a result, so the timing closures return
/// a comparable `usize` without keeping the whole value alive.
fn digest(n: &Nat) -> usize {
    n.limbs().iter().fold(n.len(), |acc, &w| {
        acc.wrapping_mul(0x9e37_79b9).wrapping_add(w as usize)
    })
}

struct Row {
    label: String,
    ladder_s: f64,
    legacy_s: f64,
    speedup: f64,
}

fn json_rows(rows: &[Row]) -> String {
    rows.iter()
        .map(|r| {
            format!(
                "    {{{}, \"ladder_seconds\": {:.9}, \"legacy_seconds\": {:.9}, \
                 \"speedup\": {:.4}}}",
                r.label, r.ladder_s, r.legacy_s, r.speedup
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let opts = Options::from_env();
    let reps: usize = opts.get("reps", 3);
    let out: String = opts.get("out", "BENCH_bigint.json".to_string());
    let gate = opts.has("gate-subquadratic");
    let mul_limbs = opts.get_list(
        "mul-limbs",
        &[32, 64, 128, 256, 512, 1024, 2048, 4096, 8192],
    );
    let div_limbs = opts.get_list(
        "div-limbs",
        &[32, 64, 128, 256, 512, 1024, 2048, 4096, 8192],
    );
    let gcd_limbs = opts.get_list("gcd-limbs", &[48, 96, 192, 384, 768, 1536]);
    let batch_m: usize = opts.get("batch-keys", 256);
    let batch_bits: u64 = opts.get("batch-bits", 1024);

    let mut rng = StdRng::seed_from_u64(0xb16);
    let mut fail = false;

    // Multiplication: balanced n x n limbs, Nat::mul through the dispatcher.
    let mut mul_rows = Vec::new();
    for &n in &mul_limbs {
        let n = n as usize;
        let a = nat_of_limbs(&mut rng, n);
        let b = nat_of_limbs(&mut rng, n);
        let (ladder_s, legacy_s, speedup) = ladder_vs_legacy(reps, 8192 / n, || digest(&a.mul(&b)));
        eprintln!("mul {n:>6} limbs: ladder {ladder_s:.3e}s legacy {legacy_s:.3e}s x{speedup:.2}");
        mul_rows.push(Row {
            label: format!("\"limbs\": {n}"),
            ladder_s,
            legacy_s,
            speedup,
        });
    }

    // Division: 2n / n limbs (the remainder-tree shape), Nat::div_rem.
    let mut div_rows = Vec::new();
    for &n in &div_limbs {
        let n = n as usize;
        let a = nat_of_limbs(&mut rng, 2 * n);
        let b = nat_of_limbs(&mut rng, n);
        let (ladder_s, legacy_s, speedup) = ladder_vs_legacy(reps, 2048 / n, || {
            let (q, r) = a.div_rem(&b);
            digest(&q) ^ digest(&r).rotate_left(1)
        });
        eprintln!(
            "div {:>6}/{n:<6} limbs: ladder {ladder_s:.3e}s legacy {legacy_s:.3e}s x{speedup:.2}",
            2 * n
        );
        div_rows.push(Row {
            label: format!("\"dividend_limbs\": {}, \"divisor_limbs\": {n}", 2 * n),
            ladder_s,
            legacy_s,
            speedup,
        });
    }

    // GCD: n x n limbs with a planted 16-limb common factor, Nat::gcd.
    let mut gcd_rows = Vec::new();
    for &n in &gcd_limbs {
        let n = n as usize;
        let g = nat_of_limbs(&mut rng, 16.min(n / 2).max(1));
        let a = g.mul(&nat_of_limbs(&mut rng, n - g.len()));
        let b = g.mul(&nat_of_limbs(&mut rng, n - g.len()));
        let (ladder_s, legacy_s, speedup) = ladder_vs_legacy(reps, 512 / n, || digest(&a.gcd(&b)));
        eprintln!("gcd {n:>6} limbs: ladder {ladder_s:.3e}s legacy {legacy_s:.3e}s x{speedup:.2}");
        gcd_rows.push(Row {
            label: format!("\"limbs\": {n}"),
            ladder_s,
            legacy_s,
            speedup,
        });
    }

    // End-to-end batch scan: the ProductTreeBackend over a planted corpus,
    // new ladder vs legacy, plus findings identity against the scalar
    // pairwise scan (the gate's correctness leg).
    let mut rng = StdRng::seed_from_u64(0x5ca9 ^ batch_m as u64 ^ (batch_bits << 17));
    let moduli = build_corpus(&mut rng, batch_m, batch_bits, 4).moduli();
    let arena = ModuliArena::try_from_moduli(&moduli).expect("batch corpus is non-degenerate");
    let tree_scan = || {
        ScanPipeline::new(&arena)
            .backend(ProductTreeBackend { parallel: false })
            .run()
            .expect("product-tree scan")
            .scan
    };
    let (batch_ladder_s, batch_legacy_s, batch_speedup) =
        ladder_vs_legacy(reps, 1, || tree_scan().findings.len());
    eprintln!(
        "batch scan m={batch_m} bits={batch_bits}: ladder {batch_ladder_s:.3e}s \
         legacy {batch_legacy_s:.3e}s x{batch_speedup:.2}"
    );
    let tree_findings = tree_scan().findings;
    let scalar_findings = ScanPipeline::new(&arena)
        .run()
        .expect("scalar pairwise scan")
        .scan
        .findings;
    let findings_match = tree_findings == scalar_findings;
    if !findings_match {
        eprintln!(
            "GATE FAIL: product-tree findings ({}) differ from the scalar pairwise \
             scan's ({}) at m={batch_m}, bits={batch_bits}",
            tree_findings.len(),
            scalar_findings.len()
        );
        fail = true;
    } else {
        eprintln!(
            "gate OK: product-tree findings bitwise-identical to the scalar scan \
             ({} findings) at m={batch_m}, bits={batch_bits}",
            tree_findings.len()
        );
    }

    let ladder = thresholds::snapshot()
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"bigint_ladder\",\n",
            "  \"limb_bits\": {lb},\n",
            "  \"thresholds\": {{{ladder}}},\n",
            "  \"mul\": [\n{mul}\n  ],\n",
            "  \"div\": [\n{div}\n  ],\n",
            "  \"gcd\": [\n{gcd}\n  ],\n",
            "  \"batch_scan\": {{\"m\": {bm}, \"bits\": {bb}, \"findings\": {bf},\n",
            "    \"ladder_seconds\": {bls:.9}, \"legacy_seconds\": {bgs:.9},\n",
            "    \"speedup\": {bsp:.4}, \"findings_match_scalar\": {fm}}}\n",
            "}}\n"
        ),
        lb = LIMB_BITS,
        ladder = ladder,
        mul = json_rows(&mul_rows),
        div = json_rows(&div_rows),
        gcd = json_rows(&gcd_rows),
        bm = batch_m,
        bb = batch_bits,
        bf = tree_findings.len(),
        bls = batch_ladder_s,
        bgs = batch_legacy_s,
        bsp = batch_speedup,
        fm = findings_match,
    );
    std::fs::write(&out, &json).expect("write BENCH_bigint.json");
    println!("{json}");
    eprintln!("wrote {out}");

    if !gate {
        // A non-gated run may still be used for sweeps; report-only.
        if fail {
            std::process::exit(1);
        }
        return;
    }

    // The speedup gates: >= 1.5x at the widest mul/div shapes, and a
    // <= 1.05x regression floor where the ladder coincides with the legacy
    // path (32/64 limbs).
    const WIDE_SPEEDUP: f64 = 1.5;
    const NARROW_FLOOR: f64 = 1.0 / 1.05;
    let mut check = |what: &str, label: &str, speedup: f64, floor: f64| {
        if speedup < floor {
            eprintln!("GATE FAIL: {what} at {label}: x{speedup:.3} < {floor:.3}");
            fail = true;
        } else {
            eprintln!("gate OK: {what} at {label}: x{speedup:.3} >= {floor:.3}");
        }
    };
    if let Some(r) = mul_rows.last() {
        check(
            "dispatched mul vs Karatsuba",
            &r.label,
            r.speedup,
            WIDE_SPEEDUP,
        );
    }
    if let Some(r) = div_rows.last() {
        check("Newton div vs Knuth", &r.label, r.speedup, WIDE_SPEEDUP);
    }
    if let Some(r) = gcd_rows.last() {
        check("half-GCD vs binary", &r.label, r.speedup, WIDE_SPEEDUP);
    }
    for rows in [&mul_rows, &div_rows] {
        for r in rows
            .iter()
            .filter(|r| r.label.contains(": 32") || r.label.contains(": 64"))
        {
            check("narrow-width floor", &r.label, r.speedup, NARROW_FLOOR);
        }
    }
    check(
        "product-tree batch scan (new ladder vs legacy)",
        &format!("m={batch_m}, bits={batch_bits}"),
        batch_speedup,
        1.05,
    );
    if fail {
        std::process::exit(1);
    }
    eprintln!("gate OK: subquadratic ladder gates all passed");
}
