//! Reproduces the UMM material: **Fig. 2** (pipeline walkthrough),
//! **Fig. 3 / Theorem 1** (column-wise bulk execution meets the
//! `(p/w + l − 1)·t` bound, row-wise does not), and the §VI
//! semi-obliviousness claim for the GCD kernels.
//!
//! Run: `cargo run --release -p bulkgcd-bench --bin fig_umm -- [--gcd] [--pairs N] [--bits B]`

use bulkgcd_bench::{odd_pairs, Options};
use bulkgcd_core::{Algorithm, Termination};
use bulkgcd_umm::gcd_trace::bulk_gcd_trace;
use bulkgcd_umm::{analyze, simulate, BulkTrace, Layout, UmmConfig, UmmReport};

fn oblivious_bulk(p: usize, steps: usize) -> BulkTrace {
    let mut b = BulkTrace::with_threads(p);
    for th in &mut b.threads {
        for i in 0..steps {
            th.read(i);
        }
    }
    b
}

fn main() {
    let opts = Options::from_env();

    println!("=== Fig. 2 walkthrough: w = 4, l = 5 ===");
    let cfg = UmmConfig::new(4, 5);
    let mut b = BulkTrace::with_threads(8);
    for (j, &o) in [0usize, 0, 1, 2, 1, 1, 1, 1].iter().enumerate() {
        b.threads[j].read(o);
    }
    let r = simulate(&b, Layout::ColumnWise, cfg);
    println!(
        "W(0) spans 3 address groups, W(1) spans 1; completion in {} time units (paper: 3+1+5-1 = 8)\n",
        r.time_units
    );

    println!("=== Theorem 1: oblivious bulk, column-wise vs row-wise ===");
    println!(
        "{:>6} {:>4} {:>4} {:>6} | {:>12} {:>12} {:>12} {:>9}",
        "p", "w", "l", "steps", "col-wise", "bound", "row-wise", "row/col"
    );
    for (p, w, l, steps) in [
        (128usize, 32usize, 16usize, 64usize),
        (1024, 32, 32, 64),
        (4096, 32, 64, 64),
        (1024, 32, 256, 64),
    ] {
        let bulk = oblivious_bulk(p, steps);
        let cfg = UmmConfig::new(w, l);
        let col = simulate(&bulk, Layout::ColumnWise, cfg);
        let row = simulate(&bulk, Layout::RowWise, cfg);
        let bound = UmmReport::theorem1_bound(p, steps as u64, cfg);
        println!(
            "{:>6} {:>4} {:>4} {:>6} | {:>12} {:>12} {:>12} {:>9.1}",
            p,
            w,
            l,
            steps,
            col.time_units,
            bound,
            row.time_units,
            row.time_units as f64 / col.time_units as f64
        );
        assert_eq!(col.time_units, bound, "oblivious column-wise is exact");
    }

    {
        let pairs_n: usize = opts.get("pairs", 128);
        let bits: u64 = opts.get("bits", 512);
        println!("\n=== Section VI: bulk GCD traces ({pairs_n} pairs, {bits}-bit, early term) ===");
        println!(
            "{:<14} {:>10} {:>13} {:>13} {:>9} {:>11} {:>13}",
            "algorithm", "steps", "col-time", "row-time", "row/col", "uniform%", "<=2 offsets%"
        );
        let inputs = odd_pairs(pairs_n, bits, 99);
        let term = Termination::Early {
            threshold_bits: bits / 2,
        };
        let cfg = UmmConfig::new(32, 32);
        for algo in [
            Algorithm::Binary,
            Algorithm::FastBinary,
            Algorithm::Approximate,
        ] {
            let bulk = bulk_gcd_trace(algo, &inputs, term);
            let col = simulate(&bulk, Layout::ColumnWise, cfg);
            let row = simulate(&bulk, Layout::RowWise, cfg);
            let ob = analyze(&bulk);
            println!(
                "{:<14} {:>10} {:>13} {:>13} {:>9.1} {:>10.1}% {:>12.1}%",
                algo.name().replace(" Euclidean algorithm", ""),
                bulk.steps(),
                col.time_units,
                row.time_units,
                row.time_units as f64 / col.time_units as f64,
                ob.uniform_fraction() * 100.0,
                ob.near_uniform_fraction() * 100.0
            );
        }
        println!("\nThe high <=2-offset fraction is the paper's semi-obliviousness: the");
        println!("word scan is uniform up to the X/Y pointer swap; only the O(1)");
        println!("approx/compare reads per iteration scatter.");

        // Extension: the same traces on the DMM (shared-memory banks, §I).
        println!("\n=== Extension: DMM (shared-memory bank) model on the same traces ===");
        use bulkgcd_umm::simulate_dmm;
        println!(
            "{:<14} {:>16} {:>16} {:>18} {:>18}",
            "algorithm", "col conflict-free", "row conflict-free", "col stages", "row stages"
        );
        for algo in [Algorithm::Binary, Algorithm::Approximate] {
            let bulk = bulk_gcd_trace(algo, &inputs[..pairs_n.min(64)], term);
            let col = simulate_dmm(&bulk, Layout::ColumnWise, cfg);
            let row = simulate_dmm(&bulk, Layout::RowWise, cfg);
            println!(
                "{:<14} {:>16.1}% {:>16.1}% {:>18} {:>18}",
                algo.name().replace(" Euclidean algorithm", ""),
                col.conflict_free_fraction() * 100.0,
                row.conflict_free_fraction() * 100.0,
                col.stages_occupied,
                row.stages_occupied
            );
        }
        println!("(column-wise wins on both machine models: banks stay distinct AND bursts stay contiguous)");

        // Ablation: force full obliviousness (fixed full-width scans).
        println!("\n=== Ablation: semi-oblivious vs fully oblivious execution ===");
        use bulkgcd_umm::gcd_trace::bulk_gcd_trace_oblivious;
        let subset = &inputs[..pairs_n.min(64)];
        let semi = bulk_gcd_trace(Algorithm::Approximate, subset, term);
        let obl = bulk_gcd_trace_oblivious(Algorithm::Approximate, subset, term);
        let semi_sim = simulate(&semi, Layout::ColumnWise, cfg);
        let obl_sim = simulate(&obl, Layout::ColumnWise, cfg);
        println!(
            "semi-oblivious : {:>9} accesses, {:>9} UMM time units, coalesced {:>5.1}%",
            semi.total_accesses(),
            semi_sim.time_units,
            semi_sim.coalesced_fraction() * 100.0
        );
        println!(
            "fully oblivious: {:>9} accesses, {:>9} UMM time units, coalesced {:>5.1}%",
            obl.total_accesses(),
            obl_sim.time_units,
            obl_sim.coalesced_fraction() * 100.0
        );
        println!(
            "(the oblivious kernel buys 100% coalescing with {:.2}x the word traffic)",
            obl.total_accesses() as f64 / semi.total_accesses().max(1) as f64
        );
    }
}
