//! Reproduces **Table V**: per-GCD time in microseconds for (C) Binary,
//! (D) Fast Binary and (E) Approximate Euclid on the CPU (measured
//! wall-clock, single thread) and the GPU (simulated GTX 780 Ti), with the
//! CPU/GPU ratio, for non-terminate and early-terminate modes.
//!
//! Paper setup: all 134M pairs of 16K moduli on a Xeon X7460 and a real
//! GTX 780 Ti. Here the CPU numbers are real measurements on the host and
//! the GPU numbers come from the architectural simulator; compare shapes
//! (who wins, by what factor), not absolute microseconds.
//!
//! Run: `cargo run --release -p bulkgcd-bench --bin table5 -- [--pairs N] [--bits a,b,..]`

use bulkgcd_bench::{cpu_seconds_per_gcd, rsa_modulus_pairs, Options};
use bulkgcd_core::{Algorithm, Termination};
use bulkgcd_gpu::{simulate_bulk_gcd_pairs, CostModel, DeviceConfig};

/// Paper Table V (microseconds per GCD): (bits, tag, cpu_non, cpu_early,
/// gpu_non, gpu_early).
const PAPER: &[(u64, &str, f64, f64, f64, f64)] = &[
    (512, "(C)", 25.7, 17.1, 0.460, 0.410),
    (512, "(D)", 16.9, 10.8, 0.137, 0.105),
    (512, "(E)", 14.8, 9.40, 0.115, 0.0773),
    (1024, "(C)", 81.0, 56.2, 3.54, 2.93),
    (1024, "(D)", 49.7, 33.6, 0.683, 0.583),
    (1024, "(E)", 43.4, 28.6, 0.437, 0.346),
    (2048, "(C)", 279.0, 200.0, 15.8, 12.5),
    (2048, "(D)", 166.0, 117.0, 3.01, 2.32),
    (2048, "(E)", 140.0, 96.4, 1.75, 1.33),
    (4096, "(C)", 1040.0, 771.0, 66.8, 50.6),
    (4096, "(D)", 624.0, 448.0, 11.9, 9.11),
    (4096, "(E)", 499.0, 357.0, 6.69, 5.01),
];

fn paper(bits: u64, tag: &str) -> (f64, f64, f64, f64) {
    PAPER
        .iter()
        .find(|r| r.0 == bits && r.1 == tag)
        .map(|r| (r.2, r.3, r.4, r.5))
        .unwrap_or((f64::NAN, f64::NAN, f64::NAN, f64::NAN))
}

fn main() {
    let opts = Options::from_env();
    let pairs_n: usize = opts.get("pairs", 64);
    // The GPU needs enough lanes in flight to occupy its 15 SMs, otherwise
    // per-GCD time is dominated by idle hardware (the paper amortizes over
    // 134M pairs). Default: two warps per SM.
    let gpu_pairs_n: usize = opts.get("gpu-pairs", pairs_n.max(960));
    let sizes = opts.get_list("bits", &[512, 1024]);
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();
    let algos = [
        Algorithm::Binary,
        Algorithm::FastBinary,
        Algorithm::Approximate,
    ];

    println!("TABLE V. The performance of Euclidean algorithms: one GCD computing");
    println!("time in microseconds ({pairs_n} sampled pairs per size; paper used all");
    println!(
        "pairs of 16K moduli). CPU = measured on this host; GPU = simulated {}.",
        device.name
    );

    for &bits in &sizes {
        let pairs = rsa_modulus_pairs(pairs_n, bits, 55);
        // Cheaper odd pairs for the big GPU batch: identical iteration
        // statistics, no prime generation cost.
        let gpu_pairs = bulkgcd_bench::odd_pairs(gpu_pairs_n, bits, 56);
        let early = Termination::Early {
            threshold_bits: bits / 2,
        };
        println!("\n--- {bits}-bit moduli ---");
        println!(
            "{:<6} {:<12} {:>10} {:>9} | {:>10} {:>9} | {:>9} {:>9}",
            "mode", "algorithm", "CPU us", "(paper)", "GPU us", "(paper)", "CPU/GPU", "(paper)"
        );
        for (mode, term, early_mode) in [("non", Termination::Full, false), ("early", early, true)]
        {
            for algo in algos {
                let cpu_us = cpu_seconds_per_gcd(algo, &pairs, term) * 1e6;
                let launch = simulate_bulk_gcd_pairs(&device, &cost, algo, &gpu_pairs, term);
                let gpu_us = launch.per_gcd_seconds * 1e6;
                let (pc_n, pc_e, pg_n, pg_e) = paper(bits, algo.tag());
                let (pc, pg) = if early_mode {
                    (pc_e, pg_e)
                } else {
                    (pc_n, pg_n)
                };
                println!(
                    "{:<6} {:<12} {:>10.2} {:>9.1} | {:>10.3} {:>9.3} | {:>9.1} {:>9.1}",
                    mode,
                    algo.tag(),
                    cpu_us,
                    pc,
                    gpu_us,
                    pg,
                    cpu_us / gpu_us,
                    pc / pg
                );
            }
        }
    }

    // Projection to the paper's full experiment: all pairs of 16K moduli.
    println!("\n--- Projected full scan of all 16384*16383/2 pairs (simulated GPU, early-terminate, (E)) ---");
    for &bits in &sizes {
        let gpu_pairs = bulkgcd_bench::odd_pairs(gpu_pairs_n, bits, 56);
        let est = bulkgcd_bulk::estimate_full_scan(
            &device,
            &cost,
            Algorithm::Approximate,
            &gpu_pairs,
            16_384,
            bits,
            Termination::Early {
                threshold_bits: bits / 2,
            },
        );
        let paper_us = paper(bits, "(E)").3;
        println!(
            "{bits:>5}-bit: {:.1} s simulated (paper: {:.1} s from {:.3} us/GCD)",
            est.total_seconds,
            paper_us * 1e-6 * est.pairs as f64,
            paper_us
        );
    }

    // §VII footnote: host->device transfer is negligible.
    let moduli_bytes = 16_384u64 * (sizes.iter().max().copied().unwrap_or(1024) / 8);
    println!(
        "\nHost->device transfer of 16K moduli: {:.4} s (paper: 0.002 s for 16K 4096-bit moduli)",
        device.host_transfer_seconds(moduli_bytes)
    );
    println!("\nNote: GPU times are simulated; compare CPU/GPU *shape* (E < D < C,");
    println!("Binary's ratio depressed by branch divergence), not absolute values.");
}
