//! Reproduces **Table III**: the Approximate Euclidean trace on the
//! paper's running example with d = 4, including the `approx` case and
//! (α, β) per iteration.
//!
//! Run: `cargo run -p bulkgcd-bench --bin table3`

use bulkgcd_bigint::Nat;
use bulkgcd_core::smallword::trace;
use bulkgcd_core::Algorithm;

const X: u128 = 1_043_915;
const Y: u128 = 768_955;

fn grouped(v: u128) -> String {
    if v == 0 {
        "0000".to_string()
    } else {
        Nat::from_u128(v).to_binary_grouped()
    }
}

fn main() {
    println!("TABLE III. An example of computation performed by Approximate");
    println!("Euclidean algorithm (d = 4, D = 16)");
    println!();
    let t = trace(Algorithm::Approximate, X, Y, 4);
    println!(
        "{:>3} | {:<26} {:<26} | {:>5} {:>10}",
        "#", "X after", "Y after", "CASE", "(a, b)"
    );
    for r in &t.rows {
        println!(
            "{:>3} | {:<26} {:<26} | {:>5} {:>10}",
            r.iteration,
            grouped(r.x_after),
            grouped(r.y_after),
            r.case.unwrap().label(),
            format!("({}, {})", r.alpha.unwrap(), r.beta.unwrap()),
        );
    }
    println!();
    println!(
        "{} iterations (paper: 9); GCD = {} (paper: 0101 = 5)",
        t.iterations(),
        grouped(t.gcd)
    );
    let cases: Vec<&str> = t.rows.iter().map(|r| r.case.unwrap().label()).collect();
    assert_eq!(t.iterations(), 9);
    assert_eq!(t.gcd, 5);
    assert_eq!(
        cases,
        ["4-A", "4-A", "4-A", "4-B", "4-A", "3-B", "1", "1", "1"]
    );
    println!("Case sequence matches the paper: {cases:?}");
}
