//! Reproduces **Table I**: the step-by-step traces of Binary Euclidean and
//! Fast Binary Euclidean on X = 1043915, Y = 768955 with 4-bit words,
//! asserting the paper's iteration counts (24 and 16).
//!
//! Run: `cargo run -p bulkgcd-bench --bin table1`

use bulkgcd_bigint::Nat;
use bulkgcd_core::smallword::trace;
use bulkgcd_core::Algorithm;

const X: u128 = 1_043_915;
const Y: u128 = 768_955;

fn grouped(v: u128) -> String {
    if v == 0 {
        "0000".to_string()
    } else {
        Nat::from_u128(v).to_binary_grouped()
    }
}

fn main() {
    println!("TABLE I. An example of computation performed by Binary Euclidean");
    println!("algorithm and Fast Binary Euclidean algorithm");
    println!();
    let bin = trace(Algorithm::Binary, X, Y, 4);
    let fast = trace(Algorithm::FastBinary, X, Y, 4);
    let rows = bin.rows.len().max(fast.rows.len());
    println!(
        "{:>3} | {:<26} {:<26} | {:<26} {:<26}",
        "#", "Binary X", "Binary Y", "Fast Binary X", "Fast Binary Y"
    );
    for i in 0..rows {
        let b = bin.rows.get(i);
        let f = fast.rows.get(i);
        println!(
            "{:>3} | {:<26} {:<26} | {:<26} {:<26}",
            i + 1,
            b.map_or(String::new(), |r| grouped(r.x_after)),
            b.map_or(String::new(), |r| grouped(r.y_after)),
            f.map_or(String::new(), |r| grouped(r.x_after)),
            f.map_or(String::new(), |r| grouped(r.y_after)),
        );
    }
    println!();
    println!(
        "Binary Euclidean: {} iterations (paper: 24); Fast Binary: {} iterations (paper: 16)",
        bin.iterations(),
        fast.iterations()
    );
    println!("GCD = {} (paper: 0101 = 5)", grouped(bin.gcd));
    assert_eq!(bin.iterations(), 24);
    assert_eq!(fast.iterations(), 16);
    assert_eq!(bin.gcd, 5);
    assert_eq!(fast.gcd, 5);
}
