//! Reproduces **Table IV**: mean iteration counts of all five Euclidean
//! variants over random RSA moduli, non-terminate and early-terminate,
//! plus the (E)−(B) gap row and the §V β>0 statistics.
//!
//! Paper setup: 10000 pairs of 512/1024/2048/4096-bit OpenSSL moduli.
//! Default here: 200 pairs of 512/1024 bits (runtime); scale with
//! `--pairs N --bits 512,1024,2048,4096`.
//!
//! Run: `cargo run --release -p bulkgcd-bench --bin table4 -- [--pairs N] [--bits a,b,..]`

use bulkgcd_bench::{iteration_summary, rsa_modulus_pairs, Options};
use bulkgcd_core::{Algorithm, Termination};

/// Paper Table IV values for comparison: (bits, algo tag, non-term, early).
const PAPER: &[(u64, &str, f64, f64)] = &[
    (512, "(A)", 299.2, 149.9),
    (512, "(B)", 190.5, 95.2),
    (512, "(C)", 722.2, 361.2),
    (512, "(D)", 362.3, 180.4),
    (512, "(E)", 190.5, 95.2),
    (1024, "(A)", 598.4, 299.3),
    (1024, "(B)", 380.8, 190.3),
    (1024, "(C)", 1445.1, 722.8),
    (1024, "(D)", 723.6, 361.0),
    (1024, "(E)", 380.8, 190.3),
    (2048, "(A)", 1197.1, 598.8),
    (2048, "(B)", 761.8, 380.9),
    (2048, "(C)", 2890.8, 1445.8),
    (2048, "(D)", 1446.5, 722.4),
    (2048, "(E)", 761.8, 380.9),
    // The 4096-bit row of the available paper text is garbled (its
    // non-terminate and early-terminate columns appear swapped/shifted), so
    // the linear-in-s extrapolation from the clean rows is shown instead:
    // non-term ~ 2x the 2048 value, early ~ half of non-term.
    (4096, "(A)", 2394.2, 1197.1),
    (4096, "(B)", 1523.6, 761.8),
    (4096, "(C)", 5781.6, 2890.8),
    (4096, "(D)", 2893.0, 1446.5),
    (4096, "(E)", 1523.6, 761.8),
];

fn paper_value(bits: u64, tag: &str) -> Option<(f64, f64)> {
    PAPER
        .iter()
        .find(|(b, t, _, _)| *b == bits && *t == tag)
        .map(|(_, _, n, e)| (*n, *e))
}

fn main() {
    let opts = Options::from_env();
    let pairs_n: usize = opts.get("pairs", 200);
    let sizes = opts.get_list("bits", &[512, 1024]);

    println!("TABLE IV. The number of iterations performed by Euclidean algorithms");
    println!("({pairs_n} random RSA-modulus pairs per size; paper used 10000)");
    println!();
    for &bits in &sizes {
        println!("--- {bits}-bit RSA moduli ---");
        println!(
            "{:<40} {:>13} {:>11} {:>13} {:>11}",
            "algorithm", "non-term", "(paper)", "early-term", "(paper)"
        );
        let pairs = rsa_modulus_pairs(pairs_n, bits, 2015);
        let early = Termination::Early {
            threshold_bits: bits / 2,
        };
        let mut fast_means = (0.0, 0.0);
        let mut approx_means = (0.0, 0.0);
        let mut beta_stats = (0u64, 0u64);
        for algo in Algorithm::ALL {
            let full = iteration_summary(algo, &pairs, Termination::Full);
            let early_s = iteration_summary(algo, &pairs, early);
            let (pn, pe) = paper_value(bits, algo.tag()).unwrap_or((f64::NAN, f64::NAN));
            println!(
                "{} {:<36} {:>8.1} ±{:<4.1} {:>11.1} {:>8.1} ±{:<4.1} {:>11.1}",
                algo.tag(),
                algo.name(),
                full.mean_iterations,
                full.distribution.ci95(),
                pn,
                early_s.mean_iterations,
                early_s.distribution.ci95(),
                pe
            );
            match algo {
                Algorithm::Fast => fast_means = (full.mean_iterations, early_s.mean_iterations),
                Algorithm::Approximate => {
                    approx_means = (full.mean_iterations, early_s.mean_iterations);
                    beta_stats = (
                        full.beta_nonzero + early_s.beta_nonzero,
                        full.total_iterations + early_s.total_iterations,
                    );
                }
                _ => {}
            }
        }
        println!(
            "    (E)-(B): non-term {:+.4}, early {:+.4}   (paper: ~+0.003, ~+0.001)",
            approx_means.0 - fast_means.0,
            approx_means.1 - fast_means.1
        );
        println!(
            "    beta>0 fired {} times in {} (E)-iterations (paper section V: rate < 1e-8 at d=32)",
            beta_stats.0, beta_stats.1
        );
        println!();
    }
}
