//! Reproduces the §I/§VII related-work comparison: per-1024-bit-GCD time
//! of this implementation against the published prior GPU results the
//! paper cites, plus the paper's own number.
//!
//! Run: `cargo run --release -p bulkgcd-bench --bin related_work -- [--pairs N]`

use bulkgcd_bench::{rsa_modulus_pairs, Options};
use bulkgcd_core::{Algorithm, Termination};
use bulkgcd_gpu::{simulate_bulk_gcd_pairs, CostModel, DeviceConfig};

/// Published per-1024-bit-GCD times the paper compares against (§I).
const LITERATURE: &[(&str, &str, f64)] = &[
    ("Fujimoto [19], 2009", "GeForce GTX 285", 10.9),
    ("Scharfglass et al. [20], 2012", "GeForce GTX 480", 10.02),
    ("White [21], 2013", "Tesla K20Xm", 3.15),
    (
        "Fujita et al. (the paper), 2015",
        "GeForce GTX 780 Ti",
        0.346,
    ),
];

fn main() {
    let opts = Options::from_env();
    // Enough lanes to occupy every simulated device (2 warps per SM on the
    // 30-SM GTX 285); per-GCD time is meaningless on an idle device.
    let pairs_n: usize = opts.get("pairs", 1920);
    let bits = 1024;
    let pairs = rsa_modulus_pairs(pairs_n, bits, 77);
    let term = Termination::Early {
        threshold_bits: bits / 2,
    };
    let cost = CostModel::default();

    println!("Related-work comparison: time per 1024-bit GCD (microseconds)\n");
    println!("{:<36} {:<26} {:>10}", "implementation", "device", "us/GCD");
    for (who, device, us) in LITERATURE {
        println!("{who:<36} {device:<26} {us:>10.3}");
    }
    // Our Approximate Euclid on the simulated 780 Ti, and — as a bonus —
    // Binary Euclid on the simulated GTX 285 to sanity-check the simulator
    // against Fujimoto's generation of hardware.
    let ours = simulate_bulk_gcd_pairs(
        &DeviceConfig::gtx_780_ti(),
        &cost,
        Algorithm::Approximate,
        &pairs,
        term,
    );
    println!(
        "{:<36} {:<26} {:>10.3}",
        "this repo, Approximate (E)",
        "GTX 780 Ti (simulated)",
        ours.per_gcd_seconds * 1e6
    );
    let fujimoto_like = simulate_bulk_gcd_pairs(
        &DeviceConfig::gtx_285(),
        &cost,
        Algorithm::Binary,
        &pairs,
        Termination::Full,
    );
    println!(
        "{:<36} {:<26} {:>10.3}",
        "this repo, Binary (C) a la [19]",
        "GTX 285 (simulated)",
        fujimoto_like.per_gcd_seconds * 1e6
    );
    // The other two prior results, each on its own simulated device
    // (both used Binary-Euclid-style kernels).
    let scharfglass_like = simulate_bulk_gcd_pairs(
        &DeviceConfig::gtx_480(),
        &cost,
        Algorithm::Binary,
        &pairs,
        Termination::Full,
    );
    println!(
        "{:<36} {:<26} {:>10.3}",
        "this repo, Binary (C) a la [20]",
        "GTX 480 (simulated)",
        scharfglass_like.per_gcd_seconds * 1e6
    );
    let white_like = simulate_bulk_gcd_pairs(
        &DeviceConfig::tesla_k20xm(),
        &cost,
        Algorithm::Binary,
        &pairs,
        Termination::Full,
    );
    println!(
        "{:<36} {:<26} {:>10.3}",
        "this repo, Binary (C) a la [21]",
        "Tesla K20Xm (simulated)",
        white_like.per_gcd_seconds * 1e6
    );

    let speedup = fujimoto_like.per_gcd_seconds / ours.per_gcd_seconds;
    println!(
        "\nSimulated speedup of (E)@780Ti over (C)@285: {speedup:.1}x \
         (paper claims >9x over the best prior same-generation result)"
    );
}
