//! Machine-readable scan-throughput benchmark: `BENCH_scan.json`.
//!
//! Measures pairs/second for the arena-backed CPU scan (against the
//! pre-refactor per-block path), the lockstep SIMT host scan (against the
//! scalar arena path), and the parallel simulated-GPU scan (against its
//! serial reference) across a corpus-size × modulus-width grid, and writes
//! one JSON report for tooling to diff across commits. All scans run
//! through the composable [`ScanPipeline`] builder; the legacy
//! `scan_lockstep_arena` entry point is benched alongside it so the
//! builder's composition overhead is itself a measured quantity.
//!
//! A separate `batch_tree` section benches the [`ProductTreeBackend`]
//! remainder-tree scan at corpus sizes the all-pairs grid cannot afford
//! (`--batch-sizes 64,256,1024` at the widest benched moduli), with the
//! scalar all-pairs scan as an interleaved reference — and findings
//! identity asserted — up to `--batch-scalar-cap` keys.
//!
//! Run: `cargo run --release -p bulkgcd-bench --bin scan_bench --
//!       [--sizes 16,32,64] [--bits 128,1024] [--reps 3] [--warp-width 32]
//!       [--batch-sizes 64,256,1024] [--out BENCH_scan.json]`
//!
//! Perf-regression gates (used by `scripts/check.sh`), both judged at the
//! largest corpus of the widest moduli benched. Every gated wall-clock
//! ratio is the *median of per-round ratios* from an interleaved timing
//! loop, so frequency scaling and throttle phases that slow every
//! contestant equally cancel out of the gate:
//!
//! * `--gate-lockstep` fails the run (exit 1) if the lockstep scan's
//!   pairs/second fall below 0.95× the scalar arena path's;
//! * `--gate-pipeline` fails the run if the builder-composed lockstep
//!   pipeline falls below 0.98× the direct `scan_lockstep_arena` call —
//!   the builder must stay a zero-cost veneer;
//! * `--gate-compaction` fails the run if, at the largest 128-bit corpus,
//!   the compacted (queue-mode) lockstep scan's SIMT efficiency (mean
//!   active-lane occupancy, a deterministic function of the corpus) is
//!   less than 1.15× plain lockstep's; if the compacted scan's wall clock
//!   falls below a no-regression floor of 0.90× plain at the largest
//!   128-bit corpus (queue service costs a few percent there) or 0.95× at
//!   the largest 1024-bit corpus; or if the auto-tuned backend falls below
//!   0.90× the best fixed backend on any cell of the bench matrix (a wrong
//!   selection costs 13-50%, so the gate still binds). (On the
//!   host AVX2 kernel masked lanes are nearly free, so reclaimed slots
//!   gate as occupancy, not wall clock — see DESIGN.md.)
//! * `--gate-ingest` fails the run if the streaming sanitizer's keys/s on
//!   an `--ingest-keys` (default 64k) synthetic hostile corpus fall below
//!   an absolute floor set ~5x under the reference box's measured rate,
//!   or if the measurement's peak-RSS delta (`VmHWM`) exceeds a generous
//!   corpus-footprint tripwire — the regression it exists to catch is the
//!   old sanitizer's habit of cloning every accepted modulus and storing
//!   every quarantined one. The measured cell lands in the JSON report's
//!   `ingest` section.
//!
//! Fault-injection smoke mode (used by `scripts/check.sh`): `--inject-faults
//! [--resume] [--fault-seed N]` runs the journaled pipeline under a seeded
//! fault plan — transient faults retried, persistent faults degraded to the
//! CPU path, kills resumed from the journal (with `--resume`) — and checks
//! the findings against an uninterrupted fault-free scan.

use bulkgcd_bench::Options;
use bulkgcd_bigint::Nat;
use bulkgcd_bulk::{
    group_size_for, run_sharded, AutoBackend, CompactionConfig, FaultPlan, GpuSimBackend,
    GroupedPairs, LockstepBackend, ModuliArena, ProductTreeBackend, ScanError, ScanJournal,
    ScanPipeline, ShardConfig, ShardFaultPlan, TilePlan,
};
use bulkgcd_core::{run, Algorithm, GcdOutcome, GcdPair, NoProbe, Termination};
use bulkgcd_gpu::{CostModel, DeviceConfig, RetryPolicy};
use bulkgcd_rsa::build_corpus;
use bulkgcd_rsa::{sanitize_moduli, StreamingSanitizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::time::Instant;

/// The pre-refactor CPU scan (one workspace per block, owned-`Nat` loads,
/// allocating `run`) — the baseline the arena path must not regress below.
fn scan_cpu_prerefactor(moduli: &[Nat], algo: Algorithm, early: bool) -> usize {
    let m = moduli.len();
    let grid = GroupedPairs::new(m, group_size_for(m));
    let blocks: Vec<_> = grid.blocks().collect();
    let findings: Vec<(usize, usize, Nat)> = blocks
        .par_iter()
        .map(|&b| {
            let mut pair = GcdPair::with_capacity(1);
            let mut found = Vec::new();
            for (i, j) in grid.block_pairs(b) {
                let (a, c) = (&moduli[i], &moduli[j]);
                pair.load(a, c);
                let term = if early {
                    Termination::Early {
                        threshold_bits: a.bit_len().min(c.bit_len()) / 2,
                    }
                } else {
                    Termination::Full
                };
                if let GcdOutcome::Gcd(g) = run(algo, &mut pair, term, &mut NoProbe) {
                    if !g.is_one() {
                        found.push((i, j, g));
                    }
                }
            }
            found
        })
        .flatten()
        .collect();
    findings.len()
}

/// Best-of-`reps` wall seconds for `f` (one warmup call first).
fn best_seconds<F: FnMut() -> usize>(reps: usize, mut f: F) -> (f64, usize) {
    let sink = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let got = std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(got, sink, "non-deterministic scan result");
    }
    (best, sink)
}

/// Interleaved per-round timing and the median-of-per-round-ratio
/// aggregation live in [`bulkgcd_bench::gate`], shared with `bigint_bench`.
/// Sub-millisecond cells are noise-dominated at any fixed rep count, so
/// [`round_times`] tops rounds up until the slowest contestant has
/// accumulated ~[`gate::GATE_SAMPLE_SECONDS`] of samples (capped at
/// [`gate::MAX_GATE_ROUNDS`]) — the gated ratios stay meaningful on tiny
/// corpora without slowing the big cells down.
use bulkgcd_bench::gate::{best_of, median, median_speedup, round_times};

/// One bench cell's measured quantities. Throughputs are best-of-rounds;
/// the `*_vs_*` ratios are medians of per-round ratios (see
/// [`round_times`]), which is what the gates judge.
#[derive(Clone, Copy)]
struct Cell {
    m: usize,
    bits: u64,
    cpu_tp: f64,
    ls_tp: f64,
    cls_tp: f64,
    auto_tp: f64,
    ls_vs_cpu: f64,
    ls_vs_direct: f64,
    cls_vs_ls: f64,
    auto_vs_best: f64,
    ls_occ: f64,
    cls_occ: f64,
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.9}")
    } else {
        "null".to_string()
    }
}

/// The `--inject-faults` smoke run: drive the journaled pipeline through a
/// seeded fault plan and prove it lands on the fault-free findings.
fn fault_smoke(opts: &Options) {
    let m: usize = opts.get("keys", 24);
    let bits: u64 = opts.get("bits", 128);
    let launch_pairs: usize = opts.get("launch-pairs", 16);
    // The default seed's plan covers all three fault kinds: kills at
    // launch boundaries, retried transients and persistent→CPU fallbacks.
    let seed: u64 = opts.get("fault-seed", 7);
    let resume = opts.has("resume");
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();
    let policy = RetryPolicy::default();
    let algo = Algorithm::Approximate;

    let mut rng = StdRng::seed_from_u64(seed);
    let moduli = build_corpus(&mut rng, m, bits, 2).moduli();
    let arena = ModuliArena::try_from_moduli(&moduli).expect("corpus is non-degenerate");
    let launches = ((m * (m - 1) / 2) as u64).div_ceil(launch_pairs as u64);
    let gpu_backend = || GpuSimBackend {
        device: device.clone(),
        cost: cost.clone(),
    };
    let baseline = ScanPipeline::new(&arena)
        .algorithm(algo)
        .backend(gpu_backend())
        .launch_pairs(launch_pairs)
        .run()
        .expect("fault-free baseline scan")
        .scan;

    let mut plan = FaultPlan::seeded(seed, launches);
    eprintln!(
        "fault smoke: {m} keys, {launches} launches, {} faulted ({} kills), resume={resume}",
        plan.len(),
        plan.kill_launches().count(),
    );
    let mut journal = ScanJournal::in_memory();
    let mut crashes = 0u32;
    let report = loop {
        let attempt = ScanPipeline::new(&arena)
            .algorithm(algo)
            .backend(gpu_backend())
            .launch_pairs(launch_pairs)
            .journal(&mut journal)
            .faults(&plan)
            .retry(policy)
            .run();
        match attempt {
            Ok(rep) => break rep,
            Err(ScanError::Interrupted { launch }) if resume => {
                // The process "crashed" at this launch boundary; a restart
                // sees the same journal but the crash does not recur.
                crashes += 1;
                plan = plan.without_kill_at(launch);
                eprintln!("  killed at launch {launch}; resuming from journal");
            }
            Err(e) => {
                eprintln!("error: fault smoke failed: {e} (rerun with --resume?)");
                std::process::exit(1);
            }
        }
    };

    assert_eq!(
        report.scan.findings, baseline.findings,
        "resumed scan must reproduce the fault-free findings"
    );
    let s = &report.stats;
    eprintln!(
        "  survived {crashes} crash(es): {}/{} launches resumed from journal, \
         {} retried attempts, {} CPU fallbacks, {:?} total backoff",
        s.resumed_launches,
        s.total_launches,
        s.retried_attempts,
        s.cpu_fallback_launches,
        s.backoff,
    );
    println!(
        "fault smoke OK: {} findings match the fault-free scan",
        report.scan.findings.len()
    );
}

/// The `--shards --inject-faults` smoke: run the full shard protocol —
/// tile plan, lease ledger, worker deaths, torn journals, lease losses,
/// duplicate completions, all from a seeded [`ShardFaultPlan`] — and
/// prove the merged report matches the unsharded fault-free scan bit for
/// bit (findings and the f64 simulated-seconds sum). Resume is inherent
/// to the protocol (dead workers' tiles are reclaimed and resumed from
/// their journals), so `--resume` is accepted and implied.
fn shard_smoke(opts: &Options) {
    let m: usize = opts.get("keys", 24);
    let bits: u64 = opts.get("bits", 128);
    let launch_pairs: usize = opts.get("launch-pairs", 16);
    let shards: usize = opts.get("shards", 4);
    let seed: u64 = opts.get("fault-seed", 7);
    let algo = Algorithm::Approximate;
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();

    let mut rng = StdRng::seed_from_u64(seed);
    let moduli = build_corpus(&mut rng, m, bits, 2).moduli();
    let arena = ModuliArena::try_from_moduli(&moduli).expect("corpus is non-degenerate");
    let gpu_backend = || GpuSimBackend {
        device: device.clone(),
        cost: cost.clone(),
    };
    let baseline = ScanPipeline::new(&arena)
        .algorithm(algo)
        .backend(gpu_backend())
        .launch_pairs(launch_pairs)
        .run()
        .expect("fault-free baseline scan")
        .scan;

    let plan = TilePlan::new(m, launch_pairs, shards);
    let faults = ShardFaultPlan::seeded(seed, plan.len() as u64);
    eprintln!(
        "shard smoke: {m} keys, {} launches in {} tiles, {} tile faults injected",
        plan.launches(),
        plan.len(),
        faults.len(),
    );
    let mut config = ShardConfig::new(shards, launch_pairs);
    config.algo = algo;
    config.serial = true;
    let report = match run_sharded(&arena, &config, &faults, gpu_backend) {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!("error: shard smoke failed: {e}");
            std::process::exit(1);
        }
    };

    assert_eq!(
        report.scan.findings, baseline.findings,
        "sharded scan must reproduce the unsharded findings"
    );
    assert_eq!(
        report.scan.simulated_seconds.map(f64::to_bits),
        baseline.simulated_seconds.map(f64::to_bits),
        "sharded simulated-seconds sum must match the unsharded run bit for bit"
    );
    let s = &report.stats;
    eprintln!(
        "  survived {} worker death(s) ({} torn journals), {} lease loss(es), \
         {} duplicate completion(s); {} attempts, {} launches executed, {} resumed",
        s.worker_deaths,
        s.torn_journals,
        s.lease_losses,
        s.duplicate_completions,
        s.worker_attempts,
        s.executed_launches,
        s.resumed_launches,
    );
    println!(
        "shard smoke OK: {} findings and simulated seconds match the unsharded scan",
        report.scan.findings.len()
    );
}

/// The `--gate-shards` efficiency gate. This box may be single-core, so
/// the gate judges *serial work*, not wall-clock parallelism: it times the
/// unsharded serial scan against each tile's serial scan (interleaved, per
/// round) and requires
/// `t_unsharded / (shards × max_tile_time) >= EFFICIENCY_FLOOR` — i.e.
/// sharding must not inflate any tile's work by more than the tile-size
/// imbalance plus a small per-shard overhead budget.
fn gate_shards(opts: &Options) {
    // Defaults chosen so the launch count (64·63/2 / 126 = 16) divides the
    // shard count evenly: the gate then measures per-shard *overhead*, not
    // the structural ceiling a ragged tile plan imposes.
    let m: usize = opts.get("keys", 64);
    let bits: u64 = opts.get("bits", 256);
    let launch_pairs: usize = opts.get("launch-pairs", 126);
    let shards: usize = opts.get("shards", 4);
    let reps: usize = opts.get("reps", 3);
    const EFFICIENCY_FLOOR: f64 = 0.80;
    let algo = Algorithm::Approximate;
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();

    let mut rng = StdRng::seed_from_u64(0x5ca9 ^ m as u64 ^ (bits << 17));
    let moduli = build_corpus(&mut rng, m, bits, 2).moduli();
    let arena = ModuliArena::try_from_moduli(&moduli).expect("gate corpus is non-degenerate");
    let plan = TilePlan::new(m, launch_pairs, shards);
    assert!(
        plan.len() == shards,
        "gate corpus too small: {} launches yield {} tiles, wanted {shards}",
        plan.launches(),
        plan.len()
    );
    let scan_tile = |tile: Option<bulkgcd_bulk::Tile>| {
        let mut pipeline = ScanPipeline::new(&arena)
            .algorithm(algo)
            .backend(GpuSimBackend {
                device: device.clone(),
                cost: cost.clone(),
            })
            .launch_pairs(launch_pairs)
            .serial(true);
        if let Some(t) = tile {
            pipeline = pipeline.tile(t);
        }
        pipeline.run().expect("gate scan").scan.findings.len()
    };

    let mut run_full = || scan_tile(None);
    let mut tile_runs: Vec<Box<dyn FnMut() -> usize>> = plan
        .tiles()
        .iter()
        .map(|&t| Box::new(move || scan_tile(Some(t))) as Box<dyn FnMut() -> usize>)
        .collect();
    let mut contestants: Vec<&mut dyn FnMut() -> usize> = vec![&mut run_full];
    contestants.extend(
        tile_runs
            .iter_mut()
            .map(|b| b.as_mut() as &mut dyn FnMut() -> usize),
    );
    let (times, sinks) = round_times(reps, &mut contestants);

    let tile_findings: usize = sinks[1..].iter().sum();
    assert_eq!(
        tile_findings, sinks[0],
        "per-tile findings must sum to the unsharded scan's"
    );

    // Per-round efficiency: every sample of a ratio is taken in the same
    // round, so throttle phases cancel out of the gated median.
    let rounds = times[0].len();
    let efficiency = median(
        (0..rounds)
            .map(|r| {
                let worst_tile = times[1..].iter().map(|ts| ts[r]).fold(0.0f64, f64::max);
                times[0][r] / (shards as f64 * worst_tile)
            })
            .collect(),
    );
    if efficiency < EFFICIENCY_FLOOR {
        eprintln!(
            "GATE FAIL: per-shard efficiency {efficiency:.3} < {EFFICIENCY_FLOOR} at \
             m={m}, bits={bits}, {shards} shards ({} launches)",
            plan.launches()
        );
        std::process::exit(1);
    }
    eprintln!(
        "gate OK: per-shard efficiency {efficiency:.3} >= {EFFICIENCY_FLOOR} at \
         m={m}, bits={bits}, {shards} shards ({} launches)",
        plan.launches()
    );
}

/// Peak-RSS high-water mark (`VmHWM`) in KiB from `/proc/self/status`, or
/// `None` off Linux. A process-lifetime high-water mark only ever grows,
/// so callers probe it before and after the phase they care about and
/// judge the delta.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Synthetic raw ingest corpus: full-width odd rows from a seeded
/// splitmix64 stream, with quarantine bait woven in at 4/16 (a zero, an
/// even, an undersized value and a duplicate of the preceding accepted
/// row per 16) so the sanitizer's reject and dedup paths run at bench
/// scale. Real keygen would dwarf the ingest being measured, and the
/// sanitizer cannot tell a random odd integer from an RSA modulus.
fn synthetic_raw_corpus(m: usize, bits: u64, seed: u64) -> Vec<Nat> {
    let limbs = bits.div_ceil(32).max(1) as usize;
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut full_width_row = |odd: bool| {
        let mut row: Vec<u32> = (0..limbs).map(|_| next() as u32).collect();
        row[0] = if odd { row[0] | 1 } else { row[0] & !1 };
        *row.last_mut().expect("at least one limb") |= 1 << 31;
        Nat::from_limb_slice(&row)
    };
    let mut raw: Vec<Nat> = Vec::with_capacity(m);
    for k in 0..m {
        let n = match k % 16 {
            0 => Nat::default(),              // zero → quarantined
            1 => full_width_row(false),       // even → quarantined
            2 => Nat::from(0xffff_fffbu32),   // undersized → quarantined
            8 if k > 0 => raw[k - 1].clone(), // duplicate of an accepted row
            _ => full_width_row(true),
        };
        raw.push(n);
    }
    raw
}

/// One measured ingest cell: streaming and borrowed sanitization over the
/// same hostile corpus, interleaved per round, plus the peak-RSS delta the
/// whole measurement added.
struct IngestCell {
    m: usize,
    bits: u64,
    accepted: usize,
    rejected: usize,
    streaming_s: f64,
    borrowed_s: f64,
    streaming_keys_per_sec: f64,
    borrowed_keys_per_sec: f64,
    hwm_delta_kb: u64,
}

fn bench_ingest(m: usize, bits: u64, reps: usize) -> IngestCell {
    let min_bits = bits; // rows are generated full-width; the floor binds
    let raw = synthetic_raw_corpus(m, bits, 0x1956_e57a_11ab_cdefu64);
    let rejected = std::cell::Cell::new(0usize);
    let hwm_before = vm_hwm_kb().unwrap_or(0);
    // Streaming mode owns its rows; the per-row clone below stands in for
    // the parse that produces an owned Nat on the real ingest path.
    let mut run_streaming = || {
        let mut s = StreamingSanitizer::new(min_bits);
        for n in &raw {
            s.push(n.clone());
        }
        let (accepted, report) = s.finish();
        rejected.set(report.rejected.len());
        std::hint::black_box(&report);
        accepted.len()
    };
    let mut run_borrowed = || sanitize_moduli(&raw, min_bits).accepted_count();
    let (times, sinks) = round_times(reps, &mut [&mut run_streaming, &mut run_borrowed]);
    assert_eq!(
        sinks[0], sinks[1],
        "streaming and borrowed sanitization disagree on the accepted count"
    );
    let hwm_after = vm_hwm_kb().unwrap_or(hwm_before);
    let (streaming_s, borrowed_s) = (best_of(&times[0]), best_of(&times[1]));
    IngestCell {
        m,
        bits,
        accepted: sinks[0],
        rejected: rejected.get(),
        streaming_s,
        borrowed_s,
        streaming_keys_per_sec: m as f64 / streaming_s,
        borrowed_keys_per_sec: m as f64 / borrowed_s,
        hwm_delta_kb: hwm_after.saturating_sub(hwm_before),
    }
}

fn main() {
    let opts = Options::from_env();
    if opts.has("inject-faults") {
        if opts.get::<usize>("shards", 0) > 0 {
            shard_smoke(&opts);
        } else {
            fault_smoke(&opts);
        }
        return;
    }
    if opts.has("gate-shards") {
        gate_shards(&opts);
        return;
    }
    let sizes = opts.get_list("sizes", &[16, 32, 64]);
    if sizes.is_empty() {
        eprintln!("error: --sizes needs a comma-separated list of corpus sizes (e.g. 16,32,64)");
        std::process::exit(2);
    }
    let bits_list = opts.get_list("bits", &[128, 1024]);
    if bits_list.is_empty() {
        eprintln!("error: --bits needs a comma-separated list of modulus widths (e.g. 128,1024)");
        std::process::exit(2);
    }
    let reps: usize = opts.get("reps", 3);
    let out: String = opts.get("out", "BENCH_scan.json".to_string());
    let launch_pairs: usize = opts.get("launch-pairs", 256);
    let warp_width: usize = opts.get("warp-width", 32);
    let compact_frac: f64 = opts.get(
        "compact-frac",
        CompactionConfig::default().min_active_fraction,
    );
    let gate_lockstep = opts.has("gate-lockstep");
    let gate_pipeline = opts.has("gate-pipeline");
    let gate_compaction = opts.has("gate-compaction");
    let gate_ingest = opts.has("gate-ingest");
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();
    let algo = Algorithm::Approximate;

    let mut rows = Vec::new();
    // Every cell's throughputs, gated ratios and occupancy, for the gates
    // and the 128-bit deficit report.
    let mut cells: Vec<Cell> = Vec::new();
    for &bits in &bits_list {
        for &m in &sizes {
            let m = m as usize;
            let mut rng = StdRng::seed_from_u64(0x5ca9 ^ m as u64 ^ (bits << 17));
            let moduli = build_corpus(&mut rng, m, bits, 2).moduli();
            let arena =
                ModuliArena::try_from_moduli(&moduli).expect("bench corpus is non-degenerate");
            let pairs = (m * (m - 1) / 2) as f64;

            let compact_cfg = CompactionConfig {
                min_active_fraction: compact_frac,
                ..CompactionConfig::default()
            };
            let auto_backend = || AutoBackend::new(warp_width);

            // The four contestants of the gated ratios run interleaved so
            // drift cannot favor whichever happened to run last.
            let mut run_cpu = || {
                ScanPipeline::new(&arena)
                    .algorithm(algo)
                    .run()
                    .expect("scalar pipeline scan")
                    .scan
                    .findings
                    .len()
            };
            let mut run_ls = || {
                ScanPipeline::new(&arena)
                    .backend(LockstepBackend::new(warp_width))
                    .run()
                    .expect("lockstep pipeline scan")
                    .scan
                    .findings
                    .len()
            };
            let mut run_cls = || {
                ScanPipeline::new(&arena)
                    .backend(LockstepBackend::new(warp_width).with_compaction(compact_cfg))
                    .run()
                    .expect("compacted lockstep pipeline scan")
                    .scan
                    .findings
                    .len()
            };
            let mut run_auto = || {
                ScanPipeline::new(&arena)
                    .backend(auto_backend())
                    .run()
                    .expect("auto pipeline scan")
                    .scan
                    .findings
                    .len()
            };
            // The legacy direct entry point joins the interleaved group:
            // `--gate-pipeline` compares it against the builder path, so
            // both must be timed in the same rounds.
            #[allow(deprecated)]
            let mut run_direct = || {
                // analyze: allow(deprecated-shim, reason = "benches the legacy entry point against the builder path on purpose")
                bulkgcd_bulk::scan_lockstep_arena(&arena, true, warp_width)
                    .findings
                    .len()
            };
            let (times, sinks) = round_times(
                reps,
                &mut [
                    &mut run_cpu,
                    &mut run_ls,
                    &mut run_cls,
                    &mut run_auto,
                    &mut run_direct,
                ],
            );
            let [cpu_found, ls_found, cls_found, auto_found, direct_found] = sinks[..] else {
                unreachable!("five contestants in, five results out");
            };
            let (cpu_ts, ls_ts, cls_ts, auto_ts, direct_ts) =
                (&times[0], &times[1], &times[2], &times[3], &times[4]);
            let (cpu_s, ls_s, cls_s, auto_s, direct_ls_s) = (
                best_of(cpu_ts),
                best_of(ls_ts),
                best_of(cls_ts),
                best_of(auto_ts),
                best_of(direct_ts),
            );
            let ls_vs_cpu = median_speedup(cpu_ts, ls_ts);
            let ls_vs_direct = median_speedup(direct_ts, ls_ts);
            let cls_vs_ls = median_speedup(ls_ts, cls_ts);
            let auto_vs_best = median(
                (0..auto_ts.len())
                    .map(|r| cpu_ts[r].min(ls_ts[r]).min(cls_ts[r]) / auto_ts[r])
                    .collect(),
            );
            assert_eq!(ls_found, cpu_found, "lockstep and arena scans disagree");
            assert_eq!(
                cls_found, cpu_found,
                "compacted lockstep and arena scans disagree"
            );
            assert_eq!(auto_found, cpu_found, "auto and arena scans disagree");
            assert_eq!(direct_found, ls_found, "builder and direct paths disagree");

            let (base_s, base_found) =
                best_seconds(reps, || scan_cpu_prerefactor(&moduli, algo, true));
            assert_eq!(cpu_found, base_found, "arena and baseline disagree");

            // Occupancy accounting (untimed): what fraction of issued warp
            // slots held live lanes, and how often the queue compacted.
            let occupancy_of = |backend: LockstepBackend| {
                let metrics = ScanPipeline::new(&arena)
                    .backend(backend)
                    .metrics()
                    .run()
                    .expect("lockstep metrics scan")
                    .metrics
                    .expect("metrics layer collects");
                (
                    metrics.mean_occupancy().unwrap_or(f64::NAN),
                    metrics.total_compactions(),
                    metrics.total_refills(),
                )
            };
            let (ls_occ, _, _) = occupancy_of(LockstepBackend::new(warp_width));
            let (cls_occ, cls_compactions, cls_refills) =
                occupancy_of(LockstepBackend::new(warp_width).with_compaction(compact_cfg));
            let auto_name = ScanPipeline::new(&arena)
                .backend(auto_backend())
                .metrics()
                .run()
                .expect("auto metrics scan")
                .metrics
                .expect("metrics layer collects")
                .backend;

            let gpu_pipeline = |serial: bool| {
                ScanPipeline::new(&arena)
                    .algorithm(algo)
                    .backend(GpuSimBackend {
                        device: device.clone(),
                        cost: cost.clone(),
                    })
                    .launch_pairs(launch_pairs)
                    .serial(serial)
                    .run()
                    .expect("gpu-sim pipeline scan")
                    .scan
            };
            let (gpu_s, _) = best_seconds(reps, || gpu_pipeline(false).findings.len());
            let par = gpu_pipeline(false);
            let ser = gpu_pipeline(true);
            let par_sim = par.simulated().expect("gpu-sim scans price launches");
            let ser_sim = ser.simulated().expect("gpu-sim scans price launches");
            let parallel_matches_serial = par.findings == ser.findings
                && (par_sim - ser_sim).abs() <= 1e-12 * ser_sim.max(1.0);

            eprintln!(
                "m={m} bits={bits}: cpu {:.0} pairs/s (baseline {:.0}, x{:.2}), \
                 lockstep {:.0} pairs/s (x{:.2} vs cpu, x{:.2} vs direct, occ {:.2}), \
                 compact {:.0} pairs/s (x{:.2} vs plain, occ {:.2}, \
                 {cls_compactions} compactions, {cls_refills} refills), \
                 auto[{auto_name}] {:.0} pairs/s, \
                 gpu-sim host {:.0} pairs/s, simulated {:.3e} s, \
                 parallel==serial: {parallel_matches_serial}",
                pairs / cpu_s,
                pairs / base_s,
                base_s / cpu_s,
                pairs / ls_s,
                ls_vs_cpu,
                ls_vs_direct,
                ls_occ,
                pairs / cls_s,
                cls_vs_ls,
                cls_occ,
                pairs / auto_s,
                pairs / gpu_s,
                par_sim,
            );

            cells.push(Cell {
                m,
                bits,
                cpu_tp: pairs / cpu_s,
                ls_tp: pairs / ls_s,
                cls_tp: pairs / cls_s,
                auto_tp: pairs / auto_s,
                ls_vs_cpu,
                ls_vs_direct,
                cls_vs_ls,
                auto_vs_best,
                ls_occ,
                cls_occ,
            });

            rows.push(format!(
                concat!(
                    "    {{\"m\": {m}, \"bits\": {bits}, \"pairs\": {pairs}, \"findings\": {found},\n",
                    "     \"cpu_arena_seconds\": {cpu_s}, \"cpu_arena_pairs_per_sec\": {cpu_tp},\n",
                    "     \"cpu_prerefactor_seconds\": {base_s}, \"cpu_prerefactor_pairs_per_sec\": {base_tp},\n",
                    "     \"cpu_arena_speedup\": {speedup},\n",
                    "     \"lockstep_seconds\": {ls_s}, \"lockstep_pairs_per_sec\": {ls_tp},\n",
                    "     \"lockstep_vs_cpu_speedup\": {ls_speedup},\n",
                    "     \"lockstep_direct_seconds\": {dls_s}, \"lockstep_direct_pairs_per_sec\": {dls_tp},\n",
                    "     \"pipeline_vs_direct\": {pvd},\n",
                    "     \"lockstep_occupancy\": {ls_occ},\n",
                    "     \"lockstep_compact_seconds\": {cls_s}, \"lockstep_compact_pairs_per_sec\": {cls_tp},\n",
                    "     \"lockstep_compact_vs_plain\": {cvp}, \"lockstep_compact_occupancy\": {cls_occ},\n",
                    "     \"lockstep_compact_compactions\": {ccount}, \"lockstep_compact_refills\": {rcount},\n",
                    "     \"auto_seconds\": {auto_s}, \"auto_pairs_per_sec\": {auto_tp},\n",
                    "     \"auto_backend\": \"{auto_name}\", \"auto_vs_best_fixed\": {avb},\n",
                    "     \"gpu_sim_host_seconds\": {gpu_s}, \"gpu_sim_host_pairs_per_sec\": {gpu_tp},\n",
                    "     \"gpu_sim_simulated_seconds\": {sim}, \"gpu_sim_parallel_matches_serial\": {ok}}}"
                ),
                m = m,
                bits = bits,
                pairs = pairs as u64,
                found = cpu_found,
                cpu_s = json_f64(cpu_s),
                cpu_tp = json_f64(pairs / cpu_s),
                base_s = json_f64(base_s),
                base_tp = json_f64(pairs / base_s),
                speedup = json_f64(base_s / cpu_s),
                ls_s = json_f64(ls_s),
                ls_tp = json_f64(pairs / ls_s),
                ls_speedup = json_f64(ls_vs_cpu),
                dls_s = json_f64(direct_ls_s),
                dls_tp = json_f64(pairs / direct_ls_s),
                pvd = json_f64(ls_vs_direct),
                ls_occ = json_f64(ls_occ),
                cls_s = json_f64(cls_s),
                cls_tp = json_f64(pairs / cls_s),
                cvp = json_f64(cls_vs_ls),
                cls_occ = json_f64(cls_occ),
                ccount = cls_compactions,
                rcount = cls_refills,
                auto_s = json_f64(auto_s),
                auto_tp = json_f64(pairs / auto_s),
                auto_name = auto_name,
                avb = json_f64(auto_vs_best),
                gpu_s = json_f64(gpu_s),
                gpu_tp = json_f64(pairs / gpu_s),
                sim = json_f64(par_sim),
                ok = parallel_matches_serial,
            ));
        }
    }

    // Batch product-tree rows. The remainder-tree scan does O(m log² m)
    // arithmetic against the all-pairs O(m²), so its advantage only shows
    // at corpus sizes the interleaved all-pairs contestants above cannot
    // afford to bench — these rows run [`ProductTreeBackend`] alone at
    // larger `m` (riding the subquadratic `bigint` ladder), with the
    // scalar all-pairs scan as an interleaved reference up to
    // `--batch-scalar-cap` keys and findings identity asserted wherever
    // the reference runs.
    let batch_sizes = opts.get_list("batch-sizes", &[64, 256, 1024]);
    let batch_bits: u64 = opts.get(
        "batch-bits",
        bits_list.iter().copied().max().unwrap_or(1024),
    );
    let batch_scalar_cap: usize = opts.get("batch-scalar-cap", 256);
    let mut batch_rows = Vec::new();
    for &m in &batch_sizes {
        let m = m as usize;
        let mut rng = StdRng::seed_from_u64(0x5ca9 ^ m as u64 ^ (batch_bits << 17));
        let moduli = build_corpus(&mut rng, m, batch_bits, 4).moduli();
        let arena = ModuliArena::try_from_moduli(&moduli).expect("bench corpus is non-degenerate");
        let pairs = (m * (m - 1) / 2) as f64;

        let tree_scan = || {
            ScanPipeline::new(&arena)
                .backend(ProductTreeBackend { parallel: false })
                .run()
                .expect("product-tree pipeline scan")
                .scan
        };
        let scalar_scan = || {
            ScanPipeline::new(&arena)
                .algorithm(algo)
                .run()
                .expect("scalar pipeline scan")
                .scan
        };

        let (tree_s, scalar_s, tree_vs_scalar, found, matches) = if m <= batch_scalar_cap {
            // Same drift-cancelling treatment as the main grid: the tree
            // and its scalar reference run interleaved, and the reported
            // ratio is the median of per-round ratios.
            let mut run_tree = || tree_scan().findings.len();
            let mut run_scalar = || scalar_scan().findings.len();
            let (times, sinks) = round_times(reps, &mut [&mut run_tree, &mut run_scalar]);
            let matches = tree_scan().findings == scalar_scan().findings;
            assert!(
                matches,
                "product-tree and scalar scans disagree at m={m}, bits={batch_bits}"
            );
            (
                best_of(&times[0]),
                best_of(&times[1]),
                median_speedup(&times[1], &times[0]),
                sinks[0],
                Some(matches),
            )
        } else {
            let (tree_s, found) = best_seconds(reps, || tree_scan().findings.len());
            (tree_s, f64::NAN, f64::NAN, found, None)
        };

        eprintln!(
            "batch m={m} bits={batch_bits}: product-tree {:.0} pairs/s ({found} findings){}",
            pairs / tree_s,
            if let Some(matches) = matches {
                format!(
                    ", scalar {:.0} pairs/s, tree x{tree_vs_scalar:.2} vs scalar, \
                     findings match: {matches}",
                    pairs / scalar_s
                )
            } else {
                String::from(", scalar reference skipped (above --batch-scalar-cap)")
            }
        );

        batch_rows.push(format!(
            concat!(
                "    {{\"m\": {m}, \"bits\": {bits}, \"pairs\": {pairs}, \"findings\": {found},\n",
                "     \"tree_seconds\": {tree_s}, \"tree_pairs_per_sec\": {tree_tp},\n",
                "     \"scalar_seconds\": {scalar_s}, \"scalar_pairs_per_sec\": {scalar_tp},\n",
                "     \"tree_vs_scalar\": {tvs}, \"findings_match_scalar\": {ok}}}"
            ),
            m = m,
            bits = batch_bits,
            pairs = pairs as u64,
            found = found,
            tree_s = json_f64(tree_s),
            tree_tp = json_f64(pairs / tree_s),
            scalar_s = json_f64(scalar_s),
            scalar_tp = json_f64(pairs / scalar_s),
            tvs = json_f64(tree_vs_scalar),
            ok = matches.map_or("null".to_string(), |b| b.to_string()),
        ));
    }

    // Ingest throughput: the streaming sanitizer (owned rows, fingerprint
    // dedup, rank/select acceptance index) against borrowed-mode
    // `sanitize_moduli`, on an m=64k synthetic hostile corpus by default.
    let ingest_m: usize = opts.get("ingest-keys", 65_536);
    let ingest_bits: u64 = opts.get("ingest-bits", 128);
    let ingest = bench_ingest(ingest_m, ingest_bits, reps);
    eprintln!(
        "ingest m={} bits={}: streaming {:.0} keys/s, borrowed {:.0} keys/s \
         ({} accepted, {} quarantined), peak-RSS delta {} KiB",
        ingest.m,
        ingest.bits,
        ingest.streaming_keys_per_sec,
        ingest.borrowed_keys_per_sec,
        ingest.accepted,
        ingest.rejected,
        ingest.hwm_delta_kb,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scan_throughput\",\n",
            "  \"algorithm\": \"{algo}\",\n",
            "  \"bits\": [{bits}],\n",
            "  \"early_termination\": true,\n",
            "  \"launch_pairs\": {lp},\n",
            "  \"warp_width\": {w},\n",
            "  \"reps\": {reps},\n",
            "  \"rows\": [\n{rows}\n  ],\n",
            "  \"batch_tree\": [\n{brows}\n  ],\n",
            "  \"ingest\": {{\"m\": {im}, \"bits\": {ibits}, \"accepted\": {iacc}, \"rejected\": {irej},\n",
            "    \"streaming_seconds\": {is_s}, \"streaming_keys_per_sec\": {is_tp},\n",
            "    \"borrowed_seconds\": {ib_s}, \"borrowed_keys_per_sec\": {ib_tp},\n",
            "    \"peak_rss_delta_kb\": {ihwm}}}\n",
            "}}\n"
        ),
        algo = algo.tag(),
        bits = bits_list
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        lp = launch_pairs,
        w = warp_width,
        reps = reps,
        rows = rows.join(",\n"),
        brows = batch_rows.join(",\n"),
        im = ingest.m,
        ibits = ingest.bits,
        iacc = ingest.accepted,
        irej = ingest.rejected,
        is_s = json_f64(ingest.streaming_s),
        is_tp = json_f64(ingest.streaming_keys_per_sec),
        ib_s = json_f64(ingest.borrowed_s),
        ib_tp = json_f64(ingest.borrowed_keys_per_sec),
        ihwm = ingest.hwm_delta_kb,
    );
    std::fs::write(&out, &json).expect("write BENCH_scan.json");
    println!("{json}");
    eprintln!("wrote {out}");

    if gate_ingest {
        // Absolute-throughput floor for the streaming sanitizer, set ~4x
        // below the measured rate on the 1-CPU reference box so only a
        // structural regression (an accidental clone per row, a quadratic
        // dedup) trips it, not machine load. The peak-RSS tripwire is a
        // generous multiple of the corpus footprint: the old borrowed-mode
        // sanitizer cloned every accepted modulus *and* stored every
        // quarantined one, roughly doubling resident memory, and this
        // bound is sized to catch that class of regression coming back.
        // Measured ~5.5M keys/s (m=64k, 128-bit) on the reference box.
        const KEYS_PER_SEC_FLOOR: f64 = 1_000_000.0;
        let limbs = ingest.bits.div_ceil(32).max(1);
        // Per-row footprint: limb payload plus Nat/Vec bookkeeping (~56 B
        // observed), times two corpora resident (raw + streaming-accepted),
        // times a 4x allocator/dedup-map margin, plus fixed slack.
        let corpus_kb = (ingest.m as u64 * (limbs * 4 + 56)) / 1024;
        let rss_cap_kb = corpus_kb * 2 * 4 + 32 * 1024;
        let mut fail = false;
        if ingest.streaming_keys_per_sec < KEYS_PER_SEC_FLOOR {
            eprintln!(
                "GATE FAIL: streaming ingest {:.0} keys/s < {KEYS_PER_SEC_FLOOR} floor \
                 at m={}, bits={}",
                ingest.streaming_keys_per_sec, ingest.m, ingest.bits
            );
            fail = true;
        } else {
            eprintln!(
                "gate OK: streaming ingest {:.0} keys/s >= {KEYS_PER_SEC_FLOOR} floor \
                 at m={}, bits={}",
                ingest.streaming_keys_per_sec, ingest.m, ingest.bits
            );
        }
        if ingest.hwm_delta_kb > rss_cap_kb {
            eprintln!(
                "GATE FAIL: ingest peak-RSS delta {} KiB > {rss_cap_kb} KiB tripwire \
                 at m={}, bits={}",
                ingest.hwm_delta_kb, ingest.m, ingest.bits
            );
            fail = true;
        } else {
            eprintln!(
                "gate OK: ingest peak-RSS delta {} KiB <= {rss_cap_kb} KiB tripwire \
                 at m={}, bits={}",
                ingest.hwm_delta_kb, ingest.m, ingest.bits
            );
        }
        if fail {
            std::process::exit(1);
        }
    }

    if gate_lockstep || gate_pipeline || gate_compaction {
        // The largest corpus benched at a given width (the gate cell). All
        // gated ratios below are medians of per-round ratios, so a machine
        // throttle phase that slows every contestant equally cancels out.
        let cell_at = |bits: u64| {
            cells
                .iter()
                .filter(|c| c.bits == bits)
                .max_by_key(|c| c.m)
                .copied()
        };
        let widest = *bits_list.iter().max().expect("non-empty bits list");
        let gate = cell_at(widest).expect("non-empty grid");
        if gate_lockstep {
            // Perf-regression gate: at the widest moduli's largest corpus,
            // the lockstep engine must not fall below the scalar arena path
            // (small tolerance for run-to-run noise).
            const TOLERANCE: f64 = 0.95;
            if gate.ls_vs_cpu < TOLERANCE {
                eprintln!(
                    "GATE FAIL: lockstep x{:.3} of cpu_arena ({:.0} vs {:.0} pairs/s) < \
                     {TOLERANCE} at m={}, bits={}",
                    gate.ls_vs_cpu, gate.ls_tp, gate.cpu_tp, gate.m, gate.bits
                );
                std::process::exit(1);
            }
            eprintln!(
                "gate OK: lockstep x{:.3} of cpu_arena ({:.0} vs {:.0} pairs/s) >= \
                 {TOLERANCE} at m={}, bits={}",
                gate.ls_vs_cpu, gate.ls_tp, gate.cpu_tp, gate.m, gate.bits
            );
            // Informational (not gated): the 128-bit ratio, where short
            // lanes leave the plain fixed-warp engine under-occupied.
            if let Some(c) = cell_at(128) {
                eprintln!(
                    "note: 128-bit m={}: lockstep x{:.3} of cpu_arena, \
                     compacted x{:.3} of plain lockstep (informational)",
                    c.m, c.ls_vs_cpu, c.cls_vs_ls,
                );
            }
        }
        if gate_pipeline {
            // The builder must stay a zero-cost veneer over the direct
            // entry point: same launches, same executor, no extra copies.
            const TOLERANCE: f64 = 0.98;
            if gate.ls_vs_direct < TOLERANCE {
                eprintln!(
                    "GATE FAIL: builder pipeline x{:.3} of direct scan_lockstep_arena < \
                     {TOLERANCE} at m={}, bits={}",
                    gate.ls_vs_direct, gate.m, gate.bits
                );
                std::process::exit(1);
            }
            eprintln!(
                "gate OK: builder pipeline x{:.3} of direct scan_lockstep_arena >= \
                 {TOLERANCE} at m={}, bits={}",
                gate.ls_vs_direct, gate.m, gate.bits
            );
        }
        if gate_compaction {
            let mut fail = false;
            // What compaction buys on the host engine is *structural*:
            // repack + width-gated refill turn ragged warps into dense
            // ones, and SIMT efficiency (mean active-lane occupancy) is a
            // deterministic function of the corpus — so that is what the
            // 128-bit gate pins, at the issue-level ≥1.15× margin. Wall
            // clock only gets a no-regression floor there: on the host
            // AVX2 kernel a masked lane costs almost nothing (slots are
            // quantized in 8-lane vectors and plan/epilogue skip dead
            // lanes), so reclaimed slots translate to a few percent of
            // wall clock, not the issue-bound speedup a real SIMT device
            // would see. DESIGN.md ("Compaction and refill") documents the
            // calibration.
            const OCC_RATIO_128: f64 = 1.15;
            const WALL_FLOOR_128: f64 = 0.90;
            const WALL_FLOOR_1024: f64 = 0.95;
            if let Some(c) = cell_at(128) {
                let occ_ratio = c.cls_occ / c.ls_occ;
                if occ_ratio < OCC_RATIO_128 {
                    eprintln!(
                        "GATE FAIL: compacted occupancy {:.3} is x{occ_ratio:.3} of \
                         plain {:.3} < {OCC_RATIO_128} at m={}, bits={}",
                        c.cls_occ, c.ls_occ, c.m, c.bits
                    );
                    fail = true;
                } else {
                    eprintln!(
                        "gate OK: compacted occupancy {:.3} is x{occ_ratio:.3} of \
                         plain {:.3} >= {OCC_RATIO_128} at m={}, bits={}",
                        c.cls_occ, c.ls_occ, c.m, c.bits
                    );
                }
                if c.cls_vs_ls < WALL_FLOOR_128 {
                    eprintln!(
                        "GATE FAIL: compacted lockstep x{:.3} of plain < \
                         {WALL_FLOOR_128} wall-clock floor at m={}, bits={}",
                        c.cls_vs_ls, c.m, c.bits
                    );
                    fail = true;
                } else {
                    eprintln!(
                        "gate OK: compacted lockstep x{:.3} of plain >= \
                         {WALL_FLOOR_128} wall-clock floor at m={}, bits={}",
                        c.cls_vs_ls, c.m, c.bits
                    );
                }
            } else {
                eprintln!("gate skip: no 128-bit cell benched (compaction gate unchecked)");
            }
            // Wide moduli already run dense; compaction must stay ~free.
            if let Some(c) = cell_at(1024) {
                if c.cls_vs_ls < WALL_FLOOR_1024 {
                    eprintln!(
                        "GATE FAIL: compacted lockstep x{:.3} of plain < \
                         {WALL_FLOOR_1024} at m={}, bits={}",
                        c.cls_vs_ls, c.m, c.bits
                    );
                    fail = true;
                } else {
                    eprintln!(
                        "gate OK: compacted lockstep x{:.3} of plain >= \
                         {WALL_FLOOR_1024} at m={}, bits={}",
                        c.cls_vs_ls, c.m, c.bits
                    );
                }
            } else {
                eprintln!("gate skip: no 1024-bit cell benched (compaction gate unchecked)");
            }
            // The auto selector must never cost more than probe overhead
            // plus noise over the best fixed choice, anywhere on the
            // matrix. A *wrong* choice costs 13-50% on this matrix (scalar
            // at 1024-bit, lockstep at 128-bit), so 0.90 still catches
            // every mis-selection while clearing the noise band.
            const AUTO_TOLERANCE: f64 = 0.90;
            for c in &cells {
                if c.auto_vs_best < AUTO_TOLERANCE {
                    eprintln!(
                        "GATE FAIL: auto x{:.3} of the best fixed backend ({:.0} vs \
                         {:.0} pairs/s) < {AUTO_TOLERANCE} at m={}, bits={}",
                        c.auto_vs_best,
                        c.auto_tp,
                        c.cpu_tp.max(c.ls_tp).max(c.cls_tp),
                        c.m,
                        c.bits
                    );
                    fail = true;
                }
            }
            if fail {
                std::process::exit(1);
            }
            eprintln!(
                "gate OK: auto backend within {AUTO_TOLERANCE}x of the best fixed backend \
                 on all {} cells",
                cells.len()
            );
        }
    }
}
