//! Machine-readable scan-throughput benchmark: `BENCH_scan.json`.
//!
//! Measures pairs/second for the arena-backed CPU scan (against the
//! pre-refactor per-block path), the lockstep SIMT host scan (against the
//! scalar arena path), and the parallel simulated-GPU scan (against its
//! serial reference) across a corpus-size × modulus-width grid, and writes
//! one JSON report for tooling to diff across commits. All scans run
//! through the composable [`ScanPipeline`] builder; the legacy
//! `scan_lockstep_arena` entry point is benched alongside it so the
//! builder's composition overhead is itself a measured quantity.
//!
//! Run: `cargo run --release -p bulkgcd-bench --bin scan_bench --
//!       [--sizes 16,32,64] [--bits 128,1024] [--reps 3] [--warp-width 32]
//!       [--out BENCH_scan.json]`
//!
//! Perf-regression gates (used by `scripts/check.sh`), both judged at the
//! largest corpus of the widest moduli benched:
//!
//! * `--gate-lockstep` fails the run (exit 1) if the lockstep scan's
//!   pairs/second fall below 0.95× the scalar arena path's;
//! * `--gate-pipeline` fails the run if the builder-composed lockstep
//!   pipeline falls below 0.98× the direct `scan_lockstep_arena` call —
//!   the builder must stay a zero-cost veneer.
//!
//! Fault-injection smoke mode (used by `scripts/check.sh`): `--inject-faults
//! [--resume] [--fault-seed N]` runs the journaled pipeline under a seeded
//! fault plan — transient faults retried, persistent faults degraded to the
//! CPU path, kills resumed from the journal (with `--resume`) — and checks
//! the findings against an uninterrupted fault-free scan.

use bulkgcd_bench::Options;
use bulkgcd_bigint::Nat;
use bulkgcd_bulk::{
    group_size_for, FaultPlan, GpuSimBackend, GroupedPairs, LockstepBackend, ModuliArena,
    ScanError, ScanJournal, ScanPipeline,
};
use bulkgcd_core::{run, Algorithm, GcdOutcome, GcdPair, NoProbe, Termination};
use bulkgcd_gpu::{CostModel, DeviceConfig, RetryPolicy};
use bulkgcd_rsa::build_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::time::Instant;

/// The pre-refactor CPU scan (one workspace per block, owned-`Nat` loads,
/// allocating `run`) — the baseline the arena path must not regress below.
fn scan_cpu_prerefactor(moduli: &[Nat], algo: Algorithm, early: bool) -> usize {
    let m = moduli.len();
    let grid = GroupedPairs::new(m, group_size_for(m));
    let blocks: Vec<_> = grid.blocks().collect();
    let findings: Vec<(usize, usize, Nat)> = blocks
        .par_iter()
        .map(|&b| {
            let mut pair = GcdPair::with_capacity(1);
            let mut found = Vec::new();
            for (i, j) in grid.block_pairs(b) {
                let (a, c) = (&moduli[i], &moduli[j]);
                pair.load(a, c);
                let term = if early {
                    Termination::Early {
                        threshold_bits: a.bit_len().min(c.bit_len()) / 2,
                    }
                } else {
                    Termination::Full
                };
                if let GcdOutcome::Gcd(g) = run(algo, &mut pair, term, &mut NoProbe) {
                    if !g.is_one() {
                        found.push((i, j, g));
                    }
                }
            }
            found
        })
        .flatten()
        .collect();
    findings.len()
}

/// Best-of-`reps` wall seconds for `f` (one warmup call first).
fn best_seconds<F: FnMut() -> usize>(reps: usize, mut f: F) -> (f64, usize) {
    let sink = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let got = std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(got, sink, "non-deterministic scan result");
    }
    (best, sink)
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.9}")
    } else {
        "null".to_string()
    }
}

/// The `--inject-faults` smoke run: drive the journaled pipeline through a
/// seeded fault plan and prove it lands on the fault-free findings.
fn fault_smoke(opts: &Options) {
    let m: usize = opts.get("keys", 24);
    let bits: u64 = opts.get("bits", 128);
    let launch_pairs: usize = opts.get("launch-pairs", 16);
    // The default seed's plan covers all three fault kinds: kills at
    // launch boundaries, retried transients and persistent→CPU fallbacks.
    let seed: u64 = opts.get("fault-seed", 7);
    let resume = opts.has("resume");
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();
    let policy = RetryPolicy::default();
    let algo = Algorithm::Approximate;

    let mut rng = StdRng::seed_from_u64(seed);
    let moduli = build_corpus(&mut rng, m, bits, 2).moduli();
    let arena = ModuliArena::try_from_moduli(&moduli).expect("corpus is non-degenerate");
    let launches = ((m * (m - 1) / 2) as u64).div_ceil(launch_pairs as u64);
    let gpu_backend = || GpuSimBackend {
        device: device.clone(),
        cost: cost.clone(),
    };
    let baseline = ScanPipeline::new(&arena)
        .algorithm(algo)
        .backend(gpu_backend())
        .launch_pairs(launch_pairs)
        .run()
        .expect("fault-free baseline scan")
        .scan;

    let mut plan = FaultPlan::seeded(seed, launches);
    eprintln!(
        "fault smoke: {m} keys, {launches} launches, {} faulted ({} kills), resume={resume}",
        plan.len(),
        plan.kill_launches().count(),
    );
    let mut journal = ScanJournal::in_memory();
    let mut crashes = 0u32;
    let report = loop {
        let attempt = ScanPipeline::new(&arena)
            .algorithm(algo)
            .backend(gpu_backend())
            .launch_pairs(launch_pairs)
            .journal(&mut journal)
            .faults(&plan)
            .retry(policy)
            .run();
        match attempt {
            Ok(rep) => break rep,
            Err(ScanError::Interrupted { launch }) if resume => {
                // The process "crashed" at this launch boundary; a restart
                // sees the same journal but the crash does not recur.
                crashes += 1;
                plan = plan.without_kill_at(launch);
                eprintln!("  killed at launch {launch}; resuming from journal");
            }
            Err(e) => {
                eprintln!("error: fault smoke failed: {e} (rerun with --resume?)");
                std::process::exit(1);
            }
        }
    };

    assert_eq!(
        report.scan.findings, baseline.findings,
        "resumed scan must reproduce the fault-free findings"
    );
    let s = &report.stats;
    eprintln!(
        "  survived {crashes} crash(es): {}/{} launches resumed from journal, \
         {} retried attempts, {} CPU fallbacks, {:?} total backoff",
        s.resumed_launches,
        s.total_launches,
        s.retried_attempts,
        s.cpu_fallback_launches,
        s.backoff,
    );
    println!(
        "fault smoke OK: {} findings match the fault-free scan",
        report.scan.findings.len()
    );
}

fn main() {
    let opts = Options::from_env();
    if opts.has("inject-faults") {
        fault_smoke(&opts);
        return;
    }
    let sizes = opts.get_list("sizes", &[16, 32, 64]);
    if sizes.is_empty() {
        eprintln!("error: --sizes needs a comma-separated list of corpus sizes (e.g. 16,32,64)");
        std::process::exit(2);
    }
    let bits_list = opts.get_list("bits", &[128, 1024]);
    if bits_list.is_empty() {
        eprintln!("error: --bits needs a comma-separated list of modulus widths (e.g. 128,1024)");
        std::process::exit(2);
    }
    let reps: usize = opts.get("reps", 3);
    let out: String = opts.get("out", "BENCH_scan.json".to_string());
    let launch_pairs: usize = opts.get("launch-pairs", 256);
    let warp_width: usize = opts.get("warp-width", 32);
    let gate_lockstep = opts.has("gate-lockstep");
    let gate_pipeline = opts.has("gate-pipeline");
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();
    let algo = Algorithm::Approximate;

    let mut rows = Vec::new();
    // The gate row: throughputs at the largest corpus of the widest moduli.
    let mut gate_row: Option<(usize, u64, f64, f64, f64)> = None;
    for &bits in &bits_list {
        for &m in &sizes {
            let m = m as usize;
            let mut rng = StdRng::seed_from_u64(0x5ca9 ^ m as u64 ^ (bits << 17));
            let moduli = build_corpus(&mut rng, m, bits, 2).moduli();
            let arena =
                ModuliArena::try_from_moduli(&moduli).expect("bench corpus is non-degenerate");
            let pairs = (m * (m - 1) / 2) as f64;

            let (cpu_s, cpu_found) = best_seconds(reps, || {
                ScanPipeline::new(&arena)
                    .algorithm(algo)
                    .run()
                    .expect("scalar pipeline scan")
                    .scan
                    .findings
                    .len()
            });
            let (base_s, base_found) =
                best_seconds(reps, || scan_cpu_prerefactor(&moduli, algo, true));
            assert_eq!(cpu_found, base_found, "arena and baseline disagree");

            let (ls_s, ls_found) = best_seconds(reps, || {
                ScanPipeline::new(&arena)
                    .backend(LockstepBackend { warp_width })
                    .run()
                    .expect("lockstep pipeline scan")
                    .scan
                    .findings
                    .len()
            });
            assert_eq!(ls_found, cpu_found, "lockstep and arena scans disagree");

            // The legacy direct entry point, benched against the builder
            // path so composition overhead shows up as a measured ratio.
            #[allow(deprecated)]
            let (direct_ls_s, direct_found) = best_seconds(reps, || {
                // analyze: allow(deprecated-shim, reason = "benches the legacy entry point against the builder path on purpose")
                bulkgcd_bulk::scan_lockstep_arena(&arena, true, warp_width)
                    .findings
                    .len()
            });
            assert_eq!(direct_found, ls_found, "builder and direct paths disagree");

            let gpu_pipeline = |serial: bool| {
                ScanPipeline::new(&arena)
                    .algorithm(algo)
                    .backend(GpuSimBackend {
                        device: device.clone(),
                        cost: cost.clone(),
                    })
                    .launch_pairs(launch_pairs)
                    .serial(serial)
                    .run()
                    .expect("gpu-sim pipeline scan")
                    .scan
            };
            let (gpu_s, _) = best_seconds(reps, || gpu_pipeline(false).findings.len());
            let par = gpu_pipeline(false);
            let ser = gpu_pipeline(true);
            let par_sim = par.simulated().expect("gpu-sim scans price launches");
            let ser_sim = ser.simulated().expect("gpu-sim scans price launches");
            let parallel_matches_serial = par.findings == ser.findings
                && (par_sim - ser_sim).abs() <= 1e-12 * ser_sim.max(1.0);

            eprintln!(
                "m={m} bits={bits}: cpu {:.0} pairs/s (baseline {:.0}, x{:.2}), \
                 lockstep {:.0} pairs/s (x{:.2} vs cpu, x{:.2} vs direct), \
                 gpu-sim host {:.0} pairs/s, simulated {:.3e} s, \
                 parallel==serial: {parallel_matches_serial}",
                pairs / cpu_s,
                pairs / base_s,
                base_s / cpu_s,
                pairs / ls_s,
                cpu_s / ls_s,
                direct_ls_s / ls_s,
                pairs / gpu_s,
                par_sim,
            );

            match gate_row {
                Some((gm, gb, _, _, _)) if (bits, m) < (gb, gm) => {}
                _ => gate_row = Some((m, bits, pairs / cpu_s, pairs / ls_s, pairs / direct_ls_s)),
            }

            rows.push(format!(
                concat!(
                    "    {{\"m\": {m}, \"bits\": {bits}, \"pairs\": {pairs}, \"findings\": {found},\n",
                    "     \"cpu_arena_seconds\": {cpu_s}, \"cpu_arena_pairs_per_sec\": {cpu_tp},\n",
                    "     \"cpu_prerefactor_seconds\": {base_s}, \"cpu_prerefactor_pairs_per_sec\": {base_tp},\n",
                    "     \"cpu_arena_speedup\": {speedup},\n",
                    "     \"lockstep_seconds\": {ls_s}, \"lockstep_pairs_per_sec\": {ls_tp},\n",
                    "     \"lockstep_vs_cpu_speedup\": {ls_speedup},\n",
                    "     \"lockstep_direct_seconds\": {dls_s}, \"lockstep_direct_pairs_per_sec\": {dls_tp},\n",
                    "     \"pipeline_vs_direct\": {pvd},\n",
                    "     \"gpu_sim_host_seconds\": {gpu_s}, \"gpu_sim_host_pairs_per_sec\": {gpu_tp},\n",
                    "     \"gpu_sim_simulated_seconds\": {sim}, \"gpu_sim_parallel_matches_serial\": {ok}}}"
                ),
                m = m,
                bits = bits,
                pairs = pairs as u64,
                found = cpu_found,
                cpu_s = json_f64(cpu_s),
                cpu_tp = json_f64(pairs / cpu_s),
                base_s = json_f64(base_s),
                base_tp = json_f64(pairs / base_s),
                speedup = json_f64(base_s / cpu_s),
                ls_s = json_f64(ls_s),
                ls_tp = json_f64(pairs / ls_s),
                ls_speedup = json_f64(cpu_s / ls_s),
                dls_s = json_f64(direct_ls_s),
                dls_tp = json_f64(pairs / direct_ls_s),
                pvd = json_f64(direct_ls_s / ls_s),
                gpu_s = json_f64(gpu_s),
                gpu_tp = json_f64(pairs / gpu_s),
                sim = json_f64(par_sim),
                ok = parallel_matches_serial,
            ));
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scan_throughput\",\n",
            "  \"algorithm\": \"{algo}\",\n",
            "  \"bits\": [{bits}],\n",
            "  \"early_termination\": true,\n",
            "  \"launch_pairs\": {lp},\n",
            "  \"warp_width\": {w},\n",
            "  \"reps\": {reps},\n",
            "  \"rows\": [\n{rows}\n  ]\n",
            "}}\n"
        ),
        algo = algo.tag(),
        bits = bits_list
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        lp = launch_pairs,
        w = warp_width,
        reps = reps,
        rows = rows.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write BENCH_scan.json");
    println!("{json}");
    eprintln!("wrote {out}");

    if gate_lockstep || gate_pipeline {
        let (gm, gb, cpu_tp, ls_tp, direct_tp) = gate_row.expect("non-empty grid");
        if gate_lockstep {
            // Perf-regression gate: at the widest moduli's largest corpus,
            // the lockstep engine must not fall below the scalar arena path
            // (small tolerance for run-to-run noise).
            const TOLERANCE: f64 = 0.95;
            if ls_tp < TOLERANCE * cpu_tp {
                eprintln!(
                    "GATE FAIL: lockstep {ls_tp:.0} pairs/s < {TOLERANCE} x cpu_arena \
                     {cpu_tp:.0} pairs/s at m={gm}, bits={gb}"
                );
                std::process::exit(1);
            }
            eprintln!(
                "gate OK: lockstep {ls_tp:.0} pairs/s >= {TOLERANCE} x cpu_arena {cpu_tp:.0} \
                 pairs/s at m={gm}, bits={gb}"
            );
        }
        if gate_pipeline {
            // The builder must stay a zero-cost veneer over the direct
            // entry point: same launches, same executor, no extra copies.
            const TOLERANCE: f64 = 0.98;
            if ls_tp < TOLERANCE * direct_tp {
                eprintln!(
                    "GATE FAIL: builder pipeline {ls_tp:.0} pairs/s < {TOLERANCE} x direct \
                     scan_lockstep_arena {direct_tp:.0} pairs/s at m={gm}, bits={gb}"
                );
                std::process::exit(1);
            }
            eprintln!(
                "gate OK: builder pipeline {ls_tp:.0} pairs/s >= {TOLERANCE} x direct \
                 scan_lockstep_arena {direct_tp:.0} pairs/s at m={gm}, bits={gb}"
            );
        }
    }
}
