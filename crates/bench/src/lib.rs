//! Shared helpers for the reproduction harness binaries and benches.

#![warn(missing_docs)]

use bulkgcd_bigint::Nat;
use bulkgcd_core::{run, Algorithm, GcdPair, StatsProbe, Termination};
use bulkgcd_rsa::generate_keypair;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RSA-modulus pairs for experiments: `n` pairs of `bits`-bit
/// moduli (each the product of two `bits/2`-bit primes, OpenSSL-style).
pub fn rsa_modulus_pairs(n: usize, bits: u64, seed: u64) -> Vec<(Nat, Nat)> {
    let mut rng = StdRng::seed_from_u64(seed ^ bits);
    (0..n)
        .map(|_| {
            (
                generate_keypair(&mut rng, bits).public.n,
                generate_keypair(&mut rng, bits).public.n,
            )
        })
        .collect()
}

/// Deterministic random odd pairs (cheaper than full RSA moduli; identical
/// iteration statistics for GCD purposes).
pub fn odd_pairs(n: usize, bits: u64, seed: u64) -> Vec<(Nat, Nat)> {
    use bulkgcd_bigint::random::random_odd_bits;
    let mut rng = StdRng::seed_from_u64(seed ^ (bits << 1));
    (0..n)
        .map(|_| {
            (
                random_odd_bits(&mut rng, bits),
                random_odd_bits(&mut rng, bits),
            )
        })
        .collect()
}

/// Online mean/variance accumulator (Welford).
#[derive(Debug, Default, Clone)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Half-width of the ~95% confidence interval of the mean.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std() / (self.n as f64).sqrt()
        }
    }
}

/// Iteration statistics of `algo` over `pairs`.
pub struct IterationSummary {
    /// Mean do-while iterations per pair.
    pub mean_iterations: f64,
    /// Total iterations.
    pub total_iterations: u64,
    /// Total β>0 occurrences.
    pub beta_nonzero: u64,
    /// Total §IV memory operations.
    pub mem_ops: u64,
    /// Full distribution of per-pair iteration counts.
    pub distribution: Welford,
}

/// Run `algo` over all `pairs` collecting iteration statistics.
pub fn iteration_summary(
    algo: Algorithm,
    pairs: &[(Nat, Nat)],
    term: Termination,
) -> IterationSummary {
    let mut ws = GcdPair::with_capacity(1);
    let mut total = 0u64;
    let mut beta = 0u64;
    let mut mem = 0u64;
    let mut dist = Welford::default();
    for (a, b) in pairs {
        ws.load(a, b);
        let mut probe = StatsProbe::default();
        run(algo, &mut ws, term, &mut probe);
        total += probe.stats.iterations;
        beta += probe.stats.beta_nonzero;
        mem += probe.stats.mem_ops;
        dist.push(probe.stats.iterations as f64);
    }
    IterationSummary {
        mean_iterations: total as f64 / pairs.len().max(1) as f64,
        total_iterations: total,
        beta_nonzero: beta,
        mem_ops: mem,
        distribution: dist,
    }
}

/// Wall-clock seconds per GCD for `algo` over `pairs`, single-threaded
/// (the Table V CPU measurement).
pub fn cpu_seconds_per_gcd(algo: Algorithm, pairs: &[(Nat, Nat)], term: Termination) -> f64 {
    use bulkgcd_core::NoProbe;
    let mut ws = GcdPair::with_capacity(1);
    // Warm-up pass (allocation, caches).
    if let Some((a, b)) = pairs.first() {
        ws.load(a, b);
        run(algo, &mut ws, term, &mut NoProbe);
    }
    let start = std::time::Instant::now();
    for (a, b) in pairs {
        ws.load(a, b);
        std::hint::black_box(run(algo, &mut ws, term, &mut NoProbe));
    }
    start.elapsed().as_secs_f64() / pairs.len().max(1) as f64
}

/// Drift-robust interleaved timing for perf gates, shared by the bench
/// binaries (`scan_bench`, `bigint_bench`).
///
/// The gated quantities are **per-round ratios** (entries of the same
/// round are temporally adjacent, so a sustained machine-throttle phase
/// cancels out of the ratio), aggregated by median — far more robust than
/// a ratio of bests taken in different thermal states.
pub mod gate {
    use std::time::Instant;

    /// Top up rounds until the slowest contestant has accumulated about
    /// this many seconds of samples, so sub-millisecond cells still gate
    /// on meaningful ratios.
    pub const GATE_SAMPLE_SECONDS: f64 = 0.25;
    /// Hard cap on top-up rounds, so big cells stay fast.
    pub const MAX_GATE_ROUNDS: usize = 50;

    /// Per-round wall seconds for several contestants with the rounds
    /// interleaved round-robin (one warmup each first), so machine drift
    /// and frequency scaling land on every contestant equally. Returns one
    /// time series per contestant plus its (deterministic) result.
    pub fn round_times(
        reps: usize,
        fs: &mut [&mut dyn FnMut() -> usize],
    ) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut slowest = 0.0f64;
        let mut sinks = Vec::with_capacity(fs.len());
        for f in fs.iter_mut() {
            let start = Instant::now();
            sinks.push(f());
            slowest = slowest.max(start.elapsed().as_secs_f64());
        }
        let rounds = if slowest > 0.0 {
            ((GATE_SAMPLE_SECONDS / slowest).ceil() as usize).min(MAX_GATE_ROUNDS)
        } else {
            MAX_GATE_ROUNDS
        }
        .max(reps.max(1));
        let mut times = vec![Vec::with_capacity(rounds); fs.len()];
        for _ in 0..rounds {
            for ((f, sink), ts) in fs.iter_mut().zip(&sinks).zip(times.iter_mut()) {
                let start = Instant::now();
                let got = std::hint::black_box(f());
                ts.push(start.elapsed().as_secs_f64());
                assert_eq!(got, *sink, "non-deterministic benched result");
            }
        }
        (times, sinks)
    }

    /// Fastest sample of a time series.
    pub fn best_of(ts: &[f64]) -> f64 {
        ts.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Median of a sample vector (by total order; empty input panics).
    pub fn median(mut v: Vec<f64>) -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    }

    /// Median over rounds of `base[r] / new[r]`: how much faster `new` ran
    /// than `base`, with both samples of each ratio taken back-to-back.
    pub fn median_speedup(base: &[f64], new: &[f64]) -> f64 {
        median(base.iter().zip(new).map(|(b, n)| b / n).collect())
    }
}

/// Parse `--key value` style options from `std::env::args`.
pub struct Options {
    args: Vec<String>,
}

impl Options {
    /// Capture the process arguments.
    pub fn from_env() -> Self {
        Options {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--name <v>`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.args
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// All values of a comma-separated `--name a,b,c` list, or `default`.
    pub fn get_list(&self, name: &str, default: &[u64]) -> Vec<u64> {
        let flag = format!("--{name}");
        self.args
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.args.get(i + 1))
            .map(|v| v.split(',').filter_map(|s| s.parse().ok()).collect())
            .unwrap_or_else(|| default.to_vec())
    }

    /// Whether the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == &format!("--{name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_generators_are_deterministic() {
        assert_eq!(odd_pairs(3, 128, 1), odd_pairs(3, 128, 1));
        let a = rsa_modulus_pairs(1, 96, 2);
        let b = rsa_modulus_pairs(1, 96, 2);
        assert_eq!(a, b);
        assert_eq!(a[0].0.bit_len(), 96);
    }

    #[test]
    fn iteration_summary_counts() {
        let pairs = odd_pairs(4, 128, 3);
        let s = iteration_summary(Algorithm::Approximate, &pairs, Termination::Full);
        assert!(s.total_iterations > 0);
        assert!(s.mean_iterations > 10.0);
        assert!(s.mem_ops > s.total_iterations);
        assert_eq!(s.distribution.n(), 4);
        assert!((s.distribution.mean() - s.mean_iterations).abs() < 1e-9);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::default();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.std() - var.sqrt()).abs() < 1e-12);
        assert!(w.ci95() > 0.0);
        assert_eq!(Welford::default().std(), 0.0);
    }

    #[test]
    fn cpu_timer_positive() {
        let pairs = odd_pairs(2, 128, 4);
        let t = cpu_seconds_per_gcd(Algorithm::FastBinary, &pairs, Termination::Full);
        assert!(t > 0.0);
    }
}
