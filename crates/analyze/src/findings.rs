//! Findings: what a lint reports, and the two output encodings.

use std::fmt::Write as _;

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Lint name (`cf-branch`, `no-panic`, ...).
    pub lint: &'static str,
    /// What was found.
    pub message: String,
    /// How to fix or excuse it.
    pub suggestion: String,
}

impl Finding {
    /// `file:line: [lint] message — suggestion`, the human rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {} — {}",
            self.file, self.line, self.lint, self.message, self.suggestion
        )
    }
}

/// A whole run's output.
#[derive(Debug, Default)]
pub struct Report {
    /// Everything the lints found, file order then line order.
    pub findings: Vec<Finding>,
    /// Files inspected.
    pub files_scanned: usize,
    /// Functions opted into the constant-flow lints.
    pub constant_flow_fns: usize,
    /// `allow` pragmas that excused a finding.
    pub allows_consumed: usize,
}

impl Report {
    /// Stable ordering: by file, then line, then lint name.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    }

    /// Hand-rolled JSON document (the workspace vendors no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = write!(
            s,
            "  \"files_scanned\": {},\n  \"constant_flow_fns\": {},\n  \"allows_consumed\": {},\n",
            self.files_scanned, self.constant_flow_fns, self.allows_consumed
        );
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"file\": {}, \"line\": {}, \"lint\": {}, \"message\": {}, \"suggestion\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.lint),
                json_str(&f.message),
                json_str(&f.suggestion)
            );
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let mut r = Report {
            findings: vec![Finding {
                file: "a/b.rs".into(),
                line: 3,
                lint: "no-panic",
                message: "`.unwrap()` with \"quotes\"".into(),
                suggestion: "propagate".into(),
            }],
            files_scanned: 1,
            constant_flow_fns: 0,
            allows_consumed: 0,
        };
        r.sort();
        let j = r.to_json();
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"files_scanned\": 1"));
        assert!(j.contains("\"line\": 3"));
    }
}
