//! Findings: what a lint reports, and the two output encodings.

use std::fmt::Write as _;

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Lint name (`cf-branch`, `no-panic`, ...).
    pub lint: &'static str,
    /// What was found.
    pub message: String,
    /// How to fix or excuse it.
    pub suggestion: String,
}

impl Finding {
    /// `file:line: [lint] message — suggestion`, the human rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {} — {}",
            self.file, self.line, self.lint, self.message, self.suggestion
        )
    }
}

/// A whole run's output.
#[derive(Debug, Default)]
pub struct Report {
    /// Everything the lints found, file order then line order.
    pub findings: Vec<Finding>,
    /// Files inspected.
    pub files_scanned: usize,
    /// Functions opted into the constant-flow lints (pragma roots).
    pub constant_flow_fns: usize,
    /// Functions covered by constant-flow checking: roots plus everything
    /// transitively reachable from them through the call graph.
    pub cf_covered_fns: usize,
    /// Functions under the crash-consistency (journal) lints.
    pub journal_fns: usize,
    /// Static zero-alloc roots.
    pub zero_alloc_roots: usize,
    /// `allow` pragmas that excused a finding.
    pub allows_consumed: usize,
    /// Findings suppressed by the checked-in baseline file.
    pub baselined: usize,
    /// Files whose analysis came from the incremental cache.
    pub cache_hits: usize,
}

impl Report {
    /// Stable ordering: by file, then line, then lint name.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    }

    /// Hand-rolled JSON document (the workspace vendors no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = write!(
            s,
            "  \"files_scanned\": {},\n  \"constant_flow_fns\": {},\n  \"allows_consumed\": {},\n",
            self.files_scanned, self.constant_flow_fns, self.allows_consumed
        );
        let _ = write!(
            s,
            "  \"cf_covered_fns\": {},\n  \"journal_fns\": {},\n  \"zero_alloc_roots\": {},\n  \
             \"baselined\": {},\n  \"cache_hits\": {},\n",
            self.cf_covered_fns,
            self.journal_fns,
            self.zero_alloc_roots,
            self.baselined,
            self.cache_hits
        );
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"file\": {}, \"line\": {}, \"lint\": {}, \"message\": {}, \"suggestion\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.lint),
                json_str(&f.message),
                json_str(&f.suggestion)
            );
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Minimal SARIF 2.1.0 document, for editor and CI integrations.
    /// `rules` is the lint catalog ([`crate::lints::LINTS`]), emitted as
    /// the driver's rule table so ruleIds resolve.
    pub fn to_sarif(&self, rules: &[(&str, &str)]) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
        s.push_str("  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
        s.push_str("      \"tool\": {\n        \"driver\": {\n");
        s.push_str("          \"name\": \"analyze\",\n");
        s.push_str("          \"rules\": [");
        for (i, (name, desc)) in rules.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
                json_str(name),
                json_str(desc)
            );
        }
        s.push_str("\n          ]\n        }\n      },\n");
        s.push_str("      \"results\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
                 \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
                json_str(f.lint),
                json_str(&format!("{} — {}", f.message, f.suggestion)),
                json_str(&f.file),
                f.line
            );
        }
        if !self.findings.is_empty() {
            s.push_str("\n      ");
        }
        s.push_str("]\n    }\n  ]\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let mut r = Report {
            findings: vec![Finding {
                file: "a/b.rs".into(),
                line: 3,
                lint: "no-panic",
                message: "`.unwrap()` with \"quotes\"".into(),
                suggestion: "propagate".into(),
            }],
            files_scanned: 1,
            ..Report::default()
        };
        r.sort();
        let j = r.to_json();
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"files_scanned\": 1"));
        assert!(j.contains("\"cf_covered_fns\": 0"));
        assert!(j.contains("\"line\": 3"));
    }

    #[test]
    fn sarif_names_rules_and_locations() {
        let mut r = Report {
            findings: vec![Finding {
                file: "crates/core/src/lanes.rs".into(),
                line: 42,
                lint: "cf-branch",
                message: "tainted if".into(),
                suggestion: "fix".into(),
            }],
            ..Report::default()
        };
        r.sort();
        let s = r.to_sarif(&[("cf-branch", "data-dependent branch")]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"cf-branch\""));
        assert!(s.contains("\"startLine\": 42"));
        assert!(s.contains("crates/core/src/lanes.rs"));
    }
}
