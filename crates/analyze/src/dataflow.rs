//! Origin-set taint analysis and per-function summaries.
//!
//! Where the old engine tracked a flat *set of tainted names*, this pass
//! tracks **which parameters** flow into every binding and site, as a
//! bitmask over parameter positions (bit `i` = the i-th parameter,
//! including a `self` receiver at its declared position; parameters past
//! 62 share the last bit, conservatively). That single change is what
//! makes constant-flow checking interprocedural: a call site records the
//! origin mask of every argument, so the call-graph pass in
//! [`crate::callgraph`] can translate a caller's taint context into the
//! callee's and check the callee's sites *in that context* — no pragma
//! needed on the callee.
//!
//! [`summarize`] is the per-file workhorse: statement tree → local taint
//! environment (a monotone fixpoint over `let` / `for` / `if let` /
//! match-arm bindings, with `.len()` / `.is_empty()` and pragma-listed
//! public fields laundering taint exactly as before) → a [`FnSummary`]
//! holding every interesting **site** (branches, short-circuits, indexing,
//! early exits, allocating calls, file-write/sync effects, and call sites
//! with per-argument origin masks) plus the basic-block CFG the
//! crash-consistency dataflow walks. Summaries are plain data — they
//! serialize into the incremental cache and are all the global passes
//! ever look at.

use crate::cfg::{self, FnDecl, Stmt};
use crate::lexer::{Tok, TokKind};
use std::collections::{HashMap, HashSet};

/// Methods whose results are considered public even on tainted receivers:
/// sizes are part of the semi-oblivious contract (visible in every address
/// trace), so branching on them is structure, not data.
pub const TAINT_LAUNDERING: &[&str] = &["len", "is_empty"];

/// Idents whose presence marks a torn-tail guard in a replay function:
/// trimming to the committed prefix (`rposition` / `rfind` on the byte
/// stream, `set_len` / `truncate` repair) or explicitly classifying a
/// short read (`Truncated` error construction).
pub const TAIL_GUARDS: &[&str] = &["rposition", "rfind", "set_len", "truncate", "Truncated"];

/// Method / associated-fn names that allocate from the global heap.
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "collect",
    "push",
    "push_str",
    "insert",
    "extend",
    "extend_from_slice",
    "reserve",
    "reserve_exact",
    "with_capacity",
    "resize",
    "append",
    "into_vec",
    "into_boxed_slice",
    "split_off",
];

/// Types whose `new()` (and `from*` constructors) allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "String", "Box", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "VecDeque", "Rc", "Arc",
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Sentinel successor meaning "function exit".
pub const EXIT: u32 = u32::MAX;

/// How a branch site was spelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    If,
    While,
    Match,
    /// `&&` / `||` — lazy evaluation is a hidden branch.
    Short,
}

/// How a call site was spelled, which decides how it resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name(..)`.
    Free,
    /// `self.name(..)` — resolves within the caller's impl type.
    SelfMethod,
    /// `recv.name(..)` — resolves only if the name is workspace-unique.
    Method,
    /// `Qual::name(..)` — resolves against `impl Qual` or free fns.
    Qualified,
}

/// One call site with per-argument origin masks.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub line: u32,
    pub name: String,
    pub kind: CallKind,
    /// The `Qual` of a qualified call, else empty.
    pub qual: String,
    /// Origin mask of the receiver chain (method calls), else 0.
    pub recv: u64,
    /// Origin mask of each argument, in order.
    pub args: Vec<u64>,
}

/// One interesting site inside a function body.
#[derive(Debug, Clone)]
pub enum Site {
    /// `if` / `while` / `match` / `&&`-`||` with the condition's mask.
    Branch {
        line: u32,
        kind: BranchKind,
        mask: u64,
    },
    /// Indexing `x[i]` with the index expression's mask.
    Index { line: u32, mask: u64 },
    /// An early exit: `return` (mask = enclosing guard conditions) or `?`
    /// (mask additionally includes the tried expression). `is_err` marks
    /// error exits (`return Err(..)` and every `?`), which the
    /// crash-consistency lints exempt from the completion-exit rule.
    Exit {
        line: u32,
        mask: u64,
        is_try: bool,
        is_err: bool,
    },
    /// A heap-allocating call or macro.
    Alloc { line: u32, what: String },
    /// A file append (`write_all` / `write!` / ..) or sync
    /// (`sync_data` / `sync_all`) effect.
    Io { line: u32, write: bool },
    /// A call that may resolve to a workspace function.
    Call(CallSite),
}

impl Site {
    pub fn line(&self) -> u32 {
        match self {
            Site::Branch { line, .. }
            | Site::Index { line, .. }
            | Site::Exit { line, .. }
            | Site::Alloc { line, .. }
            | Site::Io { line, .. } => *line,
            Site::Call(c) => c.line,
        }
    }
}

/// One basic block: site indices in execution order plus successors.
/// [`EXIT`] as a successor means the function's end (a completion exit).
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub sites: Vec<u32>,
    pub succs: Vec<u32>,
}

/// Everything the global passes need to know about one function.
#[derive(Debug, Clone)]
pub struct FnSummary {
    pub name: String,
    pub owner: Option<String>,
    pub line: u32,
    pub end_line: u32,
    pub params: Vec<String>,
    pub in_test: bool,
    pub sites: Vec<Site>,
    pub blocks: Vec<Block>,
    /// Tail-guard idents present in the body (see [`TAIL_GUARDS`]).
    pub mentions: Vec<String>,
}

impl FnSummary {
    /// Bit for the parameter at `pos` (positions past 62 share bit 62).
    pub fn param_bit(pos: usize) -> u64 {
        1u64 << pos.min(62)
    }

    /// Mask with a bit per parameter.
    pub fn all_params_mask(&self) -> u64 {
        let mut m = 0u64;
        for i in 0..self.params.len() {
            m |= Self::param_bit(i);
        }
        m
    }

    /// Mask for the parameters *not* named in `public` (the root taint of
    /// a constant-flow function).
    pub fn root_taint(&self, public: &HashSet<String>) -> u64 {
        let mut m = 0u64;
        for (i, p) in self.params.iter().enumerate() {
            if !public.contains(p.as_str()) {
                m |= Self::param_bit(i);
            }
        }
        m
    }

    /// Position of the `self` receiver, if any.
    pub fn self_pos(&self) -> Option<usize> {
        self.params.iter().position(|p| p == "self")
    }
}

/// Build the summary of one function: taint environment fixpoint over the
/// statement tree, then site extraction + CFG lowering. `public` is the
/// constant-flow pragma's public list (empty without a pragma): it
/// launders `self.<public field>` projections at mask-construction time.
pub fn summarize(toks: &[Tok], decl: &FnDecl, public: &HashSet<String>) -> FnSummary {
    let stmts = cfg::parse_body(toks, decl.body_open + 1, decl.body_close);
    let mut env: HashMap<String, u64> = HashMap::new();
    for (i, p) in decl.params.iter().enumerate() {
        env.insert(p.clone(), FnSummary::param_bit(i));
    }
    // Monotone fixpoint: three rounds cover bindings used textually before
    // a later binding re-mentions them (two sufficed for the old engine;
    // match-arm bindings add one more hop).
    for _ in 0..3 {
        bind_pass(toks, &stmts, public, &mut env);
    }

    let mut lw = Lowerer {
        toks,
        env: &env,
        public,
        sites: Vec::new(),
        blocks: vec![Block::default()],
        loops: Vec::new(),
        guards: Vec::new(),
    };
    let last = lw.stmts(&stmts, 0);
    lw.blocks[last as usize].succs.push(EXIT);

    let mut mentions: Vec<String> = Vec::new();
    for t in &toks[decl.body_open..decl.body_close.min(toks.len())] {
        if let Some(name) = t.ident() {
            if TAIL_GUARDS.contains(&name) && !mentions.iter().any(|m| m == name) {
                mentions.push(name.to_string());
            }
        }
    }

    FnSummary {
        name: decl.name.clone(),
        owner: decl.owner.clone(),
        line: decl.line,
        end_line: decl.end_line,
        params: decl.params.clone(),
        in_test: decl.in_test,
        sites: lw.sites,
        blocks: lw.blocks,
        mentions,
    }
}

/// One taint-binding sweep over the statement tree.
fn bind_pass(
    toks: &[Tok],
    stmts: &[Stmt],
    public: &HashSet<String>,
    env: &mut HashMap<String, u64>,
) {
    for s in stmts {
        match s {
            Stmt::Let { binds, init, .. } => {
                if let Some(&(a, b)) = init.as_ref() {
                    let m = eval_mask(toks, a, b, env, public);
                    bind_all(binds, m, env);
                }
            }
            Stmt::If {
                cond,
                let_binds,
                then_b,
                else_b,
                ..
            } => {
                let m = eval_mask(toks, cond.0, cond.1, env, public);
                bind_all(let_binds, m, env);
                bind_pass(toks, then_b, public, env);
                bind_pass(toks, else_b, public, env);
            }
            Stmt::While {
                cond,
                let_binds,
                body,
                ..
            } => {
                let m = eval_mask(toks, cond.0, cond.1, env, public);
                bind_all(let_binds, m, env);
                bind_pass(toks, body, public, env);
            }
            Stmt::Loop { body } => bind_pass(toks, body, public, env),
            Stmt::For {
                binds, iter, body, ..
            } => {
                let m = eval_mask(toks, iter.0, iter.1, env, public);
                bind_all(binds, m, env);
                bind_pass(toks, body, public, env);
            }
            Stmt::Match {
                scrutinee, arms, ..
            } => {
                let m = eval_mask(toks, scrutinee.0, scrutinee.1, env, public);
                for arm in arms {
                    bind_all(&arm.binds, m, env);
                    bind_pass(toks, &arm.body, public, env);
                }
            }
            Stmt::Return { .. } | Stmt::Break { .. } | Stmt::Continue { .. } => {}
            Stmt::Expr { .. } => {}
        }
    }
}

fn bind_all(binds: &[String], mask: u64, env: &mut HashMap<String, u64>) {
    if mask == 0 {
        return;
    }
    for b in binds {
        *env.entry(b.clone()).or_insert(0) |= mask;
    }
}

/// Origin mask of the expression span `toks[start..end)`.
///
/// Chains are evaluated left to right: a tainted base keeps its mask
/// through field projections and method calls, except projections onto a
/// pragma-declared public field and the size methods in
/// [`TAINT_LAUNDERING`], which zero the chain. Call results pick up the
/// union of their argument masks via the continuing linear scan.
pub fn eval_mask(
    toks: &[Tok],
    start: usize,
    end: usize,
    env: &HashMap<String, u64>,
    public: &HashSet<String>,
) -> u64 {
    let mut mask = 0u64;
    let mut i = start;
    let end = end.min(toks.len());
    while i < end {
        let t = &toks[i];
        if let Some(name) = t.ident() {
            // Skip path segments `Foo::bar` — enum variants and constants
            // are not data.
            if toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
                i += 2;
                continue;
            }
            let mut chain = env.get(name).copied().unwrap_or(0);
            let mut j = i + 1;
            while j + 1 < toks.len() && toks[j].is_punct(".") {
                let Some(field) = toks[j + 1].ident() else {
                    break;
                };
                let is_call = toks.get(j + 2).is_some_and(|n| n.is_punct("("));
                // A `.field` projection launders when the field is declared
                // public; a call does when it is a size query or a declared
                // public accessor (`self.fused_rows()` — the iteration
                // structure is the documented residual leak).
                let launders =
                    public.contains(field) || (is_call && TAINT_LAUNDERING.contains(&field));
                if launders {
                    chain = 0;
                }
                j += 2;
                if is_call {
                    break; // arguments are folded in by the linear walk
                }
            }
            mask |= chain;
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    mask
}

/// Keywords that start statements, never calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "break", "continue", "fn", "let",
    "move", "in", "as", "mut", "ref", "unsafe", "impl", "struct", "enum", "use", "pub", "where",
    "const", "static", "type", "trait", "mod", "dyn",
];

struct Lowerer<'a> {
    toks: &'a [Tok],
    env: &'a HashMap<String, u64>,
    public: &'a HashSet<String>,
    sites: Vec<Site>,
    blocks: Vec<Block>,
    /// (continue-target block, break fixup list) per enclosing loop.
    loops: Vec<(u32, Vec<u32>)>,
    /// Condition masks of the enclosing branches.
    guards: Vec<u64>,
}

impl Lowerer<'_> {
    fn new_block(&mut self) -> u32 {
        self.blocks.push(Block::default());
        (self.blocks.len() - 1) as u32
    }

    fn edge(&mut self, from: u32, to: u32) {
        self.blocks[from as usize].succs.push(to);
    }

    fn site(&mut self, blk: u32, s: Site) -> u32 {
        let id = self.sites.len() as u32;
        self.sites.push(s);
        self.blocks[blk as usize].sites.push(id);
        id
    }

    fn guard_mask(&self) -> u64 {
        self.guards.iter().fold(0, |a, b| a | b)
    }

    fn mask(&self, span: (usize, usize)) -> u64 {
        eval_mask(self.toks, span.0, span.1, self.env, self.public)
    }

    /// Lower a statement list into `cur`, returning the block control
    /// falls out of.
    fn stmts(&mut self, stmts: &[Stmt], mut cur: u32) -> u32 {
        for s in stmts {
            cur = self.stmt(s, cur);
        }
        cur
    }

    fn stmt(&mut self, s: &Stmt, cur: u32) -> u32 {
        match s {
            Stmt::Let { init, spliced, .. } => {
                // A spliced block initializer already lowered its inner
                // statements (and their sites) just before this binding;
                // re-walking the flat span would double-count them.
                if !spliced {
                    if let Some(&(a, b)) = init.as_ref() {
                        self.span_sites((a, b), cur);
                    }
                }
                cur
            }
            Stmt::Expr { range, .. } => {
                self.span_sites(*range, cur);
                cur
            }
            Stmt::If {
                line,
                cond,
                then_b,
                else_b,
                ..
            } => {
                self.span_sites(*cond, cur);
                let m = self.mask(*cond);
                self.site(
                    cur,
                    Site::Branch {
                        line: *line,
                        kind: BranchKind::If,
                        mask: m,
                    },
                );
                let join = self.new_block();
                self.guards.push(m);
                let then_blk = self.new_block();
                self.edge(cur, then_blk);
                let then_end = self.stmts(then_b, then_blk);
                self.edge(then_end, join);
                if else_b.is_empty() {
                    self.edge(cur, join);
                } else {
                    let else_blk = self.new_block();
                    self.edge(cur, else_blk);
                    let else_end = self.stmts(else_b, else_blk);
                    self.edge(else_end, join);
                }
                self.guards.pop();
                join
            }
            Stmt::While {
                line, cond, body, ..
            } => {
                let header = self.new_block();
                self.edge(cur, header);
                self.span_sites(*cond, header);
                let m = self.mask(*cond);
                self.site(
                    header,
                    Site::Branch {
                        line: *line,
                        kind: BranchKind::While,
                        mask: m,
                    },
                );
                let after = self.new_block();
                self.edge(header, after);
                self.guards.push(m);
                self.loops.push((header, Vec::new()));
                let body_blk = self.new_block();
                self.edge(header, body_blk);
                let body_end = self.stmts(body, body_blk);
                self.edge(body_end, header);
                self.guards.pop();
                if let Some((_, brks)) = self.loops.pop() {
                    for b in brks {
                        self.edge(b, after);
                    }
                }
                after
            }
            Stmt::Loop { body } => {
                let header = self.new_block();
                self.edge(cur, header);
                let after = self.new_block();
                self.loops.push((header, Vec::new()));
                let body_end = self.stmts(body, header);
                self.edge(body_end, header);
                if let Some((_, brks)) = self.loops.pop() {
                    for b in brks {
                        self.edge(b, after);
                    }
                }
                after
            }
            Stmt::For { iter, body, .. } => {
                self.span_sites(*iter, cur);
                let m = self.mask(*iter);
                let after = self.new_block();
                self.edge(cur, after); // zero iterations
                self.guards.push(m);
                self.loops.push((cur, Vec::new()));
                let body_blk = self.new_block();
                self.edge(cur, body_blk);
                let body_end = self.stmts(body, body_blk);
                self.edge(body_end, body_blk); // next iteration
                self.edge(body_end, after);
                self.guards.pop();
                if let Some((_, brks)) = self.loops.pop() {
                    for b in brks {
                        self.edge(b, after);
                    }
                }
                after
            }
            Stmt::Match {
                line,
                scrutinee,
                arms,
            } => {
                self.span_sites(*scrutinee, cur);
                let m = self.mask(*scrutinee);
                self.site(
                    cur,
                    Site::Branch {
                        line: *line,
                        kind: BranchKind::Match,
                        mask: m,
                    },
                );
                let join = self.new_block();
                if arms.is_empty() {
                    self.edge(cur, join);
                }
                for arm in arms {
                    let ablk = self.new_block();
                    self.edge(cur, ablk);
                    let mut g = m;
                    if let Some(gspan) = arm.guard {
                        self.span_sites(gspan, ablk);
                        g |= self.mask(gspan);
                    }
                    self.guards.push(g);
                    let aend = self.stmts(&arm.body, ablk);
                    self.guards.pop();
                    self.edge(aend, join);
                }
                join
            }
            Stmt::Return { line, expr } => {
                self.span_sites(*expr, cur);
                let is_err = self.toks.get(expr.0).is_some_and(|t| t.is_ident("Err"));
                self.site(
                    cur,
                    Site::Exit {
                        line: *line,
                        mask: self.guard_mask(),
                        is_try: false,
                        is_err,
                    },
                );
                self.new_block() // dead
            }
            Stmt::Break { .. } => {
                if let Some((_, brks)) = self.loops.last_mut() {
                    brks.push(cur);
                }
                self.new_block()
            }
            Stmt::Continue { .. } => {
                let target = self.loops.last().map(|(h, _)| *h);
                if let Some(h) = target {
                    self.edge(cur, h);
                }
                self.new_block()
            }
        }
    }

    /// Flat scan of an expression span: `?`, embedded control keywords,
    /// indexing, short-circuits, calls, allocs, io effects.
    fn span_sites(&mut self, span: (usize, usize), blk: u32) {
        let (start, end) = span;
        let end = end.min(self.toks.len());
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            match &t.kind {
                TokKind::Punct("?") => {
                    let prev_ok = i > start
                        && (matches!(self.toks[i - 1].kind, TokKind::Ident(_))
                            || self.toks[i - 1].is_punct(")")
                            || self.toks[i - 1].is_punct("]"));
                    if prev_ok {
                        let chain = eval_mask(self.toks, start, i, self.env, self.public);
                        self.site(
                            blk,
                            Site::Exit {
                                line: t.line,
                                mask: self.guard_mask() | chain,
                                is_try: true,
                                is_err: true,
                            },
                        );
                    }
                }
                TokKind::Punct("&&") | TokKind::Punct("||") => {
                    let binary = i > start
                        && (matches!(self.toks[i - 1].kind, TokKind::Ident(_) | TokKind::Number)
                            || self.toks[i - 1].is_punct(")")
                            || self.toks[i - 1].is_punct("]"));
                    if binary {
                        self.site(
                            blk,
                            Site::Branch {
                                line: t.line,
                                kind: BranchKind::Short,
                                mask: eval_mask(self.toks, start, end, self.env, self.public),
                            },
                        );
                    }
                }
                TokKind::Punct("[") => {
                    let indexing = i > start
                        && (matches!(self.toks[i - 1].kind, TokKind::Ident(_))
                            || self.toks[i - 1].is_punct(")")
                            || self.toks[i - 1].is_punct("]"));
                    if indexing {
                        let close = self.match_square(i, end);
                        let m = eval_mask(self.toks, i + 1, close, self.env, self.public);
                        self.site(
                            blk,
                            Site::Index {
                                line: t.line,
                                mask: m,
                            },
                        );
                    }
                }
                TokKind::Ident(name) => {
                    let name = name.as_str();
                    if name == "return" {
                        let is_err = self.toks.get(i + 1).is_some_and(|n| n.is_ident("Err"));
                        self.site(
                            blk,
                            Site::Exit {
                                line: t.line,
                                mask: self.guard_mask()
                                    | eval_mask(self.toks, start, i, self.env, self.public),
                                is_try: false,
                                is_err,
                            },
                        );
                    } else if (name == "if" || name == "while" || name == "match")
                        && !self.toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
                    {
                        // Control flow embedded in an expression (a match
                        // used as a value, a closure body, a let-else).
                        let cstart = if self.toks.get(i + 1).is_some_and(|n| n.is_ident("let")) {
                            // Scrutinee after the `=`.
                            let mut j = i + 2;
                            while j < end && !self.toks[j].is_punct("=") {
                                j += 1;
                            }
                            j + 1
                        } else {
                            i + 1
                        };
                        let open = cfg::block_open(self.toks, cstart, end);
                        let kind = match name {
                            "while" => BranchKind::While,
                            "match" => BranchKind::Match,
                            _ => BranchKind::If,
                        };
                        self.site(
                            blk,
                            Site::Branch {
                                line: t.line,
                                kind,
                                mask: eval_mask(self.toks, cstart, open, self.env, self.public),
                            },
                        );
                    } else if self.toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
                        && self
                            .toks
                            .get(i + 2)
                            .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
                    {
                        if ALLOC_MACROS.contains(&name) {
                            self.site(
                                blk,
                                Site::Alloc {
                                    line: t.line,
                                    what: format!("{name}!"),
                                },
                            );
                        } else if name == "write" || name == "writeln" {
                            self.site(
                                blk,
                                Site::Io {
                                    line: t.line,
                                    write: true,
                                },
                            );
                        }
                        i += 2;
                    } else if self.toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                        && !KEYWORDS.contains(&name)
                        && !(i > 0 && self.toks[i - 1].is_ident("fn"))
                    {
                        self.call_site(i, name, start, end, blk);
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Classify and record the call whose name ident sits at `i`.
    fn call_site(&mut self, i: usize, name: &str, span_start: usize, end: usize, blk: u32) {
        let t = &self.toks[i];
        let prev_dot = i > 0 && self.toks[i - 1].is_punct(".");
        let prev_path = i > 0 && self.toks[i - 1].is_punct("::");

        if prev_dot && (TAINT_LAUNDERING.contains(&name) || self.public.contains(name)) {
            // Size queries and declared-public accessors: their results are
            // input-independent by declaration, so the call is neither a
            // taint source nor a constant-flow propagation edge.
            return;
        }

        // Effects first: they are effects wherever they resolve.
        if prev_dot && (name == "write_all" || name == "write" || name == "write_vectored") {
            self.site(
                blk,
                Site::Io {
                    line: t.line,
                    write: true,
                },
            );
            return;
        }
        if prev_dot && (name == "sync_data" || name == "sync_all") {
            self.site(
                blk,
                Site::Io {
                    line: t.line,
                    write: false,
                },
            );
            return;
        }

        let qual = if prev_path {
            self.toks
                .get(i.wrapping_sub(2))
                .and_then(|q| q.ident())
                .unwrap_or("")
        } else {
            ""
        };
        if prev_dot && ALLOC_METHODS.contains(&name) {
            self.site(
                blk,
                Site::Alloc {
                    line: t.line,
                    what: format!(".{name}()"),
                },
            );
            return;
        }
        if prev_path && ALLOC_TYPES.contains(&qual) {
            self.site(
                blk,
                Site::Alloc {
                    line: t.line,
                    what: format!("{qual}::{name}"),
                },
            );
            return;
        }

        let (kind, recv) = if prev_dot {
            let chain_start = self.chain_start(i - 1, span_start);
            let is_self = chain_start + 2 == i && self.toks[chain_start].is_ident("self");
            let recv = eval_mask(self.toks, chain_start, i - 1, self.env, self.public);
            (
                if is_self {
                    CallKind::SelfMethod
                } else {
                    CallKind::Method
                },
                recv,
            )
        } else if prev_path {
            (CallKind::Qualified, 0)
        } else {
            // A bare call on a let-bound name is a closure (or fn-pointer)
            // invocation, not a workspace free fn — resolving it by name
            // would wire the call graph to an unrelated same-named fn.
            if self.env.contains_key(name) {
                return;
            }
            (CallKind::Free, 0)
        };

        let args = self.arg_masks(i + 1, end);
        self.site(
            blk,
            Site::Call(CallSite {
                line: t.line,
                name: name.to_string(),
                kind,
                qual: qual.to_string(),
                recv,
                args,
            }),
        );
    }

    /// Walk a method-call receiver chain backwards from the `.` at `dot`.
    fn chain_start(&self, dot: usize, limit: usize) -> usize {
        let mut i = dot;
        while i > limit {
            let p = &self.toks[i - 1];
            if p.is_punct(")") || p.is_punct("]") {
                // Match backwards to the opener.
                let (open, close) = if p.is_punct(")") {
                    ("(", ")")
                } else {
                    ("[", "]")
                };
                let mut depth = 0i32;
                let mut j = i - 1;
                loop {
                    if self.toks[j].is_punct(close) {
                        depth += 1;
                    } else if self.toks[j].is_punct(open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == limit {
                        break;
                    }
                    j -= 1;
                }
                i = j;
                continue;
            }
            if matches!(p.kind, TokKind::Ident(_)) || p.is_punct(".") || p.is_punct("::") {
                i -= 1;
                continue;
            }
            break;
        }
        i
    }

    /// Per-argument origin masks of the call whose `(` sits at `open`.
    fn arg_masks(&self, open: usize, end: usize) -> Vec<u64> {
        let mut args = Vec::new();
        let close = self.match_paren(open, end);
        if close <= open + 1 {
            return args; // no arguments
        }
        let mut depth = 0i32;
        let mut arg_start = open + 1;
        let mut i = open;
        while i <= close && i < self.toks.len() {
            let t = &self.toks[i];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    if i > arg_start && args.len() < 16 {
                        args.push(eval_mask(self.toks, arg_start, i, self.env, self.public));
                    }
                    break;
                }
            } else if t.is_punct(",") && depth == 1 && args.len() < 16 {
                args.push(eval_mask(self.toks, arg_start, i, self.env, self.public));
                arg_start = i + 1;
            }
            i += 1;
        }
        args
    }

    fn match_paren(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        let end = end.min(self.toks.len());
        while i < end {
            if self.toks[i].is_punct("(") {
                depth += 1;
            } else if self.toks[i].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end
    }

    fn match_square(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        let end = end.min(self.toks.len());
        while i < end {
            if self.toks[i].is_punct("[") {
                depth += 1;
            } else if self.toks[i].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::find_fns;
    use crate::lexer::lex;

    fn summary(src: &str, public: &[&str]) -> FnSummary {
        let lexed = lex(src);
        let decl = &find_fns(&lexed.toks)[0];
        let public: HashSet<String> = public.iter().map(|s| s.to_string()).collect();
        summarize(&lexed.toks, decl, &public)
    }

    #[test]
    fn param_masks_flow_through_lets() {
        let src = "fn f(x: u64, n: usize) {\n\
                       let y = x + 1;\n\
                       let z = n * 2;\n\
                       if y > 0 { g(); }\n\
                       if z > 0 { g(); }\n\
                   }\n";
        let s = summary(src, &[]);
        let branches: Vec<u64> = s
            .sites
            .iter()
            .filter_map(|site| match site {
                Site::Branch { mask, kind, .. } if *kind == BranchKind::If => Some(*mask),
                _ => None,
            })
            .collect();
        assert_eq!(branches, vec![1, 2], "{:?}", s.sites);
    }

    #[test]
    fn len_launders_and_public_fields_launder() {
        let src = "fn f(&mut self, x: u64) {\n\
                       if self.w > 0 { g(); }\n\
                       if x.len() > 0 { g(); }\n\
                       if self.data > 0 { g(); }\n\
                   }\n";
        let s = summary(src, &["w"]);
        let branches: Vec<u64> = s
            .sites
            .iter()
            .filter_map(|site| match site {
                Site::Branch { mask, .. } => Some(*mask),
                _ => None,
            })
            .collect();
        // self.w public → 0; x.len() laundered → 0; self.data → self bit.
        assert_eq!(branches, vec![0, 0, 1]);
    }

    #[test]
    fn call_sites_carry_arg_masks() {
        let src = "fn f(x: u64, n: usize) {\n\
                       helper(x, n, 3);\n\
                       self.step(n);\n\
                   }\n";
        let s = summary(src, &[]);
        let calls: Vec<&CallSite> = s
            .sites
            .iter()
            .filter_map(|site| match site {
                Site::Call(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].name, "helper");
        assert_eq!(calls[0].kind, CallKind::Free);
        assert_eq!(calls[0].args, vec![1, 2, 0]);
        assert_eq!(calls[1].name, "step");
        assert_eq!(calls[1].kind, CallKind::SelfMethod); // spelled on `self`
    }

    #[test]
    fn returns_record_guard_masks() {
        let src = "fn f(x: u64, n: usize) -> u64 {\n\
                       if n == 0 { return 1; }\n\
                       if x == 0 { return 2; }\n\
                       x\n\
                   }\n";
        let s = summary(src, &["n"]);
        let exits: Vec<u64> = s
            .sites
            .iter()
            .filter_map(|site| match site {
                Site::Exit { mask, .. } => Some(*mask),
                _ => None,
            })
            .collect();
        // First return guarded by public n (mask has n's bit), second by x.
        assert_eq!(exits, vec![2, 1]);
    }

    #[test]
    fn io_and_alloc_sites() {
        let src = "fn f(&mut self) -> std::io::Result<()> {\n\
                       let mut v = Vec::new();\n\
                       v.push(1);\n\
                       self.file.write_all(b\"x\")?;\n\
                       self.file.sync_data()?;\n\
                       Ok(())\n\
                   }\n";
        let s = summary(src, &[]);
        let allocs = s
            .sites
            .iter()
            .filter(|s| matches!(s, Site::Alloc { .. }))
            .count();
        let writes = s
            .sites
            .iter()
            .filter(|s| matches!(s, Site::Io { write: true, .. }))
            .count();
        let syncs = s
            .sites
            .iter()
            .filter(|s| matches!(s, Site::Io { write: false, .. }))
            .count();
        assert_eq!((allocs, writes, syncs), (2, 1, 1), "{:?}", s.sites);
    }

    #[test]
    fn cfg_has_loop_back_edges() {
        let src = "fn f(n: usize) { while n > 0 { g(); } h(); }\n";
        let s = summary(src, &[]);
        // Some block must point back to an earlier block (the loop).
        let back = s
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&t| t != EXIT && (t as usize) <= i));
        assert!(back, "{:?}", s.blocks);
    }

    #[test]
    fn self_method_spelling_detected() {
        let src = "fn f(&mut self) { self.step(); self.queue.refill(); }\n";
        let s = summary(src, &[]);
        let kinds: Vec<CallKind> = s
            .sites
            .iter()
            .filter_map(|site| match site {
                Site::Call(c) => Some(c.kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![CallKind::SelfMethod, CallKind::Method]);
    }
}
