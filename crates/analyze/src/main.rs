//! `analyze` — the workspace static-analysis gate.
//!
//! ```text
//! cargo run -p analyze [--release] -- [--root PATH] [--json PATH] [--list-lints]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: analyze [--root PATH] [--json PATH] [--list-lints]\n\
     \n\
     Runs the constant-flow and workspace-invariant lints over every Rust\n\
     source file in the workspace.\n\
     \n\
     --root PATH    workspace root (default: this crate's workspace)\n\
     --json PATH    also write the report as JSON to PATH\n\
     --list-lints   print the lint catalog and exit\n"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--list-lints" => {
                for (name, desc) in analyze::LINTS {
                    println!("{name:18} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    // Default root: two levels up from this crate (crates/analyze -> repo).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let report = match analyze::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json {
        if let Err(e) = fs::write(&path, report.to_json()) {
            eprintln!("analyze: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &report.findings {
        println!("{}", f.render());
    }
    println!(
        "analyze: {} file(s), {} constant-flow fn(s), {} allow(s) consumed, {} finding(s)",
        report.files_scanned,
        report.constant_flow_fns,
        report.allows_consumed,
        report.findings.len()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
