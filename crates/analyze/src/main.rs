//! `analyze` — the workspace static-analysis gate.
//!
//! ```text
//! cargo run -p analyze [--release] -- [--root PATH] [--json PATH] \
//!     [--sarif PATH] [--baseline PATH] [--no-cache] [--list-lints]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use analyze::RunOptions;
use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: analyze [--root PATH] [--json PATH] [--sarif PATH] [--baseline PATH]\n\
     \x20              [--no-cache] [--list-lints]\n\
     \n\
     Runs the constant-flow, crash-consistency, zero-alloc, and workspace\n\
     invariant lints over every Rust source file in the workspace.\n\
     \n\
     --root PATH      workspace root (default: this crate's workspace)\n\
     --json PATH      also write the report as JSON to PATH\n\
     --sarif PATH     also write the report as SARIF 2.1.0 to PATH\n\
     --baseline PATH  baseline file (default: <root>/analyze.baseline)\n\
     --no-cache       skip the incremental cache under target/analyze-cache\n\
     --list-lints     print the lint catalog and exit\n"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut sarif: Option<PathBuf> = None;
    let mut opts = RunOptions::default();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" | "--json" | "--sarif" | "--baseline" => {
                let Some(p) = args.next() else {
                    eprintln!("{arg} needs a path\n{}", usage());
                    return ExitCode::from(2);
                };
                let p = PathBuf::from(p);
                match arg.as_str() {
                    "--root" => root = Some(p),
                    "--json" => json = Some(p),
                    "--sarif" => sarif = Some(p),
                    _ => opts.baseline = Some(p),
                }
            }
            "--no-cache" => opts.no_cache = true,
            "--list-lints" => {
                for (name, desc) in analyze::LINTS {
                    println!("{name:20} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    // Default root: two levels up from this crate (crates/analyze -> repo).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let report = match analyze::analyze_workspace_with(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json {
        if let Err(e) = fs::write(&path, report.to_json()) {
            eprintln!("analyze: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = sarif {
        if let Err(e) = fs::write(&path, report.to_sarif(analyze::LINTS)) {
            eprintln!("analyze: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &report.findings {
        println!("{}", f.render());
    }
    println!(
        "analyze: {} file(s) ({} cached), {} cf root(s) covering {} fn(s), \
         {} journal fn(s), {} zero-alloc root(s), {} allow(s) consumed, \
         {} baselined, {} finding(s)",
        report.files_scanned,
        report.cache_hits,
        report.constant_flow_fns,
        report.cf_covered_fns,
        report.journal_fns,
        report.zero_alloc_roots,
        report.allows_consumed,
        report.baselined,
        report.findings.len()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
