//! A minimal, lossy Rust lexer: just enough structure for token-level
//! lints, none of the grammar.
//!
//! The lexer splits a source file into a flat [`Tok`] stream (identifiers,
//! numbers, string/char literals, lifetimes, punctuation) and a parallel
//! list of [`CommentLine`]s. Comments never enter the token stream — which
//! is what keeps `unsafe` in a doc example or `unwrap()` in a `///` snippet
//! from tripping the lints — but line comments are retained on the side
//! because two of them are load-bearing: `// analyze:` pragmas and
//! `// SAFETY:` audits.
//!
//! Known approximations, acceptable for a lint pass over this workspace:
//! nested block comments are handled, raw strings up to `####` fences are
//! handled, and the `'a` lifetime vs `'a'` char-literal ambiguity is
//! resolved with one character of lookahead.

/// One lexical token, tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based line of the token's first character.
    pub line: u32,
    /// What the token is.
    pub kind: TokKind,
}

/// Token classes the lints care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `x_top`, ...).
    Ident(String),
    /// Numeric literal (value irrelevant to every lint).
    Number,
    /// String or byte-string literal (contents dropped).
    Str,
    /// Char literal.
    Char,
    /// Lifetime such as `'a` (name dropped).
    Lifetime,
    /// Punctuation, longest-match: `&&`, `::`, `->`, `..=`, single chars...
    Punct(&'static str),
}

impl Tok {
    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when the token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, TokKind::Punct(s) if *s == p)
    }

    /// True when the token is the exact identifier/keyword `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(s) if s == name)
    }
}

/// A `//` comment, with its line and its text after the slashes.
#[derive(Debug, Clone)]
pub struct CommentLine {
    /// 1-based source line.
    pub line: u32,
    /// Comment text after `//` (and after `/` or `!` for doc comments),
    /// untrimmed.
    pub text: String,
}

/// Lexer output: token stream plus the line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments excluded.
    pub toks: Vec<Tok>,
    /// Every `//`-style comment line (doc comments included).
    pub comments: Vec<CommentLine>,
}

/// Multi-character punctuation, longest first so prefix matches lose.
const PUNCTS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "&&", "||", "::", "->", "=>", "..", "==", "!=", "<=", ">=", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Single-character punctuation table (index by ASCII byte).
const SINGLES: &str = "+-*/%^&|!<>=.,;:#$?@(){}[]'\"\\~";

fn punct_at(rest: &str) -> Option<&'static str> {
    for p in PUNCTS {
        if rest.starts_with(p) {
            return Some(p);
        }
    }
    let first = rest.as_bytes().first().copied()?;
    if SINGLES.as_bytes().contains(&first) {
        // Safe: SINGLES is ASCII, so the 1-byte slice is valid UTF-8 and
        // every such slice is a static str into SINGLES itself.
        let i = SINGLES.bytes().position(|b| b == first)?;
        return SINGLES.get(i..i + 1);
    }
    None
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_cont(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenize `src`. Never fails: unrecognized bytes are skipped, truncated
/// literals consume to end-of-file — for a lint pass, resilience beats
/// strictness.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    // Advance over one char, tracking newlines.
    macro_rules! bump {
        () => {{
            if bytes[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (doc or plain).
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start_line = line;
            let mut j = i + 2;
            // Strip the third doc-comment char so `/// SAFETY:`-style text
            // still parses, but keep ordinary `//` text whole.
            if j < n && (bytes[j] == '/' || bytes[j] == '!') {
                j += 1;
            }
            let mut text = String::new();
            while i < n && bytes[i] != '\n' {
                if i >= j {
                    text.push(bytes[i]);
                }
                i += 1;
            }
            out.comments.push(CommentLine {
                line: start_line,
                text,
            });
            continue;
        }
        // Block comment, nesting honoured.
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump!();
                }
            }
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."# (byte-ness irrelevant).
        if (c == 'r' || c == 'b') && raw_string_start(&bytes, i) {
            let tok_line = line;
            i = skip_raw_string(&bytes, i, &mut line);
            out.toks.push(Tok {
                line: tok_line,
                kind: TokKind::Str,
            });
            continue;
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && bytes[i + 1] == '"') {
            let tok_line = line;
            if c == 'b' {
                i += 1;
            }
            i += 1; // opening quote
            while i < n {
                if bytes[i] == '\\' && i + 1 < n {
                    bump!();
                    bump!();
                    continue;
                }
                if bytes[i] == '"' {
                    i += 1;
                    break;
                }
                bump!();
            }
            out.toks.push(Tok {
                line: tok_line,
                kind: TokKind::Str,
            });
            continue;
        }
        // Lifetime vs char literal.
        if c == '\'' {
            let tok_line = line;
            let next = bytes.get(i + 1).copied();
            let after = bytes.get(i + 2).copied();
            let is_lifetime = match (next, after) {
                (Some(nc), a) => nc != '\\' && is_ident_start(nc) && a != Some('\''),
                _ => false,
            };
            if is_lifetime {
                i += 1;
                while i < n && is_ident_cont(bytes[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    line: tok_line,
                    kind: TokKind::Lifetime,
                });
            } else {
                // Char literal: consume to the closing quote.
                i += 1;
                while i < n {
                    if bytes[i] == '\\' && i + 1 < n {
                        bump!();
                        bump!();
                        continue;
                    }
                    if bytes[i] == '\'' {
                        i += 1;
                        break;
                    }
                    bump!();
                }
                out.toks.push(Tok {
                    line: tok_line,
                    kind: TokKind::Char,
                });
            }
            continue;
        }
        // Numbers (suffixes and underscores ride along as ident chars).
        if c.is_ascii_digit() {
            let tok_line = line;
            while i < n && (is_ident_cont(bytes[i]) || bytes[i] == '.') {
                // Don't eat `..` range operators after a number.
                if bytes[i] == '.' && bytes.get(i + 1) == Some(&'.') {
                    break;
                }
                // `.method()` after a literal: stop at a non-digit follower.
                if bytes[i] == '.' && !bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    break;
                }
                i += 1;
            }
            out.toks.push(Tok {
                line: tok_line,
                kind: TokKind::Number,
            });
            continue;
        }
        // Identifiers, keywords, and r#raw idents.
        if is_ident_start(c) || (c == 'r' && i + 1 < n && bytes[i + 1] == '#') {
            let tok_line = line;
            if c == 'r'
                && bytes.get(i + 1) == Some(&'#')
                && bytes.get(i + 2).is_some_and(|&x| is_ident_start(x))
            {
                i += 2;
            }
            let start = i;
            while i < n && is_ident_cont(bytes[i]) {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            out.toks.push(Tok {
                line: tok_line,
                kind: TokKind::Ident(text),
            });
            continue;
        }
        // Punctuation.
        let rest: String = bytes[i..n.min(i + 3)].iter().collect();
        if let Some(p) = punct_at(&rest) {
            out.toks.push(Tok {
                line,
                kind: TokKind::Punct(p),
            });
            i += p.len();
            continue;
        }
        // Anything else: skip.
        i += 1;
    }
    out
}

fn raw_string_start(bytes: &[char], i: usize) -> bool {
    // r" r# br" br# — a raw (byte) string opener.
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

fn skip_raw_string(bytes: &[char], mut i: usize, line: &mut u32) -> usize {
    if bytes.get(i) == Some(&'b') {
        i += 1;
    }
    i += 1; // r
    let mut fence = 0usize;
    while bytes.get(i) == Some(&'#') {
        fence += 1;
        i += 1;
    }
    i += 1; // opening quote
    let n = bytes.len();
    while i < n {
        if bytes[i] == '\n' {
            *line += 1;
        }
        if bytes[i] == '"' {
            let mut k = 0usize;
            while k < fence && bytes.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == fence {
                return i + 1 + fence;
            }
        }
        i += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_leave_the_stream() {
        let l = lex("let x = 1; // unwrap() here is fine\n/* unsafe too */ fn f() {}");
        assert!(!idents("").contains(&"unwrap".to_string()));
        assert!(l.toks.iter().all(|t| !t.is_ident("unwrap")));
        assert!(l.toks.iter().all(|t| !t.is_ident("unsafe")));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("unwrap() here is fine"));
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let l = lex(r#"let s = "unsafe { panic!() }"; let c = 'u'; let lt: &'a str = s;"#);
        assert!(l.toks.iter().all(|t| !t.is_ident("panic")));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Char));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Lifetime));
    }

    #[test]
    fn raw_strings_skip_fences() {
        let l = lex(r###"let s = r#"has "quotes" and unwrap()"#; fn g() {}"###);
        assert!(l.toks.iter().all(|t| !t.is_ident("unwrap")));
        assert!(l.toks.iter().any(|t| t.is_ident("g")));
    }

    #[test]
    fn multi_char_puncts_win() {
        let l = lex("a && b || c == d -> e :: f ..= g");
        let ps: Vec<&str> = l
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(ps, vec!["&&", "||", "==", "->", "::", "..="]);
    }

    #[test]
    fn lines_are_tracked_through_literals() {
        let l = lex("let a = \"x\ny\";\nlet b = 1;");
        let b_line = l.toks.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        assert_eq!(b_line, Some(3));
    }

    #[test]
    fn doc_comments_collected_with_marker_stripped() {
        let l = lex("/// SAFETY: documented\nfn f() {}\n//! inner\n");
        assert!(l.comments.iter().any(|c| c.text.contains("SAFETY:")));
    }
}
