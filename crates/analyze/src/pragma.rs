//! The `// analyze:` pragma grammar.
//!
//! Five forms, all line comments so they survive rustfmt and cost nothing
//! at compile time:
//!
//! ```text
//! // analyze: constant-flow
//! // analyze: constant-flow(public = "w, rows, lx")
//! // analyze: zero-alloc
//! // analyze: journal
//! // analyze: journal(create | append | replay)
//! // analyze: allow(<lint>, reason = "...")
//! // analyze: allow-file(<lint>, reason = "...")
//! ```
//!
//! `constant-flow` opts the next `fn` item into the data-dependent
//! control-flow lints **as an interprocedural root**: every function it
//! transitively calls is checked in the taint context the call graph
//! derives, with no further annotation. Its optional `public` list names
//! parameters and `self` fields whose values are input-independent
//! (widths, lengths, configuration) and therefore legal to branch on.
//! `zero-alloc` makes the next `fn` a static no-allocation root: no
//! allocating call may be reachable from it. `journal` opts the next `fn`
//! into the crash-consistency lints; the optional mode refines which ones
//! (`create` adds the single-append commit rule, `replay` adds the
//! torn-tail rule). `allow` suppresses the named lint on findings within
//! the next few source lines and **requires** a non-empty reason — the
//! escape hatch is also the documentation of the divergence it excuses.
//! `allow-file` does the same for a whole file (used by the shim-pinning
//! suite, whose entire purpose is calling the deprecated entry points).
//! Unconsumed `allow`s are themselves findings ([`crate::lints`]'
//! `unused-allow`), so stale excuses rot loudly.

use crate::lexer::CommentLine;

/// How many lines past an `allow` pragma a finding may sit and still be
/// suppressed. Covers rustfmt splitting a long condition without letting a
/// pragma silence an unrelated violation further down.
pub const ALLOW_WINDOW: u32 = 4;

/// Which crash-consistency lints a `journal` pragma enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalMode {
    /// Plain `journal`: the sync-before-completion rule only.
    General,
    /// `journal(create)`: also the single-append commit rule.
    Create,
    /// `journal(append)`: sync-before-completion (same checks as
    /// `General`; the mode documents intent).
    Append,
    /// `journal(replay)`: also the torn-tail handling rule.
    Replay,
}

/// One parsed pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pragma {
    /// `constant-flow` opt-in for the next function item.
    ConstantFlow {
        /// Line of the pragma comment.
        line: u32,
        /// Identifiers (params or `self` fields) declared input-independent.
        public: Vec<String>,
    },
    /// `zero-alloc`: the next fn is a static no-allocation root.
    ZeroAlloc {
        /// Line of the pragma comment.
        line: u32,
    },
    /// `journal` / `journal(mode)`: the next fn joins the
    /// crash-consistency lints.
    Journal {
        /// Line of the pragma comment.
        line: u32,
        /// Which rules apply.
        mode: JournalMode,
    },
    /// `allow(lint, reason = "...")` for findings within [`ALLOW_WINDOW`].
    Allow {
        /// Line of the pragma comment.
        line: u32,
        /// Lint name being excused.
        lint: String,
        /// Mandatory human rationale.
        reason: String,
    },
    /// `allow-file(lint, reason = "...")`: whole-file suppression.
    AllowFile {
        /// Line of the pragma comment.
        line: u32,
        /// Lint name being excused.
        lint: String,
        /// Mandatory human rationale.
        reason: String,
    },
}

/// A pragma the parser could not accept, reported as a finding so typos
/// fail the gate instead of silently deactivating a lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaError {
    /// Line of the malformed pragma.
    pub line: u32,
    /// What was wrong.
    pub message: String,
}

/// Parse all pragmas out of a file's comment lines.
pub fn parse_pragmas(comments: &[CommentLine]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(body) = text.strip_prefix("analyze:") else {
            continue;
        };
        match parse_one(body.trim(), c.line) {
            Ok(p) => pragmas.push(p),
            Err(message) => errors.push(PragmaError {
                line: c.line,
                message,
            }),
        }
    }
    (pragmas, errors)
}

fn parse_one(body: &str, line: u32) -> Result<Pragma, String> {
    if body == "constant-flow" {
        return Ok(Pragma::ConstantFlow {
            line,
            public: Vec::new(),
        });
    }
    if let Some(rest) = body.strip_prefix("constant-flow(") {
        let inner = rest
            .strip_suffix(')')
            .ok_or_else(|| "constant-flow(...) missing closing paren".to_string())?;
        let public = parse_public(inner)?;
        return Ok(Pragma::ConstantFlow { line, public });
    }
    if body == "zero-alloc" {
        return Ok(Pragma::ZeroAlloc { line });
    }
    if body == "journal" {
        return Ok(Pragma::Journal {
            line,
            mode: JournalMode::General,
        });
    }
    if let Some(rest) = body.strip_prefix("journal(") {
        let inner = rest
            .strip_suffix(')')
            .ok_or_else(|| "journal(...) missing closing paren".to_string())?;
        let mode = match inner.trim() {
            "create" => JournalMode::Create,
            "append" => JournalMode::Append,
            "replay" => JournalMode::Replay,
            other => {
                return Err(format!(
                    "unknown journal mode `{other}` (expected create, append, or replay)"
                ))
            }
        };
        return Ok(Pragma::Journal { line, mode });
    }
    for (kw, file_scope) in [("allow-file(", true), ("allow(", false)] {
        if let Some(rest) = body.strip_prefix(kw) {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("{kw}...) missing closing paren"))?;
            let (lint, reason) = parse_allow(inner)?;
            return Ok(if file_scope {
                Pragma::AllowFile { line, lint, reason }
            } else {
                Pragma::Allow { line, lint, reason }
            });
        }
    }
    Err(format!(
        "unrecognized pragma `{body}` (expected constant-flow, zero-alloc, journal, allow, \
         or allow-file)"
    ))
}

/// `public = "a, b, c"`.
fn parse_public(inner: &str) -> Result<Vec<String>, String> {
    let rest = inner
        .trim()
        .strip_prefix("public")
        .and_then(|r| r.trim_start().strip_prefix('='))
        .ok_or_else(|| "expected `public = \"...\"`".to_string())?;
    let list = unquote(rest.trim())?;
    Ok(list
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect())
}

/// `<lint>, reason = "..."`.
fn parse_allow(inner: &str) -> Result<(String, String), String> {
    let (lint, rest) = inner
        .split_once(',')
        .ok_or_else(|| "allow needs `lint, reason = \"...\"`".to_string())?;
    let lint = lint.trim().to_string();
    if lint.is_empty() {
        return Err("allow with empty lint name".to_string());
    }
    let reason_src = rest
        .trim()
        .strip_prefix("reason")
        .and_then(|r| r.trim_start().strip_prefix('='))
        .ok_or_else(|| "allow missing `reason = \"...\"`".to_string())?;
    let reason = unquote(reason_src.trim())?;
    if reason.trim().is_empty() {
        return Err("allow with empty reason — document why the site diverges".to_string());
    }
    Ok((lint, reason))
}

fn unquote(s: &str) -> Result<String, String> {
    let inner = s
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got `{s}`"))?;
    Ok(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(line: u32, text: &str) -> CommentLine {
        CommentLine {
            line,
            text: text.to_string(),
        }
    }

    #[test]
    fn parses_all_forms() {
        let comments = vec![
            comment(1, " analyze: constant-flow"),
            comment(2, " analyze: constant-flow(public = \"w, rows\")"),
            comment(3, " analyze: allow(cf-branch, reason = \"documented\")"),
            comment(
                4,
                " analyze: allow-file(deprecated-shim, reason = \"pin suite\")",
            ),
            comment(5, " just prose"),
        ];
        let (pragmas, errors) = parse_pragmas(&comments);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(pragmas.len(), 4);
        assert_eq!(
            pragmas[1],
            Pragma::ConstantFlow {
                line: 2,
                public: vec!["w".into(), "rows".into()]
            }
        );
        match &pragmas[2] {
            Pragma::Allow { lint, reason, .. } => {
                assert_eq!(lint, "cf-branch");
                assert_eq!(reason, "documented");
            }
            other => unreachable!("{other:?}"),
        }
    }

    #[test]
    fn malformed_pragmas_are_errors_not_silence() {
        let comments = vec![
            comment(1, " analyze: allow(cf-branch)"),
            comment(2, " analyze: allow(cf-branch, reason = \"\")"),
            comment(3, " analyze: constant-flo"),
            comment(4, " analyze: journal(weird)"),
        ];
        let (pragmas, errors) = parse_pragmas(&comments);
        assert!(pragmas.is_empty());
        assert_eq!(errors.len(), 4);
    }

    #[test]
    fn parses_journal_and_zero_alloc_forms() {
        let comments = vec![
            comment(1, " analyze: zero-alloc"),
            comment(2, " analyze: journal"),
            comment(3, " analyze: journal(create)"),
            comment(4, " analyze: journal(append)"),
            comment(5, " analyze: journal(replay)"),
        ];
        let (pragmas, errors) = parse_pragmas(&comments);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(
            pragmas,
            vec![
                Pragma::ZeroAlloc { line: 1 },
                Pragma::Journal {
                    line: 2,
                    mode: JournalMode::General
                },
                Pragma::Journal {
                    line: 3,
                    mode: JournalMode::Create
                },
                Pragma::Journal {
                    line: 4,
                    mode: JournalMode::Append
                },
                Pragma::Journal {
                    line: 5,
                    mode: JournalMode::Replay
                },
            ]
        );
    }
}
