//! Crash-consistency lints for `// analyze: journal` regions.
//!
//! The journal idiom (established in `bulk::checkpoint`, reused by
//! `bulk::shard::coordinator` and `bulk::store`) is: every record is
//! appended with `write_all` and made durable with `sync_data` *before*
//! the operation reports success; the magic+header commit is a single
//! append (no torn half-header can ever look valid); and every replay
//! path trims or classifies a torn tail instead of trusting it. These
//! were hand-review findings once; this module machine-checks them.
//!
//! Three lints over the [`crate::dataflow`] CFG summaries:
//!
//! * **journal-unsynced** — forward dataflow with state `{Clean, Dirty}`:
//!   a file write dirties, `sync_data`/`sync_all` cleans, and a call
//!   applies the callee's memoized *effect* (`Id` / `SetDirty` /
//!   `SetClean`, computed from the callee's own success paths). Any
//!   completion-observable exit (a non-`Err` return, or falling off the
//!   end) reached with `Dirty` state fires. Error exits (`return Err` and
//!   every `?`) are exempt: an error path is allowed to leave unsynced
//!   bytes behind because the caller never observes the operation as
//!   having happened.
//! * **journal-split-commit** — only in `journal(create)` fns: counts
//!   append *events* (writes, or calls into fns that append) per path; a
//!   second event on one path fires. Syncing does not reset the count —
//!   a created header must be one append, full stop.
//! * **journal-torn-tail** — a `journal(replay)` fn must transitively
//!   reach code that mentions a tail guard ([`crate::dataflow::TAIL_GUARDS`]:
//!   committed-prefix trimming via `rposition`/`rfind`, repair via
//!   `truncate`/`set_len`, or explicit `Truncated` classification).

use crate::callgraph::Program;
use crate::dataflow::{Site, EXIT};
use crate::findings::Finding;
use crate::pragma::JournalMode;
use std::collections::{HashMap, HashSet, VecDeque};

/// What calling a function does to the caller's unsynced-bytes state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Leaves the state as it was (either touches nothing, or syncs
    /// everything it writes — the `append_raw` shape).
    Id,
    /// May leave unsynced bytes behind on a success path.
    SetDirty,
    /// Ends every success path synced, including pre-existing dirt.
    SetClean,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Wet {
    Clean,
    Dirty,
}

impl Wet {
    fn join(self, other: Wet) -> Wet {
        self.max(other)
    }
}

/// An exit sample: (line, is-error-exit, state on arrival).
type ExitSample = (u32, bool, Wet);

/// Run all three journal lints over the program.
pub fn check(prog: &Program) -> Vec<Finding> {
    let mut eng = Engine {
        prog,
        effects: HashMap::new(),
        effects_busy: HashSet::new(),
        appends: HashMap::new(),
        appends_busy: HashSet::new(),
    };
    let mut findings = Vec::new();
    for (i, f) in prog.fns.iter().enumerate() {
        let Some(mode) = f.journal else { continue };
        eng.unsynced(i, &mut findings);
        if mode == JournalMode::Create {
            eng.split_commit(i, &mut findings);
        }
        if mode == JournalMode::Replay {
            eng.torn_tail(i, &mut findings);
        }
    }
    findings
}

struct Engine<'a> {
    prog: &'a Program,
    effects: HashMap<usize, Effect>,
    effects_busy: HashSet<usize>,
    appends: HashMap<usize, bool>,
    appends_busy: HashSet<usize>,
}

impl Engine<'_> {
    /// journal-unsynced: any completion exit reached Dirty.
    fn unsynced(&mut self, i: usize, out: &mut Vec<Finding>) {
        let info = &self.prog.fns[i];
        let name = info.s.name.clone();
        let file = info.file.clone();
        let samples = self.exits(i, Wet::Clean);
        let mut seen: HashSet<u32> = HashSet::new();
        for (line, is_err, st) in samples {
            if !is_err && st == Wet::Dirty && seen.insert(line) {
                out.push(Finding {
                    file: file.clone(),
                    line,
                    lint: "journal-unsynced",
                    message: format!(
                        "append path reaches a completion exit without `sync_data` \
                         in journal fn `{name}`"
                    ),
                    suggestion: "call `sync_data` before reporting success, or add \
                                 `// analyze: allow(journal-unsynced, reason = \"...\")`"
                        .to_string(),
                });
            }
        }
    }

    /// journal-split-commit: a second append event on one path of a
    /// `journal(create)` fn.
    fn split_commit(&mut self, i: usize, out: &mut Vec<Finding>) {
        let prog = self.prog;
        let info = &prog.fns[i];
        let name = info.s.name.clone();
        let file = info.file.clone();
        let nblocks = info.s.blocks.len();
        // State: appends seen so far on this path, saturating at 2.
        let mut inb: Vec<Option<u8>> = vec![None; nblocks];
        inb[0] = Some(0);
        let mut work: VecDeque<usize> = VecDeque::from([0usize]);
        let mut fired: HashSet<u32> = HashSet::new();
        while let Some(b) = work.pop_front() {
            let Some(mut st) = inb[b] else { continue };
            let (site_ids, succs) = {
                let blk = &prog.fns[i].s.blocks[b];
                (blk.sites.clone(), blk.succs.clone())
            };
            for sid in site_ids {
                let site = prog.fns[i].s.sites[sid as usize].clone();
                let (event, line) = match &site {
                    Site::Io { write: true, line } => (true, *line),
                    Site::Call(c) => {
                        let appends = prog.resolve(i, c).is_some_and(|j| self.fn_appends(j));
                        (appends, c.line)
                    }
                    _ => (false, 0),
                };
                if event {
                    if st >= 1 && fired.insert(line) {
                        out.push(Finding {
                            file: file.clone(),
                            line,
                            lint: "journal-split-commit",
                            message: format!(
                                "second append on a single commit path in \
                                 journal(create) fn `{name}` — the header must be \
                                 written as one append"
                            ),
                            suggestion: "build the full record in memory and append it once"
                                .to_string(),
                        });
                    }
                    st = (st + 1).min(2);
                }
            }
            for succ in succs {
                if succ == EXIT {
                    continue;
                }
                let s = succ as usize;
                let joined = inb[s].map_or(st, |old| old.max(st));
                if inb[s] != Some(joined) {
                    inb[s] = Some(joined);
                    work.push_back(s);
                }
            }
        }
    }

    /// journal-torn-tail: the replay fn's transitive closure must mention
    /// a tail guard.
    fn torn_tail(&mut self, i: usize, out: &mut Vec<Finding>) {
        let prog = self.prog;
        let mut seen: HashSet<usize> = HashSet::new();
        let mut queue: VecDeque<usize> = VecDeque::from([i]);
        seen.insert(i);
        while let Some(k) = queue.pop_front() {
            if !prog.fns[k].s.mentions.is_empty() {
                return; // guarded
            }
            for site in &prog.fns[k].s.sites {
                if let Site::Call(c) = site {
                    if let Some(j) = prog.resolve(k, c) {
                        if seen.insert(j) {
                            queue.push_back(j);
                        }
                    }
                }
            }
        }
        let info = &prog.fns[i];
        out.push(Finding {
            file: info.file.clone(),
            line: info.s.line,
            lint: "journal-torn-tail",
            message: format!(
                "journal(replay) fn `{}` has no torn-tail handling on any reachable \
                 path (expected committed-prefix trimming via `rposition`/`rfind`, \
                 repair via `truncate`/`set_len`, or a `Truncated` classification)",
                info.s.name
            ),
            suggestion: "trim the byte stream to the last complete record before parsing"
                .to_string(),
        });
    }

    /// Forward {Clean, Dirty} dataflow; returns every exit sample.
    fn exits(&mut self, i: usize, entry: Wet) -> Vec<ExitSample> {
        let prog = self.prog;
        let nblocks = prog.fns[i].s.blocks.len();
        if nblocks == 0 {
            return Vec::new();
        }
        let mut inb: Vec<Option<Wet>> = vec![None; nblocks];
        inb[0] = Some(entry);
        let mut work: VecDeque<usize> = VecDeque::from([0usize]);
        let mut samples: HashMap<(u32, bool), Wet> = HashMap::new();
        while let Some(b) = work.pop_front() {
            let Some(mut st) = inb[b] else { continue };
            let (site_ids, succs) = {
                let blk = &prog.fns[i].s.blocks[b];
                (blk.sites.clone(), blk.succs.clone())
            };
            for sid in site_ids {
                let site = prog.fns[i].s.sites[sid as usize].clone();
                match site {
                    Site::Io { write: true, .. } => st = Wet::Dirty,
                    Site::Io { write: false, .. } => st = Wet::Clean,
                    Site::Call(c) => {
                        if let Some(j) = prog.resolve(i, &c) {
                            match self.effect(j) {
                                Effect::Id => {}
                                Effect::SetDirty => st = Wet::Dirty,
                                Effect::SetClean => st = Wet::Clean,
                            }
                        }
                    }
                    Site::Exit { line, is_err, .. } => {
                        samples
                            .entry((line, is_err))
                            .and_modify(|old| *old = old.join(st))
                            .or_insert(st);
                    }
                    _ => {}
                }
            }
            for succ in succs {
                if succ == EXIT {
                    let line = prog.fns[i].s.end_line;
                    samples
                        .entry((line, false))
                        .and_modify(|old| *old = old.join(st))
                        .or_insert(st);
                    continue;
                }
                let s = succ as usize;
                let joined = inb[s].map_or(st, |old| old.join(st));
                if inb[s] != Some(joined) {
                    inb[s] = Some(joined);
                    work.push_back(s);
                }
            }
        }
        samples
            .into_iter()
            .map(|((line, is_err), st)| (line, is_err, st))
            .collect()
    }

    /// Memoized effect of calling fn `j`, judged from its success exits.
    fn effect(&mut self, j: usize) -> Effect {
        if let Some(&e) = self.effects.get(&j) {
            return e;
        }
        if !self.effects_busy.insert(j) {
            return Effect::Id; // recursion: optimistic, refined on memo fill
        }
        let success = |samples: &[ExitSample], dflt: Wet| -> Wet {
            samples
                .iter()
                .filter(|(_, is_err, _)| !is_err)
                .map(|&(_, _, st)| st)
                .fold(None, |acc: Option<Wet>, st| {
                    Some(acc.map_or(st, |a| a.join(st)))
                })
                .unwrap_or(dflt)
        };
        let from_clean = success(&self.exits(j, Wet::Clean), Wet::Clean);
        let from_dirty = success(&self.exits(j, Wet::Dirty), Wet::Dirty);
        let e = match (from_clean, from_dirty) {
            (Wet::Dirty, _) => Effect::SetDirty,
            (Wet::Clean, Wet::Dirty) => Effect::Id,
            (Wet::Clean, Wet::Clean) => Effect::SetClean,
        };
        self.effects_busy.remove(&j);
        self.effects.insert(j, e);
        e
    }

    /// Does fn `j` perform an append (directly or transitively) on any
    /// path? Used for split-commit event counting.
    fn fn_appends(&mut self, j: usize) -> bool {
        if let Some(&a) = self.appends.get(&j) {
            return a;
        }
        if !self.appends_busy.insert(j) {
            return false; // recursion guard
        }
        let prog = self.prog;
        let mut a = false;
        for site in &prog.fns[j].s.sites {
            match site {
                Site::Io { write: true, .. } => {
                    a = true;
                    break;
                }
                Site::Call(c) => {
                    if let Some(k) = prog.resolve(j, c) {
                        if self.fn_appends(k) {
                            a = true;
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        self.appends_busy.remove(&j);
        self.appends.insert(j, a);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::FnInfo;
    use crate::cfg::find_fns;
    use crate::lexer::lex;
    use std::collections::HashSet as Set;

    fn program(src: &str, journal: &[(&str, JournalMode)]) -> Program {
        let lexed = lex(src);
        let fns = find_fns(&lexed.toks)
            .iter()
            .map(|d| {
                let s = crate::dataflow::summarize(&lexed.toks, d, &Set::new());
                FnInfo {
                    file: "test.rs".to_string(),
                    cf_public: None,
                    za_root: false,
                    journal: journal.iter().find(|(n, _)| *n == s.name).map(|&(_, m)| m),
                    s,
                }
            })
            .collect();
        Program::build(fns)
    }

    #[test]
    fn synced_append_is_clean() {
        let src = "fn append(&mut self, x: &[u8]) -> io::Result<()> {\n\
                       self.file.write_all(x)?;\n\
                       self.file.sync_data()?;\n\
                       Ok(())\n\
                   }\n";
        let prog = program(src, &[("append", JournalMode::Append)]);
        assert!(check(&prog).is_empty());
    }

    #[test]
    fn unsynced_completion_exit_fires() {
        let src = "fn append(&mut self, x: &[u8]) -> io::Result<()> {\n\
                       self.file.write_all(x)?;\n\
                       Ok(())\n\
                   }\n";
        let prog = program(src, &[("append", JournalMode::Append)]);
        let f = check(&prog);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "journal-unsynced");
    }

    #[test]
    fn error_exit_without_sync_is_exempt() {
        let src = "fn append(&mut self, x: &[u8]) -> io::Result<()> {\n\
                       self.file.write_all(x)?;\n\
                       if x.is_empty() { return Err(bad()); }\n\
                       self.file.sync_data()?;\n\
                       Ok(())\n\
                   }\n";
        let prog = program(src, &[("append", JournalMode::Append)]);
        assert!(check(&prog).is_empty());
    }

    #[test]
    fn dirty_branch_joins_dirty() {
        let src = "fn append(&mut self, x: &[u8], skip: bool) -> io::Result<()> {\n\
                       self.file.write_all(x)?;\n\
                       if !skip {\n\
                           self.file.sync_data()?;\n\
                       }\n\
                       Ok(())\n\
                   }\n";
        let prog = program(src, &[("append", JournalMode::Append)]);
        let f = check(&prog);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "journal-unsynced");
    }

    #[test]
    fn callee_effect_id_keeps_caller_clean() {
        let src = "impl W {\n\
                   fn append_raw(&mut self, x: &[u8]) -> io::Result<()> {\n\
                       self.file.write_all(x)?;\n\
                       self.file.sync_data()?;\n\
                       Ok(())\n\
                   }\n\
                   fn record(&mut self, x: &[u8]) -> io::Result<()> {\n\
                       self.append_raw(x)?;\n\
                       Ok(())\n\
                   }\n\
                   }\n";
        let prog = program(src, &[("record", JournalMode::Append)]);
        assert!(check(&prog).is_empty());
    }

    #[test]
    fn callee_that_forgets_sync_dirties_caller() {
        let src = "impl W {\n\
                   fn raw_write(&mut self, x: &[u8]) -> io::Result<()> {\n\
                       self.file.write_all(x)?;\n\
                       Ok(())\n\
                   }\n\
                   fn record(&mut self, x: &[u8]) -> io::Result<()> {\n\
                       self.raw_write(x)?;\n\
                       Ok(())\n\
                   }\n\
                   }\n";
        let prog = program(src, &[("record", JournalMode::Append)]);
        let f = check(&prog);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "journal-unsynced");
    }

    #[test]
    fn split_commit_fires_on_two_appends() {
        let src = "fn create(&mut self) -> io::Result<()> {\n\
                       self.file.write_all(b\"MAGIC\\n\")?;\n\
                       self.file.write_all(b\"header\\n\")?;\n\
                       self.file.sync_data()?;\n\
                       Ok(())\n\
                   }\n";
        let prog = program(src, &[("create", JournalMode::Create)]);
        let f = check(&prog);
        assert!(f.iter().any(|f| f.lint == "journal-split-commit"), "{f:?}");
    }

    #[test]
    fn single_append_create_is_clean() {
        let src = "fn create(&mut self, header: &str) -> io::Result<()> {\n\
                       self.file.write_all(header.as_bytes())?;\n\
                       self.file.sync_data()?;\n\
                       Ok(())\n\
                   }\n";
        let prog = program(src, &[("create", JournalMode::Create)]);
        assert!(check(&prog).is_empty());
    }

    #[test]
    fn torn_tail_guard_detected_transitively() {
        let src = "fn replay(bytes: &[u8]) -> State {\n\
                       parse(trim(bytes))\n\
                   }\n\
                   fn trim(bytes: &[u8]) -> &[u8] {\n\
                       let end = bytes.iter().rposition(|&b| b == b'\\n');\n\
                       bytes\n\
                   }\n\
                   fn parse(bytes: &[u8]) -> State { State }\n";
        let prog = program(src, &[("replay", JournalMode::Replay)]);
        assert!(check(&prog).is_empty());
    }

    #[test]
    fn missing_torn_tail_handling_fires() {
        let src = "fn replay(bytes: &[u8]) -> State {\n\
                       parse(bytes)\n\
                   }\n\
                   fn parse(bytes: &[u8]) -> State { State }\n";
        let prog = program(src, &[("replay", JournalMode::Replay)]);
        let f = check(&prog);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "journal-torn-tail");
    }
}
