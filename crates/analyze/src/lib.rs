//! Self-hosted static analysis for the bulk-GCD workspace.
//!
//! A multi-pass dataflow engine, fully offline (no rustc plumbing, no
//! external dependencies):
//!
//! 1. **Interprocedural constant-flow.** The paper's GPU pipeline
//!    (§IV–§VI) only coalesces and stays in lockstep because the hot
//!    kernels are *semi-oblivious*: their branch and address sequences
//!    are (almost) operand-independent. Functions opt in with
//!    `// analyze: constant-flow` and become roots: [`dataflow`] builds a
//!    per-function CFG + taint summary, [`callgraph`] propagates taint
//!    contexts through calls, and every transitively-reached helper is
//!    checked with no further annotation. Intentional divergence — the
//!    DeepShift / WideAlpha / β>0 scalar fixups — is documented in place
//!    with `// analyze: allow(...)` pragmas, and the static claims are
//!    cross-checked dynamically by the differential-trace test
//!    (`tests/lockstep_trace.rs` at the workspace root).
//!
//! 2. **Crash consistency.** `// analyze: journal` functions (the
//!    checkpoint/coordinator/store append and replay paths) are run
//!    through a forward durability dataflow: every append must reach
//!    `sync_data` before a completion-observable exit, commit headers
//!    must be single appends, replay paths must handle torn tails.
//!
//! 3. **Static zero-alloc.** `// analyze: zero-alloc` roots (the scan
//!    hot loop, the GPU retry path, the queue-mode engine) must not
//!    reach an allocating call, proved by call-graph reachability.
//!
//! 4. **Workspace invariants.** No `unwrap`/`expect`/`panic!` in library
//!    code, `// SAFETY:` above every `unsafe`, no debug prints in library
//!    crates, no bare `as Limb` truncation in bigint limb arithmetic, no
//!    calls to the deprecated flat `scan_*` shims.
//!
//! Analysis is two-phase: a cacheable per-file pass ([`lints::analyze_file`],
//! memoized by [`cache`] under `target/analyze-cache/`) and a global pass
//! ([`lints::finish`]) that runs the call-graph lints, then resolves
//! `allow` pragmas and the checked-in baseline (`analyze.baseline`).
//!
//! The `analyze` binary (same crate) runs everything over the workspace
//! and gates `scripts/check.sh`. Everything here is itself library code,
//! so the analyzer must pass its own lints — it is written panic-free.

pub mod cache;
pub mod callgraph;
pub mod cfg;
pub mod constant_flow;
pub mod dataflow;
pub mod durability;
pub mod findings;
pub mod lexer;
pub mod lints;
pub mod pragma;
pub mod workspace;

pub use findings::{Finding, Report};
pub use lints::{run_file, FileClass, FileCtx, FileOutcome, LINTS};

use std::fs;
use std::io;
use std::path::Path;

/// Name of the checked-in baseline file at the workspace root.
pub const BASELINE_FILE: &str = "analyze.baseline";

/// Options for a workspace run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Skip the incremental cache entirely (always analyze fresh, write
    /// nothing).
    pub no_cache: bool,
    /// Override the baseline path (default: `<root>/analyze.baseline`;
    /// a missing file is an empty baseline, not an error).
    pub baseline: Option<std::path::PathBuf>,
}

/// Lint every source file in the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    analyze_workspace_with(root, &RunOptions::default())
}

/// [`analyze_workspace`] with explicit options.
pub fn analyze_workspace_with(root: &Path, opts: &RunOptions) -> io::Result<Report> {
    let files = workspace::collect_files(root)?;
    let mut analyses = Vec::with_capacity(files.len());
    let mut cache_hits = 0usize;
    for (path, ctx) in files {
        let src = fs::read_to_string(&path)?;
        let fp = cache::fingerprint(&src);
        let fa = if opts.no_cache {
            lints::analyze_file(&src, &ctx)
        } else if let Some(hit) = cache::load(root, &ctx.path, fp) {
            cache_hits += 1;
            hit
        } else {
            let fresh = lints::analyze_file(&src, &ctx);
            cache::store(root, &ctx.path, fp, &fresh);
            fresh
        };
        analyses.push(fa);
    }

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(BASELINE_FILE));
    let baseline_rel = opts
        .baseline
        .as_ref()
        .map_or(BASELINE_FILE.to_string(), |p| p.display().to_string());
    let baseline_text = fs::read_to_string(&baseline_path).unwrap_or_default();
    let (entries, errors) = lints::parse_baseline(&baseline_text);

    let mut report = lints::finish(&analyses, &entries, &baseline_rel);
    for (line, message) in errors {
        report.findings.push(Finding {
            file: baseline_rel.clone(),
            line,
            lint: "stale-baseline",
            message,
            suggestion: "fix the baseline line format: `lint<TAB>path<TAB>fn<TAB>reason`"
                .to_string(),
        });
    }
    report.files_scanned = analyses.len();
    report.cache_hits = cache_hits;
    report.sort();
    Ok(report)
}
