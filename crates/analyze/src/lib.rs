//! Self-hosted static analysis for the bulk-GCD workspace.
//!
//! Two pillars, both token-level and fully offline (no rustc plumbing, no
//! external dependencies):
//!
//! 1. **Constant-flow lints.** The paper's GPU pipeline (§IV–§VI) only
//!    coalesces and stays in lockstep because the hot kernels are
//!    *semi-oblivious*: their branch and address sequences are (almost)
//!    operand-independent. Functions opt in with `// analyze:
//!    constant-flow` and are scanned for data-dependent `if`/`while`/
//!    `match`, short-circuit `&&`/`||`, early `return`/`?`, and
//!    operand-derived indexing. Intentional divergence — the DeepShift /
//!    WideAlpha / β>0 scalar fixups — is documented in place with
//!    `// analyze: allow(...)` pragmas, and the static claims are
//!    cross-checked dynamically by the differential-trace test
//!    (`tests/lockstep_trace.rs` at the workspace root).
//!
//! 2. **Workspace invariants.** No `unwrap`/`expect`/`panic!` in library
//!    code, `// SAFETY:` above every `unsafe`, no debug prints in library
//!    crates, no bare `as Limb` truncation in bigint limb arithmetic, no
//!    calls to the deprecated flat `scan_*` shims.
//!
//! The `analyze` binary (same crate) runs both over the workspace and
//! gates `scripts/check.sh`. Everything here is itself library code, so
//! the analyzer must pass its own lints — it is written panic-free.

pub mod constant_flow;
pub mod findings;
pub mod lexer;
pub mod lints;
pub mod pragma;
pub mod workspace;

pub use findings::{Finding, Report};
pub use lints::{run_file, FileClass, FileCtx, FileOutcome, LINTS};

use std::fs;
use std::io;
use std::path::Path;

/// Lint every source file in the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let files = workspace::collect_files(root)?;
    let mut report = Report::default();
    for (path, ctx) in files {
        let src = fs::read_to_string(&path)?;
        let out = lints::run_file(&src, &ctx);
        report.findings.extend(out.findings);
        report.files_scanned += 1;
        report.constant_flow_fns += out.constant_flow_fns;
        report.allows_consumed += out.allows_consumed;
    }
    report.sort();
    Ok(report)
}
