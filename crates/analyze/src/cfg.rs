//! Function discovery, statement trees, and per-function control-flow
//! graphs, all built on the token stream from [`crate::lexer`].
//!
//! Three layers, each feeding the next:
//!
//! 1. [`find_fns`] walks a file's tokens and yields every `fn` item with
//!    its impl-block owner (for method resolution), parameter list (in
//!    declaration order — parameter *position* is what call sites bind
//!    to), body token range, and whether it sits in a `#[cfg(test)]`
//!    region.
//! 2. [`parse_body`] turns a body token range into a structured statement
//!    tree: `let` / `if` / `while` / `loop` / `for` / `match` / `return` /
//!    `break` / `continue` / expression statements, with condition and
//!    initializer expression ranges preserved as token spans. Control flow
//!    embedded *inside* an expression (a `match` used as a value, a
//!    `let-else`, a closure body) is left in the span; the site extractor
//!    in [`crate::dataflow`] scans spans flat, so nothing is lost — only
//!    block structure below statement granularity.
//! 3. [`lower`] turns a statement tree into a small CFG: basic blocks of
//!    site indices with successor edges, an entry block and a synthetic
//!    exit block. Loops get back edges, `break`/`continue` resolve to the
//!    innermost loop, `return` edges go straight to the exit. The
//!    crash-consistency dataflow in [`crate::durability`] runs a worklist
//!    over exactly this graph.

use crate::lexer::Tok;

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type name, if any (`impl Foo { fn bar }` → `Foo`).
    pub owner: Option<String>,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the body's closing `}`.
    pub body_close: usize,
    /// Source line of the `fn` keyword.
    pub line: u32,
    /// Source line of the body's closing `}`.
    pub end_line: u32,
    /// Parameter names in declaration order. A `self` receiver (in any
    /// form) is recorded as `"self"` at its position.
    pub params: Vec<String>,
    /// True when the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Index of the `}` matching the `{` at `open`.
pub fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Token-index ranges covered by `#[cfg(test)]` items.
pub fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 5 < toks.len() {
        let hit = toks[i].is_punct("#")
            && toks[i + 1].is_punct("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct("(")
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(")");
        if !hit {
            i += 1;
            continue;
        }
        let start = i;
        // Skip past this and any further attributes to the item itself.
        let mut j = i;
        while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
            let mut depth = 0i32;
            let mut k = j + 1;
            while k < toks.len() {
                if toks[k].is_punct("[") {
                    depth += 1;
                } else if toks[k].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
        }
        // The item body is the next `{` at depth 0; `mod tests;` (a `;`
        // first) lives in another file and excludes nothing here.
        let mut body = None;
        let mut k = j;
        while k < toks.len() {
            if toks[k].is_punct(";") {
                break;
            }
            if toks[k].is_punct("{") {
                body = Some(k);
                break;
            }
            k += 1;
        }
        if let Some(open) = body {
            if let Some(close) = match_brace(toks, open) {
                regions.push((start, close));
                i = close + 1;
                continue;
            }
        }
        i = j.max(i + 1);
    }
    regions
}

/// Find every `fn` item in a token stream, with impl owners and params.
pub fn find_fns(toks: &[Tok]) -> Vec<FnDecl> {
    let tests = test_regions(toks);
    let in_test = |idx: usize| tests.iter().any(|&(a, b)| idx >= a && idx <= b);
    // Impl blocks currently open, as (type name, closing-brace index).
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("impl") {
            if let Some((name, close)) = impl_block(toks, i) {
                impls.push((name, close));
            }
            i += 1;
            continue;
        }
        if !t.is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|n| n.ident()) else {
            i += 1;
            continue;
        };
        // Body: the first `{` at bracket depth 0 after the signature; a `;`
        // first means a bodyless trait/extern declaration.
        let mut depth = 0i32;
        let mut open = None;
        let mut j = i + 2;
        while j < toks.len() {
            let u = &toks[j];
            if u.is_punct("(") || u.is_punct("[") {
                depth += 1;
            } else if u.is_punct(")") || u.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && u.is_punct(";") {
                break;
            } else if depth == 0 && u.is_punct("{") {
                open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let Some(close) = match_brace(toks, open) else {
            i += 1;
            continue;
        };
        let owner = impls
            .iter()
            .rev()
            .find(|(_, c)| i < *c)
            .map(|(n, _)| n.clone());
        fns.push(FnDecl {
            name: name.to_string(),
            owner,
            fn_idx: i,
            body_open: open,
            body_close: close,
            line: t.line,
            end_line: toks[close].line,
            params: fn_params(toks, i, open),
            in_test: in_test(i),
        });
        // Continue *into* the body: nested fns are themselves items.
        i += 2;
    }
    fns
}

/// The type name and closing-brace index of an `impl` block starting at
/// `impl_idx`. `impl<T> Trait for Type<T>` resolves to `Type`.
fn impl_block(toks: &[Tok], impl_idx: usize) -> Option<(String, usize)> {
    let mut i = impl_idx + 1;
    let mut angle = 0i32;
    let mut last_ident: Option<&str> = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct("<<") {
            angle += 2;
        } else if t.is_punct(">>") {
            angle -= 2;
        } else if angle <= 0 {
            if t.is_punct("{") {
                let close = match_brace(toks, i)?;
                return last_ident.map(|n| (n.to_string(), close));
            }
            if t.is_ident("for") {
                last_ident = None; // the type follows; the trait came before
            } else if t.is_punct(";") {
                return None;
            } else if let Some(name) = t.ident() {
                if name != "where" && name != "dyn" && name != "mut" && name != "const" {
                    // Keep the first segment of the path only once: for
                    // `bar::Baz` the later segment overwrites, which is
                    // what we want (`Baz` is the type name).
                    last_ident = Some(name);
                }
            }
        }
        i += 1;
    }
    None
}

/// Parameter names in declaration order: idents directly followed by `:`
/// at paren depth 1 of the signature, plus `self` in any receiver form.
fn fn_params(toks: &[Tok], fn_idx: usize, body_open: usize) -> Vec<String> {
    // Find the opening paren, skipping generics.
    let mut i = fn_idx + 1;
    let mut angle = 0i32;
    while i < body_open {
        let t = &toks[i];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct("<<") {
            angle += 2;
        } else if t.is_punct(">>") {
            angle -= 2;
        } else if t.is_punct("(") && angle <= 0 {
            break;
        }
        i += 1;
    }
    let open = i;
    let mut params = Vec::new();
    let mut depth = 0i32;
    while i < body_open {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 {
            if t.is_ident("self") {
                params.push("self".to_string());
            } else if let Some(name) = t.ident() {
                if name != "mut"
                    && name != "ref"
                    && toks.get(i + 1).is_some_and(|n| n.is_punct(":"))
                    && i > open
                    && !toks[i - 1].is_punct(":")
                {
                    params.push(name.to_string());
                }
            }
        }
        i += 1;
    }
    params
}

/// One statement in a function body. Expression spans are token-index
/// ranges `(start, end)` with `end` exclusive.
#[derive(Debug)]
pub enum Stmt {
    /// `let PAT = EXPR;` — binding names and the initializer span.
    Let {
        line: u32,
        binds: Vec<String>,
        init: Option<(usize, usize)>,
        /// True when the initializer was a block expression whose
        /// statements were spliced ahead of this binding: the lowerer must
        /// not extract value sites from the (duplicate) flat span again.
        spliced: bool,
    },
    /// `if COND { .. } else { .. }`, including `if let` (whose pattern
    /// bindings are recorded so taint can flow from the scrutinee).
    If {
        line: u32,
        cond: (usize, usize),
        let_binds: Vec<String>,
        then_b: Vec<Stmt>,
        else_b: Vec<Stmt>,
    },
    /// `while COND { .. }` / `while let PAT = EXPR { .. }`.
    While {
        line: u32,
        cond: (usize, usize),
        let_binds: Vec<String>,
        body: Vec<Stmt>,
    },
    /// `loop { .. }`.
    Loop { body: Vec<Stmt> },
    /// `for PAT in EXPR { .. }`.
    For {
        line: u32,
        binds: Vec<String>,
        iter: (usize, usize),
        body: Vec<Stmt>,
    },
    /// `match EXPR { arms }`.
    Match {
        line: u32,
        scrutinee: (usize, usize),
        arms: Vec<Arm>,
    },
    /// `return EXPR;` (or bare `return;`).
    Return { line: u32, expr: (usize, usize) },
    /// `break` (labels and values folded in).
    Break { line: u32 },
    /// `continue`.
    Continue { line: u32 },
    /// Any other statement or trailing expression, kept as a flat span.
    Expr { line: u32, range: (usize, usize) },
}

/// One `match` arm: pattern bindings, optional guard span, body.
#[derive(Debug)]
pub struct Arm {
    pub binds: Vec<String>,
    pub guard: Option<(usize, usize)>,
    pub body: Vec<Stmt>,
}

/// Parse the token range `(start, end)` (exclusive of the surrounding
/// braces) into a statement list.
pub fn parse_body(toks: &[Tok], start: usize, end: usize) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct(";") || t.is_punct(",") {
            i += 1;
            continue;
        }
        if t.is_ident("let") {
            let (binds, eq) = let_pattern(toks, i + 1, end);
            match eq {
                Some(eq_idx) => {
                    let stop = stmt_end(toks, eq_idx + 1, end);
                    // A block-expression initializer (`let x = if .. {..}
                    // else {..};`, `match .. {..}`, `loop {..}`, or a bare
                    // block) hides control flow inside a flat span: splice
                    // its statements ahead of the binding so the branch and
                    // call sites inside it are visited. The binding keeps
                    // the full span as its init, which over-taints but never
                    // under-taints (duplicated value sites are deduped by
                    // the summary).
                    let mut j = eq_idx + 1;
                    while j < stop
                        && (toks[j].is_punct("&")
                            || toks[j].is_ident("mut")
                            || toks[j].is_ident("unsafe"))
                    {
                        j += 1;
                    }
                    let block_init = j < stop
                        && (toks[j].is_ident("if")
                            || toks[j].is_ident("match")
                            || toks[j].is_ident("loop")
                            || toks[j].is_punct("{"));
                    if block_init {
                        stmts.append(&mut parse_body(toks, eq_idx + 1, stop));
                    }
                    stmts.push(Stmt::Let {
                        line: t.line,
                        binds,
                        init: Some((eq_idx + 1, stop)),
                        spliced: block_init,
                    });
                    i = stop + 1;
                }
                None => {
                    let stop = stmt_end(toks, i + 1, end);
                    stmts.push(Stmt::Let {
                        line: t.line,
                        binds,
                        init: None,
                        spliced: false,
                    });
                    i = stop + 1;
                }
            }
            continue;
        }
        if t.is_ident("if") || t.is_ident("while") {
            let is_while = t.is_ident("while");
            let (let_binds, cond_start) = if toks.get(i + 1).is_some_and(|n| n.is_ident("let")) {
                let (binds, eq) = let_pattern(toks, i + 2, end);
                match eq {
                    Some(eq_idx) => (binds, eq_idx + 1),
                    None => (binds, i + 2),
                }
            } else {
                (Vec::new(), i + 1)
            };
            let open = block_open(toks, cond_start, end);
            if open >= end || !toks[open].is_punct("{") {
                // Malformed (or a match-arm `=>`); treat as a flat span.
                let stop = stmt_end(toks, i, end);
                stmts.push(Stmt::Expr {
                    line: t.line,
                    range: (i, stop),
                });
                i = stop + 1;
                continue;
            }
            let close = match_brace(toks, open).unwrap_or(end).min(end);
            let body = parse_body(toks, open + 1, close);
            if is_while {
                stmts.push(Stmt::While {
                    line: t.line,
                    cond: (cond_start, open),
                    let_binds,
                    body,
                });
                i = close + 1;
                continue;
            }
            // if: gather the else chain.
            let mut else_b = Vec::new();
            let mut after = close + 1;
            if after < end && toks[after].is_ident("else") {
                if toks.get(after + 1).is_some_and(|n| n.is_ident("if")) {
                    // Recurse: the chained if becomes the sole else stmt.
                    let chain_end = if_chain_end(toks, after + 1, end);
                    else_b = parse_body(toks, after + 1, chain_end);
                    after = chain_end;
                } else if toks.get(after + 1).is_some_and(|n| n.is_punct("{")) {
                    let eclose = match_brace(toks, after + 1).unwrap_or(end).min(end);
                    else_b = parse_body(toks, after + 2, eclose);
                    after = eclose + 1;
                }
            }
            stmts.push(Stmt::If {
                line: t.line,
                cond: (cond_start, open),
                let_binds,
                then_b: body,
                else_b,
            });
            i = after;
            continue;
        }
        if t.is_ident("loop") && toks.get(i + 1).is_some_and(|n| n.is_punct("{")) {
            let close = match_brace(toks, i + 1).unwrap_or(end).min(end);
            stmts.push(Stmt::Loop {
                body: parse_body(toks, i + 2, close),
            });
            i = close + 1;
            continue;
        }
        if t.is_ident("for") {
            let mut j = i + 1;
            let mut binds = Vec::new();
            while j < end && !toks[j].is_ident("in") {
                if let Some(name) = toks[j].ident() {
                    if name != "mut" && name != "ref" && !starts_upper(name) {
                        binds.push(name.to_string());
                    }
                }
                j += 1;
            }
            let iter_start = j + 1;
            let open = block_open(toks, iter_start, end);
            if open >= end || !toks[open].is_punct("{") {
                let stop = stmt_end(toks, i, end);
                stmts.push(Stmt::Expr {
                    line: t.line,
                    range: (i, stop),
                });
                i = stop + 1;
                continue;
            }
            let close = match_brace(toks, open).unwrap_or(end).min(end);
            stmts.push(Stmt::For {
                line: t.line,
                binds,
                iter: (iter_start, open),
                body: parse_body(toks, open + 1, close),
            });
            i = close + 1;
            continue;
        }
        if t.is_ident("match") {
            let open = block_open(toks, i + 1, end);
            if open >= end || !toks[open].is_punct("{") {
                let stop = stmt_end(toks, i, end);
                stmts.push(Stmt::Expr {
                    line: t.line,
                    range: (i, stop),
                });
                i = stop + 1;
                continue;
            }
            let close = match_brace(toks, open).unwrap_or(end).min(end);
            stmts.push(Stmt::Match {
                line: t.line,
                scrutinee: (i + 1, open),
                arms: parse_arms(toks, open + 1, close),
            });
            i = close + 1;
            continue;
        }
        if t.is_ident("return") {
            let stop = stmt_end(toks, i + 1, end);
            stmts.push(Stmt::Return {
                line: t.line,
                expr: (i + 1, stop),
            });
            i = stop + 1;
            continue;
        }
        if t.is_ident("break") {
            let stop = stmt_end(toks, i + 1, end);
            stmts.push(Stmt::Break { line: t.line });
            i = stop + 1;
            continue;
        }
        if t.is_ident("continue") {
            let stop = stmt_end(toks, i + 1, end);
            stmts.push(Stmt::Continue { line: t.line });
            i = stop + 1;
            continue;
        }
        if t.is_ident("unsafe") && toks.get(i + 1).is_some_and(|n| n.is_punct("{")) {
            let close = match_brace(toks, i + 1).unwrap_or(end).min(end);
            stmts.append(&mut parse_body(toks, i + 2, close));
            i = close + 1;
            continue;
        }
        if t.is_punct("{") {
            let close = match_brace(toks, i).unwrap_or(end).min(end);
            stmts.append(&mut parse_body(toks, i + 1, close));
            i = close + 1;
            continue;
        }
        // Expression statement (or trailing expression): flat span.
        let stop = stmt_end(toks, i, end);
        stmts.push(Stmt::Expr {
            line: t.line,
            range: (i, stop),
        });
        i = stop + 1;
    }
    stmts
}

fn starts_upper(name: &str) -> bool {
    name.chars().next().is_some_and(char::is_uppercase)
}

/// End index (exclusive) of an `if .. else if .. else ..` chain whose `if`
/// sits at `start`.
fn if_chain_end(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut i = start;
    loop {
        // Skip cond, then the block.
        let open = block_open(toks, i + 1, end);
        if open >= end || !toks[open].is_punct("{") {
            return end;
        }
        let close = match_brace(toks, open).unwrap_or(end).min(end);
        let after = close + 1;
        if after < end && toks[after].is_ident("else") {
            if toks.get(after + 1).is_some_and(|n| n.is_ident("if")) {
                i = after + 1;
                continue;
            }
            if toks.get(after + 1).is_some_and(|n| n.is_punct("{")) {
                let eclose = match_brace(toks, after + 1).unwrap_or(end).min(end);
                return (eclose + 1).min(end);
            }
        }
        return after.min(end);
    }
}

/// Binding names of a `let` pattern starting at `start`; returns the
/// names and the index of the `=` (None for `let x;` declarations).
fn let_pattern(toks: &[Tok], start: usize, limit: usize) -> (Vec<String>, Option<usize>) {
    let mut binds = Vec::new();
    let mut i = start;
    let mut in_type = false;
    let mut depth = 0i32;
    while i < limit {
        let t = &toks[i];
        if t.is_punct("=") && depth == 0 {
            return (binds, Some(i));
        }
        if (t.is_punct(";") || t.is_punct("{")) && depth == 0 {
            return (binds, None);
        }
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
            depth -= 1;
        } else if t.is_punct(":") && depth == 0 {
            in_type = true;
        } else if let Some(name) = t.ident() {
            let path = toks.get(i + 1).is_some_and(|n| n.is_punct("::"));
            if !in_type && name != "mut" && name != "ref" && !starts_upper(name) && !path {
                binds.push(name.to_string());
            }
        }
        i += 1;
    }
    (binds, None)
}

/// Index of the `;` terminating a statement starting at `start`
/// (depth-aware: `let x = { .. };` scans its whole block). Clamps at the
/// range end for trailing expressions.
pub fn stmt_end(toks: &[Tok], start: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < limit {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth = (depth - 1).max(0);
        } else if t.is_punct(";") && depth == 0 {
            return i;
        }
        i += 1;
    }
    limit
}

/// Index of the `{` opening the block for a condition starting at
/// `start`, skipping struct-literal braces inside parens/brackets, or of
/// a match-guard `=>` — whichever comes first at depth 0.
pub fn block_open(toks: &[Tok], start: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < limit {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth = (depth - 1).max(0);
        } else if depth == 0 && (t.is_punct("{") || t.is_punct("=>")) {
            return i;
        }
        i += 1;
    }
    limit
}

/// Parse match arms in `(start, end)` (inside the match braces).
fn parse_arms(toks: &[Tok], start: usize, end: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = start;
    while i < end {
        if toks[i].is_punct(",") {
            i += 1;
            continue;
        }
        // Pattern runs to the `=>` at depth 0; an `if` inside starts the
        // guard.
        let mut depth = 0i32;
        let mut guard_start = None;
        let mut binds = Vec::new();
        let mut j = i;
        let mut arrow = None;
        while j < end {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("=>") {
                arrow = Some(j);
                break;
            } else if depth == 0 && t.is_ident("if") && guard_start.is_none() {
                guard_start = Some(j + 1);
            } else if guard_start.is_none() {
                if let Some(name) = t.ident() {
                    let path = toks.get(j + 1).is_some_and(|n| n.is_punct("::"));
                    let field = toks.get(j + 1).is_some_and(|n| n.is_punct(":"));
                    if name != "mut" && name != "ref" && !starts_upper(name) && !path && !field {
                        binds.push(name.to_string());
                    }
                }
            }
            j += 1;
        }
        let Some(arrow) = arrow else {
            break;
        };
        let guard = guard_start.map(|g| (g, arrow));
        // Arm body: a block, or an expression up to the `,` at depth 0.
        let (body_start, body_end, next) = if toks.get(arrow + 1).is_some_and(|n| n.is_punct("{")) {
            let close = match_brace(toks, arrow + 1).unwrap_or(end).min(end);
            (arrow + 2, close, close + 1)
        } else {
            let mut depth = 0i32;
            let mut k = arrow + 1;
            while k < end {
                let t = &toks[k];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    depth -= 1;
                } else if t.is_punct(",") && depth == 0 {
                    break;
                }
                k += 1;
            }
            (arrow + 1, k, k + 1)
        };
        arms.push(Arm {
            binds,
            guard,
            body: parse_body(toks, body_start, body_end),
        });
        i = next;
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnDecl> {
        find_fns(&lex(src).toks)
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let src = "fn free(a: u64, b: usize) -> u64 { a }\n\
                   struct S;\n\
                   impl S { fn method(&mut self, x: u32) {} }\n\
                   impl Clone for S { fn clone(&self) -> S { S } }\n";
        let fs = fns(src);
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0].name, "free");
        assert_eq!(fs[0].owner, None);
        assert_eq!(fs[0].params, vec!["a", "b"]);
        assert_eq!(fs[1].name, "method");
        assert_eq!(fs[1].owner.as_deref(), Some("S"));
        assert_eq!(fs[1].params, vec!["self", "x"]);
        assert_eq!(fs[2].name, "clone");
        assert_eq!(fs[2].owner.as_deref(), Some("S"));
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\n";
        let fs = fns(src);
        assert!(!fs[0].in_test);
        assert!(fs[1].in_test);
    }

    #[test]
    fn parses_statement_tree() {
        let src = "fn f(x: u64, n: usize) {\n\
                       let y = x + 1;\n\
                       if y > 2 { return; } else { g(); }\n\
                       for i in 0..n { h(i); }\n\
                       match y { 0 => a(), _ => { b(); } }\n\
                       while y > 0 { break; }\n\
                   }\n";
        let lexed = lex(src);
        let f = &find_fns(&lexed.toks)[0];
        let stmts = parse_body(&lexed.toks, f.body_open + 1, f.body_close);
        assert_eq!(stmts.len(), 5, "{stmts:?}");
        assert!(matches!(stmts[0], Stmt::Let { .. }));
        let Stmt::If { then_b, else_b, .. } = &stmts[1] else {
            unreachable!("{:?}", stmts[1]);
        };
        assert!(matches!(then_b[0], Stmt::Return { .. }));
        assert_eq!(else_b.len(), 1);
        assert!(matches!(stmts[2], Stmt::For { .. }));
        let Stmt::Match { arms, .. } = &stmts[3] else {
            unreachable!("{:?}", stmts[3]);
        };
        assert_eq!(arms.len(), 2);
        assert!(matches!(stmts[4], Stmt::While { .. }));
    }

    #[test]
    fn else_if_chains_nest() {
        let src = "fn f(a: u32) -> u32 {\n\
                       if a == 0 { 1 } else if a == 1 { 2 } else { 3 }\n\
                   }\n";
        let lexed = lex(src);
        let f = &find_fns(&lexed.toks)[0];
        let stmts = parse_body(&lexed.toks, f.body_open + 1, f.body_close);
        assert_eq!(stmts.len(), 1);
        let Stmt::If { else_b, .. } = &stmts[0] else {
            unreachable!();
        };
        assert!(matches!(else_b[0], Stmt::If { .. }));
    }
}
