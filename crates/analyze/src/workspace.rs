//! Workspace discovery: find every Rust source file and classify it.
//!
//! Classification is path-based and mirrors the workspace layout in
//! `Cargo.toml`: `crates/*/src` and the root facade are [library
//! code](FileClass::Library) and get the full lint set; binaries, benches,
//! tests and examples get only the call-site lints. `vendor/`, `target/`
//! and the analyzer's own seeded-violation `fixtures/` are skipped — the
//! fixtures *must* contain violations, that is their job.

use crate::lints::{FileClass, FileCtx};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// Collect every `.rs` file under `root` with its lint context, in stable
/// (sorted) order.
pub fn collect_files(root: &Path) -> io::Result<Vec<(PathBuf, FileCtx)>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if let Some(class) = classify(&rel) {
            let bigint_limb = rel.starts_with("crates/bigint/src");
            out.push((
                path,
                FileCtx {
                    path: rel,
                    class,
                    bigint_limb,
                },
            ));
        }
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint class for a workspace-relative path; `None` means don't lint
/// (scripts, build helpers outside the known layout).
fn classify(rel: &str) -> Option<FileClass> {
    if rel.contains("/src/bin/")
        || rel.starts_with("src/bin/")
        || rel.starts_with("crates/bench/")
        || rel.ends_with("/src/main.rs")
        || rel == "src/main.rs"
    {
        return Some(FileClass::Binary);
    }
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        return Some(FileClass::Test);
    }
    if rel.starts_with("examples/") || rel.contains("/examples/") || rel.contains("/benches/") {
        return Some(FileClass::Example);
    }
    if rel.starts_with("src/") || rel.contains("/src/") {
        return Some(FileClass::Library);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_layout() {
        assert_eq!(
            classify("crates/core/src/lanes.rs"),
            Some(FileClass::Library)
        );
        assert_eq!(classify("src/lib.rs"), Some(FileClass::Library));
        assert_eq!(
            classify("crates/bench/src/bin/scan_bench.rs"),
            Some(FileClass::Binary)
        );
        assert_eq!(classify("src/bin/tool.rs"), Some(FileClass::Binary));
        assert_eq!(
            classify("crates/analyze/src/main.rs"),
            Some(FileClass::Binary)
        );
        assert_eq!(classify("tests/lockstep_trace.rs"), Some(FileClass::Test));
        assert_eq!(
            classify("crates/bulk/tests/shim_pins.rs"),
            Some(FileClass::Test)
        );
        assert_eq!(classify("examples/demo.rs"), Some(FileClass::Example));
        assert_eq!(classify("build.rs"), None);
    }
}
