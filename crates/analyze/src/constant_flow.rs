//! Constant-flow lints over [`crate::dataflow`] summaries.
//!
//! The paper's GPU speedup depends on the hot kernels being
//! *semi-oblivious* (§IV–§VI): the branch and memory-access sequence must
//! be (almost) independent of operand values or SIMT lockstep and
//! coalescing collapse. These lints enforce that statically, the way
//! constant-time discipline tools do for crypto libraries.
//!
//! A function opts in with `// analyze: constant-flow` and becomes an
//! **interprocedural root**: [`crate::callgraph::constant_flow_contexts`]
//! joins, for every function transitively reachable from a root, the set
//! of parameters that can carry operand-derived data in some calling
//! context. [`check_summary`] then turns each site whose origin mask
//! intersects that context into a finding:
//!
//! * `cf-branch` — `if` / `while` / `match` (incl. `if let`, match
//!   guards) whose condition or scrutinee is operand-derived.
//! * `cf-short-circuit` — `&&` / `||` over operand-derived values: lazy
//!   evaluation is a hidden branch.
//! * `cf-early-return` — a `return` under an operand-dependent guard, or
//!   a `?` whose guard or tried expression is operand-derived. Uniform
//!   exits (every lane takes them together) are fine — this is the
//!   path-aware refinement over the old any-return rule.
//! * `cf-index` — indexing `x[i]` where the index expression is
//!   operand-derived: a data-dependent address.
//!
//! Findings in transitively-reached helpers name the root they were
//! reached from, so a violation deep in a call chain still points back at
//! the kernel whose lockstep it would break.

use crate::callgraph::FnInfo;
use crate::dataflow::{BranchKind, Site};
use crate::findings::Finding;

const ALLOW_HINT: &str = "make it branchless, or document the divergence with \
                          `// analyze: allow(<lint>, reason = \"...\")`";

/// Emit constant-flow findings for one function checked under taint
/// context `mask` (bits over its own parameters). `root` is the pragma
/// root it was reached from; `is_root` selects the message shape.
pub fn check_summary(info: &FnInfo, mask: u64, root: &str, is_root: bool, out: &mut Vec<Finding>) {
    if mask == 0 {
        return;
    }
    let name = &info.s.name;
    let via = if is_root {
        String::new()
    } else {
        format!(" (reached from constant-flow root `{root}`)")
    };
    for site in &info.s.sites {
        match site {
            Site::Branch {
                line,
                kind,
                mask: m,
            } => {
                if m & mask == 0 {
                    continue;
                }
                match kind {
                    BranchKind::Short => out.push(finding(
                        info,
                        *line,
                        "cf-short-circuit",
                        format!(
                            "short-circuit `&&`/`||` on operand-derived values in \
                             constant-flow fn `{name}` (lazy evaluation is a hidden \
                             branch){via}"
                        ),
                        "evaluate both sides eagerly (`&`/`|`), restructure, or add an \
                         allow pragma",
                    )),
                    _ => {
                        let kw = match kind {
                            BranchKind::While => "while",
                            BranchKind::Match => "match",
                            _ => "if",
                        };
                        out.push(finding(
                            info,
                            *line,
                            "cf-branch",
                            format!(
                                "`{kw}` on an operand-derived value in constant-flow \
                                 fn `{name}`{via}"
                            ),
                            ALLOW_HINT,
                        ));
                    }
                }
            }
            Site::Index { line, mask: m } => {
                if m & mask == 0 {
                    continue;
                }
                out.push(finding(
                    info,
                    *line,
                    "cf-index",
                    format!(
                        "index derived from operand values in constant-flow fn \
                         `{name}` (data-dependent address){via}"
                    ),
                    "index by loop counters over public trip counts, or add an allow pragma",
                ));
            }
            Site::Exit {
                line,
                mask: m,
                is_try,
                ..
            } => {
                if m & mask == 0 {
                    continue;
                }
                let (what, hint) = if *is_try {
                    (
                        format!(
                            "`?` early exit on an operand-derived path in \
                             constant-flow fn `{name}`{via}"
                        ),
                        "propagate errors outside the kernel, or add an allow pragma",
                    )
                } else {
                    (
                        format!(
                            "`return` under an operand-dependent guard in \
                             constant-flow fn `{name}`{via}"
                        ),
                        "constant-flow code runs to its trailing expression; \
                         restructure or add an allow pragma",
                    )
                };
                out.push(finding(info, *line, "cf-early-return", what, hint));
            }
            _ => {}
        }
    }
}

fn finding(
    info: &FnInfo,
    line: u32,
    lint: &'static str,
    message: String,
    suggestion: &str,
) -> Finding {
    Finding {
        file: info.file.clone(),
        line,
        lint,
        message,
        suggestion: suggestion.to_string(),
    }
}
