//! Constant-flow lints for `// analyze: constant-flow` functions.
//!
//! The paper's GPU speedup depends on the hot kernels being
//! *semi-oblivious* (§IV–§VI): the branch and memory-access sequence must
//! be (almost) independent of operand values or SIMT lockstep and
//! coalescing collapse. These lints enforce that statically, the way
//! constant-time discipline tools do for crypto libraries: inside an
//! opted-in function, any control flow, short-circuit, early exit, or
//! indexing that depends on *operand-derived* values is a finding, and
//! every intended divergence (the DeepShift / WideAlpha / β>0 fixups)
//! must carry an `// analyze: allow(...)` pragma whose reason documents it.
//!
//! ## Taint model (token-level, conservative)
//!
//! * Every parameter — including `self` — is **tainted** unless named in
//!   the pragma's `public` list. Public names are the structural inputs:
//!   warp width, row counts, limb lengths, configuration.
//! * `self.field` projections consult the `public` list per field; any
//!   other projection or method call on a tainted base stays tainted.
//!   `.len()` / `.is_empty()` launder taint: operand *sizes* are public in
//!   the semi-oblivious model (they are visible in the address trace by
//!   design).
//! * `let` bindings and `for` patterns become tainted when their
//!   initializer / iterated expression is tainted. Taint is never removed
//!   by reassignment (single monotone pass).
//!
//! ## Lints
//!
//! * `cf-branch` — `if` / `while` / `match` (incl. `if let`, match guards)
//!   whose condition or scrutinee is tainted.
//! * `cf-short-circuit` — `&&` / `||` inside a tainted statement: lazy
//!   evaluation is a hidden branch.
//! * `cf-early-return` — any `return` statement or `?` operator: a
//!   constant-flow function runs to its trailing expression.
//! * `cf-index` — indexing `x[i]` where the index expression is tainted:
//!   a data-dependent address.

use crate::findings::Finding;
use crate::lexer::{Tok, TokKind};
use std::collections::HashSet;

/// Everything constant-flow analysis needs about one annotated function.
pub struct CfFunction<'a> {
    /// Workspace-relative path (for findings).
    pub file: &'a str,
    /// Function name (for messages).
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the body's closing `}`.
    pub body_close: usize,
    /// Names declared input-independent by the pragma.
    pub public: HashSet<String>,
}

/// Methods whose results are considered public even on tainted receivers:
/// sizes are part of the semi-oblivious contract (visible in every address
/// trace), so branching on them is structure, not data.
const TAINT_LAUNDERING: &[&str] = &["len", "is_empty"];

/// Run the four constant-flow lints over one annotated function.
pub fn check(toks: &[Tok], f: &CfFunction<'_>, out: &mut Vec<Finding>) {
    let mut tainted = params(toks, f);
    // First pass: propagate taint through let/for bindings, in source
    // order. A second propagation pass costs nothing and catches bindings
    // used textually before a later binding re-mentions them (not present
    // in this codebase, but cheap insurance for straight-line kernels).
    for _ in 0..2 {
        propagate(toks, f, &mut tainted);
    }
    lint_branches(toks, f, &tainted, out);
    lint_short_circuit(toks, f, &tainted, out);
    lint_early_return(toks, f, out);
    lint_index(toks, f, &tainted, out);
}

/// Parameter names of the function: idents directly followed by `:` at
/// paren depth 1 of the signature, plus bare `self`.
fn params(toks: &[Tok], f: &CfFunction<'_>) -> HashSet<String> {
    let mut names = HashSet::new();
    // Find the opening paren of the parameter list: the first `(` after
    // the fn name, skipping generics (`<...>`, counting `<<`/`>>` double).
    let mut i = f.fn_idx + 1;
    let mut angle = 0i32;
    while i < f.body_open {
        let t = &toks[i];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct("<<") {
            angle += 2;
        } else if t.is_punct(">>") {
            angle -= 2;
        } else if t.is_punct("(") && angle <= 0 {
            break;
        }
        i += 1;
    }
    let open = i;
    let mut depth = 0i32;
    while i < f.body_open {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 {
            if t.is_ident("self") {
                names.insert("self".to_string());
            } else if let Some(name) = t.ident() {
                if name != "mut"
                    && name != "ref"
                    && toks.get(i + 1).is_some_and(|n| n.is_punct(":"))
                    && i > open
                    && !toks[i - 1].is_punct(":")
                {
                    names.insert(name.to_string());
                }
            }
        }
        i += 1;
    }
    for p in &f.public {
        names.remove(p);
    }
    names
}

/// One monotone taint-propagation sweep over the body.
fn propagate(toks: &[Tok], f: &CfFunction<'_>, tainted: &mut HashSet<String>) {
    let mut i = f.body_open + 1;
    while i < f.body_close {
        let t = &toks[i];
        if t.is_ident("let") {
            // Bindings: idents up to the `=` (stopping at a type `:`), then
            // the initializer up to the statement-terminating `;`.
            let (binds, eq) = let_bindings(toks, i, f.body_close);
            if let Some(eq_idx) = eq {
                let end = stmt_end(toks, eq_idx + 1, f.body_close);
                if expr_tainted(toks, eq_idx + 1, end, tainted, &f.public) {
                    for b in binds {
                        tainted.insert(b);
                    }
                }
                i = eq_idx;
            }
        } else if t.is_ident("for") {
            // `for PAT in EXPR {` — bindings taint when EXPR does.
            let mut j = i + 1;
            let mut binds = Vec::new();
            while j < f.body_close && !toks[j].is_ident("in") {
                if let Some(name) = toks[j].ident() {
                    if name != "mut" && name != "ref" {
                        binds.push(name.to_string());
                    }
                }
                j += 1;
            }
            let start = j + 1;
            let end = block_open(toks, start, f.body_close);
            if expr_tainted(toks, start, end, tainted, &f.public) {
                for b in binds {
                    tainted.insert(b);
                }
            }
            i = end;
        } else if (t.is_ident("if") || t.is_ident("while"))
            && toks.get(i + 1).is_some_and(|n| n.is_ident("let"))
        {
            // `if let PAT = EXPR {` — pattern bindings taint from EXPR.
            let mut j = i + 2;
            let mut binds = Vec::new();
            while j < f.body_close && !toks[j].is_punct("=") {
                if let Some(name) = toks[j].ident() {
                    if name != "mut"
                        && name != "ref"
                        && !name.chars().next().is_some_and(char::is_uppercase)
                    {
                        binds.push(name.to_string());
                    }
                }
                j += 1;
            }
            let end = block_open(toks, j + 1, f.body_close);
            if expr_tainted(toks, j + 1, end, tainted, &f.public) {
                for b in binds {
                    tainted.insert(b);
                }
            }
            i = end;
        }
        i += 1;
    }
}

/// Binding names of a `let` statement starting at `let_idx`; returns the
/// names and the index of the `=` (None for `let x;` declarations).
fn let_bindings(toks: &[Tok], let_idx: usize, limit: usize) -> (Vec<String>, Option<usize>) {
    let mut binds = Vec::new();
    let mut i = let_idx + 1;
    let mut in_type = false;
    let mut depth = 0i32;
    while i < limit {
        let t = &toks[i];
        if t.is_punct("=") && depth == 0 {
            return (binds, Some(i));
        }
        if t.is_punct(";") && depth == 0 {
            return (binds, None);
        }
        match &t.kind {
            TokKind::Punct("(") | TokKind::Punct("[") | TokKind::Punct("<") => depth += 1,
            TokKind::Punct(")") | TokKind::Punct("]") | TokKind::Punct(">") => depth -= 1,
            TokKind::Punct(":") if depth == 0 => in_type = true,
            TokKind::Ident(name)
                if !in_type
                    && name != "mut"
                    && name != "ref"
                    && !name.chars().next().is_some_and(char::is_uppercase) =>
            {
                binds.push(name.clone());
            }
            _ => {}
        }
        i += 1;
    }
    (binds, None)
}

/// Index of the `;` terminating a statement starting at `start`
/// (depth-aware, so `let x = { ... };` scans its whole block). `start` may
/// sit mid-expression: a close below depth 0 just means the scan left its
/// enclosing group, so depth clamps at statement level instead of going
/// negative and swallowing the rest of the body.
fn stmt_end(toks: &[Tok], start: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < limit {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth = (depth - 1).max(0);
        } else if t.is_punct(";") && depth == 0 {
            return i;
        }
        i += 1;
    }
    limit
}

/// Index of the `{` opening the block for a condition starting at `start`,
/// or of the `=>` of a match-guard arm — whichever comes first at depth 0.
fn block_open(toks: &[Tok], start: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < limit {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth = (depth - 1).max(0);
        } else if depth == 0 && (t.is_punct("{") || t.is_punct("=>")) {
            return i;
        }
        i += 1;
    }
    limit
}

/// Is any identifier chain in `toks[start..end]` tainted?
///
/// Chains are evaluated left to right: a tainted base stays tainted
/// through field projections and method calls, except `self.<public
/// field>` and the size methods in [`TAINT_LAUNDERING`].
fn expr_tainted(
    toks: &[Tok],
    start: usize,
    end: usize,
    tainted: &HashSet<String>,
    public: &HashSet<String>,
) -> bool {
    let mut i = start;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        if let Some(name) = t.ident() {
            // Skip path segments `Foo::bar` — enum variants and constants
            // are not data.
            if toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
                i += 2;
                continue;
            }
            let mut chain_tainted = if name == "self" {
                tainted.contains("self")
            } else {
                tainted.contains(name)
            };
            let mut j = i + 1;
            // Walk the projection chain.
            while j + 1 < toks.len() && toks[j].is_punct(".") {
                let Some(field) = toks[j + 1].ident() else {
                    break;
                };
                let is_call = toks.get(j + 2).is_some_and(|n| n.is_punct("("));
                // Any other projection or method call on a tainted base
                // stays tainted.
                let launders = if is_call {
                    TAINT_LAUNDERING.contains(&field)
                } else {
                    public.contains(field)
                };
                if launders {
                    chain_tainted = false;
                }
                j += 2;
                if is_call {
                    break; // arguments are scanned by the linear walk
                }
            }
            if chain_tainted {
                return true;
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    false
}

fn push(
    out: &mut Vec<Finding>,
    f: &CfFunction<'_>,
    line: u32,
    lint: &'static str,
    message: String,
    suggestion: &str,
) {
    out.push(Finding {
        file: f.file.to_string(),
        line,
        lint,
        message,
        suggestion: suggestion.to_string(),
    });
}

const ALLOW_HINT: &str = "make it branchless, or document the divergence with \
                          `// analyze: allow(<lint>, reason = \"...\")`";

/// `cf-branch`: tainted `if` / `while` / `match` conditions.
fn lint_branches(
    toks: &[Tok],
    f: &CfFunction<'_>,
    tainted: &HashSet<String>,
    out: &mut Vec<Finding>,
) {
    let mut i = f.body_open + 1;
    while i < f.body_close {
        let t = &toks[i];
        let kw = if t.is_ident("if") {
            Some("if")
        } else if t.is_ident("while") {
            Some("while")
        } else if t.is_ident("match") {
            Some("match")
        } else {
            None
        };
        if let Some(kw) = kw {
            let (start, line) = if toks.get(i + 1).is_some_and(|n| n.is_ident("let")) {
                // `if let PAT = EXPR`: only the scrutinee can be tainted.
                let mut j = i + 2;
                while j < f.body_close && !toks[j].is_punct("=") {
                    j += 1;
                }
                (j + 1, t.line)
            } else {
                (i + 1, t.line)
            };
            let end = block_open(toks, start, f.body_close);
            if expr_tainted(toks, start, end, tainted, &f.public) {
                push(
                    out,
                    f,
                    line,
                    "cf-branch",
                    format!(
                        "`{kw}` on an operand-derived value in constant-flow fn `{}`",
                        f.name
                    ),
                    ALLOW_HINT,
                );
            }
            i = end;
            continue;
        }
        i += 1;
    }
}

/// `cf-short-circuit`: `&&` / `||` inside a tainted statement.
fn lint_short_circuit(
    toks: &[Tok],
    f: &CfFunction<'_>,
    tainted: &HashSet<String>,
    out: &mut Vec<Finding>,
) {
    for i in f.body_open + 1..f.body_close {
        let t = &toks[i];
        if !(t.is_punct("&&") || t.is_punct("||")) {
            continue;
        }
        // `&&value` (double reference) has no left operand.
        let binary = toks.get(i.wrapping_sub(1)).is_some_and(|p| {
            matches!(p.kind, TokKind::Ident(_) | TokKind::Number)
                || p.is_punct(")")
                || p.is_punct("]")
        });
        if !binary {
            continue;
        }
        // The enclosing statement: previous to next hard boundary.
        let mut lo = i;
        while lo > f.body_open + 1
            && !(toks[lo - 1].is_punct(";")
                || toks[lo - 1].is_punct("{")
                || toks[lo - 1].is_punct("}"))
        {
            lo -= 1;
        }
        // The statement ends at the nearest `;` or block `{` after the
        // operator, whichever comes first.
        let hi = stmt_end(toks, i, f.body_close).min(block_open(toks, i, f.body_close));
        if expr_tainted(toks, lo, hi, tainted, &f.public) {
            push(
                out,
                f,
                t.line,
                "cf-short-circuit",
                format!(
                    "short-circuit `{}` on operand-derived values in constant-flow fn `{}` (lazy evaluation is a hidden branch)",
                    if t.is_punct("&&") { "&&" } else { "||" },
                    f.name
                ),
                "evaluate both sides eagerly (`&`/`|`), restructure, or add an allow pragma",
            );
        }
    }
}

/// `cf-early-return`: `return` statements and `?` operators.
fn lint_early_return(toks: &[Tok], f: &CfFunction<'_>, out: &mut Vec<Finding>) {
    for i in f.body_open + 1..f.body_close {
        let t = &toks[i];
        if t.is_ident("return") {
            push(
                out,
                f,
                t.line,
                "cf-early-return",
                format!("`return` in constant-flow fn `{}`", f.name),
                "constant-flow code runs to its trailing expression; restructure or add an allow pragma",
            );
        } else if t.is_punct("?") {
            let operator = toks.get(i.wrapping_sub(1)).is_some_and(|p| {
                matches!(p.kind, TokKind::Ident(_)) || p.is_punct(")") || p.is_punct("]")
            });
            if operator {
                push(
                    out,
                    f,
                    t.line,
                    "cf-early-return",
                    format!("`?` early exit in constant-flow fn `{}`", f.name),
                    "propagate errors outside the kernel, or add an allow pragma",
                );
            }
        }
    }
}

/// `cf-index`: indexing with a tainted index expression.
fn lint_index(toks: &[Tok], f: &CfFunction<'_>, tainted: &HashSet<String>, out: &mut Vec<Finding>) {
    let mut i = f.body_open + 1;
    while i < f.body_close {
        let t = &toks[i];
        if t.is_punct("[") {
            let indexing = toks.get(i.wrapping_sub(1)).is_some_and(|p| {
                matches!(p.kind, TokKind::Ident(_)) || p.is_punct(")") || p.is_punct("]")
            });
            if indexing {
                // Find the matching `]`.
                let mut depth = 0i32;
                let mut j = i;
                while j < f.body_close {
                    if toks[j].is_punct("[") {
                        depth += 1;
                    } else if toks[j].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                if expr_tainted(toks, i + 1, j, tainted, &f.public) {
                    push(
                        out,
                        f,
                        t.line,
                        "cf-index",
                        format!(
                            "index derived from operand values in constant-flow fn `{}` (data-dependent address)",
                            f.name
                        ),
                        "index by loop counters over public trip counts, or add an allow pragma",
                    );
                }
            }
        }
        i += 1;
    }
}
