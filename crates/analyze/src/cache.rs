//! Fingerprint-keyed incremental cache for per-file analysis.
//!
//! Phase 1 ([`crate::lints::analyze_file`]) is the expensive part of a
//! run — lexing, fn discovery, statement parsing, taint fixpoints — and
//! it depends on nothing but the file's own bytes. So each
//! [`FileAnalysis`] is serialized to `target/analyze-cache/` keyed by an
//! FNV-1a fingerprint of the source text; an unchanged file costs one
//! read + fingerprint on the next run, and the global passes (which are
//! cheap — they walk summaries, never source) always run fresh. A
//! version stamp invalidates every entry when the analysis format
//! changes, and *any* parse hiccup simply reports a miss — the cache can
//! be deleted at will.
//!
//! The format is line-oriented text, one record per line with
//! tab-separated fields (tabs/newlines/backslashes escaped in string
//! fields). No serde: the workspace vendors no dependencies, and the
//! analyzer must pass its own lints, so everything here is panic-free.

use crate::callgraph::FnInfo;
use crate::dataflow::{Block, BranchKind, CallKind, CallSite, FnSummary, Site, EXIT};
use crate::findings::Finding;
use crate::lints::{lint_tag, FileAnalysis, FileClass, GateSpec};
use crate::pragma::JournalMode;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Bump when [`FileAnalysis`] or the summary format changes shape.
pub const CACHE_VERSION: u32 = 1;

/// 64-bit FNV-1a over the source bytes.
pub fn fingerprint(src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Where entries live, under the workspace's own target dir.
pub fn cache_dir(root: &Path) -> PathBuf {
    root.join("target").join("analyze-cache")
}

fn entry_path(root: &Path, rel: &str) -> PathBuf {
    let mut name = rel.replace(['/', '\\'], "_");
    name.push_str(".cache");
    cache_dir(root).join(name)
}

/// Load the cached analysis for `rel` if it matches `fp`.
pub fn load(root: &Path, rel: &str, fp: u64) -> Option<FileAnalysis> {
    let text = fs::read_to_string(entry_path(root, rel)).ok()?;
    let fa = deserialize(&text, fp)?;
    (fa.path == rel).then_some(fa)
}

/// Store an analysis; errors are ignored (a cold cache is only slow).
pub fn store(root: &Path, rel: &str, fp: u64, fa: &FileAnalysis) {
    let dir = cache_dir(root);
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let _ = fs::write(entry_path(root, rel), serialize(fa, fp));
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

fn class_tag(c: FileClass) -> char {
    match c {
        FileClass::Library => 'L',
        FileClass::Binary => 'B',
        FileClass::Test => 'T',
        FileClass::Example => 'E',
    }
}

fn class_of(c: &str) -> Option<FileClass> {
    match c {
        "L" => Some(FileClass::Library),
        "B" => Some(FileClass::Binary),
        "T" => Some(FileClass::Test),
        "E" => Some(FileClass::Example),
        _ => None,
    }
}

fn journal_tag(m: Option<JournalMode>) -> &'static str {
    match m {
        None => "-",
        Some(JournalMode::General) => "g",
        Some(JournalMode::Create) => "c",
        Some(JournalMode::Append) => "a",
        Some(JournalMode::Replay) => "r",
    }
}

fn journal_of(s: &str) -> Option<Option<JournalMode>> {
    match s {
        "-" => Some(None),
        "g" => Some(Some(JournalMode::General)),
        "c" => Some(Some(JournalMode::Create)),
        "a" => Some(Some(JournalMode::Append)),
        "r" => Some(Some(JournalMode::Replay)),
        _ => None,
    }
}

fn list(items: &[String]) -> String {
    items.join(",")
}

fn unlist(s: &str) -> Vec<String> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.split(',').map(str::to_string).collect()
    }
}

/// Serialize one analysis (public for tests and debugging).
pub fn serialize(fa: &FileAnalysis, fp: u64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "analyze-cache {CACHE_VERSION}");
    let _ = writeln!(s, "fp {fp:016x}");
    let _ = writeln!(s, "path\t{}", esc(&fa.path));
    let _ = writeln!(s, "class\t{}", class_tag(fa.class));
    let _ = writeln!(
        s,
        "counts\t{}\t{}\t{}",
        fa.cf_roots, fa.journal_fns, fa.za_roots
    );
    for f in &fa.intra {
        let _ = writeln!(
            s,
            "I\t{}\t{}\t{}\t{}",
            f.line,
            f.lint,
            esc(&f.message),
            esc(&f.suggestion)
        );
    }
    for g in &fa.gates {
        let _ = writeln!(
            s,
            "G\t{}\t{}\t{}",
            g.line,
            esc(&g.lint),
            u8::from(g.file_scope)
        );
    }
    for f in &fa.fns {
        let cf = match &f.cf_public {
            None => "-".to_string(),
            Some(p) => {
                let mut names: Vec<String> = p.iter().cloned().collect();
                names.sort();
                format!("P{}", list(&names))
            }
        };
        let _ = writeln!(
            s,
            "N\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            esc(&f.s.name),
            f.s.owner.as_deref().map_or("-".to_string(), esc),
            f.s.line,
            f.s.end_line,
            u8::from(f.s.in_test),
            list(&f.s.params),
            cf,
            u8::from(f.za_root),
            journal_tag(f.journal),
            list(&f.s.mentions)
        );
        for site in &f.s.sites {
            match site {
                Site::Branch { line, kind, mask } => {
                    let k = match kind {
                        BranchKind::If => 'i',
                        BranchKind::While => 'w',
                        BranchKind::Match => 'm',
                        BranchKind::Short => 's',
                    };
                    let _ = writeln!(s, "S\tB\t{line}\t{k}\t{mask:x}");
                }
                Site::Index { line, mask } => {
                    let _ = writeln!(s, "S\tI\t{line}\t{mask:x}");
                }
                Site::Exit {
                    line,
                    mask,
                    is_try,
                    is_err,
                } => {
                    let _ = writeln!(
                        s,
                        "S\tX\t{line}\t{mask:x}\t{}\t{}",
                        u8::from(*is_try),
                        u8::from(*is_err)
                    );
                }
                Site::Alloc { line, what } => {
                    let _ = writeln!(s, "S\tA\t{line}\t{}", esc(what));
                }
                Site::Io { line, write } => {
                    let _ = writeln!(s, "S\tO\t{line}\t{}", u8::from(*write));
                }
                Site::Call(c) => {
                    let k = match c.kind {
                        CallKind::Free => 'f',
                        CallKind::SelfMethod => 's',
                        CallKind::Method => 'm',
                        CallKind::Qualified => 'q',
                    };
                    let args: Vec<String> = c.args.iter().map(|a| format!("{a:x}")).collect();
                    let _ = writeln!(
                        s,
                        "S\tC\t{}\t{}\t{k}\t{}\t{:x}\t{}",
                        c.line,
                        esc(&c.name),
                        esc(&c.qual),
                        c.recv,
                        args.join(",")
                    );
                }
            }
        }
        for b in &f.s.blocks {
            let sites: Vec<String> = b.sites.iter().map(u32::to_string).collect();
            let succs: Vec<String> = b
                .succs
                .iter()
                .map(|&x| {
                    if x == EXIT {
                        "E".to_string()
                    } else {
                        x.to_string()
                    }
                })
                .collect();
            let _ = writeln!(s, "K\t{}\t{}", sites.join(","), succs.join(","));
        }
    }
    s
}

/// Parse a serialized analysis; any mismatch or malformed record is a
/// cache miss (`None`).
pub fn deserialize(text: &str, expect_fp: u64) -> Option<FileAnalysis> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let version: u32 = header.strip_prefix("analyze-cache ")?.parse().ok()?;
    if version != CACHE_VERSION {
        return None;
    }
    let fp = u64::from_str_radix(lines.next()?.strip_prefix("fp ")?, 16).ok()?;
    if fp != expect_fp {
        return None;
    }

    let mut fa = FileAnalysis {
        path: String::new(),
        class: FileClass::Library,
        intra: Vec::new(),
        gates: Vec::new(),
        fns: Vec::new(),
        cf_roots: 0,
        journal_fns: 0,
        za_roots: 0,
    };
    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.first().copied()? {
            "path" => fa.path = unesc(fields.get(1)?),
            "class" => fa.class = class_of(fields.get(1)?)?,
            "counts" => {
                fa.cf_roots = fields.get(1)?.parse().ok()?;
                fa.journal_fns = fields.get(2)?.parse().ok()?;
                fa.za_roots = fields.get(3)?.parse().ok()?;
            }
            "I" => {
                fa.intra.push(Finding {
                    file: String::new(), // filled below from path
                    line: fields.get(1)?.parse().ok()?,
                    lint: lint_tag(fields.get(2)?)?,
                    message: unesc(fields.get(3)?),
                    suggestion: unesc(fields.get(4)?),
                });
            }
            "G" => {
                fa.gates.push(GateSpec {
                    line: fields.get(1)?.parse().ok()?,
                    lint: unesc(fields.get(2)?),
                    file_scope: *fields.get(3)? == "1",
                });
            }
            "N" => {
                let owner = *fields.get(2)?;
                let cf = *fields.get(7)?;
                let cf_public: Option<HashSet<String>> = if cf == "-" {
                    None
                } else {
                    Some(unlist(cf.strip_prefix('P')?).into_iter().collect())
                };
                fa.fns.push(FnInfo {
                    file: String::new(), // filled below from path
                    s: FnSummary {
                        name: unesc(fields.get(1)?),
                        owner: (owner != "-").then(|| unesc(owner)),
                        line: fields.get(3)?.parse().ok()?,
                        end_line: fields.get(4)?.parse().ok()?,
                        in_test: *fields.get(5)? == "1",
                        params: unlist(fields.get(6)?),
                        sites: Vec::new(),
                        blocks: Vec::new(),
                        mentions: unlist(fields.get(10)?),
                    },
                    cf_public,
                    za_root: *fields.get(8)? == "1",
                    journal: journal_of(fields.get(9)?)?,
                });
            }
            "S" => {
                let f = fa.fns.last_mut()?;
                let site = match *fields.get(1)? {
                    "B" => Site::Branch {
                        line: fields.get(2)?.parse().ok()?,
                        kind: match *fields.get(3)? {
                            "i" => BranchKind::If,
                            "w" => BranchKind::While,
                            "m" => BranchKind::Match,
                            "s" => BranchKind::Short,
                            _ => return None,
                        },
                        mask: u64::from_str_radix(fields.get(4)?, 16).ok()?,
                    },
                    "I" => Site::Index {
                        line: fields.get(2)?.parse().ok()?,
                        mask: u64::from_str_radix(fields.get(3)?, 16).ok()?,
                    },
                    "X" => Site::Exit {
                        line: fields.get(2)?.parse().ok()?,
                        mask: u64::from_str_radix(fields.get(3)?, 16).ok()?,
                        is_try: *fields.get(4)? == "1",
                        is_err: *fields.get(5)? == "1",
                    },
                    "A" => Site::Alloc {
                        line: fields.get(2)?.parse().ok()?,
                        what: unesc(fields.get(3)?),
                    },
                    "O" => Site::Io {
                        line: fields.get(2)?.parse().ok()?,
                        write: *fields.get(3)? == "1",
                    },
                    "C" => {
                        let args_field = *fields.get(7)?;
                        let mut args = Vec::new();
                        if !args_field.is_empty() {
                            for a in args_field.split(',') {
                                args.push(u64::from_str_radix(a, 16).ok()?);
                            }
                        }
                        Site::Call(CallSite {
                            line: fields.get(2)?.parse().ok()?,
                            name: unesc(fields.get(3)?),
                            kind: match *fields.get(4)? {
                                "f" => CallKind::Free,
                                "s" => CallKind::SelfMethod,
                                "m" => CallKind::Method,
                                "q" => CallKind::Qualified,
                                _ => return None,
                            },
                            qual: unesc(fields.get(5)?),
                            recv: u64::from_str_radix(fields.get(6)?, 16).ok()?,
                            args,
                        })
                    }
                    _ => return None,
                };
                f.s.sites.push(site);
            }
            "K" => {
                let f = fa.fns.last_mut()?;
                let mut block = Block::default();
                let sites = *fields.get(1)?;
                if !sites.is_empty() {
                    for x in sites.split(',') {
                        block.sites.push(x.parse().ok()?);
                    }
                }
                let succs = *fields.get(2)?;
                if !succs.is_empty() {
                    for x in succs.split(',') {
                        block
                            .succs
                            .push(if x == "E" { EXIT } else { x.parse().ok()? });
                    }
                }
                f.s.blocks.push(block);
            }
            _ => return None,
        }
    }
    for f in &mut fa.intra {
        f.file = fa.path.clone();
    }
    for f in &mut fa.fns {
        f.file = fa.path.clone();
    }
    Some(fa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::{analyze_file, finish};

    const SRC: &str = "// analyze: constant-flow(public = \"n\")\n\
                       fn root(x: u64, n: usize) -> u64 { helper(x, n) }\n\
                       fn helper(v: u64, n: usize) -> u64 {\n\
                           if v > 1 { return 0; }\n\
                           v.wrapping_mul(n as u64)\n\
                       }\n\
                       // analyze: journal(append)\n\
                       fn append(&mut self, x: &[u8]) -> io::Result<()> {\n\
                           self.file.write_all(x)?;\n\
                           Ok(())\n\
                       }\n";

    fn ctx() -> FileCtx {
        FileCtx {
            path: "crates/x/src/lib.rs".to_string(),
            class: FileClass::Library,
            bigint_limb: false,
        }
    }

    use crate::lints::FileCtx;

    #[test]
    fn roundtrip_preserves_findings() {
        let fa = analyze_file(SRC, &ctx());
        let fp = fingerprint(SRC);
        let text = serialize(&fa, fp);
        let back = deserialize(&text, fp).expect("roundtrip");
        assert_eq!(back.path, fa.path);
        assert_eq!(back.fns.len(), fa.fns.len());
        assert_eq!(back.cf_roots, fa.cf_roots);
        assert_eq!(back.journal_fns, fa.journal_fns);

        // The global passes must produce identical findings either way.
        let direct = finish(std::slice::from_ref(&fa), &[], "");
        let cached = finish(std::slice::from_ref(&back), &[], "");
        let a: Vec<String> = direct.findings.iter().map(|f| f.render()).collect();
        let b: Vec<String> = cached.findings.iter().map(|f| f.render()).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "expected seeded findings, got none");
    }

    #[test]
    fn wrong_fingerprint_or_version_misses() {
        let fa = analyze_file(SRC, &ctx());
        let fp = fingerprint(SRC);
        let text = serialize(&fa, fp);
        assert!(deserialize(&text, fp ^ 1).is_none());
        let bumped = text.replace(
            &format!("analyze-cache {CACHE_VERSION}"),
            "analyze-cache 999999",
        );
        assert!(deserialize(&bumped, fp).is_none());
    }

    #[test]
    fn garbage_is_a_miss_not_a_panic() {
        assert!(deserialize("", 0).is_none());
        assert!(deserialize("analyze-cache 1\nfp zz\n", 0).is_none());
        let fa = analyze_file(SRC, &ctx());
        let fp = fingerprint(SRC);
        let mut text = serialize(&fa, fp);
        text.push_str("Z\tbogus\n");
        assert!(deserialize(&text, fp).is_none());
    }
}
