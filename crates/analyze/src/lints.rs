//! Per-file lint driver: invariant lints, constant-flow dispatch, and
//! allow-pragma resolution.
//!
//! [`run_file`] is the whole pipeline for one source file: lex, parse
//! pragmas, carve out `#[cfg(test)]` regions, run every applicable lint,
//! then let `allow` / `allow-file` pragmas excuse findings — and report
//! the pragmas that excused nothing, because a stale allow is a lint hole.

use crate::constant_flow::{self, CfFunction};
use crate::findings::Finding;
use crate::lexer::{lex, CommentLine, Tok};
use crate::pragma::{parse_pragmas, Pragma, ALLOW_WINDOW};
use std::collections::HashSet;

/// What kind of source a file is; decides which lints apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library crate source (`crates/*/src`, root `src/lib.rs`): all lints.
    Library,
    /// Binaries and benches: call-site lints only (panics and prints are a
    /// CLI's job).
    Binary,
    /// Integration tests: call-site lints only.
    Test,
    /// Examples: call-site lints only.
    Example,
}

/// Per-file context the lints need beyond the source text.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path, used verbatim in findings.
    pub path: String,
    /// Which lints apply.
    pub class: FileClass,
    /// True for `crates/bigint/src`: enables the truncating-cast lint,
    /// which is specific to limb arithmetic.
    pub bigint_limb: bool,
}

/// Output of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Findings that survived allow resolution.
    pub findings: Vec<Finding>,
    /// How many `constant-flow` functions were analyzed.
    pub constant_flow_fns: usize,
    /// How many allow pragmas excused at least one finding.
    pub allows_consumed: usize,
}

/// Lint catalog: name and one-line description, for `--list-lints` and
/// the self-test's every-lint-fires assertion.
pub const LINTS: &[(&str, &str)] = &[
    (
        "cf-branch",
        "if/while/match on operand-derived values in a constant-flow fn",
    ),
    (
        "cf-short-circuit",
        "&&/|| on operand-derived values in a constant-flow fn",
    ),
    ("cf-early-return", "return or ? in a constant-flow fn"),
    (
        "cf-index",
        "indexing by operand-derived values in a constant-flow fn",
    ),
    (
        "no-panic",
        "unwrap/expect/panic!/todo!/unimplemented! in non-test library code",
    ),
    (
        "no-debug-print",
        "println!/print!/eprintln!/eprint!/dbg! in library code",
    ),
    (
        "safety-comment",
        "unsafe block or fn without a preceding // SAFETY: comment",
    ),
    (
        "truncating-cast",
        "`as Limb` truncation in bigint limb arithmetic without an allow",
    ),
    (
        "deprecated-shim",
        "call to a deprecated scan_* shim from workspace code",
    ),
    ("unused-allow", "allow pragma that excused no finding"),
    ("bad-pragma", "analyze pragma that failed to parse"),
];

/// The deprecated flat `scan_*` entry points superseded by `ScanPipeline`.
const SHIM_NAMES: &[&str] = &[
    "scan_cpu",
    "scan_cpu_arena",
    "scan_gpu_sim",
    "scan_gpu_sim_arena",
    "scan_gpu_sim_serial",
    "scan_lockstep",
    "scan_lockstep_arena",
    "scan_gpu_sim_resumable",
];

/// Macros that abort in library code.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Debug-print macros that have no business in a library crate.
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit
/// (multi-line justifications and interleaved attributes included).
const SAFETY_WINDOW: u32 = 10;

/// Lint one file. `src` is the full source text.
pub fn run_file(src: &str, ctx: &FileCtx) -> FileOutcome {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let (pragmas, pragma_errors) = parse_pragmas(&lexed.comments);
    let excluded = test_regions(toks);
    let in_test = |idx: usize| excluded.iter().any(|&(a, b)| idx >= a && idx <= b);

    let mut raw: Vec<Finding> = Vec::new();
    let mut outcome = FileOutcome::default();

    for e in &pragma_errors {
        raw.push(Finding {
            file: ctx.path.clone(),
            line: e.line,
            lint: "bad-pragma",
            message: e.message.clone(),
            suggestion: "fix the pragma; a typo here silently disables a lint".to_string(),
        });
    }

    // Constant-flow functions: each pragma opts in the next `fn` item.
    for p in &pragmas {
        let Pragma::ConstantFlow { line, public } = p else {
            continue;
        };
        let Some(f) = find_cf_fn(toks, &ctx.path, *line, public) else {
            raw.push(Finding {
                file: ctx.path.clone(),
                line: *line,
                lint: "bad-pragma",
                message: "constant-flow pragma with no following fn item".to_string(),
                suggestion: "place the pragma directly above the function it annotates".to_string(),
            });
            continue;
        };
        outcome.constant_flow_fns += 1;
        constant_flow::check(toks, &f, &mut raw);
    }

    let lib = ctx.class == FileClass::Library;
    if lib {
        lint_no_panic(toks, ctx, &in_test, &mut raw);
        lint_no_debug_print(toks, ctx, &in_test, &mut raw);
        lint_safety_comment(toks, &lexed.comments, ctx, &mut raw);
    }
    if ctx.bigint_limb {
        lint_truncating_cast(toks, ctx, &in_test, &mut raw);
    }
    lint_deprecated_shim(toks, ctx, &mut raw);

    dedupe(&mut raw);
    resolve_allows(raw, &pragmas, ctx, &mut outcome);
    outcome
}

/// Remove duplicate (line, lint) hits — e.g. an `else if` chain re-visiting
/// the same condition.
fn dedupe(findings: &mut Vec<Finding>) {
    let mut seen: HashSet<(u32, &'static str)> = HashSet::new();
    findings.retain(|f| seen.insert((f.line, f.lint)));
}

/// Apply `allow` / `allow-file` pragmas, then report the unconsumed ones.
fn resolve_allows(raw: Vec<Finding>, pragmas: &[Pragma], ctx: &FileCtx, outcome: &mut FileOutcome) {
    struct Gate<'a> {
        line: u32,
        lint: &'a str,
        file_scope: bool,
        consumed: bool,
    }
    let mut gates: Vec<Gate<'_>> = pragmas
        .iter()
        .filter_map(|p| match p {
            Pragma::Allow { line, lint, .. } => Some(Gate {
                line: *line,
                lint,
                file_scope: false,
                consumed: false,
            }),
            Pragma::AllowFile { line, lint, .. } => Some(Gate {
                line: *line,
                lint,
                file_scope: true,
                consumed: false,
            }),
            Pragma::ConstantFlow { .. } => None,
        })
        .collect();

    for f in raw {
        // Meta-lints cannot be allowed: that would let a stale or broken
        // pragma silence its own diagnosis.
        let suppressible = f.lint != "unused-allow" && f.lint != "bad-pragma";
        // Prefer the nearest line-scoped gate (two adjacent sites each get
        // their own pragma); fall back to a file-scoped one.
        let gate = suppressible
            .then(|| {
                gates
                    .iter_mut()
                    .filter(|g| {
                        g.lint == f.lint
                            && (g.file_scope
                                || (f.line >= g.line && f.line <= g.line + ALLOW_WINDOW))
                    })
                    .max_by_key(|g| (!g.file_scope, g.line))
            })
            .flatten();
        match gate {
            Some(g) => g.consumed = true,
            None => outcome.findings.push(f),
        }
    }

    for g in &gates {
        if g.consumed {
            outcome.allows_consumed += 1;
        } else {
            outcome.findings.push(Finding {
                file: ctx.path.clone(),
                line: g.line,
                lint: "unused-allow",
                message: format!("allow({}) excused no finding", g.lint),
                suggestion: "delete the stale pragma, or fix it if a lint name is misspelled"
                    .to_string(),
            });
        }
    }
}

/// Find the `fn` item a constant-flow pragma at `pragma_line` annotates and
/// return its analysis context.
fn find_cf_fn<'a>(
    toks: &[Tok],
    path: &'a str,
    pragma_line: u32,
    public: &[String],
) -> Option<CfFunction<'a>> {
    let fn_idx = toks
        .iter()
        .position(|t| t.line > pragma_line && t.is_ident("fn"))?;
    let name = toks.get(fn_idx + 1)?.ident()?.to_string();
    let mut open = fn_idx;
    while open < toks.len() && !toks[open].is_punct("{") {
        open += 1;
    }
    let close = match_brace(toks, open)?;
    Some(CfFunction {
        file: path,
        name,
        fn_idx,
        body_open: open,
        body_close: close,
        public: public.iter().cloned().collect(),
    })
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Token-index ranges covered by `#[cfg(test)]` items (the unit-test
/// modules at the bottom of every crate file).
fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 5 < toks.len() {
        let hit = toks[i].is_punct("#")
            && toks[i + 1].is_punct("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct("(")
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(")");
        if !hit {
            i += 1;
            continue;
        }
        let start = i;
        // Skip past this and any further attributes to the item itself.
        let mut j = i;
        while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
            let mut depth = 0i32;
            let mut k = j + 1;
            while k < toks.len() {
                if toks[k].is_punct("[") {
                    depth += 1;
                } else if toks[k].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
        }
        // The item body is the next `{` at depth 0; `mod tests;` (a `;`
        // first) lives in another file and excludes nothing here.
        let mut body = None;
        let mut k = j;
        while k < toks.len() {
            if toks[k].is_punct(";") {
                break;
            }
            if toks[k].is_punct("{") {
                body = Some(k);
                break;
            }
            k += 1;
        }
        if let Some(open) = body {
            if let Some(close) = match_brace(toks, open) {
                regions.push((start, close));
                i = close + 1;
                continue;
            }
        }
        i = j.max(i + 1);
    }
    regions
}

fn finding(
    ctx: &FileCtx,
    line: u32,
    lint: &'static str,
    message: String,
    suggestion: &str,
) -> Finding {
    Finding {
        file: ctx.path.clone(),
        line,
        lint,
        message,
        suggestion: suggestion.to_string(),
    }
}

/// `no-panic`: `.unwrap()` / `.expect(` / `panic!` / `todo!` /
/// `unimplemented!` in non-test library code. `unreachable!` and the
/// assert family are exempt: those are invariant documentation, not error
/// handling.
fn lint_no_panic(
    toks: &[Tok],
    ctx: &FileCtx,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if in_test(i) {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        let next_is = |p: &str| toks.get(i + 1).is_some_and(|n| n.is_punct(p));
        if (name == "unwrap" || name == "expect")
            && i > 0
            && toks[i - 1].is_punct(".")
            && next_is("(")
        {
            out.push(finding(
                ctx,
                t.line,
                "no-panic",
                format!("`.{name}()` in library code"),
                "return a Result/Option like ScanReport::simulated, use a checked accessor, \
                 or add an allow pragma documenting the panic contract",
            ));
        } else if PANIC_MACROS.contains(&name) && next_is("!") {
            out.push(finding(
                ctx,
                t.line,
                "no-panic",
                format!("`{name}!` in library code"),
                "propagate an error instead; aborts in library code kill whole scans",
            ));
        }
    }
}

/// `no-debug-print`: stray stdout/stderr chatter in library crates.
fn lint_no_debug_print(
    toks: &[Tok],
    ctx: &FileCtx,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if in_test(i) {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        if PRINT_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            out.push(finding(
                ctx,
                t.line,
                "no-debug-print",
                format!("`{name}!` in library code"),
                "return data to the caller; only binaries talk to stdio",
            ));
        }
    }
}

/// `safety-comment`: every `unsafe` keyword (blocks and fns alike) needs a
/// `// SAFETY:` comment within the preceding [`SAFETY_WINDOW`] lines.
fn lint_safety_comment(
    toks: &[Tok],
    comments: &[CommentLine],
    ctx: &FileCtx,
    out: &mut Vec<Finding>,
) {
    for t in toks {
        // `unsafe {`, `unsafe fn`, `unsafe impl` — every form needs the
        // audit comment.
        if !t.is_ident("unsafe") {
            continue;
        }
        let lo = t.line.saturating_sub(SAFETY_WINDOW);
        let documented = comments
            .iter()
            .any(|c| c.line >= lo && c.line <= t.line && c.text.contains("SAFETY:"));
        if !documented {
            out.push(finding(
                ctx,
                t.line,
                "safety-comment",
                "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
                "state the invariant that makes this sound, directly above the unsafe site",
            ));
        }
    }
}

/// `truncating-cast`: `as Limb` silently drops high bits of a wide value.
/// Limb extraction must go through `limb::lo` / `limb::hi` (which carry
/// the audit) or an allow pragma.
fn lint_truncating_cast(
    toks: &[Tok],
    ctx: &FileCtx,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if in_test(i) {
            continue;
        }
        if t.is_ident("as") && toks.get(i + 1).is_some_and(|n| n.is_ident("Limb")) {
            out.push(finding(
                ctx,
                t.line,
                "truncating-cast",
                "`as Limb` truncation in limb arithmetic".to_string(),
                "use limb::lo / limb::hi, which document the intended truncation, \
                 or add an allow pragma",
            ));
        }
    }
}

/// `deprecated-shim`: calls to the flat `scan_*` entry points superseded
/// by `ScanPipeline`. The defining file is exempt (shims call each other's
/// plumbing), as is anything under an `allow-file` pragma — the pin suite.
fn lint_deprecated_shim(toks: &[Tok], ctx: &FileCtx, out: &mut Vec<Finding>) {
    let defines_shim = toks
        .windows(2)
        .any(|w| w[0].is_ident("fn") && w[1].ident().is_some_and(|n| SHIM_NAMES.contains(&n)));
    if defines_shim {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !SHIM_NAMES.contains(&name) {
            continue;
        }
        // A call: the name is applied to arguments. `use` imports and
        // doc-path mentions don't have a following `(`.
        if toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            out.push(finding(
                ctx,
                t.line,
                "deprecated-shim",
                format!("call to deprecated shim `{name}`"),
                "build the equivalent ScanPipeline instead; the shims exist only for \
                 pinned backward-compatibility tests",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileCtx {
        FileCtx {
            path: "lib.rs".to_string(),
            class: FileClass::Library,
            bigint_limb: false,
        }
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn f() -> u32 { 1 }\n\
                   #[cfg(test)]\nmod tests {\n fn g() { None::<u32>.unwrap(); }\n}\n";
        let out = run_file(src, &ctx());
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn unwrap_outside_tests_is_flagged() {
        let src = "fn f() { None::<u32>.unwrap(); }";
        let out = run_file(src, &ctx());
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "no-panic");
    }

    #[test]
    fn allow_consumes_and_unused_allow_fires() {
        let src = "// analyze: allow(no-panic, reason = \"documented contract\")\n\
                   fn f() { None::<u32>.unwrap(); }\n\
                   // analyze: allow(no-panic, reason = \"stale\")\n\
                   fn g() -> u32 { 1 }\n";
        let out = run_file(src, &ctx());
        assert_eq!(out.allows_consumed, 1);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "unused-allow");
        assert_eq!(out.findings[0].line, 3);
    }

    #[test]
    fn constant_flow_pragma_binds_next_fn() {
        let src = "// analyze: constant-flow(public = \"n\")\n\
                   fn f(x: u64, n: usize) -> u64 {\n\
                       let mut acc = 0u64;\n\
                       for i in 0..n { acc = acc.wrapping_add(i as u64); }\n\
                       if x > 0 { acc += 1; }\n\
                       acc\n\
                   }\n";
        let out = run_file(src, &ctx());
        assert_eq!(out.constant_flow_fns, 1);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].lint, "cf-branch");
        assert_eq!(out.findings[0].line, 5);
    }
}
