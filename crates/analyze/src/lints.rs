//! Per-file analysis, the global finish phase, and allow/baseline
//! resolution.
//!
//! The engine runs in two phases so the incremental cache has a clean
//! boundary:
//!
//! 1. [`analyze_file`] — everything derivable from one file alone: lex,
//!    parse pragmas, build [`crate::dataflow`] summaries for every fn,
//!    run the token-level invariant lints (no-panic, safety-comment,
//!    truncating-cast, deprecated-shim, debug prints). The result — a
//!    [`FileAnalysis`] — is plain data, serialized by [`crate::cache`]
//!    and keyed by a fingerprint of the source text.
//! 2. [`finish`] — the global passes over all summaries: interprocedural
//!    constant-flow ([`crate::callgraph`]), crash-consistency
//!    ([`crate::durability`]), zero-alloc reachability, then per-file
//!    `allow` resolution, baseline application, and the meta-lints
//!    (`unused-allow`, `stale-baseline`). Allow resolution runs *last* so
//!    a pragma can excuse a finding produced by a global pass.
//!
//! [`run_file`] wraps both phases for a single file — the fixture
//! self-tests exercise every lint family through it.

use crate::callgraph::{self, FnInfo, Program};
use crate::constant_flow;
use crate::durability;
use crate::findings::{Finding, Report};
use crate::lexer::{lex, CommentLine, Tok};
use crate::pragma::{parse_pragmas, JournalMode, Pragma, ALLOW_WINDOW};
use crate::{cfg, dataflow};
use std::collections::{HashMap, HashSet};

/// What kind of source a file is; decides which lints apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library crate source (`crates/*/src`, root `src/lib.rs`): all lints.
    Library,
    /// Binaries and benches: call-site lints only (panics and prints are a
    /// CLI's job).
    Binary,
    /// Integration tests: call-site lints only.
    Test,
    /// Examples: call-site lints only.
    Example,
}

/// Per-file context the lints need beyond the source text.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path, used verbatim in findings.
    pub path: String,
    /// Which lints apply.
    pub class: FileClass,
    /// True for `crates/bigint/src`: enables the truncating-cast lint,
    /// which is specific to limb arithmetic.
    pub bigint_limb: bool,
}

/// Output of linting one file (the [`run_file`] compatibility surface).
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Findings that survived allow resolution.
    pub findings: Vec<Finding>,
    /// How many `constant-flow` functions were analyzed.
    pub constant_flow_fns: usize,
    /// How many allow pragmas excused at least one finding.
    pub allows_consumed: usize,
}

/// One `allow` / `allow-file` gate, in cacheable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateSpec {
    /// Line of the pragma comment.
    pub line: u32,
    /// Lint it excuses.
    pub lint: String,
    /// Whole-file scope (`allow-file`).
    pub file_scope: bool,
}

/// Everything phase 1 learns about one file. Plain data: this is exactly
/// what the incremental cache stores.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Workspace-relative path.
    pub path: String,
    /// Lint class (affects which intra lints ran).
    pub class: FileClass,
    /// Raw file-local findings, before allow resolution.
    pub intra: Vec<Finding>,
    /// Allow gates declared in the file.
    pub gates: Vec<GateSpec>,
    /// Function summaries plus their pragma facts.
    pub fns: Vec<FnInfo>,
    /// Constant-flow pragma roots in this file.
    pub cf_roots: usize,
    /// Journal-pragma fns in this file.
    pub journal_fns: usize,
    /// Zero-alloc roots in this file.
    pub za_roots: usize,
}

/// Lint catalog: name and one-line description, for `--list-lints`, the
/// SARIF rule table, and the self-test's every-lint-fires assertion.
pub const LINTS: &[(&str, &str)] = &[
    (
        "cf-branch",
        "if/while/match on operand-derived values in a constant-flow fn",
    ),
    (
        "cf-short-circuit",
        "&&/|| on operand-derived values in a constant-flow fn",
    ),
    (
        "cf-early-return",
        "return or ? on an operand-dependent path in a constant-flow fn",
    ),
    (
        "cf-index",
        "indexing by operand-derived values in a constant-flow fn",
    ),
    (
        "cf-reach",
        "allow-only: prunes constant-flow propagation through a documented-divergence call",
    ),
    (
        "za-alloc",
        "allocating call reachable from a zero-alloc root",
    ),
    (
        "journal-unsynced",
        "journal append path reaching a completion exit without sync_data",
    ),
    (
        "journal-split-commit",
        "journal(create) fn appending a commit record in more than one write",
    ),
    (
        "journal-torn-tail",
        "journal(replay) fn with no torn-tail handling on any path",
    ),
    (
        "no-panic",
        "unwrap/expect/panic!/todo!/unimplemented! in non-test library code",
    ),
    (
        "no-debug-print",
        "println!/print!/eprintln!/eprint!/dbg! in library code",
    ),
    (
        "safety-comment",
        "unsafe block or fn without a preceding // SAFETY: comment",
    ),
    (
        "truncating-cast",
        "`as Limb` truncation in bigint limb arithmetic without an allow",
    ),
    (
        "deprecated-shim",
        "call to a deprecated scan_* shim from workspace code",
    ),
    ("unused-allow", "allow pragma that excused no finding"),
    ("bad-pragma", "analyze pragma that failed to parse"),
    (
        "stale-baseline",
        "baseline entry that matched no current finding",
    ),
];

/// Look a lint name up in the catalog, returning its `'static` name.
/// Used by the cache deserializer to recover `&'static str` lint tags.
pub fn lint_tag(name: &str) -> Option<&'static str> {
    LINTS.iter().find(|(n, _)| *n == name).map(|(n, _)| *n)
}

/// The deprecated flat `scan_*` entry points superseded by `ScanPipeline`.
const SHIM_NAMES: &[&str] = &[
    "scan_cpu",
    "scan_cpu_arena",
    "scan_gpu_sim",
    "scan_gpu_sim_arena",
    "scan_gpu_sim_serial",
    "scan_lockstep",
    "scan_lockstep_arena",
    "scan_gpu_sim_resumable",
];

/// Macros that abort in library code.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Debug-print macros that have no business in a library crate.
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit
/// (multi-line justifications and interleaved attributes included).
const SAFETY_WINDOW: u32 = 10;

/// Phase 1: analyze one file in isolation.
pub fn analyze_file(src: &str, ctx: &FileCtx) -> FileAnalysis {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let (pragmas, pragma_errors) = parse_pragmas(&lexed.comments);
    let excluded = cfg::test_regions(toks);
    let in_test = |idx: usize| excluded.iter().any(|&(a, b)| idx >= a && idx <= b);

    let mut fa = FileAnalysis {
        path: ctx.path.clone(),
        class: ctx.class,
        intra: Vec::new(),
        gates: Vec::new(),
        fns: Vec::new(),
        cf_roots: 0,
        journal_fns: 0,
        za_roots: 0,
    };

    for e in &pragma_errors {
        fa.intra.push(Finding {
            file: ctx.path.clone(),
            line: e.line,
            lint: "bad-pragma",
            message: e.message.clone(),
            suggestion: "fix the pragma; a typo here silently disables a lint".to_string(),
        });
    }

    // Bind fn-scoped pragmas to the next fn item below each.
    let decls = cfg::find_fns(toks);
    let mut cf_of: HashMap<usize, HashSet<String>> = HashMap::new();
    let mut za_of: HashSet<usize> = HashSet::new();
    let mut journal_of: HashMap<usize, JournalMode> = HashMap::new();
    for p in &pragmas {
        let (line, kind) = match p {
            Pragma::ConstantFlow { line, .. } => (*line, "constant-flow"),
            Pragma::ZeroAlloc { line } => (*line, "zero-alloc"),
            Pragma::Journal { line, .. } => (*line, "journal"),
            Pragma::Allow { line, lint, .. } => {
                fa.gates.push(GateSpec {
                    line: *line,
                    lint: lint.clone(),
                    file_scope: false,
                });
                continue;
            }
            Pragma::AllowFile { line, lint, .. } => {
                fa.gates.push(GateSpec {
                    line: *line,
                    lint: lint.clone(),
                    file_scope: true,
                });
                continue;
            }
        };
        // Nearest fn below the pragma line.
        let target = decls
            .iter()
            .enumerate()
            .filter(|(_, d)| d.line > line)
            .min_by_key(|(_, d)| d.line)
            .map(|(i, _)| i);
        let Some(i) = target else {
            fa.intra.push(Finding {
                file: ctx.path.clone(),
                line,
                lint: "bad-pragma",
                message: format!("{kind} pragma with no following fn item"),
                suggestion: "place the pragma directly above the function it annotates".to_string(),
            });
            continue;
        };
        match p {
            Pragma::ConstantFlow { public, .. } => {
                cf_of.insert(i, public.iter().cloned().collect());
                fa.cf_roots += 1;
            }
            Pragma::ZeroAlloc { .. } => {
                za_of.insert(i);
                fa.za_roots += 1;
            }
            Pragma::Journal { mode, .. } => {
                journal_of.insert(i, *mode);
                fa.journal_fns += 1;
            }
            _ => {}
        }
    }

    let empty: HashSet<String> = HashSet::new();
    for (i, d) in decls.iter().enumerate() {
        let public = cf_of.get(&i).unwrap_or(&empty);
        let mut s = dataflow::summarize(toks, d, public);
        // Functions outside library code never participate in the global
        // passes: a test helper must not capture a call edge by name.
        if ctx.class != FileClass::Library {
            s.in_test = true;
        }
        fa.fns.push(FnInfo {
            file: ctx.path.clone(),
            s,
            cf_public: cf_of.get(&i).cloned(),
            za_root: za_of.contains(&i),
            journal: journal_of.get(&i).copied(),
        });
    }

    let lib = ctx.class == FileClass::Library;
    if lib {
        lint_no_panic(toks, ctx, &in_test, &mut fa.intra);
        lint_no_debug_print(toks, ctx, &in_test, &mut fa.intra);
        lint_safety_comment(toks, &lexed.comments, ctx, &mut fa.intra);
    }
    if ctx.bigint_limb {
        lint_truncating_cast(toks, ctx, &in_test, &mut fa.intra);
    }
    lint_deprecated_shim(toks, ctx, &mut fa.intra);

    fa
}

/// One baseline entry: `lint<TAB>path<TAB>fn<TAB>reason`.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Line in the baseline file (for stale-baseline findings).
    pub line: u32,
    pub lint: String,
    pub file: String,
    pub func: String,
}

/// Parse a baseline file. `#` starts a comment; blank lines are skipped.
/// Malformed lines become parse errors the caller reports as findings.
pub fn parse_baseline(text: &str) -> (Vec<BaselineEntry>, Vec<(u32, String)>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = (i + 1) as u32;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut parts = raw.split('\t');
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(lint), Some(file), Some(func), Some(reason)) if !reason.trim().is_empty() => {
                entries.push(BaselineEntry {
                    line,
                    lint: lint.trim().to_string(),
                    file: file.trim().to_string(),
                    func: func.trim().to_string(),
                });
            }
            _ => errors.push((
                line,
                "baseline line needs `lint<TAB>path<TAB>fn<TAB>reason`".to_string(),
            )),
        }
    }
    (entries, errors)
}

/// Phase 2: the global passes plus resolution. `baseline_path` is the
/// path baseline findings are attributed to (empty slice of entries is
/// fine — single-file runs pass none).
pub fn finish(files: &[FileAnalysis], baseline: &[BaselineEntry], baseline_path: &str) -> Report {
    let mut report = Report::default();

    // Flatten into the program; remember where each fn came from.
    let all: Vec<FnInfo> = files.iter().flat_map(|f| f.fns.iter().cloned()).collect();
    let prog = Program::build(all);

    for f in files {
        report.constant_flow_fns += f.cf_roots;
        report.journal_fns += f.journal_fns;
        report.zero_alloc_roots += f.za_roots;
    }

    // Allow gates the global passes consult directly: `cf-reach` prunes
    // constant-flow propagation edges at documented divergence boundaries,
    // `za-alloc` exempts allocation call subtrees. Lines consumed by the
    // passes are recorded so the gates count as used.
    let mut pass_gates: HashMap<(&str, &str), Vec<&GateSpec>> = HashMap::new();
    for f in files {
        for g in &f.gates {
            if g.lint == "za-alloc" || g.lint == "cf-reach" {
                pass_gates
                    .entry((f.path.as_str(), g.lint.as_str()))
                    .or_default()
                    .push(g);
            }
        }
    }
    let covered = |file: &str, lint: &str, line: u32| {
        pass_gates.get(&(file, lint)).is_some_and(|gs| {
            gs.iter()
                .any(|g| g.file_scope || (line >= g.line && line <= g.line + ALLOW_WINDOW))
        })
    };

    // Interprocedural constant flow.
    let mut cf_consumed: Vec<(String, u32)> = Vec::new();
    let pruned = |file: &str, line: u32| covered(file, "cf-reach", line);
    let contexts = callgraph::constant_flow_contexts(&prog, &pruned, &mut cf_consumed);
    report.cf_covered_fns = contexts.len();
    let mut global: Vec<Finding> = Vec::new();
    let mut ordered: Vec<(&usize, &callgraph::CfContext)> = contexts.iter().collect();
    ordered.sort_by_key(|(i, _)| **i);
    for (&i, c) in ordered {
        let info = &prog.fns[i];
        let is_root = info.cf_public.is_some();
        constant_flow::check_summary(info, c.mask, &c.root, is_root, &mut global);
    }

    // Crash consistency.
    global.extend(durability::check(&prog));

    // Zero-alloc reachability.
    let allowed = |file: &str, line: u32| covered(file, "za-alloc", line);
    let mut za_consumed: Vec<(String, u32)> = Vec::new();
    global.extend(callgraph::zero_alloc(&prog, &allowed, &mut za_consumed));

    // Per-file resolution: allow gates first (nearest line-scoped gate
    // wins), then the baseline, then the meta-lints.
    let mut baseline_used: Vec<bool> = vec![false; baseline.len()];
    for f in files {
        let mut raw: Vec<Finding> = f.intra.clone();
        raw.extend(global.iter().filter(|g| g.file == f.path).cloned());
        raw.sort_by_key(|x| (x.line, x.lint));
        dedupe(&mut raw);

        let mut gates: Vec<(GateSpec, bool)> = f.gates.iter().map(|g| (g.clone(), false)).collect();
        for (lint, list) in [("cf-reach", &cf_consumed), ("za-alloc", &za_consumed)] {
            for (file, line) in list.iter() {
                if file != &f.path {
                    continue;
                }
                if let Some(g) = nearest_gate(&mut gates, lint, *line) {
                    g.1 = true;
                }
            }
        }
        for finding in raw {
            let suppressible = finding.lint != "unused-allow"
                && finding.lint != "bad-pragma"
                && finding.lint != "stale-baseline";
            if suppressible {
                if let Some(g) = nearest_gate(&mut gates, finding.lint, finding.line) {
                    g.1 = true;
                    continue;
                }
                // Baseline: match by (lint, file, enclosing fn).
                let func = enclosing_fn(f, finding.line);
                let hit = baseline
                    .iter()
                    .position(|b| b.lint == finding.lint && b.file == f.path && b.func == func);
                if let Some(b) = hit {
                    baseline_used[b] = true;
                    report.baselined += 1;
                    continue;
                }
            }
            report.findings.push(finding);
        }
        for (g, consumed) in &gates {
            if *consumed {
                report.allows_consumed += 1;
            } else {
                report.findings.push(Finding {
                    file: f.path.clone(),
                    line: g.line,
                    lint: "unused-allow",
                    message: format!("allow({}) excused no finding", g.lint),
                    suggestion: "delete the stale pragma, or fix it if a lint name is misspelled"
                        .to_string(),
                });
            }
        }
    }

    for (b, used) in baseline.iter().zip(&baseline_used) {
        if !used {
            report.findings.push(Finding {
                file: baseline_path.to_string(),
                line: b.line,
                lint: "stale-baseline",
                message: format!(
                    "baseline entry `{}` in `{}` fn `{}` matched no finding",
                    b.lint, b.file, b.func
                ),
                suggestion: "delete the entry; the divergence it documented is gone".to_string(),
            });
        }
    }

    report
}

/// Nearest applicable gate: line-scoped gates beat file-scoped, later
/// (closer) lines beat earlier ones.
fn nearest_gate<'a>(
    gates: &'a mut [(GateSpec, bool)],
    lint: &str,
    line: u32,
) -> Option<&'a mut (GateSpec, bool)> {
    gates
        .iter_mut()
        .filter(|(g, _)| {
            g.lint == lint && (g.file_scope || (line >= g.line && line <= g.line + ALLOW_WINDOW))
        })
        .max_by_key(|(g, _)| (!g.file_scope, g.line))
}

/// Name of the innermost fn whose span covers `line`, or empty.
fn enclosing_fn(f: &FileAnalysis, line: u32) -> String {
    f.fns
        .iter()
        .filter(|i| i.s.line <= line && line <= i.s.end_line)
        .max_by_key(|i| i.s.line)
        .map(|i| i.s.name.clone())
        .unwrap_or_default()
}

/// Remove duplicate (line, lint) hits — e.g. an `else if` chain re-visiting
/// the same condition.
fn dedupe(findings: &mut Vec<Finding>) {
    let mut seen: HashSet<(u32, &'static str)> = HashSet::new();
    findings.retain(|f| seen.insert((f.line, f.lint)));
}

/// Lint one file through both phases (no baseline). The self-test
/// fixtures go through here; journal/zero-alloc/constant-flow pragmas are
/// fully checked as long as the call graph stays within the file.
pub fn run_file(src: &str, ctx: &FileCtx) -> FileOutcome {
    let fa = analyze_file(src, ctx);
    let report = finish(std::slice::from_ref(&fa), &[], "");
    FileOutcome {
        findings: report.findings,
        constant_flow_fns: report.constant_flow_fns,
        allows_consumed: report.allows_consumed,
    }
}

fn finding(
    ctx: &FileCtx,
    line: u32,
    lint: &'static str,
    message: String,
    suggestion: &str,
) -> Finding {
    Finding {
        file: ctx.path.clone(),
        line,
        lint,
        message,
        suggestion: suggestion.to_string(),
    }
}

/// `no-panic`: `.unwrap()` / `.expect(` / `panic!` / `todo!` /
/// `unimplemented!` in non-test library code. `unreachable!` and the
/// assert family are exempt: those are invariant documentation, not error
/// handling.
fn lint_no_panic(
    toks: &[Tok],
    ctx: &FileCtx,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if in_test(i) {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        let next_is = |p: &str| toks.get(i + 1).is_some_and(|n| n.is_punct(p));
        if (name == "unwrap" || name == "expect")
            && i > 0
            && toks[i - 1].is_punct(".")
            && next_is("(")
        {
            out.push(finding(
                ctx,
                t.line,
                "no-panic",
                format!("`.{name}()` in library code"),
                "return a Result/Option like ScanReport::simulated, use a checked accessor, \
                 or add an allow pragma documenting the panic contract",
            ));
        } else if PANIC_MACROS.contains(&name) && next_is("!") {
            out.push(finding(
                ctx,
                t.line,
                "no-panic",
                format!("`{name}!` in library code"),
                "propagate an error instead; aborts in library code kill whole scans",
            ));
        }
    }
}

/// `no-debug-print`: stray stdout/stderr chatter in library crates.
fn lint_no_debug_print(
    toks: &[Tok],
    ctx: &FileCtx,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if in_test(i) {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        if PRINT_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            out.push(finding(
                ctx,
                t.line,
                "no-debug-print",
                format!("`{name}!` in library code"),
                "return data to the caller; only binaries talk to stdio",
            ));
        }
    }
}

/// `safety-comment`: every `unsafe` keyword (blocks and fns alike) needs a
/// `// SAFETY:` comment within the preceding [`SAFETY_WINDOW`] lines.
fn lint_safety_comment(
    toks: &[Tok],
    comments: &[CommentLine],
    ctx: &FileCtx,
    out: &mut Vec<Finding>,
) {
    for t in toks {
        // `unsafe {`, `unsafe fn`, `unsafe impl` — every form needs the
        // audit comment.
        if !t.is_ident("unsafe") {
            continue;
        }
        let lo = t.line.saturating_sub(SAFETY_WINDOW);
        let documented = comments
            .iter()
            .any(|c| c.line >= lo && c.line <= t.line && c.text.contains("SAFETY:"));
        if !documented {
            out.push(finding(
                ctx,
                t.line,
                "safety-comment",
                "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
                "state the invariant that makes this sound, directly above the unsafe site",
            ));
        }
    }
}

/// `truncating-cast`: `as Limb` silently drops high bits of a wide value.
/// Limb extraction must go through `limb::lo` / `limb::hi` (which carry
/// the audit) or an allow pragma.
fn lint_truncating_cast(
    toks: &[Tok],
    ctx: &FileCtx,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if in_test(i) {
            continue;
        }
        if t.is_ident("as") && toks.get(i + 1).is_some_and(|n| n.is_ident("Limb")) {
            out.push(finding(
                ctx,
                t.line,
                "truncating-cast",
                "`as Limb` truncation in limb arithmetic".to_string(),
                "use limb::lo / limb::hi, which document the intended truncation, \
                 or add an allow pragma",
            ));
        }
    }
}

/// `deprecated-shim`: calls to the flat `scan_*` entry points superseded
/// by `ScanPipeline`. The defining file is exempt (shims call each other's
/// plumbing), as is anything under an `allow-file` pragma — the pin suite.
fn lint_deprecated_shim(toks: &[Tok], ctx: &FileCtx, out: &mut Vec<Finding>) {
    let defines_shim = toks
        .windows(2)
        .any(|w| w[0].is_ident("fn") && w[1].ident().is_some_and(|n| SHIM_NAMES.contains(&n)));
    if defines_shim {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !SHIM_NAMES.contains(&name) {
            continue;
        }
        // A call: the name is applied to arguments. `use` imports and
        // doc-path mentions don't have a following `(`.
        if toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            out.push(finding(
                ctx,
                t.line,
                "deprecated-shim",
                format!("call to deprecated shim `{name}`"),
                "build the equivalent ScanPipeline instead; the shims exist only for \
                 pinned backward-compatibility tests",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileCtx {
        FileCtx {
            path: "lib.rs".to_string(),
            class: FileClass::Library,
            bigint_limb: false,
        }
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn f() -> u32 { 1 }\n\
                   #[cfg(test)]\nmod tests {\n fn g() { None::<u32>.unwrap(); }\n}\n";
        let out = run_file(src, &ctx());
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn unwrap_outside_tests_is_flagged() {
        let src = "fn f() { None::<u32>.unwrap(); }";
        let out = run_file(src, &ctx());
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "no-panic");
    }

    #[test]
    fn allow_consumes_and_unused_allow_fires() {
        let src = "// analyze: allow(no-panic, reason = \"documented contract\")\n\
                   fn f() { None::<u32>.unwrap(); }\n\
                   // analyze: allow(no-panic, reason = \"stale\")\n\
                   fn g() -> u32 { 1 }\n";
        let out = run_file(src, &ctx());
        assert_eq!(out.allows_consumed, 1);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "unused-allow");
        assert_eq!(out.findings[0].line, 3);
    }

    #[test]
    fn constant_flow_pragma_binds_next_fn() {
        let src = "// analyze: constant-flow(public = \"n\")\n\
                   fn f(x: u64, n: usize) -> u64 {\n\
                       let mut acc = 0u64;\n\
                       for i in 0..n { acc = acc.wrapping_add(i as u64); }\n\
                       if x > 0 { acc += 1; }\n\
                       acc\n\
                   }\n";
        let out = run_file(src, &ctx());
        assert_eq!(out.constant_flow_fns, 1);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].lint, "cf-branch");
        assert_eq!(out.findings[0].line, 5);
    }

    #[test]
    fn interprocedural_helper_is_checked() {
        let src = "// analyze: constant-flow(public = \"n\")\n\
                   fn root(x: u64, n: usize) -> u64 {\n\
                       helper(x, n)\n\
                   }\n\
                   fn helper(v: u64, n: usize) -> u64 {\n\
                       if v > 1 { return 0; }\n\
                       let mut acc = v;\n\
                       for _ in 0..n { acc = acc.wrapping_mul(3); }\n\
                       acc\n\
                   }\n";
        let out = run_file(src, &ctx());
        let lints: Vec<&str> = out.findings.iter().map(|f| f.lint).collect();
        assert!(lints.contains(&"cf-branch"), "{:?}", out.findings);
        assert!(lints.contains(&"cf-early-return"), "{:?}", out.findings);
        assert!(out
            .findings
            .iter()
            .any(|f| f.message.contains("reached from constant-flow root `root`")));
    }

    #[test]
    fn uniform_early_return_is_fine() {
        // A return guarded only by public structure is uniform across the
        // warp: every lane takes it together.
        let src = "// analyze: constant-flow(public = \"n\")\n\
                   fn f(x: u64, n: usize) -> u64 {\n\
                       if n == 0 { return 0; }\n\
                       x.wrapping_mul(n as u64)\n\
                   }\n";
        let out = run_file(src, &ctx());
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn baseline_suppresses_and_goes_stale() {
        let src = "fn f() { None::<u32>.unwrap(); }";
        let fa = analyze_file(src, &ctx());
        let (baseline, errs) = parse_baseline(
            "# comment\n\
             no-panic\tlib.rs\tf\tdocumented divergence\n\
             no-panic\tlib.rs\tgone_fn\twas removed\n",
        );
        assert!(errs.is_empty());
        let report = finish(std::slice::from_ref(&fa), &baseline, "analyze.baseline");
        // The unwrap is baselined; the second entry is stale.
        assert_eq!(report.baselined, 1);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].lint, "stale-baseline");
        assert_eq!(report.findings[0].file, "analyze.baseline");
    }
}
